//! `check-bench` — the CI perf-regression gate.
//!
//! ```text
//! check-bench <baseline.json> <fresh.json> [--report PATH] [--max-regress FRACTION]
//! ```
//!
//! Compares a freshly produced `BENCH_results.json` against the
//! committed baseline and **fails (exit 1) when any throughput entry
//! regresses by more than the threshold** (default 25%, overridable via
//! `--max-regress` or the `BENCH_MAX_REGRESSION` environment variable).
//! Only entries reporting `elements_per_sec` participate: wall-clock
//! `nanos_per_iter` values are listed in the report for context but not
//! gated, since absolute nanoseconds shift with the runner while
//! throughput entries are tracked at a pinned `WAFER_MD_THREADS`.
//!
//! On top of the relative gate, the hot-kernel entries in [`FLOORS`]
//! are held to **absolute `elements_per_sec` floors**: a relative gate
//! alone would let throughput ratchet down 25% per refresh, while the
//! floors pin the order of magnitude the SoA/f64x4 kernels are sized
//! for. Floors sit ~3× under locally measured rates so runner-fleet
//! variance doesn't trip them; a floor violation means the vectorized
//! path stopped being vectorized, not that the runner was slow.
//!
//! A markdown comparison table is written to `--report` (default
//! `BENCH_compare.md`) so CI can upload it as an artifact.
//!
//! The parser is a minimal hand-rolled reader for the flat schema the
//! vendored criterion emits (`{"schema": 1, "results": [{...}, ...]}`);
//! the workspace deliberately has no serde dependency.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::process::exit;

/// Absolute throughput floors (name, min elements_per_sec) for the
/// kernels the SoA/f64x4 rewrite targets. Every listed entry must be
/// present in the fresh run and at or above its floor.
const FLOORS: &[(&str, f64)] = &[
    ("spline_eval/phi_f64_ring", 40.0e6),
    ("spline_eval/phi_f64x4_ring", 60.0e6),
    ("force_loop/baseline_eval", 600.0e3),
    ("baseline_step/Ta", 600.0e3),
    ("baseline_step/Cu", 250.0e3),
    ("sharded_step/k1", 300.0e3),
    ("sharded_step/k4", 300.0e3),
];

#[derive(Clone, Debug, Default)]
struct Entry {
    nanos_per_iter: Option<f64>,
    threads: Option<f64>,
    elements_per_sec: Option<f64>,
}

/// Extract the string value of `"key": "..."` from one JSON object.
fn string_field(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let rest = &obj[obj.find(&pat)? + pat.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Extract the numeric value of `"key": <number>` from one JSON object.
fn number_field(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let rest = &obj[obj.find(&pat)? + pat.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || ".-+eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parse the `results` array into name → entry (names are unique: the
/// emitter merges by name across bench binaries).
fn parse(path: &str) -> BTreeMap<String, Entry> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check-bench: cannot read {path}: {e}");
            exit(2);
        }
    };
    let mut out = BTreeMap::new();
    let Some(start) = text.find("\"results\"") else {
        eprintln!("check-bench: {path} has no \"results\" array");
        exit(2);
    };
    // Objects in the results array are flat (no nesting), so brace
    // matching degenerates to scanning `{...}` spans.
    let mut rest = &text[start..];
    while let Some(open) = rest.find('{') {
        let Some(close) = rest[open..].find('}') else {
            break;
        };
        let obj = &rest[open..open + close + 1];
        if let Some(name) = string_field(obj, "name") {
            out.insert(
                name,
                Entry {
                    nanos_per_iter: number_field(obj, "nanos_per_iter"),
                    threads: number_field(obj, "threads"),
                    elements_per_sec: number_field(obj, "elements_per_sec"),
                },
            );
        }
        rest = &rest[open + close + 1..];
    }
    if out.is_empty() {
        eprintln!("check-bench: {path} contains no bench entries");
        exit(2);
    }
    out
}

fn usage() -> ! {
    eprintln!(
        "usage: check-bench <baseline.json> <fresh.json> [--report PATH] [--max-regress FRACTION]"
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut report_path = "BENCH_compare.md".to_string();
    let mut threshold: f64 = std::env::var("BENCH_MAX_REGRESSION")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--report" => {
                i += 1;
                report_path = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--max-regress" => {
                i += 1;
                threshold = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            other if !other.starts_with("--") => paths.push(other.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        usage()
    };

    let baseline = parse(baseline_path);
    let fresh = parse(fresh_path);

    let mut report = String::new();
    let _ = writeln!(report, "# Bench comparison\n");
    let _ = writeln!(
        report,
        "Baseline `{baseline_path}` vs fresh `{fresh_path}`; gate: \
         elements_per_sec regression > {:.0}% fails.\n",
        threshold * 100.0
    );
    let _ = writeln!(
        report,
        "| bench | baseline elem/s | fresh elem/s | Δ | ns/iter (fresh) | status |"
    );
    let _ = writeln!(report, "|---|---|---|---|---|---|");

    let mut regressions = Vec::new();
    let mut gated = 0usize;
    for (name, base) in &baseline {
        let Some(new) = fresh.get(name) else {
            let _ = writeln!(report, "| {name} | — | — | — | — | missing in fresh run |");
            regressions.push(format!("{name}: present in baseline but not in fresh run"));
            continue;
        };
        let ns = new
            .nanos_per_iter
            .map(|v| format!("{v:.1}"))
            .unwrap_or_else(|| "—".into());
        match (base.elements_per_sec, new.elements_per_sec) {
            (Some(b), Some(f)) if b > 0.0 => {
                gated += 1;
                let delta = f / b - 1.0;
                let mismatched_threads = base.threads != new.threads;
                let status = if mismatched_threads {
                    "skipped (thread count differs)".to_string()
                } else if delta < -threshold {
                    regressions.push(format!(
                        "{name}: {b:.0} -> {f:.0} elements/sec ({:+.1}%)",
                        delta * 100.0
                    ));
                    "**REGRESSED**".to_string()
                } else {
                    "ok".to_string()
                };
                let _ = writeln!(
                    report,
                    "| {name} | {b:.0} | {f:.0} | {:+.1}% | {ns} | {status} |",
                    delta * 100.0
                );
            }
            _ => {
                let _ = writeln!(report, "| {name} | — | — | — | {ns} | not gated |");
            }
        }
    }
    for name in fresh.keys().filter(|n| !baseline.contains_key(*n)) {
        let _ = writeln!(report, "| {name} | — | — | — | — | new entry |");
    }

    let _ = writeln!(report, "\n## Absolute floors\n");
    let _ = writeln!(report, "| bench | floor elem/s | fresh elem/s | status |");
    let _ = writeln!(report, "|---|---|---|---|");
    for &(name, floor) in FLOORS {
        match fresh.get(name).and_then(|e| e.elements_per_sec) {
            Some(rate) if rate >= floor => {
                let _ = writeln!(report, "| {name} | {floor:.0} | {rate:.0} | ok |");
            }
            Some(rate) => {
                regressions.push(format!(
                    "{name}: {rate:.0} elements/sec is below the absolute floor {floor:.0}"
                ));
                let _ = writeln!(
                    report,
                    "| {name} | {floor:.0} | {rate:.0} | **BELOW FLOOR** |"
                );
            }
            None => {
                regressions.push(format!(
                    "{name}: floored entry missing from fresh run (floor {floor:.0})"
                ));
                let _ = writeln!(report, "| {name} | {floor:.0} | — | **MISSING** |");
            }
        }
    }

    if let Err(e) = std::fs::write(&report_path, &report) {
        eprintln!("check-bench: cannot write {report_path}: {e}");
        exit(2);
    }

    if regressions.is_empty() {
        println!(
            "check-bench: {gated} throughput entries within {:.0}% of baseline ({report_path})",
            threshold * 100.0
        );
    } else {
        eprintln!(
            "check-bench: {} of {gated} throughput entries regressed more than {:.0}%:",
            regressions.len(),
            threshold * 100.0
        );
        for r in &regressions {
            eprintln!("  {r}");
        }
        exit(1);
    }
}
