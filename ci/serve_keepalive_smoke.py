#!/usr/bin/env python3
"""CI keep-alive smoke cell for `wafer-md serve`.

Drives a live server two ways at engine thread counts 1 and 4:

1. **close-per-request** — every fixture spec on its own socket with
   `Connection: close` (the pre-keep-alive wire behavior);
2. **keep-alive** — the same specs pipelined down ONE persistent
   socket (every request written before any response is read), with
   the shutdown riding the same connection.

Asserts, byte for byte:

- response bodies match pairwise between the two cells and match the
  committed report golden;
- the two cache trees (index included) are identical to each other;
- every cached `report.txt` matches the drain cell's cache
  (`serve-cache-<t>`, when present) and the committed golden;
- the keep-alive trace, with `"*_us"` timing fields stripped, is
  byte-identical across engine thread counts — scheduling order is a
  pure function of the admission sequence, pipelining included.

Usage: ci/serve_keepalive_smoke.py [path-to-wafer-md]
"""

import re
import shutil
import socket
import subprocess
import sys
from pathlib import Path

BIN = sys.argv[1] if len(sys.argv) > 1 else "./target/release/wafer-md"
FIXTURE = Path("tests/fixtures/serve-requests.jsonl")
GOLDEN_REPORT = Path("tests/golden/serve-report.txt")
GOLDEN_DRAIN = Path("tests/golden/serve-drain-cold.txt")


def fixture_specs():
    lines = FIXTURE.read_text().splitlines()
    return [l for l in lines if l.strip() and not l.startswith("#")]


def golden_keys():
    keys = re.findall(r"^([0-9a-f]{16}) ", GOLDEN_DRAIN.read_text(), re.MULTILINE)
    return sorted(set(keys))


def start_server(cache, engine_threads, trace=None):
    """Launch the server on a free port, return (proc, (host, port))."""
    cmd = [
        BIN, "serve",
        "--addr", "127.0.0.1:0",
        "--serve-threads", "1",
        "--cache", str(cache),
    ]
    if trace is not None:
        cmd += ["--trace", str(trace)]
    import os
    env = dict(os.environ, WAFER_MD_THREADS=str(engine_threads))
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE, env=env)
    line = proc.stdout.readline().decode()
    m = re.search(r"listening on ([0-9.]+):([0-9]+)", line)
    assert m, f"no bound address in startup line: {line!r}"
    return proc, (m.group(1), int(m.group(2)))


def request(method, path, body=b"", close=False):
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: wafer-md\r\n"
        f"Content-Length: {len(body)}\r\n"
    )
    if close:
        head += "Connection: close\r\n"
    return head.encode() + b"\r\n" + body


def read_response(f):
    """Parse one response off a buffered socket file: framing-aware
    (Content-Length or chunked), so the socket survives for the next
    pipelined response."""
    status_line = f.readline()
    assert status_line, "server closed before the response"
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = f.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    if headers.get("transfer-encoding") == "chunked":
        body = b""
        while True:
            size = int(f.readline().split(b";")[0], 16)
            chunk = f.read(size + 2)  # data + CRLF (or just CRLF for 0)
            if size == 0:
                break
            body += chunk[:-2]
        return status, headers, body
    length = int(headers.get("content-length", "0"))
    return status, headers, f.read(length)


def close_cell(addr, specs):
    """One fresh `Connection: close` socket per request."""
    bodies = []
    for spec in specs:
        with socket.create_connection(addr) as s:
            s.sendall(request("POST", "/run", spec.encode(), close=True))
            with s.makefile("rb") as f:
                status, headers, body = read_response(f)
        assert status == 200, f"close cell: {status} {body!r}"
        assert headers.get("connection") == "close", headers
        bodies.append(body)
    with socket.create_connection(addr) as s:
        s.sendall(request("POST", "/shutdown", close=True))
        with s.makefile("rb") as f:
            status, _, _ = read_response(f)
    assert status == 200
    return bodies


def keepalive_cell(addr, specs):
    """All requests pipelined down one persistent socket, shutdown
    riding the same connection."""
    bodies = []
    with socket.create_connection(addr) as s:
        s.sendall(b"".join(request("POST", "/run", spec.encode()) for spec in specs))
        with s.makefile("rb") as f:
            for i in range(len(specs)):
                status, headers, body = read_response(f)
                assert status == 200, f"keep-alive req {i}: {status} {body!r}"
                assert headers.get("connection") == "keep-alive", headers
                bodies.append(body)
            s.sendall(request("POST", "/shutdown"))
            status, headers, _ = read_response(f)
            assert status == 200
            assert headers.get("connection") == "close", headers
    return bodies


def tree(root):
    """Relative path -> bytes for every file under root."""
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


def main():
    specs = fixture_specs()
    keys = golden_keys()
    golden = GOLDEN_REPORT.read_bytes()
    filtered_traces = {}
    for t in (1, 4):
        close_root = Path(f"ka-smoke-close-{t}")
        ka_root = Path(f"ka-smoke-keepalive-{t}")
        trace = Path(f"ka-smoke-trace-{t}.jsonl")
        for root in (close_root, ka_root):
            shutil.rmtree(root, ignore_errors=True)

        proc, addr = start_server(close_root, t)
        close_bodies = close_cell(addr, specs)
        assert proc.wait(timeout=120) == 0, "close-cell server exit"

        proc, addr = start_server(ka_root, t, trace=trace)
        ka_bodies = keepalive_cell(addr, specs)
        assert proc.wait(timeout=120) == 0, "keep-alive-cell server exit"

        for i, (a, b) in enumerate(zip(close_bodies, ka_bodies)):
            assert a == b, f"t={t} req {i}: keep-alive body diverged from close-per-request"
            assert a == golden, f"t={t} req {i}: body diverged from the report golden"
        assert tree(close_root) == tree(ka_root), (
            f"t={t}: cache trees diverged between transports"
        )
        for key in keys:
            report = (ka_root / key / "report.txt").read_bytes()
            assert report == golden, f"t={t} {key}: cached report diverged from golden"
            drain_report = Path(f"serve-cache-{t}") / key / "report.txt"
            if drain_report.exists():
                assert report == drain_report.read_bytes(), (
                    f"t={t} {key}: keep-alive cache diverged from the drain cell"
                )
            else:
                print(f"note: {drain_report} absent, drain-cell diff skipped")
        filtered_traces[t] = re.sub(r',"[a-z_]+_us":\d+', "", trace.read_text())
        print(f"t={t}: {len(specs)} pipelined keep-alive responses byte-match "
              f"close-per-request and the golden; cache trees identical")
    assert filtered_traces[1] == filtered_traces[4], (
        "timing-stripped keep-alive traces diverged across engine thread counts"
    )
    print("keep-alive trace (timing-stripped) byte-identical at WAFER_MD_THREADS 1 and 4")


if __name__ == "__main__":
    main()
