//! Tests of the realized Sec. VI-A optimizations: force symmetry via
//! neighborhood reduction, and neighbor-list reuse. Both must preserve
//! the physics exactly (up to f32 summation order) while reducing the
//! charged cycle cost the way Table V projects.

use md_core::lattice::SlabSpec;
use md_core::materials::{Material, Species};
use md_core::thermostat;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wse_md::{WseMdConfig, WseMdSim};

fn build(
    species: Species,
    nx: usize,
    symmetric: bool,
    reuse: usize,
    skin: f64,
    seed: u64,
) -> WseMdSim {
    let m = Material::new(species);
    let spec = SlabSpec {
        crystal: m.crystal,
        lattice_a: m.lattice_a,
        nx,
        ny: nx,
        nz: 2,
    };
    let positions = spec.generate();
    let mut rng = StdRng::seed_from_u64(seed);
    let velocities = thermostat::maxwell_boltzmann(&mut rng, positions.len(), m.mass, 290.0);
    let mut config = WseMdConfig::open_for(positions.len(), 0.05, 2e-3);
    config.symmetric_forces = symmetric;
    config.neighbor_reuse_interval = reuse;
    config.neighbor_skin = skin;
    WseMdSim::new(species, &positions, &velocities, config)
}

#[test]
fn symmetric_forces_match_full_computation() {
    let mut full = build(Species::Ta, 5, false, 1, 0.0, 7);
    let mut sym = build(Species::Ta, 5, true, 1, 0.0, 7);
    full.step();
    sym.step();
    let ff = full.forces_by_atom();
    let fs = sym.forces_by_atom();
    for (i, (a, b)) in ff.iter().zip(&fs).enumerate() {
        let err = (*a - *b).norm() / (1.0 + a.norm());
        assert!(err < 1e-5, "atom {i}: {a:?} vs {b:?}");
    }
    // Energies identical (same density pass).
    assert!((full.last_stats.potential_energy - sym.last_stats.potential_energy).abs() < 1e-6);
}

#[test]
fn symmetric_trajectories_track_full_trajectories() {
    let mut full = build(Species::Cu, 4, false, 1, 0.0, 3);
    let mut sym = build(Species::Cu, 4, true, 1, 0.0, 3);
    for _ in 0..50 {
        full.step();
        sym.step();
    }
    let pf = full.positions_by_atom();
    let ps = sym.positions_by_atom();
    let mut dev = 0.0f64;
    for (a, b) in pf.iter().zip(&ps) {
        dev = dev.max((*a - *b).norm());
    }
    assert!(dev < 1e-3, "trajectories diverged by {dev} Å");
}

#[test]
fn symmetric_forces_halve_the_interaction_charge() {
    // Table V "Symmetry" row: interaction cost 92 → 46 ns. On identical
    // workloads, the charged cycles must reflect exactly that.
    let mut full = build(Species::W, 4, false, 1, 0.0, 11);
    let mut sym = build(Species::W, 4, true, 1, 0.0, 11);
    let sf = full.step();
    let ss = sym.step();
    assert!(ss.cycles < sf.cycles);
    let model = wse_fabric::cost::CostModel::paper_baseline();
    let expected_saving_ns = 0.5 * model.interaction_ns * sf.mean_interactions;
    let actual_saving_ns = (sf.cycles - ss.cycles) / wse_fabric::cost::WSE2_CLOCK_GHZ;
    assert!(
        (actual_saving_ns - expected_saving_ns).abs() < 1.0,
        "saved {actual_saving_ns} ns vs expected {expected_saving_ns}"
    );
}

#[test]
fn neighbor_reuse_preserves_physics_with_adequate_skin() {
    let mut every = build(Species::Ta, 5, false, 1, 0.0, 13);
    let mut reused = build(Species::Ta, 5, false, 10, 1.0, 13);
    for _ in 0..60 {
        every.step();
        reused.step();
    }
    let pa = every.positions_by_atom();
    let pb = reused.positions_by_atom();
    let mut dev = 0.0f64;
    for (a, b) in pa.iter().zip(&pb) {
        dev = dev.max((*a - *b).norm());
    }
    // At 290 K, drift between rebuilds stays well inside the 1 Å skin,
    // so the interaction sets are identical and trajectories agree to
    // f32 ordering noise.
    assert!(dev < 1e-3, "reuse changed the trajectory by {dev} Å");
}

#[test]
fn neighbor_reuse_cuts_mean_step_cost() {
    let steps = 40;
    let mut every = build(Species::Ta, 5, false, 1, 0.0, 13);
    let mut reused = build(Species::Ta, 5, false, 10, 1.0, 13);
    let c_every = every.run(steps);
    let c_reused = reused.run(steps);
    assert!(
        c_reused < 0.85 * c_every,
        "reuse {c_reused} vs every-step {c_every} cycles"
    );
}

#[test]
fn reuse_steps_conserve_energy() {
    let mut sim = build(Species::Cu, 4, false, 10, 1.2, 21);
    sim.step();
    let e0 = sim.total_energy();
    for _ in 0..200 {
        sim.step();
    }
    let drift = (sim.total_energy() - e0).abs() / sim.n_atoms() as f64;
    assert!(drift < 2e-3, "drift {drift} eV/atom with list reuse");
}

#[test]
fn all_optimizations_stack() {
    // The Table V stack, realized: baseline vs reuse+symmetry on the
    // same workload. Ta spends ~half its time on rejects, so the stack
    // should save a large fraction of the step cost.
    let steps = 40;
    let mut base = build(Species::Ta, 6, false, 1, 0.0, 2);
    let mut opt = build(Species::Ta, 6, true, 10, 1.0, 2);
    let c_base = base.run(steps);
    let c_opt = opt.run(steps);
    let speedup = c_base / c_opt;
    assert!(
        speedup > 1.3,
        "stacked optimizations gave only {speedup:.2}x"
    );
    // Physics still intact.
    let pa = base.positions_by_atom();
    let pb = opt.positions_by_atom();
    let mut dev = 0.0f64;
    for (a, b) in pa.iter().zip(&pb) {
        dev = dev.max((*a - *b).norm());
    }
    assert!(dev < 2e-3, "optimized trajectory deviated {dev} Å");
}

#[test]
fn swaps_invalidate_reused_lists() {
    // After a swap round, retained lists reference moved atoms; the
    // driver must rebuild rather than silently compute garbage. Detect
    // via energy conservation across a swap-heavy hot run.
    let mut sim = build(Species::W, 4, false, 25, 1.5, 5);
    sim.step();
    let e0 = sim.total_energy();
    for k in 0..100 {
        sim.step();
        if k % 7 == 0 {
            wse_md::swap_round(&mut sim);
        }
    }
    let drift = (sim.total_energy() - e0).abs() / sim.n_atoms() as f64;
    assert!(
        drift < 5e-3,
        "energy drift {drift} eV/atom across swaps+reuse"
    );
}
