//! Property-based tests of the mapping and swap invariants.

use md_core::vec3::V3d;
use proptest::prelude::*;
use wse_fabric::geometry::Extent;
use wse_md::Mapping;

fn arb_cloud(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<V3d>> {
    proptest::collection::vec(
        (0.0f64..40.0, 0.0f64..40.0, 0.0f64..8.0).prop_map(|(x, y, z)| V3d::new(x, y, z)),
        n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The mapping is always a bijection between atoms and occupied
    /// cores, for arbitrary point clouds and fabric shapes.
    #[test]
    fn mapping_is_bijective(
        cloud in arb_cloud(5..120),
        extra in 0usize..40,
    ) {
        let n = cloud.len();
        let cores = n + extra;
        let w = (cores as f64).sqrt().ceil() as usize;
        let h = cores.div_ceil(w);
        let extent = Extent::new(w, h);
        let m = Mapping::greedy(&cloud, extent);

        let mut seen = vec![false; extent.count()];
        for (i, &flat) in m.core_of_atom.iter().enumerate() {
            prop_assert!(!seen[flat], "core {} double-assigned", flat);
            seen[flat] = true;
            prop_assert_eq!(m.atom_of_core[flat], Some(i));
        }
        let occupied = m.atom_of_core.iter().filter(|a| a.is_some()).count();
        prop_assert_eq!(occupied, n);
    }

    /// Exact-fit mappings (atoms == cores) leave no vacancy.
    #[test]
    fn exact_fit_saturates_fabric(cloud in arb_cloud(9..100)) {
        let n = cloud.len();
        let w = (n as f64).sqrt().floor() as usize;
        let h = n.div_ceil(w);
        prop_assume!(w * h >= n);
        let extent = Extent::new(w, h);
        let m = Mapping::greedy(&cloud, extent);
        let occupied = m.atom_of_core.iter().filter(|a| a.is_some()).count();
        prop_assert_eq!(occupied, n);
        prop_assert!(m.occupancy() > 0.99 || w * h > n);
    }

    /// Swapping two cores twice restores the original mapping.
    #[test]
    fn swap_is_an_involution(
        cloud in arb_cloud(10..60),
        pick_a in 0usize..60,
        pick_b in 0usize..60,
    ) {
        let n = cloud.len();
        let cores = n + 8;
        let w = (cores as f64).sqrt().ceil() as usize;
        let extent = Extent::new(w, cores.div_ceil(w));
        let mut m = Mapping::greedy(&cloud, extent);
        let a = pick_a % extent.count();
        let b = pick_b % extent.count();
        let before_a = m.atom_of_core[a];
        let before_b = m.atom_of_core[b];
        m.swap_cores(a, b);
        m.swap_cores(a, b);
        prop_assert_eq!(m.atom_of_core[a], before_a);
        prop_assert_eq!(m.atom_of_core[b], before_b);
        for (i, &flat) in m.core_of_atom.iter().enumerate() {
            prop_assert_eq!(m.atom_of_core[flat], Some(i));
        }
    }

    /// For uniformly random clouds the assignment cost stays bounded by
    /// a small multiple of the core pitch — the locality property the
    /// whole algorithm rests on.
    #[test]
    fn assignment_cost_is_local(seed in 0u64..1000) {
        use rand::prelude::*;
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 400;
        let cloud: Vec<V3d> = (0..n)
            .map(|_| {
                V3d::new(
                    rng.gen::<f64>() * 60.0,
                    rng.gen::<f64>() * 60.0,
                    rng.gen::<f64>() * 5.0,
                )
            })
            .collect();
        let extent = Extent::new(21, 20); // 420 cores
        let m = Mapping::greedy(&cloud, extent);
        let cost = m.assignment_cost_angstroms(&cloud);
        // Pitch is ~3 Å. A Poisson cloud can legitimately require a
        // dozen pitches where a draw clusters many atoms at one
        // projection (they must fan out over distinct cores), but a
        // mapper that regressed to global spill would show costs at the
        // domain scale (≥ 50 Å). Perfect-lattice slabs are separately
        // held to ~3 Å in the unit tests.
        prop_assert!(cost < 40.0, "assignment cost {cost}");
    }
}
