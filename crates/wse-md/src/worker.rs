//! Per-tile worker memory plan and the 48 kB SRAM audit.
//!
//! Each core acts as a worker responsible for a single atom: it maintains
//! the atom's identity, position, and velocity, plus local copies of the
//! ρ, F, and φ interpolation tables (paper Sec. III-A). Everything must
//! fit in the tile's 48 kB SRAM. This module lays out a worker's memory
//! regions and proves the paper's configurations fit — including the
//! largest neighborhood (Cu/W, 224 candidates).

use md_core::eam::EamPotential;
use wse_fabric::tile::{SramBudget, SramOverflow};

/// Bytes of atom state exchanged in the candidate multicast: identity
/// (4 B) plus position (3 × 4 B = 12 B, Sec. III-B).
pub const CANDIDATE_RECORD_BYTES: usize = 16;

/// Bytes exchanged in the embedding multicast: one scalar F′ (Sec. III-B).
pub const EMBEDDING_RECORD_BYTES: usize = 4;

/// Knots per interpolation table in the tile-local copies. Master tables
/// are 1200-knot f64; tiles hold 512-knot f32 resamples so that three
/// tables (3 × 512 × 16 B = 24 kB) leave room for the largest paper
/// neighborhood (224 candidates) inside 48 kB.
pub const TILE_TABLE_KNOTS: usize = 512;

/// A worker's planned memory regions for a given neighborhood size.
#[derive(Clone, Debug)]
pub struct WorkerMemoryPlan {
    pub budget: SramBudget,
}

impl WorkerMemoryPlan {
    /// Lay out a worker for a potential and an interior candidate count
    /// `n_candidates = (2b+1)² − 1`. The potential's tables are resampled
    /// to [`TILE_TABLE_KNOTS`] f32 knots, as the tile would store them.
    pub fn plan(potential: &EamPotential<f32>, n_candidates: usize) -> Result<Self, SramOverflow> {
        let tile_tables: EamPotential<f32> = potential.cast_resampled(TILE_TABLE_KNOTS);
        let mut budget = SramBudget::default();
        // Own atom: id, position, velocity, force accumulator, ρ, F'.
        budget.alloc("atom state", 4 + 12 + 12 + 12 + 4 + 4)?;
        // Local copies of the three interpolation tables.
        budget.alloc("spline tables (rho, phi, F)", tile_tables.table_bytes())?;
        // Receive buffer for candidate records (double-buffered: the
        // send/receive threads of the two virtual channels run while the
        // previous buffer drains).
        budget.alloc(
            "candidate receive buffer",
            2 * n_candidates * CANDIDATE_RECORD_BYTES,
        )?;
        // Gathered neighbor positions (contiguous for vectorized passes).
        budget.alloc("gathered neighbors", n_candidates * 12)?;
        // Neighbor list ordinals (u16 suffices for ≤ 65k candidates).
        budget.alloc("neighbor list", n_candidates * 2)?;
        // Received embedding derivatives, one per candidate slot.
        budget.alloc("embedding buffer", n_candidates * EMBEDDING_RECORD_BYTES)?;
        // Per-interaction scratch (r², r⁻¹, spline segments) for the
        // vectorized force pass.
        budget.alloc("force scratch", n_candidates * 16)?;
        // Code/stack/stream-descriptor reserve.
        budget.alloc("code + control reserve", 8 * 1024)?;
        Ok(Self { budget })
    }
}

/// Memory plan for a *multi-atom worker*: `k` atoms per core, the
/// capacity extension Sec. V-C notes "could further increase the problem
/// size when all cores of the wafer are engaged". Tables are shared by
/// the core's atoms; atom state and exchange buffers scale with `k`
/// (each core multicasts k records and receives its neighborhood's
/// k-fold candidates).
#[derive(Clone, Debug)]
pub struct MultiAtomMemoryPlan {
    pub budget: SramBudget,
    pub atoms_per_core: usize,
}

impl MultiAtomMemoryPlan {
    pub fn plan(
        potential: &EamPotential<f32>,
        n_candidates_per_atom: usize,
        atoms_per_core: usize,
    ) -> Result<Self, SramOverflow> {
        assert!(atoms_per_core >= 1);
        let k = atoms_per_core;
        let tile_tables: EamPotential<f32> = potential.cast_resampled(TILE_TABLE_KNOTS);
        let n_candidates = n_candidates_per_atom * k;
        let mut budget = SramBudget::default();
        budget.alloc("atom state", k * (4 + 12 + 12 + 12 + 4 + 4))?;
        budget.alloc("spline tables (rho, phi, F)", tile_tables.table_bytes())?;
        budget.alloc(
            "candidate receive buffer",
            2 * n_candidates * CANDIDATE_RECORD_BYTES,
        )?;
        budget.alloc("gathered neighbors", n_candidates * 12)?;
        budget.alloc("neighbor list", k * n_candidates_per_atom * 2)?;
        budget.alloc("embedding buffer", n_candidates * EMBEDDING_RECORD_BYTES)?;
        budget.alloc("force scratch", n_candidates * 16)?;
        budget.alloc("code + control reserve", 8 * 1024)?;
        Ok(Self {
            budget,
            atoms_per_core,
        })
    }

    /// Largest k that still fits the 48 kB budget for this workload.
    pub fn max_atoms_per_core(
        potential: &EamPotential<f32>,
        n_candidates_per_atom: usize,
    ) -> usize {
        let mut k = 1;
        while Self::plan(potential, n_candidates_per_atom, k + 1).is_ok() {
            k += 1;
        }
        k
    }
}

/// Modeled rate and capacity trade of k atoms per core (Sec. V-C): each
/// core serially processes k atoms' workloads, so the rate divides by
/// ~k while the wafer's atom capacity multiplies by k.
pub fn multi_atom_rate(
    model: &wse_fabric::cost::CostModel,
    n_candidates_per_atom: f64,
    n_interactions_per_atom: f64,
    atoms_per_core: usize,
) -> f64 {
    let k = atoms_per_core as f64;
    // Per-atom candidate counts are a property of the physical
    // neighborhood, not of the packing: with k atoms per core the fabric
    // neighborhood shrinks by ~√k but holds k atoms per tile, so each
    // atom still sees the same candidates. The core serializes its k
    // atoms' work; one fixed control block amortizes across them.
    let per_atom = model.mcast_ns * n_candidates_per_atom
        + model.miss_ns * (n_candidates_per_atom - n_interactions_per_atom)
        + model.interaction_ns * n_interactions_per_atom;
    1e9 / (per_atom * k + model.fixed_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_core::materials::{Material, Species};

    fn tile_potential(sp: Species) -> EamPotential<f32> {
        Material::new(sp).potential().cast()
    }

    #[test]
    fn paper_configurations_fit_in_48kb() {
        for (sp, cand) in [
            (Species::Ta, 80usize),
            (Species::Cu, 224),
            (Species::W, 224),
        ] {
            let pot = tile_potential(sp);
            let plan =
                WorkerMemoryPlan::plan(&pot, cand).unwrap_or_else(|e| panic!("{:?}: {e}", sp));
            assert!(
                plan.budget.used() <= plan.budget.capacity(),
                "{:?} uses {} bytes",
                sp,
                plan.budget.used()
            );
        }
    }

    #[test]
    fn tables_dominate_small_neighborhood_footprints() {
        let pot = tile_potential(Species::Ta);
        let plan = WorkerMemoryPlan::plan(&pot, 80).unwrap();
        let table_bytes = pot.table_bytes();
        let buffer_bytes: usize = plan
            .budget
            .regions()
            .filter(|(n, _)| n.contains("buffer") || n.contains("neighbor"))
            .map(|(_, b)| b)
            .sum();
        assert!(
            table_bytes > buffer_bytes,
            "{table_bytes} vs {buffer_bytes}"
        );
    }

    #[test]
    fn absurd_neighborhoods_overflow() {
        let pot = tile_potential(Species::W);
        // A 4000-candidate neighborhood cannot fit next to the tables.
        assert!(WorkerMemoryPlan::plan(&pot, 4000).is_err());
    }

    #[test]
    fn memory_map_is_reported_per_region() {
        let pot = tile_potential(Species::Cu);
        let plan = WorkerMemoryPlan::plan(&pot, 224).unwrap();
        let names: Vec<&str> = plan.budget.regions().map(|(n, _)| n).collect();
        assert!(names.contains(&"spline tables (rho, phi, F)"));
        assert!(names.contains(&"candidate receive buffer"));
        assert_eq!(
            plan.budget.used(),
            plan.budget.regions().map(|(_, b)| b).sum::<usize>()
        );
    }

    #[test]
    fn two_atoms_per_core_fit_for_tantalum() {
        // Ta's small neighborhood (80 candidates/atom) leaves room for
        // multiple atoms per core within 48 kB.
        let pot = tile_potential(Species::Ta);
        let plan = MultiAtomMemoryPlan::plan(&pot, 80, 2).unwrap();
        assert!(plan.budget.used() <= plan.budget.capacity());
        assert!(MultiAtomMemoryPlan::max_atoms_per_core(&pot, 80) >= 2);
    }

    #[test]
    fn capacity_shrinks_with_neighborhood_size() {
        let pot = tile_potential(Species::W);
        let k_small = MultiAtomMemoryPlan::max_atoms_per_core(&pot, 80);
        let k_large = MultiAtomMemoryPlan::max_atoms_per_core(&pot, 224);
        assert!(k_small > k_large || (k_small == k_large && k_small == 1));
        assert!(k_large >= 1);
    }

    #[test]
    fn multi_atom_rate_trades_speed_for_capacity() {
        let model = wse_fabric::cost::CostModel::paper_baseline();
        let r1 = multi_atom_rate(&model, 80.0, 14.0, 1);
        let r2 = multi_atom_rate(&model, 80.0, 14.0, 2);
        let r4 = multi_atom_rate(&model, 80.0, 14.0, 4);
        // k=1 must agree with the paper's baseline prediction.
        let baseline = model.timesteps_per_second(80.0, 14.0);
        assert!((r1 - baseline).abs() / baseline < 0.15);
        // Rate falls somewhat slower than 1/k (fixed cost amortizes, the
        // candidate traffic does not).
        assert!(r2 < r1 && r4 < r2);
        assert!(r2 > r1 / 2.5 && r4 > r1 / 5.0);
    }
}
