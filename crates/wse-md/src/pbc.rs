//! Periodic boundary conditions on the wafer (paper Sec. III-E, Fig. 5).
//!
//! Periodicity in z comes free: the column projection keeps z-locality.
//! Periodicity in x or y would naïvely require wafer-edge-to-edge
//! communication; instead, the coordinate circle is **split in two and
//! collapsed onto a line** — `x → min(x, L−x)` — so atoms from the two
//! sides of the circle interleave on the wafer and interacting atoms stay
//! near each other. The fold reverses the orientation of one half, which
//! is what lets the two interleaved halves' multicast streams share the
//! fabric: each physical link direction carries two half-rate streams,
//! so the position exchange takes (nearly) the same time as the
//! non-periodic case (Sec. V-F) even though total data transfer doubles.

use md_core::system::Box3;
use md_core::vec3::{V3d, V3f};
use wse_fabric::multicast::line_stage_cycles;

/// Folding/minimum-image helper shared by the driver.
#[derive(Clone, Debug)]
pub struct FoldSpec {
    pub periodic: [bool; 3],
    pub lengths: V3d,
    lengths32: V3f,
}

impl FoldSpec {
    #[allow(clippy::needless_range_loop)] // k indexes two parallel arrays
    pub fn new(periodic: [bool; 3], lengths: V3d) -> Self {
        for k in 0..3 {
            if periodic[k] {
                assert!(
                    lengths.to_array()[k] > 0.0,
                    "periodic dimension {k} needs a positive box length"
                );
            }
        }
        Self {
            periodic,
            lengths,
            lengths32: lengths.cast(),
        }
    }

    pub fn open() -> Self {
        Self::new([false; 3], V3d::zero())
    }

    /// Fold a position for the *mapping projection*: periodic x/y collapse
    /// to `min(x, L−x)` (Fig. 5). z is never folded (the projection
    /// ignores it).
    pub fn fold(&self, p: V3d) -> V3d {
        let mut a = p.to_array();
        let l = self.lengths.to_array();
        for k in 0..2 {
            if self.periodic[k] {
                let x = a[k].rem_euclid(l[k]);
                a[k] = x.min(l[k] - x);
            }
        }
        V3d::from_array(a)
    }

    /// Minimum-image displacement `b − a` in tile (f32) precision. The
    /// modular arithmetic here is the "computational cost of periodicity"
    /// the paper notes in Sec. V-F.
    #[inline]
    pub fn disp_f32(&self, a: V3f, b: V3f) -> V3f {
        let mut d = b - a;
        let l = self.lengths32.to_array();
        let mut da = d.to_array();
        for k in 0..3 {
            if self.periodic[k] && l[k] > 0.0 {
                da[k] -= l[k] * (da[k] / l[k]).round();
            }
        }
        d = V3f::from_array(da);
        d
    }

    /// Wrap a position into the primary cell along periodic dimensions.
    #[inline]
    pub fn wrap_f32(&self, p: V3f) -> V3f {
        let mut a = p.to_array();
        let l = self.lengths32.to_array();
        for k in 0..3 {
            if self.periodic[k] && l[k] > 0.0 {
                a[k] = a[k].rem_euclid(l[k]);
            }
        }
        V3f::from_array(a)
    }

    /// Equivalent [`Box3`] for reference-engine comparisons.
    pub fn as_box(&self) -> Box3 {
        Box3::with_periodicity(self.lengths, self.periodic)
    }
}

/// Modeled cycle count for one marching-multicast line stage under folded
/// periodicity: logical neighbors sit two physical hops apart, so hop
/// latency doubles, but the two interleaved halves' streams run at half
/// rate each on shared links — same sustained throughput, `b` extra
/// cycles of pipeline latency.
pub fn folded_line_stage_cycles(b: usize, l: usize) -> u64 {
    line_stage_cycles(b, l) + b as u64
}

/// Relative slowdown of the folded (PBC) position exchange vs the open
/// one — the quantity the paper measured to be ≈ 0 (Sec. V-F).
pub fn pbc_exchange_overhead(b: usize, words: usize) -> f64 {
    let open = line_stage_cycles(b, words) + line_stage_cycles(b, (2 * b + 1) * words);
    let folded =
        folded_line_stage_cycles(b, words) + folded_line_stage_cycles(b, (2 * b + 1) * words);
    folded as f64 / open as f64 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_collapses_circle_to_half_line() {
        let f = FoldSpec::new([true, false, false], V3d::new(10.0, 0.0, 0.0));
        assert_eq!(f.fold(V3d::new(2.0, 3.0, 4.0)).x, 2.0);
        assert_eq!(f.fold(V3d::new(8.0, 3.0, 4.0)).x, 2.0);
        assert_eq!(f.fold(V3d::new(5.0, 0.0, 0.0)).x, 5.0);
        // y and z untouched.
        let p = f.fold(V3d::new(8.0, 3.0, 4.0));
        assert_eq!((p.y, p.z), (3.0, 4.0));
    }

    #[test]
    fn fold_is_contractive_for_interacting_pairs() {
        // |fold(x) − fold(y)| ≤ minimum-image distance: folded images of
        // interacting atoms are at least as close as the atoms themselves,
        // so neighborhood locality survives the fold.
        let l = 20.0;
        let f = FoldSpec::new([true, false, false], V3d::new(l, 0.0, 0.0));
        for i in 0..200 {
            for j in 0..200 {
                let x = i as f64 * 0.1;
                let y = j as f64 * 0.1;
                let mut mi = (x - y).abs();
                mi = mi.min(l - mi);
                let fd = (f.fold(V3d::new(x, 0.0, 0.0)).x - f.fold(V3d::new(y, 0.0, 0.0)).x).abs();
                assert!(
                    fd <= mi + 1e-12,
                    "x={x} y={y}: folded {fd} > min-image {mi}"
                );
            }
        }
    }

    #[test]
    fn minimum_image_displacement_f32() {
        let f = FoldSpec::new([true, true, false], V3d::new(10.0, 8.0, 0.0));
        let d = f.disp_f32(V3f::new(1.0, 1.0, 0.0), V3f::new(9.5, 7.5, 3.0));
        assert!((d.x - -1.5).abs() < 1e-6);
        assert!((d.y - -1.5).abs() < 1e-6);
        assert!((d.z - 3.0).abs() < 1e-6);
    }

    #[test]
    fn wrap_keeps_positions_in_cell() {
        let f = FoldSpec::new([true, false, false], V3d::new(5.0, 0.0, 0.0));
        let w = f.wrap_f32(V3f::new(-1.0, 7.0, -2.0));
        assert!((w.x - 4.0).abs() < 1e-6);
        assert_eq!(w.y, 7.0);
        assert_eq!(w.z, -2.0);
    }

    #[test]
    fn open_spec_is_identity() {
        let f = FoldSpec::open();
        let p = V3d::new(-3.0, 99.0, 4.0);
        assert_eq!(f.fold(p), p);
        let d = f.disp_f32(V3f::new(1.0, 1.0, 1.0), V3f::new(4.0, 5.0, 6.0));
        assert_eq!(d, V3f::new(3.0, 4.0, 5.0));
    }

    #[test]
    fn pbc_position_exchange_takes_nearly_the_same_time() {
        // Sec. V-F: "we measured the performance of the position exchange
        // with and without PBCs, and verified that they indeed take the
        // same amount of time." Our model's overhead is pure pipeline
        // latency — a few percent at the paper's neighborhood sizes, and
        // shrinking as the neighborhood grows.
        for (b, words) in [(4usize, 4usize), (7, 4), (7, 3)] {
            let overhead = pbc_exchange_overhead(b, words);
            assert!(
                overhead < 0.05,
                "b={b} words={words}: PBC overhead {overhead}"
            );
        }
        assert!(pbc_exchange_overhead(7, 4) < pbc_exchange_overhead(4, 4));
    }

    #[test]
    fn folded_stage_adds_only_latency() {
        assert_eq!(folded_line_stage_cycles(4, 8) - line_stage_cycles(4, 8), 4);
    }
}
