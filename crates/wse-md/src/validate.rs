//! Cross-validation of the wafer engine against the f64 reference.
//!
//! The WSE path (f32 tiles, candidate exchange, per-atom full-neighbor
//! forces) and the reference path (f64, brute force / cell lists) share
//! the physics of `md-core` but nothing else; agreement between them
//! validates the whole mapping/exchange/neighbor-list pipeline.

use md_core::eam::EamOutput;
use md_core::materials::Material;
use md_core::system::Box3;
use md_core::vec3::V3d;

use crate::driver::WseMdSim;

/// Maximum relative force discrepancy and absolute energy discrepancy
/// between the wafer engine's last step and an f64 reference evaluation
/// of the same configuration.
#[derive(Clone, Copy, Debug)]
pub struct ValidationReport {
    /// max over atoms of |F_wse − F_ref| / (1 + |F_ref|).
    pub max_force_error: f64,
    /// |U_wse − U_ref| / n_atoms (eV).
    pub energy_error_per_atom: f64,
    pub n_atoms: usize,
}

/// Evaluate the reference EAM energies/forces for the simulator's current
/// atom configuration under its boundary conditions.
pub fn reference_output(sim: &WseMdSim) -> EamOutput<f64> {
    let material = Material::new(sim.material.species);
    let pot = material.potential();
    let positions = sim.positions_by_atom();
    let bbox: Box3 = sim.fold_spec().as_box();
    pot.compute_bruteforce(&positions, |a, b| bbox.displacement(a, b))
}

/// Compare the simulator's last-step forces and potential energy against
/// the f64 reference. Call after at least one [`WseMdSim::step`].
#[allow(clippy::needless_range_loop)] // lockstep over two force arrays
pub fn validate_against_reference(sim: &WseMdSim) -> ValidationReport {
    let reference = reference_output(sim);
    let wse_forces = sim.forces_by_atom();
    let n = wse_forces.len();
    assert_eq!(reference.forces.len(), n);

    // The driver's forces correspond to the positions *before* the last
    // integration drift; re-evaluate the reference at those positions by
    // rolling the drift back: r_pre = r_post − v_{k+½}·dt.
    let dt = sim.config.dt;
    let vel = sim.velocities_by_atom();
    let pos_post = sim.positions_by_atom();
    let pos_pre: Vec<V3d> = pos_post
        .iter()
        .zip(&vel)
        .map(|(p, v)| *p - v.scale(dt))
        .collect();
    let material = Material::new(sim.material.species);
    let pot = material.potential();
    let bbox: Box3 = sim.fold_spec().as_box();
    let reference_pre = pot.compute_bruteforce(&pos_pre, |a, b| bbox.displacement(a, b));

    let mut max_force_error = 0.0f64;
    for i in 0..n {
        let fr = reference_pre.forces[i];
        let fw = wse_forces[i];
        let err = (fr - fw).norm() / (1.0 + fr.norm());
        max_force_error = max_force_error.max(err);
    }
    let energy_error_per_atom =
        (sim.last_stats.potential_energy - reference_pre.potential_energy).abs() / n as f64;

    ValidationReport {
        max_force_error,
        energy_error_per_atom,
        n_atoms: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::WseMdConfig;
    use md_core::lattice::SlabSpec;
    use md_core::materials::Species;
    use md_core::thermostat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn thermal_sim(species: Species, nx: usize, t: f64) -> WseMdSim {
        let m = Material::new(species);
        let spec = SlabSpec {
            crystal: m.crystal,
            lattice_a: m.lattice_a,
            nx,
            ny: nx,
            nz: 2,
        };
        let pos = spec.generate();
        let mut rng = StdRng::seed_from_u64(5);
        let vel = thermostat::maxwell_boltzmann(&mut rng, pos.len(), m.mass, t);
        WseMdSim::new(
            species,
            &pos,
            &vel,
            WseMdConfig::open_for(pos.len(), 0.05, 2e-3),
        )
    }

    #[test]
    fn forces_match_reference_for_all_species() {
        for species in Species::ALL {
            let mut sim = thermal_sim(species, 4, 290.0);
            sim.step();
            let report = validate_against_reference(&sim);
            assert!(
                report.max_force_error < 5e-4,
                "{species:?}: force error {}",
                report.max_force_error
            );
            assert!(
                report.energy_error_per_atom < 5e-4,
                "{species:?}: energy error {}",
                report.energy_error_per_atom
            );
        }
    }

    #[test]
    fn trajectories_track_reference_over_short_horizons() {
        // Integrate 20 steps on the wafer engine and with a hand-rolled
        // f64 leapfrog over the reference forces; trajectories must agree
        // to f32-accumulation tolerance.
        let species = Species::Ta;
        let mut sim = thermal_sim(species, 3, 290.0);
        let material = Material::new(species);
        let pot = material.potential();
        let dt = sim.config.dt;

        let mut ref_pos = sim.positions_by_atom();
        let mut ref_vel = sim.velocities_by_atom();
        let steps = 20;
        for _ in 0..steps {
            sim.step();
            let out = pot.compute_bruteforce(&ref_pos, |a, b| b - a);
            md_core::integrate::leapfrog_step(
                &mut ref_pos,
                &mut ref_vel,
                &out.forces,
                material.mass,
                dt,
            );
        }
        let wse_pos = sim.positions_by_atom();
        let mut max_dev = 0.0f64;
        for (a, b) in wse_pos.iter().zip(&ref_pos) {
            max_dev = max_dev.max((*a - *b).norm());
        }
        assert!(
            max_dev < 1e-3,
            "trajectory deviation {max_dev} Å after {steps} steps"
        );
    }

    #[test]
    fn energy_is_conserved_over_nve_run() {
        let mut sim = thermal_sim(Species::Cu, 3, 150.0);
        sim.step();
        let e0 = sim.total_energy();
        for _ in 0..200 {
            sim.step();
        }
        let e1 = sim.total_energy();
        let per_atom = (e1 - e0).abs() / sim.n_atoms() as f64;
        assert!(
            per_atom < 2e-3,
            "energy drift {per_atom} eV/atom over 200 steps"
        );
    }

    #[test]
    fn cold_perfect_crystal_stays_put() {
        // Zero-temperature perfect lattice: forces ~0, atoms stay.
        let species = Species::W;
        let m = Material::new(species);
        let spec = SlabSpec {
            crystal: m.crystal,
            lattice_a: m.lattice_a,
            nx: 4,
            ny: 4,
            nz: 2,
        };
        let pos = spec.generate();
        let vel = vec![V3d::zero(); pos.len()];
        let mut sim = WseMdSim::new(
            species,
            &pos,
            &vel,
            WseMdConfig::open_for(pos.len(), 0.05, 2e-3),
        );
        for _ in 0..50 {
            sim.step();
        }
        let after = sim.positions_by_atom();
        // Open surfaces relax and (undamped) oscillate about the relaxed
        // geometry; corner atoms move most. The lattice must not melt or
        // fly apart, and the most-interior atom must barely move.
        let mut max_move = 0.0f64;
        for (a, b) in pos.iter().zip(&after) {
            max_move = max_move.max((*a - *b).norm());
        }
        assert!(
            max_move < 1.0,
            "max displacement {max_move} Å in a cold crystal"
        );
        let center = {
            let c: V3d = pos.iter().copied().sum::<V3d>() / pos.len() as f64;
            (0..pos.len())
                .min_by(|&i, &j| {
                    (pos[i] - c)
                        .norm()
                        .partial_cmp(&(pos[j] - c).norm())
                        .unwrap()
                })
                .unwrap()
        };
        let center_move = (after[center] - pos[center]).norm();
        assert!(
            center_move < 0.3,
            "central atom moved {center_move} Å in a cold crystal"
        );
    }
}
