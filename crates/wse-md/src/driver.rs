//! The wafer-scale MD engine: one atom per core, five-phase timestep.
//!
//! From the viewpoint of a core `c = g(i)` (paper Sec. III-A), a timestep
//! proceeds as:
//!
//! 1. **Candidate exchange** — multicast the atom's identity and position
//!    to the `(2b+1)`-square of neighboring cores and receive theirs.
//! 2. **Neighbor list** — compute `r²` against every candidate and keep
//!    those under `r²_cut` (no square root taken).
//! 3. **Embedding calculation and exchange** — compute the host density
//!    and embedding derivative `F′`, and exchange `F′` with neighbors.
//! 4. **Force calculation and integration** — evaluate `∂U/∂r_i` and
//!    advance the Verlet leap-frog state.
//! 5. **Atom swap** — occasionally remap atoms to preserve locality
//!    ([`crate::swap`]).
//!
//! Data movement is performed functionally (the schedule validated at
//! router level in `wse_fabric::multicast`), and every core is charged
//! cycles from the calibrated [`CostModel`]; per-step cycle samples are
//! recorded exactly like the paper's hardware-counter scratch buffer.
//! All tile arithmetic is f32, as on the WSE; energy reductions use f64.
//!
//! The per-core phase loops fan out over rayon's worker pool (sized by
//! `WAFER_MD_THREADS`); per-core results land in per-core buffers and
//! every statistic is assembled by a sequential **atom-id-order** fold,
//! so a trajectory is bit-identical at any thread count — and across
//! spatial shard decompositions (the timestep splits into
//! [`HaloEngine::refresh_forces`] / [`HaloEngine::advance_positions`]
//! around the ghost-exchange point, and a prescribed-assignment
//! constructor carves one global mapping into per-shard fabric strips;
//! see `wafer_md::shard`).

use md_core::eam::EamPotential;
use md_core::engine::{Engine, HaloEngine, Observables, StepSplit};
use md_core::materials::{Material, Species};
use md_core::soa::AtomsView;
use md_core::spline::LANES;
use md_core::units::FORCE_TO_ACCEL;
use md_core::vec3::{V3d, V3f, Vec3};
use rayon::prelude::*;
use wse_fabric::cost::CostModel;
use wse_fabric::geometry::Extent;

use crate::mapping::Mapping;
use crate::pbc::FoldSpec;

/// Configuration for a wafer MD run.
#[derive(Clone, Debug)]
pub struct WseMdConfig {
    /// Fabric extent (cores). Must have at least as many cores as atoms.
    pub extent: Extent,
    /// Timestep (ps). The paper uses 2 fs.
    pub dt: f64,
    /// Per-phase cycle cost model.
    pub cost_model: CostModel,
    /// Periodicity of the x and y dimensions (folded onto the fabric per
    /// Sec. III-E) and of z (free: the column projection keeps z-locality).
    pub periodic: [bool; 3],
    /// Simulation box lengths (Å); required for periodic dimensions.
    pub box_lengths: V3d,
    /// Force the neighborhood radius instead of deriving it from the
    /// assignment cost — the "neighborhood-size parameter" of the paper's
    /// controlled performance sweeps (Sec. IV-B, condition 2).
    pub b_override: Option<(i32, i32)>,
    /// Compute each (·)ᵢⱼ term once (for the lower core index) and return
    /// the partner's share through a neighborhood reduction — the
    /// Sec. VI-A-3 "force symmetry" optimization, which halves the
    /// per-interaction datapath cost (Table V row 4).
    pub symmetric_forces: bool,
    /// Re-examine candidates every k-th timestep instead of every step —
    /// the Sec. VI-A-2 "neighbor list" optimization (Table V row 3).
    /// 1 = the paper's measured baseline (rebuild every step).
    pub neighbor_reuse_interval: usize,
    /// Extra list reach (Å) beyond the cutoff when reuse is enabled, so
    /// atoms drifting between rebuilds stay covered.
    pub neighbor_skin: f64,
}

impl WseMdConfig {
    /// Open-boundary config with a fabric just large enough for `n` atoms
    /// plus `spare` fraction of empty tiles, shaped near-square.
    pub fn open_for(n_atoms: usize, spare: f64, dt: f64) -> Self {
        let cores = ((n_atoms as f64) * (1.0 + spare)).ceil() as usize;
        let w = (cores as f64).sqrt().ceil() as usize;
        let h = cores.div_ceil(w);
        Self {
            extent: Extent::new(w, h),
            dt,
            cost_model: CostModel::paper_baseline(),
            periodic: [false; 3],
            box_lengths: V3d::zero(),
            b_override: None,
            symmetric_forces: false,
            neighbor_reuse_interval: 1,
            neighbor_skin: 0.0,
        }
    }

    /// The paper's controlled performance configuration (Sec. IV-B,
    /// condition 2): a `side × side` fabric with the neighborhood
    /// radius forced to `b`, no integration (dt = 0, "atoms hold their
    /// position throughout performance measurement"), open boundaries,
    /// and no list reuse — the fixture behind the Table II fit. The
    /// single source for this config: the bench workload builders and
    /// the scenario subsystem both construct it here.
    pub fn controlled_grid(side: usize, b: i32) -> Self {
        Self {
            extent: Extent::new(side, side),
            dt: 0.0,
            cost_model: CostModel::paper_baseline(),
            periodic: [false; 3],
            box_lengths: V3d::zero(),
            b_override: Some((b, b)),
            symmetric_forces: false,
            neighbor_reuse_interval: 1,
            neighbor_skin: 0.0,
        }
    }
}

/// Positions for the controlled performance grid: a frozen `side ×
/// side` 2-D lattice at `spacing` Å, one atom per core of the matching
/// [`WseMdConfig::controlled_grid`] fabric. Single source for the
/// fixture's layout (used by the bench workload builders and the
/// scenario subsystem).
pub fn controlled_grid_positions(side: usize, spacing: f64) -> Vec<V3d> {
    (0..side * side)
        .map(|k| {
            V3d::new(
                (k % side) as f64 * spacing,
                (k / side) as f64 * spacing,
                0.0,
            )
        })
        .collect()
}

/// Per-step measurement record (one entry per timestep).
#[derive(Clone, Copy, Debug, Default)]
pub struct StepStats {
    /// Mean candidates received per occupied core.
    pub mean_candidates: f64,
    /// Mean accepted interactions per occupied core.
    pub mean_interactions: f64,
    /// Array-level cycles charged for this step (mean over occupied
    /// cores — local synchronization lets per-tile slack average out).
    pub cycles: f64,
    /// Worst per-core cycles (the interior-tile bound).
    pub max_cycles: f64,
    /// Total potential energy (eV).
    pub potential_energy: f64,
    /// Total kinetic energy (eV).
    pub kinetic_energy: f64,
}

/// The wafer-scale MD simulator.
pub struct WseMdSim {
    pub material: Material,
    pub config: WseMdConfig,
    pub mapping: Mapping,
    /// Neighborhood radius per fabric axis (cores).
    pub b: (i32, i32),
    /// Assignment cost at construction (Å).
    pub initial_cost: f64,
    potential: EamPotential<f32>,
    fold: FoldSpec,
    // ---- per-core SoA state (flat core index) ----
    occ: Vec<bool>,
    pos: Vec<V3f>,
    vel: Vec<V3f>,
    force: Vec<V3f>,
    rho: Vec<f32>,
    fprime: Vec<f32>,
    ncand: Vec<u32>,
    ninter: Vec<u32>,
    nlist: Vec<Vec<u32>>,
    pair_e: Vec<f32>,
    /// Per-core embedding energy (f64) from the last force refresh.
    embed_e: Vec<f64>,
    /// Per-core modeled cycle charge from the last force refresh.
    core_cycles: Vec<f64>,
    steps_since_rebuild: usize,
    lists_dirty: bool,
    /// Per-core positions at the last halo reference (ghost exchange),
    /// for the drift tracking of the halo contract.
    halo_ref: Vec<V3f>,
    // ---- atom-id-ordered f64 mirror columns behind the zero-copy
    // Engine views. Values are exactly the per-core f32 state cast to
    // f64 (resp. the per-atom accounting terms), refreshed whenever the
    // corresponding per-core state changes, so views always agree
    // bit-for-bit with the old gather-and-clone accessors.
    apx: Vec<f64>,
    apy: Vec<f64>,
    apz: Vec<f64>,
    avx: Vec<f64>,
    avy: Vec<f64>,
    avz: Vec<f64>,
    afx: Vec<f64>,
    afy: Vec<f64>,
    afz: Vec<f64>,
    /// Per-atom potential terms (pair + embedding) from the last refresh.
    atom_pot: Vec<f64>,
    /// Per-atom squared speeds (f32 norm² widened to f64).
    atom_v2: Vec<f64>,
    /// Per-atom modeled cycle charges from the last refresh.
    atom_cycles: Vec<f64>,
    /// Per-step cycle trace (array level), like the paper's scratch
    /// buffer of hardware clock samples.
    pub cycle_trace: Vec<f64>,
    pub step_count: u64,
    pub last_stats: StepStats,
}

impl WseMdSim {
    /// Build a simulator for `species` with the given positions (Å) and
    /// velocities (Å/ps).
    pub fn new(
        species: Species,
        positions: &[V3d],
        velocities: &[V3d],
        config: WseMdConfig,
    ) -> Self {
        // Map atoms by their *folded* projections so periodic dimensions
        // interleave on the wafer (Sec. III-E, Fig. 5).
        let fold = FoldSpec::new(config.periodic, config.box_lengths);
        let folded: Vec<V3d> = positions.iter().map(|p| fold.fold(*p)).collect();
        let mapping = Mapping::greedy(&folded, config.extent);
        Self::with_assignment(species, positions, velocities, config, mapping)
    }

    /// Build a simulator on a **prescribed** atom → core assignment
    /// instead of the greedy mapping — how a sharded driver carves one
    /// global mapping into per-shard fabric strips whose local
    /// neighborhoods (and therefore candidate counts, forces, and
    /// modeled cycles) reproduce the global run's bits exactly.
    /// Callers that prescribe a mapping normally also prescribe the
    /// neighborhood radius through [`WseMdConfig::b_override`].
    pub fn with_assignment(
        species: Species,
        positions: &[V3d],
        velocities: &[V3d],
        config: WseMdConfig,
        mapping: Mapping,
    ) -> Self {
        assert_eq!(positions.len(), velocities.len());
        assert_eq!(mapping.core_of_atom.len(), positions.len());
        assert_eq!(
            mapping.extent, config.extent,
            "mapping/config extent mismatch"
        );
        let material = Material::new(species);
        let potential: EamPotential<f32> = material.potential().cast();
        let fold = FoldSpec::new(config.periodic, config.box_lengths);
        let folded: Vec<V3d> = positions.iter().map(|p| fold.fold(*p)).collect();
        let cost = mapping.assignment_cost_angstroms(&folded);
        let (bx, by) = config.b_override.unwrap_or_else(|| {
            // "At runtime we set b so that every (2b+1)-wide square
            // neighborhood of fabric contains all interactions for the
            // atom at the neighborhood's center" (Sec. III-A): measure
            // the max per-axis fabric distance over actual interacting
            // pairs, plus a 2-core margin for thermal drift between swap
            // rounds (Fig. 9 holds the exchange distance near this level).
            let bbox = fold.as_box();
            let mut vl = md_core::neighbor::VerletList::new(material.cutoff, 0.0);
            vl.rebuild(positions, &bbox);
            let (mut need_x, mut need_y) = (1i32, 1i32);
            for (i, list) in vl.neighbors.iter().enumerate() {
                let ci = config.extent.coord(mapping.core_of_atom[i]);
                for &j in list {
                    let cj = config.extent.coord(mapping.core_of_atom[j]);
                    need_x = need_x.max((ci.x - cj.x).abs());
                    need_y = need_y.max((ci.y - cj.y).abs());
                }
            }
            (need_x + 2, need_y + 2)
        });

        let n_cores = config.extent.count();
        let n_atoms = positions.len();
        let mut sim = WseMdSim {
            material,
            mapping,
            b: (bx, by),
            initial_cost: cost,
            potential,
            fold,
            occ: vec![false; n_cores],
            pos: vec![V3f::new(0.0, 0.0, 0.0); n_cores],
            vel: vec![V3f::new(0.0, 0.0, 0.0); n_cores],
            force: vec![V3f::new(0.0, 0.0, 0.0); n_cores],
            rho: vec![0.0; n_cores],
            fprime: vec![0.0; n_cores],
            ncand: vec![0; n_cores],
            ninter: vec![0; n_cores],
            nlist: vec![Vec::new(); n_cores],
            pair_e: vec![0.0; n_cores],
            embed_e: vec![0.0; n_cores],
            core_cycles: vec![0.0; n_cores],
            steps_since_rebuild: 0,
            lists_dirty: true,
            halo_ref: vec![V3f::new(0.0, 0.0, 0.0); n_cores],
            apx: vec![0.0; n_atoms],
            apy: vec![0.0; n_atoms],
            apz: vec![0.0; n_atoms],
            avx: vec![0.0; n_atoms],
            avy: vec![0.0; n_atoms],
            avz: vec![0.0; n_atoms],
            afx: vec![0.0; n_atoms],
            afy: vec![0.0; n_atoms],
            afz: vec![0.0; n_atoms],
            atom_pot: vec![0.0; n_atoms],
            atom_v2: vec![0.0; n_atoms],
            atom_cycles: vec![0.0; n_atoms],
            cycle_trace: Vec::new(),
            step_count: 0,
            last_stats: StepStats::default(),
            config,
        };
        for (i, &core) in sim.mapping.core_of_atom.iter().enumerate() {
            sim.occ[core] = true;
            sim.pos[core] = positions[i].cast();
            sim.vel[core] = velocities[i].cast();
        }
        sim.halo_ref.clone_from(&sim.pos);
        sim.sync_motion_mirrors();
        sim
    }

    /// Refresh the atom-id-ordered position/velocity mirror columns (and
    /// the squared-speed cache) from the per-core f32 state. Each mirror
    /// entry is the exact widening the old gather accessors produced, so
    /// the borrowed views are bit-identical to the Vecs they replace.
    fn sync_motion_mirrors(&mut self) {
        for (i, &c) in self.mapping.core_of_atom.iter().enumerate() {
            let p: V3d = self.pos[c].cast();
            let v: V3d = self.vel[c].cast();
            self.apx[i] = p.x;
            self.apy[i] = p.y;
            self.apz[i] = p.z;
            self.avx[i] = v.x;
            self.avy[i] = v.y;
            self.avz[i] = v.z;
            self.atom_v2[i] = self.vel[c].norm_sq() as f64;
        }
    }

    /// Refresh the atom-id-ordered force, potential-term, and modeled
    /// cycle mirror columns from the per-core records of the last force
    /// refresh.
    fn sync_force_mirrors(&mut self) {
        for (i, &c) in self.mapping.core_of_atom.iter().enumerate() {
            let f: V3d = self.force[c].cast();
            self.afx[i] = f.x;
            self.afy[i] = f.y;
            self.afz[i] = f.z;
            self.atom_pot[i] = self.pair_e[c] as f64 + self.embed_e[c];
            self.atom_cycles[i] = self.core_cycles[c];
        }
    }

    pub fn n_atoms(&self) -> usize {
        self.mapping.occupied()
    }

    pub fn extent(&self) -> Extent {
        self.config.extent
    }

    /// Candidate count of a full interior neighborhood
    /// `(2bx+1)(2by+1) − 1`, the paper's n_candidate.
    pub fn interior_candidates(&self) -> usize {
        ((2 * self.b.0 + 1) * (2 * self.b.1 + 1) - 1) as usize
    }

    /// Advance one timestep; returns the step's statistics.
    ///
    /// Exactly equivalent to [`HaloEngine::refresh_forces`] followed by
    /// [`HaloEngine::advance_positions`] — the
    /// [`StepSplit::ForceThenMove`] halves a sharded driver interleaves
    /// with its ghost exchange.
    pub fn step(&mut self) -> StepStats {
        self.refresh_forces_impl();
        self.advance_positions_impl()
    }

    /// Phases 1–4a: candidate exchange, neighbor list, densities and
    /// embedding, force evaluation, and per-core cycle charging — all at
    /// the current positions, no motion.
    fn refresh_forces_impl(&mut self) {
        let extent = self.config.extent;
        let (w, h) = (extent.width as i32, extent.height as i32);
        let (bx, by) = self.b;
        let rc2 = self.potential.cutoff_sq();

        let reuse = self.config.neighbor_reuse_interval.max(1);
        let rebuild = self.lists_dirty || self.steps_since_rebuild >= reuse;
        if rebuild {
            self.steps_since_rebuild = 0;
            self.lists_dirty = false;
        }
        self.steps_since_rebuild += 1;
        let skin = if reuse > 1 {
            self.config.neighbor_skin as f32
        } else {
            0.0
        };
        let reach = self.potential.cutoff + skin;
        let reach2 = reach * reach;

        // ---- Phases 1–3a: candidate exchange, neighbor list, density.
        // On rebuild steps, candidates are scanned and the list rebuilt
        // with the skin reach; on reuse steps the retained list is
        // re-filtered against the true cutoff (positions are still
        // exchanged every step — only reject processing is skipped).
        // Split disjoint output borrows before the parallel loop.
        let occ = &self.occ;
        let pos = &self.pos;
        let potential = &self.potential;
        let fold = &self.fold;
        let ncand = &mut self.ncand;
        let ninter = &mut self.ninter;
        let rho = &mut self.rho;
        let pair_e = &mut self.pair_e;
        let nlist = &mut self.nlist;
        (ncand, ninter, rho, pair_e, nlist)
            .into_par_iter()
            .enumerate()
            .for_each(|(c, (ncand_c, ninter_c, rho_c, pair_c, list))| {
                *ninter_c = 0;
                *rho_c = 0.0;
                *pair_c = 0.0;
                if !occ[c] {
                    *ncand_c = 0;
                    list.clear();
                    return;
                }
                let my = pos[c];
                if rebuild {
                    list.clear();
                    *ncand_c = 0;
                    let cx = (c % extent.width) as i32;
                    let cy = (c / extent.width) as i32;
                    for dy in -by..=by {
                        let ny = cy + dy;
                        if ny < 0 || ny >= h {
                            continue;
                        }
                        let row = (ny as usize) * extent.width;
                        for dx in -bx..=bx {
                            let nx = cx + dx;
                            if nx < 0 || nx >= w || (dx == 0 && dy == 0) {
                                continue;
                            }
                            let n = row + nx as usize;
                            if !occ[n] {
                                continue;
                            }
                            *ncand_c += 1;
                            let d = fold.disp_f32(my, pos[n]);
                            let r2 = d.norm_sq();
                            if r2 < reach2 && r2 > 0.0 {
                                list.push(n as u32);
                            }
                        }
                    }
                }
                for &n in list.iter() {
                    let d = fold.disp_f32(my, pos[n as usize]);
                    let r2 = d.norm_sq();
                    if r2 < rc2 && r2 > 0.0 {
                        *ninter_c += 1;
                        let r = r2.sqrt();
                        let (phi, _) = potential.pair(r);
                        let (dens, _) = potential.density(r);
                        *rho_c += dens;
                        *pair_c += 0.5 * phi;
                    }
                }
            });

        // ---- Phase 3b: embedding energy and derivative, then the F'
        // exchange (functionally: F' is published in the fprime array).
        // The spline evaluations fan out over the pool in `LANES`-wide
        // batches of `embedding4` (each lane is the scalar expression on
        // its own input, so lane values equal per-core scalar calls
        // bit-for-bit); the per-core embedding energies are stored and
        // folded into the potential in **atom-id order** by
        // `advance_positions_impl`, so the energy is bit-identical at any
        // thread count and under spatial sharding.
        let occ = &self.occ;
        let rho = &self.rho;
        let potential = &self.potential;
        let fp_chunks: Vec<&mut [f32]> = self.fprime.chunks_mut(LANES).collect();
        let fe_chunks: Vec<&mut [f64]> = self.embed_e.chunks_mut(LANES).collect();
        (fp_chunks, fe_chunks).into_par_iter().enumerate().for_each(
            |(chunk, (fp_chunk, fe_chunk))| {
                let base = chunk * LANES;
                if fp_chunk.len() == LANES {
                    let mut rho4 = [0.0f32; LANES];
                    for (l, r) in rho4.iter_mut().enumerate() {
                        // Unoccupied cores hold rho = 0.0; their lanes
                        // are evaluated and discarded below.
                        *r = rho[base + l];
                    }
                    let (f4, fp4) = potential.embedding4(rho4);
                    for l in 0..LANES {
                        if occ[base + l] {
                            fp_chunk[l] = fp4[l];
                            fe_chunk[l] = f4[l] as f64;
                        } else {
                            fp_chunk[l] = 0.0;
                            fe_chunk[l] = 0.0;
                        }
                    }
                } else {
                    // Fabric-size tail (< LANES cores): scalar fallback.
                    for (l, (fp_c, fe_c)) in
                        fp_chunk.iter_mut().zip(fe_chunk.iter_mut()).enumerate()
                    {
                        if occ[base + l] {
                            let (f, fp) = potential.embedding(rho[base + l]);
                            *fp_c = fp;
                            *fe_c = f as f64;
                        } else {
                            *fp_c = 0.0;
                            *fe_c = 0.0;
                        }
                    }
                }
            },
        );

        // ---- Phase 4a: force evaluation from the gathered neighbor list
        // (skin entries are re-filtered against the true cutoff).
        let occ = &self.occ;
        let pos = &self.pos;
        let fprime = &self.fprime;
        let nlist = &self.nlist;
        let potential = &self.potential;
        let fold = &self.fold;
        if self.config.symmetric_forces {
            // Sec. VI-A-3: each (i, j) term is computed once by the
            // lower-index core and the partner's share (−f) returns via a
            // neighborhood reduction (`wse_fabric::collective`). The
            // functional equivalent accumulates both sides directly.
            for f in self.force.iter_mut() {
                *f = V3f::new(0.0, 0.0, 0.0);
            }
            for c in 0..self.force.len() {
                if !occ[c] {
                    continue;
                }
                let my = pos[c];
                let my_fp = fprime[c];
                for &n in &nlist[c] {
                    let n = n as usize;
                    if n <= c {
                        continue;
                    }
                    let d = fold.disp_f32(my, pos[n]);
                    let r2 = d.norm_sq();
                    if r2 >= rc2 || r2 == 0.0 {
                        continue;
                    }
                    let r = r2.sqrt();
                    let (_, dphi) = potential.pair(r);
                    let (_, drho) = potential.density(r);
                    let scalar = (my_fp + fprime[n]) * drho + dphi;
                    let f = d.scale(scalar / r);
                    self.force[c] += f;
                    self.force[n] -= f;
                }
            }
        } else {
            self.force.par_iter_mut().enumerate().for_each(|(c, out)| {
                *out = V3f::new(0.0, 0.0, 0.0);
                if !occ[c] {
                    return;
                }
                let my = pos[c];
                let my_fp = fprime[c];
                let mut acc = Vec3::new(0.0f32, 0.0, 0.0);
                for &n in &nlist[c] {
                    let n = n as usize;
                    let d = fold.disp_f32(my, pos[n]);
                    let r2 = d.norm_sq();
                    if r2 >= rc2 || r2 == 0.0 {
                        continue;
                    }
                    let r = r2.sqrt();
                    let (_, dphi) = potential.pair(r);
                    let (_, drho) = potential.density(r);
                    let scalar = (my_fp + fprime[n]) * drho + dphi;
                    acc += d.scale(scalar / r);
                }
                *out = acc;
            });
        }

        // ---- Measurement, part 1: charge cycles per core from the cost
        // model. Positions are multicast every step (mcast · ncand);
        // reject processing applies to scanned candidates on rebuild
        // steps and only to skin entries on reuse steps; the interaction
        // term halves under force symmetry (the partner's share arrives
        // via the reduction instead of being recomputed).
        let model = self.config.cost_model;
        let inter_scale = if self.config.symmetric_forces {
            0.5
        } else {
            1.0
        };
        let clock = wse_fabric::cost::WSE2_CLOCK_GHZ;
        let occ = &self.occ;
        let ncand = &self.ncand;
        let ninter = &self.ninter;
        let nlist = &self.nlist;
        self.core_cycles
            .par_iter_mut()
            .enumerate()
            .for_each(|(c, out)| {
                if !occ[c] {
                    *out = 0.0;
                    return;
                }
                let nc = ncand[c] as f64;
                let ni = ninter[c] as f64;
                let misses = if rebuild {
                    nc - ni
                } else {
                    (nlist[c].len() as f64 - ni).max(0.0)
                };
                let ns = model.mcast_ns * nc
                    + model.miss_ns * misses
                    + model.interaction_ns * ni * inter_scale
                    + model.fixed_ns;
                *out = ns * clock;
            });

        self.sync_force_mirrors();
    }

    /// Phase 4b plus measurement: Verlet leap-frog integration, then the
    /// canonical **atom-id-order** folds that assemble [`StepStats`].
    /// Every scalar here is a left-to-right fold of per-atom terms, so a
    /// sharded driver that gathers the same terms from shard owners and
    /// folds them in global atom-id order reproduces these bits exactly.
    fn advance_positions_impl(&mut self) -> StepStats {
        // ---- Phase 4b: Verlet leap-frog integration.
        let f2a = (FORCE_TO_ACCEL / self.material.mass) as f32;
        let dt = self.config.dt as f32;
        let occ = &self.occ;
        let force = &self.force;
        let fold = &self.fold;
        (&mut self.pos, &mut self.vel)
            .into_par_iter()
            .enumerate()
            .for_each(|(c, (p, v))| {
                if !occ[c] {
                    return;
                }
                *v += force[c].scale(f2a * dt);
                *p += v.scale(dt);
                *p = fold.wrap_f32(*p);
            });
        self.sync_motion_mirrors();

        // ---- Measurement, part 2: fold the per-core records into step
        // statistics in **atom-id order**. The integer counters are
        // order-free; the f64 sums (cycles, kinetic, potential) take
        // their bits from this canonical fold, which is what makes the
        // statistics reproducible bit-for-bit across thread counts *and*
        // across spatial shard decompositions (a sharded driver gathers
        // the same per-atom terms from shard owners and folds them in
        // the same global order).
        let n = self.n_atoms() as f64;
        let mut sum_cand = 0u64;
        let mut sum_inter = 0u64;
        let mut sum_cycles = 0.0f64;
        let mut max_cycles = 0.0f64;
        let mut kin = 0.0f64;
        let mut pot = 0.0f64;
        for &c in &self.mapping.core_of_atom {
            sum_cand += self.ncand[c] as u64;
            sum_inter += self.ninter[c] as u64;
            sum_cycles += self.core_cycles[c];
            max_cycles = max_cycles.max(self.core_cycles[c]);
            kin += self.vel[c].norm_sq() as f64;
            pot += self.pair_e[c] as f64 + self.embed_e[c];
        }
        let stats = StepStats {
            mean_candidates: sum_cand as f64 / n,
            mean_interactions: sum_inter as f64 / n,
            cycles: sum_cycles / n,
            max_cycles,
            potential_energy: pot,
            kinetic_energy: 0.5 * self.material.mass * md_core::units::MVV_TO_ENERGY * kin,
        };
        self.cycle_trace.push(stats.cycles);
        self.step_count += 1;
        self.last_stats = stats;
        stats
    }

    /// Run `n` timesteps, returning the mean array-level cycles per step.
    pub fn run(&mut self, n: usize) -> f64 {
        let mut total = 0.0;
        for _ in 0..n {
            total += self.step().cycles;
        }
        total / n as f64
    }

    /// Simulation rate implied by the last `n` steps' cycle trace,
    /// in timesteps per second at the WSE-2 clock.
    pub fn timesteps_per_second(&self, last_n: usize) -> f64 {
        let t = &self.cycle_trace;
        assert!(!t.is_empty());
        let n = last_n.min(t.len());
        let mean_cycles: f64 = t[t.len() - n..].iter().sum::<f64>() / n as f64;
        wse_fabric::cost::WSE2_CLOCK_GHZ * 1e9 / mean_cycles
    }

    /// Trailing-window length (steps) of the cycle trace behind the
    /// reported [`Observables::modeled_rate`]. Shared with the sharded
    /// driver so both report the same rate from the same trace.
    pub const RATE_WINDOW: usize = 100;

    /// The [`Observables::modeled_rate`] a cycle trace implies: the
    /// [`Self::RATE_WINDOW`]-step trailing mean, `None` when no step
    /// has run. Single source for the wafer engine and the sharded
    /// driver, whose reports must agree bit-for-bit.
    pub fn rate_from_cycle_trace(trace: &[f64]) -> Option<f64> {
        if trace.is_empty() {
            return None;
        }
        let n = Self::RATE_WINDOW.min(trace.len());
        let mean_cycles: f64 = trace[trace.len() - n..].iter().sum::<f64>() / n as f64;
        Some(wse_fabric::cost::WSE2_CLOCK_GHZ * 1e9 / mean_cycles)
    }

    /// Total energy (eV) from the last step's statistics.
    pub fn total_energy(&self) -> f64 {
        self.last_stats.potential_energy + self.last_stats.kinetic_energy
    }

    /// Extract positions indexed by atom id (f64).
    pub fn positions_by_atom(&self) -> Vec<V3d> {
        self.mapping
            .core_of_atom
            .iter()
            .map(|&c| self.pos[c].cast())
            .collect()
    }

    /// Extract velocities indexed by atom id (f64).
    pub fn velocities_by_atom(&self) -> Vec<V3d> {
        self.mapping
            .core_of_atom
            .iter()
            .map(|&c| self.vel[c].cast())
            .collect()
    }

    /// Extract per-atom forces from the last step (eV/Å, f64).
    pub fn forces_by_atom(&self) -> Vec<V3d> {
        self.mapping
            .core_of_atom
            .iter()
            .map(|&c| self.force[c].cast())
            .collect()
    }

    /// Current assignment cost (Å) of the evolving configuration — the
    /// Fig. 9 observable.
    pub fn assignment_cost(&self) -> f64 {
        let folded: Vec<V3d> = self
            .mapping
            .core_of_atom
            .iter()
            .map(|&c| self.fold.fold(self.pos[c].cast()))
            .collect();
        self.mapping
            .core_of_atom
            .iter()
            .zip(&folded)
            .map(|(&c, p)| {
                self.mapping
                    .displacement_angstroms(self.config.extent.coord(c), *p)
            })
            .fold(0.0, f64::max)
    }

    /// Position (f64) of whatever is stored on core `c` (meaningful only
    /// for occupied cores).
    pub(crate) fn position_at_core(&self, c: usize) -> V3d {
        self.pos[c].cast()
    }

    /// Invalidate retained neighbor lists (atoms moved between cores).
    pub(crate) fn mark_lists_dirty(&mut self) {
        self.lists_dirty = true;
    }

    // ---- crate-internal accessors for the swap module ----
    pub(crate) fn core_state(&mut self) -> CoreState<'_> {
        CoreState {
            occ: &mut self.occ,
            pos: &mut self.pos,
            vel: &mut self.vel,
            mapping: &mut self.mapping,
        }
    }

    pub(crate) fn fold_spec(&self) -> &FoldSpec {
        &self.fold
    }
}

impl Engine for WseMdSim {
    fn backend(&self) -> &'static str {
        "wse"
    }

    fn n_atoms(&self) -> usize {
        WseMdSim::n_atoms(self)
    }

    fn step(&mut self) {
        WseMdSim::step(self);
    }

    fn run_counters(&self) -> md_core::engine::RunCounters {
        md_core::engine::RunCounters {
            steps: self.step_count,
            ..Default::default()
        }
    }

    fn positions_view(&self) -> AtomsView<'_> {
        AtomsView::new(&self.apx, &self.apy, &self.apz)
    }

    fn velocities_view(&self) -> AtomsView<'_> {
        AtomsView::new(&self.avx, &self.avy, &self.avz)
    }

    fn forces_view(&self) -> AtomsView<'_> {
        AtomsView::new(&self.afx, &self.afy, &self.afz)
    }

    fn set_velocities(&mut self, velocities: &[V3d]) {
        assert_eq!(velocities.len(), self.mapping.core_of_atom.len());
        for (i, &core) in self.mapping.core_of_atom.iter().enumerate() {
            self.vel[core] = velocities[i].cast();
        }
        self.sync_motion_mirrors();
        // Keep the observables snapshot consistent with the state it
        // claims to describe: the baseline engine computes kinetic
        // energy live, so a stale last-step value here would make the
        // two backends disagree through the trait until the next step.
        let kin: f64 = self
            .mapping
            .core_of_atom
            .iter()
            .map(|&c| self.vel[c].norm_sq() as f64)
            .sum();
        self.last_stats.kinetic_energy =
            0.5 * self.material.mass * md_core::units::MVV_TO_ENERGY * kin;
    }

    fn observables(&self) -> Observables {
        let s = self.last_stats;
        Observables {
            potential_energy: s.potential_energy,
            mean_interactions: s.mean_interactions,
            mean_candidates: s.mean_candidates,
            modeled_cycles: Some(s.cycles),
            modeled_rate: Self::rate_from_cycle_trace(&self.cycle_trace),
            ..Default::default()
        }
        .with_temperature_from(s.kinetic_energy, WseMdSim::n_atoms(self))
    }
}

impl HaloEngine for WseMdSim {
    fn step_split(&self) -> StepSplit {
        StepSplit::ForceThenMove
    }

    fn advance_positions(&mut self) {
        self.advance_positions_impl();
    }

    fn refresh_forces(&mut self) {
        self.refresh_forces_impl();
    }

    fn overwrite_atom(&mut self, atom: usize, position: V3d, velocity: V3d) {
        let c = self.mapping.core_of_atom[atom];
        self.pos[c] = position.cast();
        self.vel[c] = velocity.cast();
        let p: V3d = self.pos[c].cast();
        let v: V3d = self.vel[c].cast();
        self.apx[atom] = p.x;
        self.apy[atom] = p.y;
        self.apz[atom] = p.z;
        self.avx[atom] = v.x;
        self.avy[atom] = v.y;
        self.avz[atom] = v.z;
        self.atom_v2[atom] = self.vel[c].norm_sq() as f64;
    }

    fn per_atom_potential_energies(&self) -> &[f64] {
        &self.atom_pot
    }

    fn per_atom_squared_speeds(&self) -> &[f64] {
        &self.atom_v2
    }

    fn per_atom_counts(&self) -> Vec<(u32, u32)> {
        self.mapping
            .core_of_atom
            .iter()
            .map(|&c| (self.ncand[c], self.ninter[c]))
            .collect()
    }

    fn per_atom_modeled_cycles(&self) -> Option<&[f64]> {
        Some(&self.atom_cycles)
    }

    fn halo_drift_limit_sq(&self) -> f64 {
        // Candidate sets are core-geometric and the atom → core mapping
        // is static under sharding, so ghost membership never decays
        // with drift — only the period (strip width) bounds reuse.
        f64::INFINITY
    }

    fn mark_halo_reference(&mut self) {
        self.halo_ref.clone_from(&self.pos);
    }

    fn halo_drift_sq(&self) -> f64 {
        self.mapping
            .core_of_atom
            .iter()
            .map(|&c| self.fold.disp_f32(self.halo_ref[c], self.pos[c]).norm_sq() as f64)
            .fold(0.0, f64::max)
    }
}

/// Mutable view over the per-core atom state used by the swap protocol.
pub(crate) struct CoreState<'a> {
    pub occ: &'a mut Vec<bool>,
    pub pos: &'a mut Vec<V3f>,
    pub vel: &'a mut Vec<V3f>,
    pub mapping: &'a mut Mapping,
}

impl CoreState<'_> {
    /// Swap the full atom state between cores `a` and `b`.
    pub fn swap(&mut self, a: usize, b: usize) {
        self.occ.swap(a, b);
        self.pos.swap(a, b);
        self.vel.swap(a, b);
        self.mapping.swap_cores(a, b);
    }
}
