//! Online atom-swap remapping (paper Sec. III-D, evaluated in Fig. 9).
//!
//! As atoms diffuse, the assignment cost C(g) grows and with it the
//! neighborhood radius the exchange would need. An occasional greedy
//! remapping counteracts this using two neighborhood exchanges:
//!
//! 1. cores exchange atom state and compute the change in assignment
//!    cost for every swap they could participate in;
//! 2. cores exchange the identifier of their best swap partner; a swap
//!    executes only on *mutual agreement*, each party overwriting its
//!    local atom state.
//!
//! Empty tiles participate as "atoms at infinity", giving the remapping
//! freedom to shift atoms into vacancies. A swap costs roughly one
//! timestep of wall-clock time (Sec. V-E).

use wse_fabric::geometry::Coord;

use crate::driver::WseMdSim;

/// Outcome of one swap round.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SwapReport {
    /// Number of mutually-agreed swaps executed.
    pub swaps: usize,
    /// Assignment cost (Å) after the round.
    pub cost_after: f64,
}

/// Local cost of holding atom state `pos` on core `c` (Å, max norm in
/// the projection plane); `None` (vacancy) costs nothing anywhere.
fn local_cost(sim: &WseMdSim, core: Coord, occupied: bool, folded_xy: (f64, f64)) -> f64 {
    if !occupied {
        return 0.0;
    }
    let (nx, ny) = sim.mapping.nominal_position(core);
    (folded_xy.0 - nx).abs().max((folded_xy.1 - ny).abs())
}

/// Run one greedy mutual-agreement swap round over the whole fabric,
/// considering the 8 mesh-adjacent partners of every core.
pub fn swap_round(sim: &mut WseMdSim) -> SwapReport {
    let extent = sim.extent();
    let n = extent.count();

    // Precompute every core's folded projection of its atom (if any).
    let folded: Vec<Option<(f64, f64)>> = (0..n)
        .map(|c| {
            let state = sim_core_snapshot(sim, c)?;
            Some(state)
        })
        .collect();

    // Phase 1+2: every core picks its best strictly-improving partner.
    let mut best: Vec<Option<(usize, f64)>> = vec![None; n];
    for c in 0..n {
        let cc = extent.coord(c);
        let my_occ = folded[c].is_some();
        let my_xy = folded[c].unwrap_or((0.0, 0.0));
        let my_here = local_cost(sim, cc, my_occ, my_xy);
        for (dx, dy) in NEIGHBORS_8 {
            let p = Coord::new(cc.x + dx, cc.y + dy);
            if !extent.contains(p) {
                continue;
            }
            let pf = extent.index(p);
            let their_occ = folded[pf].is_some();
            if !my_occ && !their_occ {
                continue; // two vacancies: nothing to swap
            }
            let their_xy = folded[pf].unwrap_or((0.0, 0.0));
            let their_there = local_cost(sim, p, their_occ, their_xy);
            let current = my_here.max(their_there);
            let swapped =
                local_cost(sim, p, my_occ, my_xy).max(local_cost(sim, cc, their_occ, their_xy));
            let gain = current - swapped;
            if gain > 1e-12 {
                match best[c] {
                    Some((_, g)) if g >= gain => {}
                    _ => best[c] = Some((pf, gain)),
                }
            }
        }
    }

    // Mutual agreement: execute a swap only when both parties chose each
    // other. Scanning c < partner makes each swap execute once.
    let mut swaps = 0;
    for c in 0..n {
        if let Some((p, _)) = best[c] {
            if p > c {
                if let Some((back, _)) = best[p] {
                    if back == c {
                        sim.core_state().swap(c, p);
                        swaps += 1;
                    }
                }
            }
        }
    }

    if swaps > 0 {
        // Atom state moved between cores: retained neighbor lists (core
        // indices) are stale.
        sim.mark_lists_dirty();
    }

    SwapReport {
        swaps,
        cost_after: sim.assignment_cost(),
    }
}

/// The 8 mesh-adjacent swap partners.
const NEIGHBORS_8: [(i32, i32); 8] = [
    (-1, -1),
    (0, -1),
    (1, -1),
    (-1, 0),
    (1, 0),
    (-1, 1),
    (0, 1),
    (1, 1),
];

/// Folded (x, y) projection of the atom on core `c`, or `None` if vacant.
fn sim_core_snapshot(sim: &WseMdSim, c: usize) -> Option<(f64, f64)> {
    sim.mapping.atom_of_core[c]?;
    let f = sim.fold_spec().fold(sim.position_at_core(c));
    Some((f.x, f.y))
}

/// Run `steps` timesteps with a swap round every `swap_interval` steps
/// (0 = never swap), recording the assignment cost after every step —
/// the Fig. 9 sweep primitive.
pub fn run_with_swaps(sim: &mut WseMdSim, steps: usize, swap_interval: usize) -> Vec<f64> {
    let mut costs = Vec::with_capacity(steps);
    for k in 0..steps {
        sim.step();
        if swap_interval > 0 && (k + 1) % swap_interval == 0 {
            swap_round(sim);
        }
        costs.push(sim.assignment_cost());
    }
    costs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{WseMdConfig, WseMdSim};
    use md_core::lattice::{Crystal, SlabSpec};
    use md_core::materials::Species;
    use md_core::thermostat;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_sim(spare: f64, temperature: f64) -> WseMdSim {
        let spec = SlabSpec {
            crystal: Crystal::Bcc,
            lattice_a: 3.304,
            nx: 6,
            ny: 6,
            nz: 2,
        };
        let pos = spec.generate();
        let mut rng = StdRng::seed_from_u64(11);
        let vel = thermostat::maxwell_boltzmann(&mut rng, pos.len(), 180.9479, temperature);
        let config = WseMdConfig::open_for(pos.len(), spare, 2e-3);
        WseMdSim::new(Species::Ta, &pos, &vel, config)
    }

    #[test]
    fn swaps_never_increase_assignment_cost() {
        let mut sim = small_sim(0.1, 600.0);
        for _ in 0..10 {
            sim.step();
        }
        let before = sim.assignment_cost();
        let report = swap_round(&mut sim);
        assert!(
            report.cost_after <= before + 1e-9,
            "cost rose from {before} to {}",
            report.cost_after
        );
    }

    #[test]
    fn swap_preserves_atom_population() {
        let mut sim = small_sim(0.15, 600.0);
        let n0 = sim.n_atoms();
        for _ in 0..5 {
            sim.step();
            swap_round(&mut sim);
        }
        assert_eq!(sim.n_atoms(), n0);
        // Mapping stays a consistent bijection.
        for (i, &c) in sim.mapping.core_of_atom.iter().enumerate() {
            assert_eq!(sim.mapping.atom_of_core[c], Some(i));
        }
    }

    #[test]
    fn repeated_swaps_reach_a_fixed_point() {
        let mut sim = small_sim(0.1, 900.0);
        for _ in 0..20 {
            sim.step();
        }
        let mut last = f64::INFINITY;
        for _ in 0..50 {
            let r = swap_round(&mut sim);
            assert!(r.cost_after <= last + 1e-9);
            if r.swaps == 0 {
                return; // converged
            }
            last = r.cost_after;
        }
        panic!("greedy swaps did not converge in 50 rounds");
    }

    #[test]
    fn frequent_swapping_controls_cost_growth() {
        // The Fig. 9 qualitative claim: with swaps every few steps the
        // assignment cost stays bounded while atoms diffuse; without
        // swaps it grows (here: stays no lower).
        let steps = 60;
        let mut no_swap = small_sim(0.1, 1200.0);
        let c_none = run_with_swaps(&mut no_swap, steps, 0);
        let mut with_swap = small_sim(0.1, 1200.0);
        let c_swap = run_with_swaps(&mut with_swap, steps, 5);
        let tail_none: f64 = c_none[steps - 10..].iter().sum::<f64>() / 10.0;
        let tail_swap: f64 = c_swap[steps - 10..].iter().sum::<f64>() / 10.0;
        assert!(
            tail_swap <= tail_none + 1e-9,
            "swapped cost {tail_swap} vs unswapped {tail_none}"
        );
    }

    #[test]
    fn vacancies_enable_swaps() {
        // With spare tiles, an atom next to a vacancy whose nominal cell
        // fits better should migrate into it.
        let mut sim = small_sim(0.3, 900.0);
        for _ in 0..15 {
            sim.step();
        }
        let mut total_swaps = 0;
        for _ in 0..10 {
            total_swaps += swap_round(&mut sim).swaps;
        }
        // Not guaranteed per-round, but across a hot run with 30% spare
        // capacity the protocol must find at least one beneficial swap.
        assert!(total_swaps > 0, "no swaps ever executed");
    }
}
