//! # wse-md — molecular dynamics, one atom per core
//!
//! The primary contribution of *Breaking the Molecular Dynamics Timescale
//! Barrier Using a Wafer-Scale System* (SC 2024), reimplemented on the
//! [`wse_fabric`] architectural simulator:
//!
//! * a locality-preserving atom → core [`mapping`] with assignment-cost
//!   accounting (Sec. III-A),
//! * the five-phase timestep [`driver`]: candidate exchange, on-tile
//!   neighbor list, embedding calculation + exchange, force evaluation and
//!   Verlet leap-frog integration in f32 (Secs. III-B/C),
//! * online greedy atom [`swap`] remapping under mutual agreement
//!   (Sec. III-D, Fig. 9),
//! * periodic-boundary folding onto the wafer ([`pbc`], Sec. III-E),
//! * the per-tile SRAM memory plan ([`worker`], 48 kB audit),
//! * cross-validation against the f64 reference ([`validate`]).
//!
//! ## Quickstart
//!
//! ```
//! use md_core::lattice::{Crystal, SlabSpec};
//! use md_core::materials::Species;
//! use md_core::vec3::V3d;
//! use wse_md::{WseMdConfig, WseMdSim};
//!
//! let spec = SlabSpec { crystal: Crystal::Bcc, lattice_a: 3.304, nx: 4, ny: 4, nz: 2 };
//! let positions = spec.generate();
//! let velocities = vec![V3d::zero(); positions.len()];
//! let config = WseMdConfig::open_for(positions.len(), 0.05, 2e-3);
//! let mut sim = WseMdSim::new(Species::Ta, &positions, &velocities, config);
//! let stats = sim.step();
//! assert!(stats.mean_interactions > 0.0);
//! ```

pub mod driver;
pub mod mapping;
pub mod pbc;
pub mod swap;
pub mod validate;
pub mod worker;

pub use driver::{controlled_grid_positions, StepStats, WseMdConfig, WseMdSim};
pub use mapping::Mapping;
pub use md_core::engine::{Engine, HaloEngine, Observables, StepSplit};
pub use pbc::FoldSpec;
pub use swap::{run_with_swaps, swap_round, SwapReport};
pub use validate::{validate_against_reference, ValidationReport};
pub use worker::WorkerMemoryPlan;
