//! Locality-preserving atom → core mapping (paper Sec. III-A).
//!
//! The array of cores is identified with the base of the simulation
//! domain: each core `c` has a nominal (x, y) position `P(c)`, and the
//! projection `P` flattens the domain onto its x-y plane. The assignment
//! cost `C(g)` of a mapping `g` is the worst-case coordinate displacement
//! between `P(r_i)` and `P(g(i))`; the fabric distance separating the
//! workers of interacting atoms is then bounded by `2·C(g) + r_cut`,
//! which determines the neighborhood-exchange radius `b`.
//!
//! The constructor is a greedy nearest-free-core assignment: each atom is
//! placed on the closest unoccupied core to its projection, searching
//! outward in Chebyshev rings. Empty cores are permitted (the paper
//! represents them as atoms at infinity) to leave freedom for the online
//! swap remapping.

use md_core::vec3::V3d;
use wse_fabric::geometry::{Coord, Extent};

/// An assignment of atoms to cores, one atom per core.
#[derive(Clone, Debug)]
pub struct Mapping {
    pub extent: Extent,
    /// Flat core index for every atom.
    pub core_of_atom: Vec<usize>,
    /// Inverse map: the atom on each core, if any.
    pub atom_of_core: Vec<Option<usize>>,
    /// Cores per Å along x and y (the projection scale).
    pub scale: (f64, f64),
    /// Spatial position projected onto core (0, 0).
    pub origin: (f64, f64),
}

impl Mapping {
    /// Assign `positions` to cores of `extent` by monotone
    /// capacity-constrained transport, one axis at a time. Panics if
    /// there are more atoms than cores.
    ///
    /// Atoms are y-sorted and placed at their nominal core row, spilling
    /// forward only when a row reaches its capacity of `width` atoms;
    /// within each row, x-sorted atoms are placed at their nominal
    /// column, spilling forward at capacity 1. Spill is resolved against
    /// the *local* surplus, so the displacement of any atom is bounded by
    /// the density fluctuation in its own neighborhood — unlike
    /// quantile/rank matching, where splitting a lattice tie-plane
    /// misplaces atoms by a fraction of the whole domain.
    pub fn greedy(positions: &[V3d], extent: Extent) -> Self {
        assert!(
            positions.len() <= extent.count(),
            "{} atoms exceed {} cores",
            positions.len(),
            extent.count()
        );
        assert!(!positions.is_empty(), "mapping of empty system");
        let n = positions.len();
        let (w, h) = (extent.width, extent.height);

        // Projection scale: span the atoms' x-y bounding box across the
        // fabric.
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for p in positions {
            x0 = x0.min(p.x);
            x1 = x1.max(p.x);
            y0 = y0.min(p.y);
            y1 = y1.max(p.y);
        }
        let sx = w as f64 / (x1 - x0).max(1e-9);
        let sy = h as f64 / (y1 - y0).max(1e-9);

        let mut m = Mapping {
            extent,
            core_of_atom: vec![usize::MAX; n],
            atom_of_core: vec![None; extent.count()],
            scale: (sx, sy),
            origin: (x0, y0),
        };

        // ---- Phase 1: rows. Atoms are grouped by identical y (lattice
        // tie-planes); each group is placed starting at its nominal row
        // and dealt across as many rows as capacity requires, *strided in
        // x* so every row receives an x-uniform subset. Splitting a
        // tie-plane contiguously instead would exile its x-suffix to the
        // wrong end of the next row.
        let mut by_y: Vec<usize> = (0..n).collect();
        by_y.sort_by(|&a, &b| {
            let (pa, pb) = (positions[a], positions[b]);
            pa.y.partial_cmp(&pb.y)
                .unwrap()
                .then(pa.x.partial_cmp(&pb.x).unwrap())
                .then(pa.z.partial_cmp(&pb.z).unwrap())
                .then(a.cmp(&b))
        });
        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); h];
        let mut cur_row = 0usize;
        let mut g_start = 0usize;
        while g_start < n {
            let y_val = positions[by_y[g_start]].y;
            let mut g_end = g_start + 1;
            while g_end < n && positions[by_y[g_end]].y == y_val {
                g_end += 1;
            }
            let members = &by_y[g_start..g_end]; // x-sorted within the tie
            let g = members.len();

            let nominal = (((y_val - y0) * sy).floor() as i64).clamp(0, h as i64 - 1) as usize;
            // Leave room above for the atoms still to come.
            let remaining = n - g_start;
            let cap = h - 1 - (remaining - 1) / w;
            cur_row = cur_row.max(nominal.min(cap));
            while rows[cur_row].len() == w {
                cur_row += 1;
            }

            // Row shares: fill from cur_row upward.
            let mut shares: Vec<(usize, usize)> = Vec::new(); // (row, count)
            {
                let mut left = g;
                let mut r = cur_row;
                while left > 0 {
                    let free = w - rows[r].len();
                    let take = free.min(left);
                    if take > 0 {
                        shares.push((r, take));
                        left -= take;
                    }
                    if left > 0 {
                        r += 1;
                    }
                }
            }

            // Deal members to shares by largest remaining fraction, so
            // each row's subset is x-uniform across the whole group.
            let totals: Vec<usize> = shares.iter().map(|&(_, c)| c).collect();
            let mut left: Vec<usize> = totals.clone();
            for &atom in members {
                let mut best = 0usize;
                let mut best_frac = -1.0f64;
                for (s, (&l, &t)) in left.iter().zip(&totals).enumerate() {
                    let frac = l as f64 / t as f64;
                    if frac > best_frac {
                        best_frac = frac;
                        best = s;
                    }
                }
                left[best] -= 1;
                rows[shares[best].0].push(atom);
            }
            g_start = g_end;
        }

        // ---- Phase 2: columns within each row, capacity 1.
        for (row, atoms) in rows.iter_mut().enumerate() {
            atoms.sort_by(|&a, &b| {
                let (pa, pb) = (positions[a], positions[b]);
                pa.x.partial_cmp(&pb.x)
                    .unwrap()
                    .then(pa.z.partial_cmp(&pb.z).unwrap())
                    .then(a.cmp(&b))
            });
            let k = atoms.len();
            let mut cur_col: i64 = -1;
            for (j, &i) in atoms.iter().enumerate() {
                let nominal = (((positions[i].x - x0) * sx).floor() as i64).clamp(0, w as i64 - 1);
                let cap = (w - 1 - (k - 1 - j)) as i64;
                let col = nominal.min(cap).max(cur_col + 1);
                cur_col = col;
                let flat = row * w + col as usize;
                debug_assert!(m.atom_of_core[flat].is_none());
                m.atom_of_core[flat] = Some(i);
                m.core_of_atom[i] = flat;
            }
        }
        m
    }

    /// Build a mapping from a **prescribed** assignment (one core per
    /// atom, within `extent`), carrying an existing projection
    /// `scale`/`origin` — how a sharded driver restricts a global
    /// mapping to one fabric strip while keeping every atom on the same
    /// relative core it occupies in the global run. Panics if two atoms
    /// share a core or a core index is out of range.
    pub fn from_assignment(
        core_of_atom: Vec<usize>,
        extent: Extent,
        scale: (f64, f64),
        origin: (f64, f64),
    ) -> Self {
        assert!(!core_of_atom.is_empty(), "mapping of empty system");
        let mut atom_of_core = vec![None; extent.count()];
        for (i, &flat) in core_of_atom.iter().enumerate() {
            assert!(flat < extent.count(), "core {flat} outside extent");
            assert!(
                atom_of_core[flat].is_none(),
                "core {flat} assigned to two atoms"
            );
            atom_of_core[flat] = Some(i);
        }
        Self {
            extent,
            core_of_atom,
            atom_of_core,
            scale,
            origin,
        }
    }

    /// The core whose cell contains the projection of `p` (clamped).
    pub fn nominal_core(&self, p: V3d) -> Coord {
        let cx = ((p.x - self.origin.0) * self.scale.0).floor() as i64;
        let cy = ((p.y - self.origin.1) * self.scale.1).floor() as i64;
        Coord::new(
            cx.clamp(0, self.extent.width as i64 - 1) as i32,
            cy.clamp(0, self.extent.height as i64 - 1) as i32,
        )
    }

    /// Nominal spatial (x, y) of a core — the center of its cell.
    pub fn nominal_position(&self, c: Coord) -> (f64, f64) {
        (
            self.origin.0 + (c.x as f64 + 0.5) / self.scale.0,
            self.origin.1 + (c.y as f64 + 0.5) / self.scale.1,
        )
    }

    /// Per-axis displacement (Å) between an atom's projection and its
    /// core's nominal position, in the max norm.
    pub fn displacement_angstroms(&self, core: Coord, p: V3d) -> f64 {
        let (nx, ny) = self.nominal_position(core);
        (p.x - nx).abs().max((p.y - ny).abs())
    }

    /// The assignment cost C(g): worst-case displacement in Å over all
    /// atoms (the quantity Fig. 9 tracks over time).
    pub fn assignment_cost_angstroms(&self, positions: &[V3d]) -> f64 {
        self.core_of_atom
            .iter()
            .enumerate()
            .map(|(i, &flat)| self.displacement_angstroms(self.extent.coord(flat), positions[i]))
            .fold(0.0, f64::max)
    }

    /// The neighborhood radius `b` needed so every `(2b+1)`-wide square
    /// contains all interactions for its center: fabric reach must cover
    /// `r_cut + 2·C(g)` Å along both axes.
    pub fn required_b(&self, rcut: f64, cost_angstroms: f64) -> usize {
        let reach = rcut + 2.0 * cost_angstroms;
        let bx = (reach * self.scale.0).ceil() as usize;
        let by = (reach * self.scale.1).ceil() as usize;
        bx.max(by).max(1)
    }

    /// Number of occupied cores.
    pub fn occupied(&self) -> usize {
        self.core_of_atom.len()
    }

    /// Fabric occupancy fraction.
    pub fn occupancy(&self) -> f64 {
        self.occupied() as f64 / self.extent.count() as f64
    }

    /// Swap the atoms (or atom/vacancy) on two cores, keeping both maps
    /// consistent. Used by the online remapping.
    pub fn swap_cores(&mut self, a: usize, b: usize) {
        let (aa, ab) = (self.atom_of_core[a], self.atom_of_core[b]);
        self.atom_of_core[a] = ab;
        self.atom_of_core[b] = aa;
        if let Some(i) = aa {
            self.core_of_atom[i] = b;
        }
        if let Some(i) = ab {
            self.core_of_atom[i] = a;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_core::lattice::{Crystal, SlabSpec};

    fn slab_positions() -> Vec<V3d> {
        SlabSpec {
            crystal: Crystal::Bcc,
            lattice_a: 3.304,
            nx: 8,
            ny: 8,
            nz: 3,
        }
        .generate()
    }

    #[test]
    fn mapping_is_a_bijection_onto_occupied_cores() {
        let pos = slab_positions(); // 384 atoms
        let extent = Extent::new(24, 20); // 480 cores
        let m = Mapping::greedy(&pos, extent);
        assert_eq!(m.core_of_atom.len(), pos.len());
        // Every atom on exactly one core; inverse map consistent.
        let mut seen = vec![false; extent.count()];
        for (i, &flat) in m.core_of_atom.iter().enumerate() {
            assert!(!seen[flat], "core {flat} assigned twice");
            seen[flat] = true;
            assert_eq!(m.atom_of_core[flat], Some(i));
        }
        let occupied = m.atom_of_core.iter().filter(|a| a.is_some()).count();
        assert_eq!(occupied, pos.len());
    }

    #[test]
    fn assignment_cost_is_modest_for_lattice_slabs() {
        let pos = slab_positions();
        let extent = Extent::new(24, 20);
        let m = Mapping::greedy(&pos, extent);
        let cost = m.assignment_cost_angstroms(&pos);
        // The slab is ~26.4 Å across; a locality-preserving mapping must
        // keep the worst displacement to a few Å (the paper's offline
        // optimum for the grain boundary was 2.1 Å + cutoff).
        assert!(cost < 6.0, "assignment cost {cost} Å");
    }

    #[test]
    fn exact_fit_mapping_uses_every_core() {
        let pos = slab_positions(); // 384 atoms
        let extent = Extent::new(24, 16); // exactly 384 cores
        let m = Mapping::greedy(&pos, extent);
        assert!(m.atom_of_core.iter().all(|a| a.is_some()));
        assert!((m.occupancy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn required_b_grows_with_cost_and_cutoff() {
        let pos = slab_positions();
        let m = Mapping::greedy(&pos, Extent::new(24, 20));
        let b0 = m.required_b(4.1, 0.0);
        let b1 = m.required_b(4.1, 2.0);
        let b2 = m.required_b(5.5, 2.0);
        assert!(b0 >= 1);
        assert!(b1 > b0);
        assert!(b2 > b1);
    }

    #[test]
    fn neighborhood_covers_all_interactions() {
        // The paper's central locality invariant: for every interacting
        // pair (r < rcut), the fabric distance between their workers is
        // at most the chosen b.
        let pos = slab_positions();
        let extent = Extent::new(24, 20);
        let m = Mapping::greedy(&pos, extent);
        let rcut = 4.1;
        let cost = m.assignment_cost_angstroms(&pos);
        let b = m.required_b(rcut, cost) as i32;
        for i in 0..pos.len() {
            for j in (i + 1)..pos.len() {
                if (pos[i] - pos[j]).norm() < rcut {
                    let ci = extent.coord(m.core_of_atom[i]);
                    let cj = extent.coord(m.core_of_atom[j]);
                    assert!(
                        ci.chebyshev(cj) <= b,
                        "atoms {i},{j} at fabric distance {} > b = {b}",
                        ci.chebyshev(cj)
                    );
                }
            }
        }
    }

    #[test]
    fn swap_cores_keeps_maps_consistent() {
        let pos = slab_positions();
        let extent = Extent::new(24, 20);
        let mut m = Mapping::greedy(&pos, extent);
        // Swap an occupied core with an empty one and another occupied one.
        let occupied_a = m.core_of_atom[0];
        let occupied_b = m.core_of_atom[7];
        let empty = (0..extent.count())
            .find(|&c| m.atom_of_core[c].is_none())
            .unwrap();
        m.swap_cores(occupied_a, empty);
        assert_eq!(m.atom_of_core[empty], Some(0));
        assert_eq!(m.atom_of_core[occupied_a], None);
        assert_eq!(m.core_of_atom[0], empty);
        m.swap_cores(empty, occupied_b);
        assert_eq!(m.atom_of_core[empty], Some(7));
        assert_eq!(m.core_of_atom[0], occupied_b);
        assert_eq!(m.core_of_atom[7], empty);
    }

    #[test]
    fn nominal_core_round_trip() {
        let pos = slab_positions();
        let m = Mapping::greedy(&pos, Extent::new(24, 20));
        for p in &pos {
            let c = m.nominal_core(*p);
            let (nx, ny) = m.nominal_position(c);
            // The nominal position of the nominal core is within one cell.
            assert!((p.x - nx).abs() <= 1.0 / m.scale.0);
            assert!((p.y - ny).abs() <= 1.0 / m.scale.1);
        }
    }
}
