//! Lennard-Jones potential and the small-system reference rates of
//! Sec. II-B.
//!
//! The paper motivates the timescale barrier with the strong-scaling
//! limit of a tiny 1k-atom LJ system: under 10k timesteps/s on an NVIDIA
//! V100 (kernel-launch bound) and ~25k timesteps/s on a dual-socket
//! 36-rank CPU (MPI bound). The potential itself is also the workspace's
//! second interatomic model, exercising the engine abstractions beyond
//! EAM.

use md_core::vec3::{Real, Vec3};

/// Truncated (energy-shifted) 12-6 Lennard-Jones potential.
#[derive(Clone, Copy, Debug)]
pub struct LjPotential<T> {
    pub epsilon: T,
    pub sigma: T,
    pub cutoff: T,
    shift: T,
}

impl<T: Real> LjPotential<T> {
    pub fn new(epsilon: T, sigma: T, cutoff: T) -> Self {
        let mut lj = Self {
            epsilon,
            sigma,
            cutoff,
            shift: T::ZERO,
        };
        lj.shift = lj.pair_energy_unshifted(cutoff);
        lj
    }

    /// The conventional LAMMPS benchmark setting: cutoff 2.5σ.
    pub fn reduced() -> Self {
        Self::new(T::ONE, T::ONE, T::from_f64(2.5))
    }

    fn pair_energy_unshifted(&self, r: T) -> T {
        let sr = self.sigma / r;
        let sr6 = sr.powi(6);
        T::from_f64(4.0) * self.epsilon * (sr6 * sr6 - sr6)
    }

    /// Pair energy at distance `r` (zero at and beyond the cutoff).
    pub fn pair_energy(&self, r: T) -> T {
        if r >= self.cutoff {
            T::ZERO
        } else {
            self.pair_energy_unshifted(r) - self.shift
        }
    }

    /// dφ/dr at distance `r`.
    pub fn pair_force_scalar(&self, r: T) -> T {
        if r >= self.cutoff {
            return T::ZERO;
        }
        let sr = self.sigma / r;
        let sr6 = sr.powi(6);
        // dφ/dr = −24 ε (2 (σ/r)^12 − (σ/r)^6) / r
        -T::from_f64(24.0) * self.epsilon * (T::TWO * sr6 * sr6 - sr6) / r
    }

    /// Total energy and forces over all pairs (O(N²); the LJ reference
    /// system is 1k atoms, where this is exact and cheap).
    pub fn compute(&self, positions: &[Vec3<T>]) -> (f64, Vec<Vec3<T>>) {
        let n = positions.len();
        let mut energy = 0.0f64;
        let mut forces = vec![Vec3::zero(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = positions[j] - positions[i];
                let r2 = d.norm_sq();
                if r2 >= self.cutoff * self.cutoff || r2 == T::ZERO {
                    continue;
                }
                let r = r2.sqrt();
                energy += self.pair_energy(r).to_f64();
                let scalar = self.pair_force_scalar(r);
                // f_i = −dU/dr_i = +φ'(r)·d/r (d = r_j − r_i)
                let f = d.scale(scalar / r);
                forces[i] += f;
                forces[j] -= f;
            }
        }
        (energy, forces)
    }
}

/// Modeled LJ timestepping rate (timesteps/s) for a small system on one
/// V100 GPU: kernel-launch bound at ~6 launches × ~18 µs per step plus a
/// small per-atom term. Reproduces "less than 10k timesteps/s" for 1k
/// atoms (Sec. II-B, citing the LAMMPS GPU benchmarks).
pub fn v100_lj_rate(n_atoms: f64) -> f64 {
    let launch = 6.0 * 18.0e-6;
    let per_atom = 2.0e-10;
    1.0 / (launch + per_atom * n_atoms)
}

/// Modeled LJ rate for a dual-socket Skylake node with 36 MPI ranks:
/// MPI-latency bound at small sizes. Reproduces "~25k timesteps/s" for 1k
/// atoms (Sec. II-B).
pub fn skylake36_lj_rate(n_atoms: f64) -> f64 {
    let mpi = 36.0e-6;
    let per_atom_per_rank = 1.2e-7 / 36.0;
    1.0 / (mpi + per_atom_per_rank * n_atoms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_core::vec3::V3d;

    #[test]
    fn minimum_is_at_two_to_the_sixth_sigma() {
        let lj = LjPotential::<f64>::reduced();
        let r_min = 2f64.powf(1.0 / 6.0);
        assert!(lj.pair_force_scalar(r_min).abs() < 1e-12);
        assert!(lj.pair_energy(r_min) < lj.pair_energy(r_min * 0.9));
        assert!(lj.pair_energy(r_min) < lj.pair_energy(r_min * 1.1));
        // Depth ≈ −ε (slightly reduced by the cutoff shift).
        assert!((lj.pair_energy(r_min) + 1.0).abs() < 0.02);
    }

    #[test]
    fn energy_is_continuous_at_cutoff() {
        let lj = LjPotential::<f64>::reduced();
        assert!(lj.pair_energy(2.4999).abs() < 1e-3);
        assert_eq!(lj.pair_energy(2.5), 0.0);
        assert_eq!(lj.pair_energy(3.0), 0.0);
    }

    #[test]
    fn forces_are_negative_gradient() {
        let lj = LjPotential::<f64>::reduced();
        let pos = vec![
            V3d::new(0.0, 0.0, 0.0),
            V3d::new(1.1, 0.2, -0.1),
            V3d::new(0.4, 1.3, 0.6),
            V3d::new(-0.9, 0.5, -1.0),
        ];
        let (_, forces) = lj.compute(&pos);
        let eps = 1e-7;
        for i in 0..pos.len() {
            for axis in 0..3 {
                let mut pp = pos.clone();
                let mut pm = pos.clone();
                let mut ap = pp[i].to_array();
                ap[axis] += eps;
                pp[i] = V3d::from_array(ap);
                let mut am = pm[i].to_array();
                am[axis] -= eps;
                pm[i] = V3d::from_array(am);
                let fd = -(lj.compute(&pp).0 - lj.compute(&pm).0) / (2.0 * eps);
                let f = forces[i].to_array()[axis];
                assert!((f - fd).abs() < 1e-5, "atom {i} axis {axis}: {f} vs {fd}");
            }
        }
    }

    #[test]
    fn net_force_is_zero() {
        let lj = LjPotential::<f64>::reduced();
        let pos: Vec<V3d> = (0..20)
            .map(|k| {
                let t = k as f64;
                V3d::new((t * 0.61).sin() * 2.0, (t * 0.37).cos() * 2.0, t * 0.11)
            })
            .collect();
        let (_, forces) = lj.compute(&pos);
        let net: V3d = forces.iter().copied().sum();
        // Antisymmetric by construction; the residual is summation
        // roundoff, so compare against the force scale.
        let scale: f64 = forces.iter().map(|f| f.norm()).fold(1.0, f64::max);
        assert!(net.norm() < 1e-12 * scale, "net {net:?} vs scale {scale}");
    }

    #[test]
    fn small_system_rates_match_section_iib() {
        // "the max timestepping rate ... was reported at less than 10k
        // timesteps/s" (V100, 1k atoms) and "~25k timesteps/s" (CPU).
        let gpu = v100_lj_rate(1000.0);
        assert!(gpu < 10_000.0 && gpu > 5_000.0, "V100 rate {gpu}");
        let cpu = skylake36_lj_rate(1000.0);
        assert!((20_000.0..30_000.0).contains(&cpu), "CPU rate {cpu}");
        // CPU beats GPU at this size (the paper's observation).
        assert!(cpu > gpu);
    }

    #[test]
    fn rates_degrade_gracefully_with_size() {
        assert!(v100_lj_rate(100_000.0) < v100_lj_rate(1_000.0));
        assert!(skylake36_lj_rate(100_000.0) < skylake36_lj_rate(1_000.0));
    }
}
