//! LAMMPS-style reference EAM engine: f64, cell-binned Verlet lists with
//! skin-based reuse, rayon-parallel force evaluation over
//! structure-of-arrays columns.
//!
//! This is the production-code baseline the paper compares against
//! (Sec. IV-B): it reuses neighbor lists across timesteps (the very
//! optimization Table V projects for the WSE), integrates in double
//! precision, and serves as the correctness oracle for the wafer engine.
//!
//! The force/energy passes run on rayon's worker pool (sized by
//! `WAFER_MD_THREADS`). Per-atom results are written to per-atom slots
//! in atom order and the scalar energy accumulation is a sequential
//! in-order fold over per-atom terms, so trajectories are bit-identical
//! at any thread count — and, because the per-atom terms are pure
//! functions of each atom's neighborhood enumerated in canonical
//! (ascending-index) order, across spatial shard decompositions too
//! (the `HaloEngine` contract; see `wafer_md::shard`). Audit note for
//! the chunked executor: the workspace no longer has any two-argument
//! `reduce` call sites — both engines assemble statistics through
//! sequential atom-id-order folds.
//!
//! # Vectorized inner loops, fixed reduction tree
//!
//! The hot spline evaluations run four neighbors at a time
//! ([`md_core::spline::Spline::eval4`] / `eval_both4`): each atom's
//! passing neighbors are buffered in list order into `[f64; 4]` lanes,
//! evaluated as a batch, and folded into the per-atom accumulator lane
//! 0, 1, 2, 3 — exactly the order the scalar loop would have added
//! them. Per-lane spline math is the scalar expression verbatim, so
//! every accumulator sees the identical addend sequence and the result
//! is bit-identical to the scalar path at every lane tail (n % 4),
//! thread count, shard count, and ghost period.
//! [`BaselineEngine::compute_forces_scalar`] keeps the scalar loops
//! compiled as the test oracle for that claim.

use md_core::engine::{Engine, HaloEngine, Observables, StepSplit};
use md_core::integrate;
use md_core::neighbor::VerletList;
use md_core::soa::AtomsView;
use md_core::spline::LANES;
use md_core::system::System;
use md_core::vec3::{V3d, Vec3};
use rayon::prelude::*;

/// Reference MD engine wrapping a [`System`].
pub struct BaselineEngine {
    pub system: System,
    vlist: VerletList,
    /// Timestep (ps).
    pub dt: f64,
    /// Timesteps advanced.
    pub step_count: u64,
    /// Potential energy after the last force evaluation (eV).
    pub potential_energy: f64,
    /// Per-atom potential-energy terms (pair half-sum + embedding) from
    /// the last force evaluation; `potential_energy` is their in-order
    /// fold (the canonical per-atom accounting of the halo contract).
    per_atom_pot: Vec<f64>,
    /// Per-atom squared speeds, refreshed at every velocity change so
    /// the halo gather path can borrow instead of allocating.
    v2: Vec<f64>,
    /// Scratch columns for the density pass (host density, pair energy).
    scratch_rho: Vec<f64>,
    scratch_pair: Vec<f64>,
    /// Embedding derivative F'(ρ_i) per atom from the last evaluation.
    fprime: Vec<f64>,
    /// Positions at the last halo reference (ghost exchange), for the
    /// skin-validity drift check of the halo contract. SoA columns
    /// mirroring the particle store, so the per-step drift scan is a
    /// branch-free column sweep and re-marking copies slices instead of
    /// allocating.
    halo_ref_x: Vec<f64>,
    halo_ref_y: Vec<f64>,
    halo_ref_z: Vec<f64>,
}

impl BaselineEngine {
    /// Standard LAMMPS-like skin distance (Å).
    pub const DEFAULT_SKIN: f64 = 1.0;

    pub fn new(system: System, dt: f64) -> Self {
        let cutoff = system.potential.cutoff;
        let n = system.len();
        let halo_ref_x = system.atoms.x.clone();
        let halo_ref_y = system.atoms.y.clone();
        let halo_ref_z = system.atoms.z.clone();
        let mut e = Self {
            system,
            vlist: VerletList::new(cutoff, Self::DEFAULT_SKIN),
            dt,
            step_count: 0,
            potential_energy: 0.0,
            per_atom_pot: vec![0.0; n],
            v2: vec![0.0; n],
            scratch_rho: vec![0.0; n],
            scratch_pair: vec![0.0; n],
            fprime: vec![0.0; n],
            halo_ref_x,
            halo_ref_y,
            halo_ref_z,
        };
        e.vlist.rebuild(&e.system.positions(), &e.system.bbox);
        e.compute_forces();
        e.refresh_v2();
        e
    }

    /// Evaluate EAM forces and potential energy with the current lists.
    /// Two rayon passes over the SoA columns: densities, then forces
    /// (paper Eq. 4 layout), each with the f64x4 lane batching described
    /// in the module docs.
    pub fn compute_forces(&mut self) {
        let pot = &self.system.potential;
        let bbox = self.system.bbox;
        let lists = &self.vlist.neighbors;
        let rc2 = pot.cutoff * pot.cutoff;
        let atoms = &mut self.system.atoms;
        let (x, y, z) = (&atoms.x, &atoms.y, &atoms.z);
        let n = x.len();
        let at = |i: usize| V3d::new(x[i], y[i], z[i]);

        // Pass 1: densities and pair energy (half-counted per atom),
        // four passing neighbors per spline batch.
        self.scratch_rho.resize(n, 0.0);
        self.scratch_pair.resize(n, 0.0);
        (&mut self.scratch_rho[..], &mut self.scratch_pair[..])
            .into_par_iter()
            .enumerate()
            .for_each(|(i, (rho_out, pair_out))| {
                let mut rho = 0.0;
                let mut pair = 0.0;
                let mut rbuf = [0.0f64; LANES];
                let mut lanes = 0;
                for &j in &lists[i] {
                    let d = bbox.displacement(at(i), at(j));
                    let r2 = d.norm_sq();
                    if r2 >= rc2 || r2 == 0.0 {
                        continue; // in the skin, not in the cutoff
                    }
                    rbuf[lanes] = r2.sqrt();
                    lanes += 1;
                    if lanes == LANES {
                        let rho4 = pot.rho.eval4(rbuf);
                        let phi4 = pot.phi.eval4(rbuf);
                        for l in 0..LANES {
                            rho += rho4[l];
                            pair += 0.5 * phi4[l];
                        }
                        lanes = 0;
                    }
                }
                for &r in &rbuf[..lanes] {
                    rho += pot.rho.eval(r);
                    pair += 0.5 * pot.phi.eval(r);
                }
                *rho_out = rho;
                *pair_out = pair;
            });

        // Embedding: a sequential atom-id-order fold (the canonical
        // accounting every sharded gather reproduces).
        let mut energy = 0.0;
        self.per_atom_pot.resize(n, 0.0);
        self.fprime.resize(n, 0.0);
        for i in 0..n {
            let (f, fp) = pot.embed.eval_both(self.scratch_rho[i]);
            let e = self.scratch_pair[i] + f;
            energy += e;
            self.per_atom_pot[i] = e;
            self.fprime[i] = fp;
        }

        // Pass 2: forces, written straight into the force columns.
        let fprime = &self.fprime;
        (&mut atoms.fx[..], &mut atoms.fy[..], &mut atoms.fz[..])
            .into_par_iter()
            .enumerate()
            .for_each(|(i, (fx, fy, fz))| {
                let mut acc = Vec3::zero();
                let fpi = fprime[i];
                let mut rbuf = [0.0f64; LANES];
                let mut dbuf = [V3d::zero(); LANES];
                let mut fpj = [0.0f64; LANES];
                let mut lanes = 0;
                for &j in &lists[i] {
                    let d = bbox.displacement(at(i), at(j));
                    let r2 = d.norm_sq();
                    if r2 >= rc2 || r2 == 0.0 {
                        continue;
                    }
                    rbuf[lanes] = r2.sqrt();
                    dbuf[lanes] = d;
                    fpj[lanes] = fprime[j];
                    lanes += 1;
                    if lanes == LANES {
                        let (_, dphi4) = pot.phi.eval_both4(rbuf);
                        let (_, drho4) = pot.rho.eval_both4(rbuf);
                        for l in 0..LANES {
                            let scalar = (fpi + fpj[l]) * drho4[l] + dphi4[l];
                            acc += dbuf[l].scale(scalar / rbuf[l]);
                        }
                        lanes = 0;
                    }
                }
                for l in 0..lanes {
                    let r = rbuf[l];
                    let dphi = pot.phi.eval_deriv(r);
                    let drho = pot.rho.eval_deriv(r);
                    let scalar = (fpi + fpj[l]) * drho + dphi;
                    acc += dbuf[l].scale(scalar / r);
                }
                *fx = acc.x;
                *fy = acc.y;
                *fz = acc.z;
            });
        self.potential_energy = energy;
    }

    /// The pre-vectorization scalar force loops, kept compiled as the
    /// bitwise test oracle for the f64x4 path. Returns
    /// `(potential_energy, per_atom_pot, forces)` computed from the
    /// current positions and neighbor lists without touching engine
    /// state.
    pub fn compute_forces_scalar(&self) -> (f64, Vec<f64>, Vec<V3d>) {
        let pot = &self.system.potential;
        let bbox = self.system.bbox;
        let lists = &self.vlist.neighbors;
        let rc2 = pot.cutoff * pot.cutoff;
        let atoms = &self.system.atoms;
        let n = atoms.len();
        let at = |i: usize| atoms.position(i);

        let per_atom: Vec<(f64, f64)> = (0..n)
            .into_par_iter()
            .map(|i| {
                let mut rho = 0.0;
                let mut pair = 0.0;
                for &j in &lists[i] {
                    let d = bbox.displacement(at(i), at(j));
                    let r2 = d.norm_sq();
                    if r2 >= rc2 || r2 == 0.0 {
                        continue;
                    }
                    let r = r2.sqrt();
                    rho += pot.rho.eval(r);
                    pair += 0.5 * pot.phi.eval(r);
                }
                (rho, pair)
            })
            .collect();

        let mut fprime = vec![0.0f64; n];
        let mut energy = 0.0;
        let mut per_atom_pot = vec![0.0f64; n];
        for (i, (rho, pair)) in per_atom.iter().enumerate() {
            let (f, fp) = pot.embed.eval_both(*rho);
            let e = pair + f;
            energy += e;
            per_atom_pot[i] = e;
            fprime[i] = fp;
        }

        let fprime = &fprime;
        let forces: Vec<V3d> = (0..n)
            .into_par_iter()
            .map(|i| {
                let mut acc = Vec3::zero();
                for &j in &lists[i] {
                    let d = bbox.displacement(at(i), at(j));
                    let r2 = d.norm_sq();
                    if r2 >= rc2 || r2 == 0.0 {
                        continue;
                    }
                    let r = r2.sqrt();
                    let dphi = pot.phi.eval_deriv(r);
                    let drho = pot.rho.eval_deriv(r);
                    let scalar = (fprime[i] + fprime[j]) * drho + dphi;
                    acc += d.scale(scalar / r);
                }
                acc
            })
            .collect();
        (energy, per_atom_pot, forces)
    }

    /// Advance one timestep (list update → kick/drift → new forces).
    ///
    /// Exactly equivalent to [`HaloEngine::advance_positions`] followed
    /// by [`HaloEngine::refresh_forces`] — the [`StepSplit::MoveThenForce`]
    /// halves a sharded driver interleaves with its ghost exchange.
    pub fn step(&mut self) {
        self.advance_positions_impl();
        self.refresh_forces_impl();
    }

    /// Kick/drift with the stored forces (the move half of the step).
    fn advance_positions_impl(&mut self) {
        self.vlist
            .update(&self.system.positions(), &self.system.bbox);
        // Forces correspond to current positions (computed at the end of
        // the previous step, or in new()).
        let mass = self.system.material.mass;
        integrate::leapfrog_step_soa(&mut self.system.atoms, mass, self.dt);
        if self.system.bbox.periodic.iter().any(|&p| p) {
            let bbox = self.system.bbox;
            let atoms = &mut self.system.atoms;
            for i in 0..atoms.len() {
                let p = bbox.wrap(atoms.position(i));
                atoms.set_position(i, p);
            }
        }
        self.refresh_v2();
        self.step_count += 1;
    }

    /// Neighbor-list update + force evaluation at the current positions
    /// (the force half of the step).
    fn refresh_forces_impl(&mut self) {
        self.vlist
            .update(&self.system.positions(), &self.system.bbox);
        self.compute_forces();
    }

    /// Recompute the squared-speed cache from the velocity columns, in
    /// the exact expression of the kinetic-energy sum.
    fn refresh_v2(&mut self) {
        let atoms = &self.system.atoms;
        self.v2.resize(atoms.len(), 0.0);
        for i in 0..atoms.len() {
            self.v2[i] = atoms.velocity(i).norm_sq();
        }
    }

    /// Run `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    pub fn total_energy(&self) -> f64 {
        self.potential_energy + self.system.kinetic_energy()
    }

    /// Neighbor-list rebuilds since construction — the reuse statistic
    /// that motivates the paper's Table V "Neighbor list" projection.
    pub fn list_rebuilds(&self) -> usize {
        self.vlist.rebuild_count
    }

    /// Mean interactions per atom in the current (cutoff-filtered) sense.
    pub fn mean_interactions(&self) -> f64 {
        let pot = &self.system.potential;
        let rc2 = pot.cutoff * pot.cutoff;
        let atoms = &self.system.atoms;
        let total: usize = (0..atoms.len())
            .into_par_iter()
            .map(|i| {
                self.vlist.neighbors[i]
                    .iter()
                    .filter(|&&j| {
                        let d = self
                            .system
                            .bbox
                            .displacement(atoms.position(i), atoms.position(j));
                        let r2 = d.norm_sq();
                        r2 < rc2 && r2 > 0.0
                    })
                    .count()
            })
            .sum();
        total as f64 / atoms.len().max(1) as f64
    }
}

impl Engine for BaselineEngine {
    fn backend(&self) -> &'static str {
        "baseline"
    }

    fn n_atoms(&self) -> usize {
        self.system.len()
    }

    fn step(&mut self) {
        BaselineEngine::step(self);
    }

    fn run_counters(&self) -> md_core::engine::RunCounters {
        md_core::engine::RunCounters {
            steps: self.step_count,
            ..Default::default()
        }
    }

    fn positions_view(&self) -> AtomsView<'_> {
        self.system.atoms.positions()
    }

    fn velocities_view(&self) -> AtomsView<'_> {
        self.system.atoms.velocities()
    }

    fn forces_view(&self) -> AtomsView<'_> {
        self.system.atoms.forces()
    }

    fn set_velocities(&mut self, velocities: &[V3d]) {
        assert_eq!(velocities.len(), self.system.len());
        self.system.atoms.set_velocities(velocities);
        self.refresh_v2();
    }

    fn observables(&self) -> Observables {
        let candidate_total: usize = self.vlist.neighbors.iter().map(|l| l.len()).sum();
        Observables {
            potential_energy: self.potential_energy,
            mean_interactions: self.mean_interactions(),
            mean_candidates: candidate_total as f64 / self.system.len().max(1) as f64,
            modeled_cycles: None,
            modeled_rate: None,
            ..Default::default()
        }
        .with_temperature_from(self.system.kinetic_energy(), self.system.len())
    }
}

impl HaloEngine for BaselineEngine {
    fn step_split(&self) -> StepSplit {
        StepSplit::MoveThenForce
    }

    fn advance_positions(&mut self) {
        self.advance_positions_impl();
    }

    fn refresh_forces(&mut self) {
        self.refresh_forces_impl();
    }

    fn overwrite_atom(&mut self, atom: usize, position: V3d, velocity: V3d) {
        self.system.atoms.set_position(atom, position);
        self.system.atoms.set_velocity(atom, velocity);
        self.v2[atom] = velocity.norm_sq();
    }

    fn per_atom_potential_energies(&self) -> &[f64] {
        &self.per_atom_pot
    }

    fn per_atom_squared_speeds(&self) -> &[f64] {
        &self.v2
    }

    fn per_atom_counts(&self) -> Vec<(u32, u32)> {
        let pot = &self.system.potential;
        let rc2 = pot.cutoff * pot.cutoff;
        let atoms = &self.system.atoms;
        (0..atoms.len())
            .into_par_iter()
            .map(|i| {
                let inter = self.vlist.neighbors[i]
                    .iter()
                    .filter(|&&j| {
                        let d = self
                            .system
                            .bbox
                            .displacement(atoms.position(i), atoms.position(j));
                        let r2 = d.norm_sq();
                        r2 < rc2 && r2 > 0.0
                    })
                    .count();
                (self.vlist.neighbors[i].len() as u32, inter as u32)
            })
            .collect()
    }

    fn per_atom_modeled_cycles(&self) -> Option<&[f64]> {
        None
    }

    fn halo_drift_limit_sq(&self) -> f64 {
        // The Verlet-list reuse criterion: past half the skin, a pair
        // outside the retained list can come under the cutoff — and a
        // halo membership computed at the reference positions can stop
        // covering the shard's force neighborhoods.
        (self.vlist.skin / 2.0) * (self.vlist.skin / 2.0)
    }

    fn mark_halo_reference(&mut self) {
        let atoms = &self.system.atoms;
        self.halo_ref_x.clear();
        self.halo_ref_x.extend_from_slice(&atoms.x);
        self.halo_ref_y.clear();
        self.halo_ref_y.extend_from_slice(&atoms.y);
        self.halo_ref_z.clear();
        self.halo_ref_z.extend_from_slice(&atoms.z);
    }

    fn halo_drift_sq(&self) -> f64 {
        let atoms = &self.system.atoms;
        let bbox = &self.system.bbox;
        if bbox.periodic == [false; 3] {
            // Open box: displacement degenerates to a subtraction, so
            // the scan is a contiguous column sweep (max is
            // order-independent — no reduction-tree contract needed).
            let mut m = 0.0f64;
            for i in 0..atoms.len() {
                let dx = atoms.x[i] - self.halo_ref_x[i];
                let dy = atoms.y[i] - self.halo_ref_y[i];
                let dz = atoms.z[i] - self.halo_ref_z[i];
                m = m.max(dx * dx + dy * dy + dz * dz);
            }
            return m;
        }
        (0..atoms.len())
            .map(|i| {
                let r = V3d::new(self.halo_ref_x[i], self.halo_ref_y[i], self.halo_ref_z[i]);
                bbox.displacement(r, atoms.position(i)).norm_sq()
            })
            .fold(0.0, f64::max)
    }
}

/// Convenience: build an engine from a thermalized system.
pub fn equilibrated_engine(
    mut system: System,
    temperature: f64,
    dt: f64,
    warmup_steps: usize,
    seed: u64,
) -> BaselineEngine {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let velocities = md_core::thermostat::maxwell_boltzmann(
        &mut rng,
        system.len(),
        system.material.mass,
        temperature,
    );
    system.set_velocities(&velocities);
    let mass = system.material.mass;
    let mut engine = BaselineEngine::new(system, dt);
    for k in 0..warmup_steps {
        engine.step();
        if k % 10 == 0 {
            // Velocity-rescale thermostat during warm-up only.
            let mut v = engine.system.velocities().to_vec();
            md_core::thermostat::rescale_to_temperature(&mut v, mass, temperature);
            Engine::set_velocities(&mut engine, &v);
        }
    }
    engine
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_core::eam::open_disp;
    use md_core::lattice::SlabSpec;
    use md_core::materials::{Material, Species};
    use md_core::system::Box3;

    fn small_system(species: Species, nx: usize, nz: usize) -> System {
        let m = Material::new(species);
        System::from_slab(
            species,
            SlabSpec {
                crystal: m.crystal,
                lattice_a: m.lattice_a,
                nx,
                ny: nx,
                nz,
            },
        )
    }

    #[test]
    fn forces_match_bruteforce_oracle() {
        let mut sys = small_system(Species::Cu, 3, 2);
        // Perturb to break symmetry.
        for k in 0..sys.len() {
            let s = (k as f64 * 0.7).sin() * 0.05;
            let p = sys.atoms.position(k) + V3d::new(s, -s, 0.5 * s);
            sys.atoms.set_position(k, p);
        }
        let engine = BaselineEngine::new(sys.clone(), 2e-3);
        let oracle = sys
            .potential
            .compute_bruteforce(&sys.positions().to_vec(), open_disp);
        assert!((engine.potential_energy - oracle.potential_energy).abs() < 1e-8);
        for i in 0..sys.len() {
            assert!(
                (engine.system.atoms.force(i) - oracle.forces[i]).norm() < 1e-9,
                "atom {i}"
            );
        }
    }

    #[test]
    fn vectorized_forces_are_bit_identical_to_scalar_oracle() {
        // Cover every lane tail: neighbor counts vary per atom, and the
        // engine sizes below produce lists with n % 4 ∈ {0,1,2,3}.
        for (species, nx, nz) in [(Species::Cu, 3, 2), (Species::Ta, 4, 2), (Species::W, 3, 3)] {
            let sys = small_system(species, nx, nz);
            let mut engine = equilibrated_engine(sys, 290.0, 2e-3, 5, 11);
            engine.run(3);
            let (energy, pot, forces) = engine.compute_forces_scalar();
            assert_eq!(
                energy.to_bits(),
                engine.potential_energy.to_bits(),
                "{species:?} energy"
            );
            for i in 0..engine.system.len() {
                assert_eq!(
                    pot[i].to_bits(),
                    engine.per_atom_pot[i].to_bits(),
                    "{species:?} atom {i} pot"
                );
                let f = engine.system.atoms.force(i);
                assert_eq!(
                    forces[i].x.to_bits(),
                    f.x.to_bits(),
                    "{species:?} atom {i} fx"
                );
                assert_eq!(
                    forces[i].y.to_bits(),
                    f.y.to_bits(),
                    "{species:?} atom {i} fy"
                );
                assert_eq!(
                    forces[i].z.to_bits(),
                    f.z.to_bits(),
                    "{species:?} atom {i} fz"
                );
            }
        }
    }

    #[test]
    fn nve_energy_conservation() {
        let sys = small_system(Species::Ta, 3, 2);
        let mut engine = equilibrated_engine(sys, 290.0, 2e-3, 50, 3);
        let e0 = engine.total_energy();
        engine.run(300);
        let drift = (engine.total_energy() - e0).abs() / engine.system.len() as f64;
        assert!(drift < 1e-3, "drift {drift} eV/atom over 300 steps");
    }

    #[test]
    fn momentum_is_conserved() {
        let sys = small_system(Species::W, 3, 2);
        let mut engine = equilibrated_engine(sys, 290.0, 2e-3, 0, 17);
        let p0 = engine.system.net_momentum();
        engine.run(100);
        let p1 = engine.system.net_momentum();
        assert!((p0 - p1).norm() < 1e-8, "Δp = {:?}", p1 - p0);
    }

    #[test]
    fn neighbor_lists_are_reused_across_steps() {
        let sys = small_system(Species::Cu, 4, 2);
        let mut engine = equilibrated_engine(sys, 150.0, 2e-3, 0, 9);
        let before = engine.list_rebuilds();
        engine.run(50);
        let rebuilds = engine.list_rebuilds() - before;
        // At 150 K with a 1 Å skin, far fewer than one rebuild per step.
        assert!(rebuilds < 10, "{rebuilds} rebuilds in 50 steps");
    }

    #[test]
    fn periodic_bulk_crystal_has_bulk_coordination() {
        let m = Material::new(Species::Ta);
        let spec = SlabSpec {
            crystal: m.crystal,
            lattice_a: m.lattice_a,
            nx: 4,
            ny: 4,
            nz: 4,
        };
        let mut sys = System::from_slab(Species::Ta, spec);
        sys.bbox = Box3::periodic(spec.dimensions());
        let engine = BaselineEngine::new(sys, 2e-3);
        assert!((engine.mean_interactions() - 14.0).abs() < 1e-9);
    }

    #[test]
    fn squared_speed_cache_tracks_velocities() {
        let sys = small_system(Species::Cu, 3, 2);
        let mut engine = equilibrated_engine(sys, 290.0, 2e-3, 5, 23);
        engine.run(7);
        let cached = engine.per_atom_squared_speeds().to_vec();
        for (i, c) in cached.iter().enumerate() {
            let expect = engine.system.atoms.velocity(i).norm_sq();
            assert_eq!(c.to_bits(), expect.to_bits(), "atom {i}");
        }
        // The contract: folding the cache reproduces the kinetic energy.
        let m = engine.system.material.mass;
        let folded = 0.5 * m * md_core::units::MVV_TO_ENERGY * cached.iter().sum::<f64>();
        assert_eq!(folded.to_bits(), engine.system.kinetic_energy().to_bits());
    }

    #[test]
    fn equilibrated_temperature_is_near_target() {
        let sys = small_system(Species::Cu, 4, 2);
        let engine = equilibrated_engine(sys, 290.0, 2e-3, 100, 7);
        let t = engine.system.temperature();
        // After equilibration roughly half the initial kinetic energy has
        // moved into potential; the rescales keep T near the target.
        assert!(t > 120.0 && t < 500.0, "temperature {t} K");
    }
}
