//! LAMMPS-style reference EAM engine: f64, cell-binned Verlet lists with
//! skin-based reuse, rayon-parallel force evaluation.
//!
//! This is the production-code baseline the paper compares against
//! (Sec. IV-B): it reuses neighbor lists across timesteps (the very
//! optimization Table V projects for the WSE), integrates in double
//! precision, and serves as the correctness oracle for the wafer engine.
//!
//! The force/energy passes run on rayon's worker pool (sized by
//! `WAFER_MD_THREADS`). Per-atom results are `collect`ed in atom order
//! and the scalar energy accumulation is a sequential in-order fold
//! over per-atom terms, so trajectories are bit-identical at any thread
//! count — and, because the per-atom terms are pure functions of each
//! atom's neighborhood enumerated in canonical (ascending-index) order,
//! across spatial shard decompositions too (the `HaloEngine` contract;
//! see `wafer_md::shard`). Audit note for the chunked executor: the
//! workspace no longer has any two-argument `reduce` call sites — both
//! engines assemble statistics through sequential atom-id-order folds.

use md_core::engine::{Engine, HaloEngine, Observables, StepSplit};
use md_core::integrate;
use md_core::neighbor::VerletList;
use md_core::system::System;
use md_core::vec3::{V3d, Vec3};
use rayon::prelude::*;

/// Reference MD engine wrapping a [`System`].
pub struct BaselineEngine {
    pub system: System,
    vlist: VerletList,
    /// Timestep (ps).
    pub dt: f64,
    /// Timesteps advanced.
    pub step_count: u64,
    /// Potential energy after the last force evaluation (eV).
    pub potential_energy: f64,
    forces: Vec<V3d>,
    /// Per-atom potential-energy terms (pair half-sum + embedding) from
    /// the last force evaluation; `potential_energy` is their in-order
    /// fold (the canonical per-atom accounting of the halo contract).
    per_atom_pot: Vec<f64>,
    /// Positions at the last halo reference (ghost exchange), for the
    /// skin-validity drift check of the halo contract.
    halo_ref: Vec<V3d>,
}

impl BaselineEngine {
    /// Standard LAMMPS-like skin distance (Å).
    pub const DEFAULT_SKIN: f64 = 1.0;

    pub fn new(system: System, dt: f64) -> Self {
        let cutoff = system.potential.cutoff;
        let n = system.len();
        let halo_ref = system.positions.clone();
        let mut e = Self {
            system,
            vlist: VerletList::new(cutoff, Self::DEFAULT_SKIN),
            dt,
            step_count: 0,
            potential_energy: 0.0,
            forces: vec![V3d::zero(); n],
            per_atom_pot: vec![0.0; n],
            halo_ref,
        };
        e.vlist.rebuild(&e.system.positions, &e.system.bbox);
        e.compute_forces();
        e
    }

    /// Evaluate EAM forces and potential energy with the current lists.
    /// Two rayon passes: densities, then forces (paper Eq. 4 layout).
    pub fn compute_forces(&mut self) {
        let pot = &self.system.potential;
        let bbox = self.system.bbox;
        let pos = &self.system.positions;
        let lists = &self.vlist.neighbors;
        let rc2 = pot.cutoff * pot.cutoff;

        // Pass 1: densities and pair energy (half-counted per atom).
        let per_atom: Vec<(f64, f64)> = (0..pos.len())
            .into_par_iter()
            .map(|i| {
                let mut rho = 0.0;
                let mut pair = 0.0;
                for &j in &lists[i] {
                    let d = bbox.displacement(pos[i], pos[j]);
                    let r2 = d.norm_sq();
                    if r2 >= rc2 || r2 == 0.0 {
                        continue; // in the skin, not in the cutoff
                    }
                    let r = r2.sqrt();
                    rho += pot.rho.eval(r);
                    pair += 0.5 * pot.phi.eval(r);
                }
                (rho, pair)
            })
            .collect();

        let mut fprime = vec![0.0f64; pos.len()];
        let mut energy = 0.0;
        self.per_atom_pot.resize(pos.len(), 0.0);
        for (i, (rho, pair)) in per_atom.iter().enumerate() {
            let (f, fp) = pot.embed.eval_both(*rho);
            let e = pair + f;
            energy += e;
            self.per_atom_pot[i] = e;
            fprime[i] = fp;
        }

        // Pass 2: forces.
        let fprime = &fprime;
        self.forces = (0..pos.len())
            .into_par_iter()
            .map(|i| {
                let mut acc = Vec3::zero();
                for &j in &lists[i] {
                    let d = bbox.displacement(pos[i], pos[j]);
                    let r2 = d.norm_sq();
                    if r2 >= rc2 || r2 == 0.0 {
                        continue;
                    }
                    let r = r2.sqrt();
                    let dphi = pot.phi.eval_deriv(r);
                    let drho = pot.rho.eval_deriv(r);
                    let scalar = (fprime[i] + fprime[j]) * drho + dphi;
                    acc += d.scale(scalar / r);
                }
                acc
            })
            .collect();
        self.potential_energy = energy;
    }

    /// Advance one timestep (list update → kick/drift → new forces).
    ///
    /// Exactly equivalent to [`HaloEngine::advance_positions`] followed
    /// by [`HaloEngine::refresh_forces`] — the [`StepSplit::MoveThenForce`]
    /// halves a sharded driver interleaves with its ghost exchange.
    pub fn step(&mut self) {
        self.advance_positions_impl();
        self.refresh_forces_impl();
    }

    /// Kick/drift with the stored forces (the move half of the step).
    fn advance_positions_impl(&mut self) {
        self.vlist.update(&self.system.positions, &self.system.bbox);
        // Forces correspond to current positions (computed at the end of
        // the previous step, or in new()).
        integrate::leapfrog_step(
            &mut self.system.positions,
            &mut self.system.velocities,
            &self.forces,
            self.system.material.mass,
            self.dt,
        );
        if self.system.bbox.periodic.iter().any(|&p| p) {
            for p in &mut self.system.positions {
                *p = self.system.bbox.wrap(*p);
            }
        }
        self.step_count += 1;
    }

    /// Neighbor-list update + force evaluation at the current positions
    /// (the force half of the step).
    fn refresh_forces_impl(&mut self) {
        self.vlist.update(&self.system.positions, &self.system.bbox);
        self.compute_forces();
    }

    /// Run `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    pub fn forces(&self) -> &[V3d] {
        &self.forces
    }

    pub fn total_energy(&self) -> f64 {
        self.potential_energy + self.system.kinetic_energy()
    }

    /// Neighbor-list rebuilds since construction — the reuse statistic
    /// that motivates the paper's Table V "Neighbor list" projection.
    pub fn list_rebuilds(&self) -> usize {
        self.vlist.rebuild_count
    }

    /// Mean interactions per atom in the current (cutoff-filtered) sense.
    pub fn mean_interactions(&self) -> f64 {
        let pot = &self.system.potential;
        let rc2 = pot.cutoff * pot.cutoff;
        let pos = &self.system.positions;
        let total: usize = (0..pos.len())
            .into_par_iter()
            .map(|i| {
                self.vlist.neighbors[i]
                    .iter()
                    .filter(|&&j| {
                        let d = self.system.bbox.displacement(pos[i], pos[j]);
                        let r2 = d.norm_sq();
                        r2 < rc2 && r2 > 0.0
                    })
                    .count()
            })
            .sum();
        total as f64 / pos.len().max(1) as f64
    }
}

impl Engine for BaselineEngine {
    fn backend(&self) -> &'static str {
        "baseline"
    }

    fn n_atoms(&self) -> usize {
        self.system.len()
    }

    fn step(&mut self) {
        BaselineEngine::step(self);
    }

    fn positions(&self) -> Vec<V3d> {
        self.system.positions.clone()
    }

    fn velocities(&self) -> Vec<V3d> {
        self.system.velocities.clone()
    }

    fn set_velocities(&mut self, velocities: &[V3d]) {
        assert_eq!(velocities.len(), self.system.len());
        self.system.velocities.copy_from_slice(velocities);
    }

    fn forces(&self) -> Vec<V3d> {
        self.forces.clone()
    }

    fn observables(&self) -> Observables {
        let candidate_total: usize = self.vlist.neighbors.iter().map(|l| l.len()).sum();
        Observables {
            potential_energy: self.potential_energy,
            mean_interactions: self.mean_interactions(),
            mean_candidates: candidate_total as f64 / self.system.len().max(1) as f64,
            modeled_cycles: None,
            modeled_rate: None,
            ..Default::default()
        }
        .with_temperature_from(self.system.kinetic_energy(), self.system.len())
    }
}

impl HaloEngine for BaselineEngine {
    fn step_split(&self) -> StepSplit {
        StepSplit::MoveThenForce
    }

    fn advance_positions(&mut self) {
        self.advance_positions_impl();
    }

    fn refresh_forces(&mut self) {
        self.refresh_forces_impl();
    }

    fn overwrite_atom(&mut self, atom: usize, position: V3d, velocity: V3d) {
        self.system.positions[atom] = position;
        self.system.velocities[atom] = velocity;
    }

    fn per_atom_potential_energies(&self) -> Vec<f64> {
        self.per_atom_pot.clone()
    }

    fn per_atom_squared_speeds(&self) -> Vec<f64> {
        self.system.velocities.iter().map(|v| v.norm_sq()).collect()
    }

    fn per_atom_counts(&self) -> Vec<(u32, u32)> {
        let pot = &self.system.potential;
        let rc2 = pot.cutoff * pot.cutoff;
        let pos = &self.system.positions;
        (0..pos.len())
            .into_par_iter()
            .map(|i| {
                let inter = self.vlist.neighbors[i]
                    .iter()
                    .filter(|&&j| {
                        let d = self.system.bbox.displacement(pos[i], pos[j]);
                        let r2 = d.norm_sq();
                        r2 < rc2 && r2 > 0.0
                    })
                    .count();
                (self.vlist.neighbors[i].len() as u32, inter as u32)
            })
            .collect()
    }

    fn per_atom_modeled_cycles(&self) -> Option<Vec<f64>> {
        None
    }

    fn halo_drift_limit_sq(&self) -> f64 {
        // The Verlet-list reuse criterion: past half the skin, a pair
        // outside the retained list can come under the cutoff — and a
        // halo membership computed at the reference positions can stop
        // covering the shard's force neighborhoods.
        (self.vlist.skin / 2.0) * (self.vlist.skin / 2.0)
    }

    fn mark_halo_reference(&mut self) {
        self.halo_ref.clone_from(&self.system.positions);
    }

    fn halo_drift_sq(&self) -> f64 {
        self.system
            .positions
            .iter()
            .zip(&self.halo_ref)
            .map(|(p, r)| self.system.bbox.displacement(*r, *p).norm_sq())
            .fold(0.0, f64::max)
    }
}

/// Convenience: build an engine from a thermalized system.
pub fn equilibrated_engine(
    mut system: System,
    temperature: f64,
    dt: f64,
    warmup_steps: usize,
    seed: u64,
) -> BaselineEngine {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    system.velocities = md_core::thermostat::maxwell_boltzmann(
        &mut rng,
        system.len(),
        system.material.mass,
        temperature,
    );
    let mass = system.material.mass;
    let mut engine = BaselineEngine::new(system, dt);
    for k in 0..warmup_steps {
        engine.step();
        if k % 10 == 0 {
            // Velocity-rescale thermostat during warm-up only.
            md_core::thermostat::rescale_to_temperature(
                &mut engine.system.velocities,
                mass,
                temperature,
            );
        }
    }
    engine
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_core::eam::open_disp;
    use md_core::lattice::SlabSpec;
    use md_core::materials::{Material, Species};
    use md_core::system::Box3;

    fn small_system(species: Species, nx: usize, nz: usize) -> System {
        let m = Material::new(species);
        System::from_slab(
            species,
            SlabSpec {
                crystal: m.crystal,
                lattice_a: m.lattice_a,
                nx,
                ny: nx,
                nz,
            },
        )
    }

    #[test]
    fn forces_match_bruteforce_oracle() {
        let mut sys = small_system(Species::Cu, 3, 2);
        // Perturb to break symmetry.
        for (k, p) in sys.positions.iter_mut().enumerate() {
            let s = (k as f64 * 0.7).sin() * 0.05;
            *p += V3d::new(s, -s, 0.5 * s);
        }
        let engine = BaselineEngine::new(sys.clone(), 2e-3);
        let oracle = sys.potential.compute_bruteforce(&sys.positions, open_disp);
        assert!((engine.potential_energy - oracle.potential_energy).abs() < 1e-8);
        for i in 0..sys.len() {
            assert!(
                (engine.forces()[i] - oracle.forces[i]).norm() < 1e-9,
                "atom {i}"
            );
        }
    }

    #[test]
    fn nve_energy_conservation() {
        let sys = small_system(Species::Ta, 3, 2);
        let mut engine = equilibrated_engine(sys, 290.0, 2e-3, 50, 3);
        let e0 = engine.total_energy();
        engine.run(300);
        let drift = (engine.total_energy() - e0).abs() / engine.system.len() as f64;
        assert!(drift < 1e-3, "drift {drift} eV/atom over 300 steps");
    }

    #[test]
    fn momentum_is_conserved() {
        let sys = small_system(Species::W, 3, 2);
        let mut engine = equilibrated_engine(sys, 290.0, 2e-3, 0, 17);
        let p0 = engine.system.net_momentum();
        engine.run(100);
        let p1 = engine.system.net_momentum();
        assert!((p0 - p1).norm() < 1e-8, "Δp = {:?}", p1 - p0);
    }

    #[test]
    fn neighbor_lists_are_reused_across_steps() {
        let sys = small_system(Species::Cu, 4, 2);
        let mut engine = equilibrated_engine(sys, 150.0, 2e-3, 0, 9);
        let before = engine.list_rebuilds();
        engine.run(50);
        let rebuilds = engine.list_rebuilds() - before;
        // At 150 K with a 1 Å skin, far fewer than one rebuild per step.
        assert!(rebuilds < 10, "{rebuilds} rebuilds in 50 steps");
    }

    #[test]
    fn periodic_bulk_crystal_has_bulk_coordination() {
        let m = Material::new(Species::Ta);
        let spec = SlabSpec {
            crystal: m.crystal,
            lattice_a: m.lattice_a,
            nx: 4,
            ny: 4,
            nz: 4,
        };
        let mut sys = System::from_slab(Species::Ta, spec);
        sys.bbox = Box3::periodic(spec.dimensions());
        let engine = BaselineEngine::new(sys, 2e-3);
        assert!((engine.mean_interactions() - 14.0).abs() < 1e-9);
    }

    #[test]
    fn equilibrated_temperature_is_near_target() {
        let sys = small_system(Species::Cu, 4, 2);
        let engine = equilibrated_engine(sys, 290.0, 2e-3, 100, 7);
        let t = engine.system.temperature();
        // After equilibration roughly half the initial kinetic energy has
        // moved into potential; the rescales keep T near the target.
        assert!(t > 120.0 && t < 500.0, "temperature {t} K");
    }
}
