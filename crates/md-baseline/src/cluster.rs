//! Analytic performance models of the paper's comparison clusters.
//!
//! The paper's Fig. 7 / Table I baselines are LAMMPS runs on OLCF
//! Frontier (AMD MI250X GPUs, 8 GCDs per node) and LLNL Quartz (36-rank
//! dual-socket Broadwell nodes). We do not have those machines, so each
//! is modeled as
//!
//! ```text
//! t_step(p) = a·N/p  +  L  +  τ·√p
//! ```
//!
//! — per-rank compute that strong-scales, a fixed per-step overhead
//! (kernel launches on the GPU; loop bookkeeping on the CPU), and a
//! communication/imbalance term that grows with the node count (MPI
//! latency, collective depth, halo irregularity). The constants are
//! *derived from the paper's published operating points*, not tuned by
//! hand: each material's `a` is solved from the measured peak rate, and
//! the peak location (1 node for the GPU, ~400 nodes for the CPU — the
//! paper's observed strong-scaling limits) pins `τ` via the optimality
//! condition `∂t/∂p = 0 ⇒ a·N = τ·p^{3/2}/2`.

use md_core::materials::Species;

/// Which comparison machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Machine {
    /// Frontier: 8 MI250X GCDs per node (GPU baseline).
    FrontierGpu,
    /// Quartz: dual-socket 36-rank Broadwell nodes (CPU baseline).
    QuartzCpu,
}

impl Machine {
    pub fn name(self) -> &'static str {
        match self {
            Machine::FrontierGpu => "Frontier (GPU)",
            Machine::QuartzCpu => "Quartz (CPU)",
        }
    }

    /// Node power draw (W) used by the energy model: ~3.85 kW per
    /// Frontier node (4 × MI250X + host), ~350 W per Quartz node.
    pub fn node_power_watts(self) -> f64 {
        match self {
            Machine::FrontierGpu => 3850.0,
            Machine::QuartzCpu => 350.0,
        }
    }

    /// Node count at which the paper observes the strong-scaling limit
    /// for the 801,792-atom benchmarks (Sec. V-A observations 1 and 2).
    pub fn peak_nodes(self) -> f64 {
        match self {
            Machine::FrontierGpu => 1.0,
            Machine::QuartzCpu => 400.0,
        }
    }

    /// The paper's measured peak rate (timesteps/s) for each material at
    /// 801,792 atoms (Table I columns "Frontier" and "Quartz").
    pub fn paper_peak_rate(self, species: Species) -> f64 {
        match (self, species) {
            (Machine::FrontierGpu, Species::Cu) => 973.0,
            (Machine::FrontierGpu, Species::W) => 998.0,
            (Machine::FrontierGpu, Species::Ta) => 1530.0,
            (Machine::QuartzCpu, Species::Cu) => 3120.0,
            (Machine::QuartzCpu, Species::W) => 3633.0,
            (Machine::QuartzCpu, Species::Ta) => 4938.0,
        }
    }
}

/// A calibrated strong-scaling model for one machine and material.
#[derive(Clone, Copy, Debug)]
pub struct ClusterModel {
    pub machine: Machine,
    pub species: Species,
    /// Per-atom compute time coefficient (s·node/atom).
    pub a: f64,
    /// Fixed per-step overhead (s).
    pub fixed: f64,
    /// Communication coefficient (s/√node).
    pub tau: f64,
    /// Atom count the model was calibrated at.
    pub n_ref: f64,
}

/// The paper's benchmark size.
pub const PAPER_ATOMS: f64 = 801_792.0;

impl ClusterModel {
    /// Calibrate from the paper's peak rate and peak node count.
    pub fn calibrated(machine: Machine, species: Species) -> Self {
        let n = PAPER_ATOMS;
        let p_star = machine.peak_nodes();
        let t_star = 1.0 / machine.paper_peak_rate(species);
        // Fixed overhead: kernel launches dominate the GPU's step floor;
        // the CPU's is small.
        let fixed = match machine {
            Machine::FrontierGpu => 3.0e-4,
            Machine::QuartzCpu => 1.0e-5,
        };
        // Optimality at p*: a·N/p*² = τ/(2√p*)  ⇒  a·N = τ·p*^{3/2}/2.
        // Substituting into t(p*) = a·N/p* + fixed + τ·√p*:
        //   t* − fixed = τ·√p*/2 + τ·√p* = (3/2)·τ·√p*.
        let tau = (t_star - fixed) * 2.0 / (3.0 * p_star.sqrt());
        let a = tau * p_star.powf(1.5) / (2.0 * n);
        Self {
            machine,
            species,
            a,
            fixed,
            tau,
            n_ref: n,
        }
    }

    /// Modeled time per step (s) for `n` atoms on `p` nodes.
    pub fn time_per_step(&self, n_atoms: f64, p_nodes: f64) -> f64 {
        assert!(p_nodes > 0.0);
        self.a * n_atoms / p_nodes + self.fixed + self.tau * p_nodes.sqrt()
    }

    /// Modeled rate (timesteps/s).
    pub fn timesteps_per_second(&self, n_atoms: f64, p_nodes: f64) -> f64 {
        1.0 / self.time_per_step(n_atoms, p_nodes)
    }

    /// Rate at the paper's benchmark size.
    pub fn rate_at_paper_size(&self, p_nodes: f64) -> f64 {
        self.timesteps_per_second(PAPER_ATOMS, p_nodes)
    }

    /// Best achievable rate over any node count (the strong-scaling
    /// limit the paper's speedup factors are measured against).
    pub fn peak_rate(&self) -> f64 {
        self.rate_at_paper_size(self.machine.peak_nodes())
    }

    /// Energy per timestep (J) at the paper size on `p` nodes.
    pub fn energy_per_timestep(&self, p_nodes: f64) -> f64 {
        self.time_per_step(PAPER_ATOMS, p_nodes) * p_nodes * self.machine.node_power_watts()
    }

    /// Timesteps per Joule at the paper size (Fig. 7b's y-axis inverse).
    pub fn timesteps_per_joule(&self, p_nodes: f64) -> f64 {
        1.0 / self.energy_per_timestep(p_nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reproduces_paper_peak_rates() {
        for machine in [Machine::FrontierGpu, Machine::QuartzCpu] {
            for sp in Species::ALL {
                let m = ClusterModel::calibrated(machine, sp);
                let peak = m.peak_rate();
                let target = machine.paper_peak_rate(sp);
                assert!(
                    (peak - target).abs() / target < 1e-9,
                    "{machine:?} {sp:?}: {peak} vs {target}"
                );
            }
        }
    }

    #[test]
    fn peak_is_at_the_paper_observed_node_count() {
        for machine in [Machine::FrontierGpu, Machine::QuartzCpu] {
            let m = ClusterModel::calibrated(machine, Species::Ta);
            let p_star = machine.peak_nodes();
            let at_peak = m.rate_at_paper_size(p_star);
            for factor in [0.25, 0.5, 2.0, 4.0] {
                let nearby = m.rate_at_paper_size(p_star * factor);
                assert!(
                    nearby <= at_peak * (1.0 + 1e-9),
                    "{machine:?}: rate at {factor}×p* exceeds peak"
                );
            }
        }
    }

    #[test]
    fn gpu_scaling_stalls_hundreds_of_times_below_wse() {
        // The headline: 274,016 ts/s (WSE Ta) vs the best any GPU node
        // count can do (1,530 ts/s) ⇒ 179×.
        let m = ClusterModel::calibrated(Machine::FrontierGpu, Species::Ta);
        let best = (0..14)
            .map(|k| m.rate_at_paper_size(2f64.powi(k - 3)))
            .fold(0.0, f64::max);
        let speedup = 274_016.0 / best;
        assert!(
            (170.0..190.0).contains(&speedup),
            "WSE/GPU speedup {speedup}"
        );
    }

    #[test]
    fn cpu_single_node_is_slow_but_scales() {
        let m = ClusterModel::calibrated(Machine::QuartzCpu, Species::Ta);
        let one = m.rate_at_paper_size(1.0);
        let four_hundred = m.rate_at_paper_size(400.0);
        assert!(one < 100.0, "1-node CPU rate {one}");
        assert!(four_hundred / one > 50.0, "CPU strong-scales");
    }

    #[test]
    fn gpu_energy_efficiency_is_best_at_small_node_counts() {
        // Sec. V-A: "the best GPU energy efficiency when using only one of
        // the eight GCDs on a single Frontier node."
        let m = ClusterModel::calibrated(Machine::FrontierGpu, Species::Ta);
        let tiny = m.timesteps_per_joule(0.125);
        let one = m.timesteps_per_joule(1.0);
        let big = m.timesteps_per_joule(64.0);
        assert!(tiny > one, "fractional node not most efficient");
        assert!(one > big, "efficiency must fall with node count");
    }

    #[test]
    fn adding_nodes_beyond_peak_wastes_energy_and_speed() {
        // Sec. V-A: beyond the peak, both timesteps/s and timesteps/J
        // decrease as nodes are added.
        let m = ClusterModel::calibrated(Machine::QuartzCpu, Species::Cu);
        let r1 = m.rate_at_paper_size(400.0);
        let r2 = m.rate_at_paper_size(1600.0);
        assert!(r2 < r1);
        assert!(m.timesteps_per_joule(1600.0) < m.timesteps_per_joule(400.0));
    }

    #[test]
    fn tantalum_is_fastest_on_every_machine() {
        // Fewer interactions per atom ⇒ higher rate, on all platforms.
        for machine in [Machine::FrontierGpu, Machine::QuartzCpu] {
            let ta = ClusterModel::calibrated(machine, Species::Ta).peak_rate();
            let cu = ClusterModel::calibrated(machine, Species::Cu).peak_rate();
            let w = ClusterModel::calibrated(machine, Species::W).peak_rate();
            assert!(ta > cu && ta > w, "{machine:?}");
        }
    }
}
