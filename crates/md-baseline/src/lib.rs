//! # md-baseline — the comparison world
//!
//! Everything the paper compares the wafer engine against:
//!
//! * [`engine`] — a LAMMPS-style reference EAM engine (f64, cell-binned
//!   Verlet lists with skin reuse, force passes fanned out over rayon's
//!   `WAFER_MD_THREADS` worker pool with bit-deterministic reductions).
//!   This is the correctness oracle for `wse-md` and the kernel whose
//!   per-node performance the cluster models abstract.
//! * [`cluster`] — calibrated strong-scaling models of Frontier (GPU) and
//!   Quartz (CPU), solved from the paper's published peak rates and
//!   scaling-stall node counts.
//! * [`energy`] — the power/efficiency model behind Fig. 7b/7c.
//! * [`lj`] — Lennard-Jones potential and the Sec. II-B small-system
//!   reference rates.
//! * [`strongscale`] — the Fig. 7a sweep driver and Table I speedups.

pub mod cluster;
pub mod energy;
pub mod engine;
pub mod lj;
pub mod strongscale;

pub use cluster::{ClusterModel, Machine, PAPER_ATOMS};
pub use energy::{wse_timesteps_per_joule, EfficiencyPoint, RelativePoint, WSE_POWER_WATTS};
pub use engine::{equilibrated_engine, BaselineEngine};
pub use lj::LjPotential;
pub use md_core::engine::{Engine, Observables};
pub use strongscale::{strong_scaling_data, wse_model_rate, StrongScalingData};
