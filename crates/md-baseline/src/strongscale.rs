//! Strong-scaling sweep driver: assembles the Fig. 7a data series.
//!
//! For each material, sweeps the calibrated GPU and CPU cluster models
//! over node counts and pairs them with the WSE's single-system operating
//! point, producing the headline speedup factors (Table I's "WSE vs"
//! columns: 179×/55× for Ta, 109×/34× for Cu, 96×/26× for W).

use crate::cluster::{ClusterModel, Machine};
use crate::energy::{node_sweep, wse_timesteps_per_joule, EfficiencyPoint};
use md_core::materials::Species;
use wse_fabric::cost::CostModel;

/// The complete Fig. 7a dataset for one material.
#[derive(Clone, Debug)]
pub struct StrongScalingData {
    pub species: Species,
    pub gpu: Vec<EfficiencyPoint>,
    pub cpu: Vec<EfficiencyPoint>,
    /// The WSE point (one system; rate from the calibrated cost model or
    /// a measured simulation).
    pub wse: EfficiencyPoint,
}

/// The paper's per-material (candidates, interactions) pairs (Table I).
pub fn paper_workload(species: Species) -> (f64, f64) {
    match species {
        Species::Cu => (224.0, 42.0),
        Species::W => (224.0, 59.0),
        Species::Ta => (80.0, 14.0),
    }
}

/// WSE model rate for a material (Table I "Predicted" column).
pub fn wse_model_rate(species: Species) -> f64 {
    let (cand, inter) = paper_workload(species);
    CostModel::paper_baseline().timesteps_per_second(cand, inter)
}

/// Build the Fig. 7a dataset for `species`, using `wse_rate` for the
/// WSE point (pass a measured rate, or [`wse_model_rate`]).
pub fn strong_scaling_data(species: Species, wse_rate: f64) -> StrongScalingData {
    let gpu_model = ClusterModel::calibrated(Machine::FrontierGpu, species);
    let cpu_model = ClusterModel::calibrated(Machine::QuartzCpu, species);
    let series = |model: &ClusterModel, machine: Machine| {
        node_sweep(machine)
            .into_iter()
            .map(|p| EfficiencyPoint {
                nodes: p,
                timesteps_per_second: model.rate_at_paper_size(p),
                timesteps_per_joule: model.timesteps_per_joule(p),
            })
            .collect()
    };
    StrongScalingData {
        species,
        gpu: series(&gpu_model, Machine::FrontierGpu),
        cpu: series(&cpu_model, Machine::QuartzCpu),
        wse: EfficiencyPoint {
            nodes: 1.0,
            timesteps_per_second: wse_rate,
            timesteps_per_joule: wse_timesteps_per_joule(wse_rate),
        },
    }
}

impl StrongScalingData {
    /// Best GPU rate over the sweep.
    pub fn gpu_peak(&self) -> f64 {
        self.gpu
            .iter()
            .map(|p| p.timesteps_per_second)
            .fold(0.0, f64::max)
    }

    /// Best CPU rate over the sweep.
    pub fn cpu_peak(&self) -> f64 {
        self.cpu
            .iter()
            .map(|p| p.timesteps_per_second)
            .fold(0.0, f64::max)
    }

    /// Table I "WSE vs Frontier" factor.
    pub fn speedup_vs_gpu(&self) -> f64 {
        self.wse.timesteps_per_second / self.gpu_peak()
    }

    /// Table I "WSE vs Quartz" factor.
    pub fn speedup_vs_cpu(&self) -> f64 {
        self.wse.timesteps_per_second / self.cpu_peak()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's measured WSE rates (Table I).
    fn paper_measured(species: Species) -> f64 {
        match species {
            Species::Cu => 106_313.0,
            Species::W => 96_140.0,
            Species::Ta => 274_016.0,
        }
    }

    #[test]
    fn model_rates_match_table_i_predictions() {
        for (sp, predicted) in [
            (Species::Cu, 104_895.0),
            (Species::W, 93_048.0),
            (Species::Ta, 270_097.0),
        ] {
            let r = wse_model_rate(sp);
            assert!(
                (r - predicted).abs() / predicted < 0.005,
                "{sp:?}: {r} vs {predicted}"
            );
        }
    }

    #[test]
    fn speedup_factors_match_table_i() {
        for (sp, vs_gpu, vs_cpu) in [
            (Species::Ta, 179.0, 55.0),
            (Species::Cu, 109.0, 34.0),
            (Species::W, 96.0, 26.0),
        ] {
            let data = strong_scaling_data(sp, paper_measured(sp));
            let g = data.speedup_vs_gpu();
            let c = data.speedup_vs_cpu();
            assert!(
                (g - vs_gpu).abs() / vs_gpu < 0.03,
                "{sp:?} vs GPU: {g} (paper {vs_gpu})"
            );
            assert!(
                (c - vs_cpu).abs() / vs_cpu < 0.05,
                "{sp:?} vs CPU: {c} (paper {vs_cpu})"
            );
        }
    }

    #[test]
    fn wse_point_dominates_both_sweeps() {
        for sp in Species::ALL {
            let data = strong_scaling_data(sp, paper_measured(sp));
            assert!(data.wse.timesteps_per_second > 10.0 * data.gpu_peak());
            assert!(data.wse.timesteps_per_second > 10.0 * data.cpu_peak());
        }
    }

    #[test]
    fn cpu_beats_gpu_at_strong_scaling_for_this_problem() {
        // Sec. V-A observation: "CPUs (Quartz) are more effective than
        // GPUs (Frontier)" at the strong-scaling limit.
        for sp in Species::ALL {
            let data = strong_scaling_data(sp, paper_measured(sp));
            assert!(data.cpu_peak() > data.gpu_peak(), "{sp:?}");
        }
    }
}
