//! Energy-efficiency model: timesteps per Joule (Fig. 7b/7c).
//!
//! The CS-2 draws 23 kW (paper Sec. IV-A); cluster node powers live in
//! [`crate::cluster::Machine::node_power_watts`]. Fig. 7b plots
//! timesteps/s against timesteps/Joule; Fig. 7c normalizes the WSE to 1
//! and plots each cluster configuration's speedup factor against its
//! energy-efficiency factor, exhibiting the WSE's Pareto dominance.

use crate::cluster::{ClusterModel, Machine};

/// CS-2 system power (W).
pub const WSE_POWER_WATTS: f64 = 23_000.0;

/// WSE timesteps per Joule at a given timestepping rate.
pub fn wse_timesteps_per_joule(rate: f64) -> f64 {
    rate / WSE_POWER_WATTS
}

/// One machine configuration's operating point.
#[derive(Clone, Copy, Debug)]
pub struct EfficiencyPoint {
    pub nodes: f64,
    pub timesteps_per_second: f64,
    pub timesteps_per_joule: f64,
}

/// Fig. 7c's normalized coordinates for a cluster point: how many times
/// faster (x: speedup factor) and more energy-efficient (y) the WSE is.
#[derive(Clone, Copy, Debug)]
pub struct RelativePoint {
    pub nodes: f64,
    /// WSE rate / cluster rate.
    pub wse_speedup_factor: f64,
    /// WSE (ts/J) / cluster (ts/J).
    pub wse_energy_factor: f64,
}

/// Sweep a calibrated cluster model over `node_counts`, producing the
/// Fig. 7b series.
pub fn efficiency_series(model: &ClusterModel, node_counts: &[f64]) -> Vec<EfficiencyPoint> {
    node_counts
        .iter()
        .map(|&p| EfficiencyPoint {
            nodes: p,
            timesteps_per_second: model.rate_at_paper_size(p),
            timesteps_per_joule: model.timesteps_per_joule(p),
        })
        .collect()
}

/// Fig. 7c series: every cluster point relative to the WSE operating
/// point `(wse_rate, wse_rate/23 kW)`.
pub fn relative_series(
    model: &ClusterModel,
    node_counts: &[f64],
    wse_rate: f64,
) -> Vec<RelativePoint> {
    let wse_tsj = wse_timesteps_per_joule(wse_rate);
    efficiency_series(model, node_counts)
        .into_iter()
        .map(|p| RelativePoint {
            nodes: p.nodes,
            wse_speedup_factor: wse_rate / p.timesteps_per_second,
            wse_energy_factor: wse_tsj / p.timesteps_per_joule,
        })
        .collect()
}

/// Standard node sweeps used across the figures (powers of two; the GPU
/// sweep includes fractional nodes, i.e. subsets of the 8 GCDs).
pub fn node_sweep(machine: Machine) -> Vec<f64> {
    match machine {
        Machine::FrontierGpu => (-3..=10).map(|k| 2f64.powi(k)).collect(),
        Machine::QuartzCpu => (0..=11).map(|k| 2f64.powi(k)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use md_core::materials::Species;

    #[test]
    fn wse_is_30x_more_efficient_than_the_frontier_node() {
        // Sec. V-A: "In comparison with Frontier node having 8 GCDs, the
        // WSE achieves roughly 30-fold more timesteps per Joule."
        let model = ClusterModel::calibrated(Machine::FrontierGpu, Species::Ta);
        let wse_rate = 274_016.0;
        let factor = wse_timesteps_per_joule(wse_rate) / model.timesteps_per_joule(1.0);
        assert!((20.0..45.0).contains(&factor), "energy factor {factor}");
    }

    #[test]
    fn wse_advantage_grows_with_gpu_node_count() {
        // "that advantage grows as more GPU nodes are used, at ever larger
        // power but with little improvement in performance."
        let model = ClusterModel::calibrated(Machine::FrontierGpu, Species::Ta);
        let series = relative_series(&model, &node_sweep(Machine::FrontierGpu), 274_016.0);
        let at = |nodes: f64| {
            series
                .iter()
                .find(|p| (p.nodes - nodes).abs() < 1e-9)
                .unwrap()
                .wse_energy_factor
        };
        assert!(at(4.0) > at(1.0));
        assert!(at(64.0) > at(4.0));
    }

    #[test]
    fn wse_pareto_dominates_every_cluster_point() {
        // Fig. 7c: all cluster configurations have speedup factor > 1 AND
        // energy factor > 1 (the WSE wins on both axes simultaneously).
        for machine in [Machine::FrontierGpu, Machine::QuartzCpu] {
            for (sp, wse_rate) in [
                (Species::Cu, 106_313.0),
                (Species::W, 96_140.0),
                (Species::Ta, 274_016.0),
            ] {
                let model = ClusterModel::calibrated(machine, sp);
                for p in relative_series(&model, &node_sweep(machine), wse_rate) {
                    assert!(
                        p.wse_speedup_factor > 1.0 && p.wse_energy_factor > 1.0,
                        "{machine:?} {sp:?} at {} nodes: speedup {}, energy {}",
                        p.nodes,
                        p.wse_speedup_factor,
                        p.wse_energy_factor
                    );
                }
            }
        }
    }

    #[test]
    fn cluster_efficiency_and_rate_trade_off_at_scale() {
        // Fig. 7b: past the knee, higher timesteps/s costs timesteps/J.
        let model = ClusterModel::calibrated(Machine::QuartzCpu, Species::Cu);
        let pts = efficiency_series(&model, &[1.0, 16.0, 400.0]);
        assert!(pts[2].timesteps_per_second > pts[0].timesteps_per_second);
        assert!(pts[2].timesteps_per_joule < pts[0].timesteps_per_joule);
    }

    #[test]
    fn one_to_two_orders_of_magnitude_efficiency_gain() {
        // Fig. 7b caption: "one to two orders of magnitude improvement in
        // energy efficiency over both CPU and GPU systems" at their
        // best-rate operating points.
        for (machine, sp, wse_rate) in [
            (Machine::FrontierGpu, Species::Ta, 274_016.0),
            (Machine::QuartzCpu, Species::Ta, 274_016.0),
            (Machine::FrontierGpu, Species::Cu, 106_313.0),
            (Machine::QuartzCpu, Species::Cu, 106_313.0),
        ] {
            let model = ClusterModel::calibrated(machine, sp);
            let factor =
                wse_timesteps_per_joule(wse_rate) / model.timesteps_per_joule(machine.peak_nodes());
            assert!(
                (10.0..1000.0).contains(&factor),
                "{machine:?} {sp:?}: factor {factor}"
            );
        }
    }
}
