//! Property-based tests of the fabric simulator's communication claims.

use proptest::prelude::*;
use wse_fabric::geometry::{Coord, Extent};
use wse_fabric::multicast::{
    line_stage_cycles, simulate_line_stage, simulate_neighborhood_exchange,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The marching multicast delivers every payload to exactly the
    /// tiles within distance b, for any line length, b, and payload size.
    #[test]
    fn line_stage_complete_and_exact(
        n in 2usize..40,
        b in 1usize..8,
        l in 1usize..6,
    ) {
        let payloads: Vec<Vec<u32>> = (0..n).map(|i| vec![i as u32; l]).collect();
        let res = simulate_line_stage(&payloads, b);
        for i in 0..n {
            let mut sources: Vec<usize> = res.delivered[i].iter().map(|d| d.source).collect();
            sources.sort_unstable();
            sources.dedup();
            prop_assert_eq!(sources.len(), res.delivered[i].len(), "duplicate delivery");
            let expected: Vec<usize> = (i.saturating_sub(b)..(i + b + 1).min(n))
                .filter(|&j| j != i)
                .collect();
            prop_assert_eq!(sources, expected);
        }
    }

    /// No link ever carries two words of one virtual channel in one
    /// cycle — the systolic schedule is contention-free by construction.
    #[test]
    fn line_stage_contention_free(
        n in 2usize..50,
        b in 1usize..10,
        l in 1usize..8,
    ) {
        let payloads: Vec<Vec<u32>> = (0..n).map(|i| vec![i as u32; l]).collect();
        let res = simulate_line_stage(&payloads, b);
        prop_assert_eq!(res.max_link_load, 1);
    }

    /// Cycle counts match the closed form for every (b, l).
    #[test]
    fn line_stage_cycles_closed_form(b in 1usize..8, l in 1usize..10) {
        let n = (b + 1) * 3;
        let payloads: Vec<Vec<u32>> = (0..n).map(|i| vec![i as u32; l]).collect();
        let res = simulate_line_stage(&payloads, b);
        prop_assert_eq!(res.cycles, line_stage_cycles(b, l));
    }

    /// The 2-D exchange delivers exactly the clipped (2b+1)² neighborhood
    /// to every tile with intact payloads, on arbitrary fabric shapes.
    #[test]
    fn exchange_complete_on_random_extents(
        w in 3usize..10,
        h in 3usize..10,
        b in 1usize..4,
    ) {
        let extent = Extent::new(w, h);
        let payloads: Vec<Vec<u32>> = (0..extent.count())
            .map(|i| vec![i as u32, 7_000 + i as u32])
            .collect();
        let res = simulate_neighborhood_exchange(extent, &payloads, b);
        for flat in 0..extent.count() {
            let center = extent.coord(flat);
            let mut expected: Vec<usize> = extent
                .neighborhood(center, b as i32)
                .filter(|&c| c != center)
                .map(|c| extent.index(c))
                .collect();
            expected.sort_unstable();
            let got: Vec<usize> = res.received[flat].iter().map(|(s, _)| *s).collect();
            prop_assert_eq!(&got, &expected, "tile {}", flat);
            for (src, words) in &res.received[flat] {
                prop_assert_eq!(words, &payloads[*src]);
            }
        }
    }

    /// Chebyshev distance is a metric: symmetry and triangle inequality.
    #[test]
    fn chebyshev_is_a_metric(
        ax in -50i32..50, ay in -50i32..50,
        bx in -50i32..50, by in -50i32..50,
        cx in -50i32..50, cy in -50i32..50,
    ) {
        let (a, b, c) = (Coord::new(ax, ay), Coord::new(bx, by), Coord::new(cx, cy));
        prop_assert_eq!(a.chebyshev(b), b.chebyshev(a));
        prop_assert!(a.chebyshev(c) <= a.chebyshev(b) + b.chebyshev(c));
        prop_assert_eq!(a.chebyshev(a), 0);
    }

    /// Extent index/coord round-trips for arbitrary shapes.
    #[test]
    fn extent_index_round_trip(w in 1usize..100, h in 1usize..100) {
        let e = Extent::new(w, h);
        for idx in [0, e.count() / 2, e.count() - 1] {
            prop_assert_eq!(e.index(e.coord(idx)), idx);
        }
    }
}
