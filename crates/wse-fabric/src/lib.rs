//! # wse-fabric — Wafer-Scale Engine architectural simulator
//!
//! A behavioural model of the Cerebras WSE-2 fabric as used by the MD
//! algorithm of *Breaking the Molecular Dynamics Timescale Barrier Using
//! a Wafer-Scale System* (SC 2024): a Cartesian grid of tiles, each with
//! a general-purpose core, 48 kB of SRAM, and a router connected to its
//! four mesh neighbors (paper Sec. IV-A, Fig. 6).
//!
//! Two execution fidelities are provided, per DESIGN.md:
//!
//! * **Cycle mode** ([`multicast`]): a router-level simulation of the
//!   systolic marching multicast with explicit per-cycle link occupancy,
//!   used to validate that the communication schedule is contention-free
//!   and that its cost matches the closed-form cycle count.
//! * **Functional mode** ([`fabric`] + [`cost`]): direct neighborhood
//!   data movement with cycles charged from the calibrated linear cost
//!   model (Table II / Table V), used for the 10⁵–10⁶-core experiments.
//!
//! The physical machine executes asynchronously with hardware dataflow;
//! this simulator reproduces its *schedule* and *cost*, which is what the
//! paper's evaluation measures.

pub mod collective;
pub mod cost;
pub mod fabric;
pub mod geometry;
pub mod multicast;
pub mod router;
pub mod tile;
pub mod trace;

pub use cost::{CostModel, WSE2_CLOCK_GHZ};
pub use fabric::Fabric;
pub use geometry::{Coord, Extent, WSE2_CORES, WSE2_EXTENT};
pub use tile::{CycleCounter, SramBudget, TILE_SRAM_BYTES};
pub use trace::{Stats, TimestepTrace};
