//! Per-tile resources: SRAM budget and cycle accounting.
//!
//! Each WSE-2 tile has 48 kB of single-cycle SRAM and no other memory
//! (Sec. IV-A); everything a worker holds — atom state, interpolation
//! tables, receive buffers, neighbor list, scratch — must fit. The
//! [`SramBudget`] type makes that constraint explicit and auditable. The
//! [`CycleCounter`] mirrors the paper's measurement method: "at the end of
//! every timestep, the cores record a hardware clock cycle counter in a
//! scratch memory buffer" (Sec. IV-B).

use std::fmt;

/// SRAM capacity of a WSE-2 tile in bytes.
pub const TILE_SRAM_BYTES: usize = 48 * 1024;

/// Error returned when a tile's memory plan exceeds its SRAM.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SramOverflow {
    pub requested: usize,
    pub used: usize,
    pub capacity: usize,
    pub region: String,
}

impl fmt::Display for SramOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SRAM overflow allocating {} bytes for '{}': {}/{} bytes already used",
            self.requested, self.region, self.used, self.capacity
        )
    }
}

impl std::error::Error for SramOverflow {}

/// A named-region bump accountant for one tile's 48 kB SRAM.
#[derive(Clone, Debug)]
pub struct SramBudget {
    capacity: usize,
    regions: Vec<(String, usize)>,
    used: usize,
}

impl Default for SramBudget {
    fn default() -> Self {
        Self::new(TILE_SRAM_BYTES)
    }
}

impl SramBudget {
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            regions: Vec::new(),
            used: 0,
        }
    }

    /// Reserve `bytes` for a named region; fails if the tile would
    /// exceed its SRAM.
    pub fn alloc(&mut self, region: &str, bytes: usize) -> Result<(), SramOverflow> {
        if self.used + bytes > self.capacity {
            return Err(SramOverflow {
                requested: bytes,
                used: self.used,
                capacity: self.capacity,
                region: region.to_string(),
            });
        }
        self.regions.push((region.to_string(), bytes));
        self.used += bytes;
        Ok(())
    }

    pub fn used(&self) -> usize {
        self.used
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn remaining(&self) -> usize {
        self.capacity - self.used
    }

    /// Iterate `(region, bytes)` entries, e.g. for a memory-map report.
    pub fn regions(&self) -> impl Iterator<Item = (&str, usize)> {
        self.regions.iter().map(|(n, b)| (n.as_str(), *b))
    }
}

/// Per-tile hardware clock counter plus the scratch buffer of
/// per-timestep samples the paper's measurement harness records.
#[derive(Clone, Debug, Default)]
pub struct CycleCounter {
    now: u64,
    samples: Vec<u64>,
    last_mark: u64,
}

impl CycleCounter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the clock by `cycles`.
    pub fn advance(&mut self, cycles: u64) {
        self.now += cycles;
    }

    /// Current clock value.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Record the cycles elapsed since the previous mark into the scratch
    /// buffer (one sample per timestep).
    pub fn mark_timestep(&mut self) {
        self.samples.push(self.now - self.last_mark);
        self.last_mark = self.now;
    }

    /// Per-timestep samples recorded so far.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_48_kib() {
        let b = SramBudget::default();
        assert_eq!(b.capacity(), 49_152);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn allocation_tracks_usage_and_regions() {
        let mut b = SramBudget::new(1000);
        b.alloc("tables", 600).unwrap();
        b.alloc("buffers", 300).unwrap();
        assert_eq!(b.used(), 900);
        assert_eq!(b.remaining(), 100);
        let regions: Vec<_> = b.regions().collect();
        assert_eq!(regions, vec![("tables", 600), ("buffers", 300)]);
    }

    #[test]
    fn overflow_is_rejected_with_context() {
        let mut b = SramBudget::new(100);
        b.alloc("a", 80).unwrap();
        let err = b.alloc("b", 30).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.used, 80);
        assert_eq!(err.region, "b");
        // The failed allocation must not corrupt the accounting.
        assert_eq!(b.used(), 80);
        assert!(err.to_string().contains("SRAM overflow"));
    }

    #[test]
    fn exact_fit_is_allowed() {
        let mut b = SramBudget::new(100);
        b.alloc("all", 100).unwrap();
        assert_eq!(b.remaining(), 0);
        assert!(b.alloc("one more", 1).is_err());
    }

    #[test]
    fn cycle_counter_marks_deltas() {
        let mut c = CycleCounter::new();
        c.advance(100);
        c.mark_timestep();
        c.advance(250);
        c.mark_timestep();
        assert_eq!(c.samples(), &[100, 250]);
        assert_eq!(c.now(), 350);
    }
}
