//! Neighborhood reduction: the reverse of the marching multicast.
//!
//! Sec. VI-A-3 (force symmetry): "(·)ᵢⱼ terms can be computed when i < j
//! and the results sent from i to j. Bandwidth considerations make it
//! impractical to unicast back to the originating worker. Instead, a
//! neighborhood reduction operates as the reverse of neighborhood
//! multicast. The reverse step of multicast forwarding is naturally a
//! 2:1 sum reduction performed directly at the branch. The reduction
//! retains the multicast's systolic dataflow properties."
//!
//! [`simulate_line_reduction`] is the router-level model: in each phase
//! the role pattern of the multicast is reversed — the head *collects* a
//! sum from its b downstream tiles, with every body adding its own
//! contribution to the passing partial sum (the 2:1 add at the branch).
//! The same strip periodicity makes it contention-free with the same
//! closed-form cycle count, which the tests verify.

use crate::multicast::line_stage_cycles;
use std::collections::HashMap;

/// Result of a line-reduction stage.
#[derive(Clone, Debug)]
pub struct LineReductionResult {
    /// `sums[i]` — the reduction received by tile `i` in its head phase:
    /// the sum of `contributions[j][i]` over the `b` tiles downstream.
    pub sums: Vec<Vec<f64>>,
    pub cycles: u64,
    pub max_link_load: u32,
}

/// Simulate one reduction stage along a line of `n` tiles.
///
/// `contributions[j]` holds tile `j`'s payload vector *for each
/// direction*: the same `l`-word vector is folded into the partial sum
/// flowing toward whichever head is collecting. Distances mirror the
/// multicast: tile `i` receives the sum over `j` with `1 ≤ |j−i| ≤ b`
/// (per direction), each word stream reduced 2:1 at every hop.
#[allow(clippy::needless_range_loop)] // lockstep indexing over parallel arrays
pub fn simulate_line_reduction(contributions: &[Vec<f64>], b: usize) -> LineReductionResult {
    let n = contributions.len();
    assert!(b >= 1, "reduction distance must be at least 1");
    assert!(n >= 2);
    let l_max = contributions.iter().map(Vec::len).max().unwrap();
    assert!(l_max >= 1);

    let mut sums: Vec<Vec<f64>> = vec![vec![0.0; l_max]; n];
    let mut occupancy: HashMap<(usize, i8, u64), u32> = HashMap::new();
    let mut max_cycle = 0u64;
    let mut max_link_load = 0u32;

    // Mirror of the multicast schedule: in phase p (per direction), the
    // collecting head is the tile that would have been the multicast
    // head; data flows *toward* it from its b downstream tiles, reduced
    // at each hop. The link/cycle pattern is the time-reverse of the
    // multicast stream for the same phase, so the contention argument
    // carries over; we still assert it explicitly.
    for dir in [1i64, -1i64] {
        for phase in 0..=(b as u64) {
            let phase_start = phase * (l_max as u64 + 1);
            for x in 0..n {
                // Time-reversal of the multicast: collection data flows
                // *toward* the head, so heads march in the flow direction
                // (−x when collecting from the +x side), the mirror of
                // the multicast's downstream-advancing mask. Advancing
                // the other way lets a later phase's partial-sum stream
                // collide with an earlier phase's still-draining stream.
                let is_head = if dir == 1 {
                    (x as u64 + phase).is_multiple_of(b as u64 + 1)
                } else {
                    x as u64 % (b as u64 + 1) == phase
                };
                if !is_head {
                    continue;
                }
                // The farthest contributor is b hops downstream; its words
                // flow upstream hop by hop, each hop's link carrying the
                // running partial sum. Hop k's link (from x+dir·k toward
                // x+dir·(k−1)) carries word w during cycle
                // phase_start + w + (b − k), so the head receives the
                // fully reduced word w at cycle phase_start + w + b − 1.
                let mut any = false;
                for k in (1..=(b as i64)).rev() {
                    let src = x as i64 + dir * k;
                    if src < 0 || src >= n as i64 {
                        continue;
                    }
                    any = true;
                    let contrib = &contributions[src as usize];
                    for w in 0..l_max {
                        if let Some(v) = contrib.get(w) {
                            sums[x][w] += v;
                        }
                        let cycle = phase_start + w as u64 + (b as i64 - k) as u64;
                        let load = occupancy
                            .entry((src as usize, dir as i8, cycle))
                            .or_insert(0);
                        *load += 1;
                        max_link_load = max_link_load.max(*load);
                        assert!(
                            *load <= 1,
                            "reduction link contention at {src} dir {dir} cycle {cycle}"
                        );
                        max_cycle = max_cycle.max(cycle + 1);
                    }
                }
                // Completion command wavelet, as in the multicast.
                if any {
                    let t0 = x as i64 + dir;
                    if (0..n as i64).contains(&t0) {
                        let cycle = phase_start + l_max as u64;
                        let load = occupancy.entry((x, dir as i8, cycle)).or_insert(0);
                        *load += 1;
                        max_link_load = max_link_load.max(*load);
                        max_cycle = max_cycle.max(cycle + 1);
                    }
                }
            }
        }
    }

    LineReductionResult {
        sums,
        cycles: max_cycle,
        max_link_load,
    }
}

/// Closed-form cycles for a reduction stage — identical to the multicast
/// stage it reverses.
pub fn line_reduction_cycles(b: usize, l: usize) -> u64 {
    line_stage_cycles(b, l)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_sums_are_exact() {
        let n = 14usize;
        let contributions: Vec<Vec<f64>> =
            (0..n).map(|i| vec![i as f64, 100.0 + i as f64]).collect();
        for b in 1..=4usize {
            let res = simulate_line_reduction(&contributions, b);
            for i in 0..n {
                let mut expect = vec![0.0; 2];
                for j in 0..n {
                    if j != i && j.abs_diff(i) <= b {
                        expect[0] += j as f64;
                        expect[1] += 100.0 + j as f64;
                    }
                }
                assert_eq!(res.sums[i], expect, "tile {i} b {b}");
            }
        }
    }

    #[test]
    fn reduction_is_contention_free() {
        for b in 1..=6usize {
            for l in 1..=4usize {
                let contributions: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64; l]).collect();
                let res = simulate_line_reduction(&contributions, b);
                assert_eq!(res.max_link_load, 1, "b={b} l={l}");
            }
        }
    }

    #[test]
    fn reduction_cycles_match_the_multicast_closed_form() {
        for b in 1..=5usize {
            for l in 1..=6usize {
                let contributions: Vec<Vec<f64>> =
                    (0..((b + 1) * 4)).map(|i| vec![i as f64; l]).collect();
                let res = simulate_line_reduction(&contributions, b);
                assert_eq!(res.cycles, line_reduction_cycles(b, l), "b={b} l={l}");
            }
        }
    }

    #[test]
    fn edge_tiles_receive_clipped_sums() {
        let contributions: Vec<Vec<f64>> = (0..6).map(|i| vec![1.0 + i as f64]).collect();
        let res = simulate_line_reduction(&contributions, 2);
        // Tile 0 sums tiles 1, 2 only.
        assert_eq!(res.sums[0], vec![2.0 + 3.0]);
        // Tile 5 sums tiles 3, 4.
        assert_eq!(res.sums[5], vec![4.0 + 5.0]);
    }
}
