//! Cycle-level simulation of the systolic *marching multicast*
//! (paper Sec. III-B, Figs. 3 and 4).
//!
//! The neighborhood exchange runs as consecutive horizontal and vertical
//! stages. Within a stage, the worker grid is partitioned into strips of
//! width `b+1`; the stage runs `b+1` phases, and in phase `p` every tile
//! whose in-line position is ≡ p (mod b+1) acts as a *head*, multicasting
//! its payload `b` hops downstream. The downstream `b−1` tiles act as
//! *bodies* (deliver to core + forward) and the `b`-th as the *tail*
//! (deliver only). When a head finishes its vector it emits a command
//! wavelet that advances the role assignment one tile downstream —
//! exactly the Fig. 4 state machine, made globally consistent by the
//! (mod b+1) strip periodicity.
//!
//! The simulator moves every word over an explicit per-cycle link
//! occupancy map and *asserts* the paper's contention-freedom claim: no
//! mesh link ever carries two words of the same virtual channel in the
//! same cycle. Two virtual channels (one per direction) run concurrently
//! per stage, on physically separate link directions.
//!
//! This cycle-level model is used to validate the communication schedule
//! and its closed-form cycle count on small fabrics; the at-scale MD
//! driver performs the same data movement functionally and charges
//! cycles from the calibrated [`crate::cost::CostModel`].

use crate::geometry::Extent;
use rayon::prelude::*;
use std::collections::HashMap;

/// A payload delivered to one tile during a line stage.
#[derive(Clone, Debug, PartialEq)]
pub struct Delivery<W> {
    /// In-line index of the sending tile.
    pub source: usize,
    /// Cycle at which the last word arrived.
    pub arrival_cycle: u64,
    /// The payload words, in transmission order.
    pub words: Vec<W>,
}

/// Result of simulating one marching-multicast stage along a line of
/// tiles (one row or one column).
#[derive(Clone, Debug)]
pub struct LineStageResult<W> {
    /// `delivered[i]` — payloads received by tile `i`, in arrival order.
    pub delivered: Vec<Vec<Delivery<W>>>,
    /// Total cycles until the stage is quiescent.
    pub cycles: u64,
    /// Total words that crossed mesh links (data + command wavelets).
    pub words_moved: u64,
    /// Peak simultaneous occupancy of any (link, VC, cycle) — the
    /// contention-freedom claim requires this to be exactly 1.
    pub max_link_load: u32,
}

/// Closed-form cycle count for one line stage with propagation distance
/// `b` and payload length `l` words: `b+1` phases of `l+1` slots each
/// (vector + command wavelet), plus the pipeline drain to the tail.
pub fn line_stage_cycles(b: usize, l: usize) -> u64 {
    assert!(b >= 1 && l >= 1);
    let (b, l) = (b as u64, l as u64);
    let data_last = b * (l + 1) + (l - 1) + (b - 1);
    let cmd_last = b * (l + 1) + l;
    data_last.max(cmd_last) + 1
}

/// Cycle count for the full two-stage neighborhood exchange of
/// `words_per_atom`-word payloads: a horizontal stage moving single-atom
/// vectors and a vertical stage moving the accumulated `(2b+1)`-atom
/// vectors (Sec. III-B: "the vertical stage differs only in its transfer
/// size").
pub fn exchange_cycles(b: usize, words_per_atom: usize) -> u64 {
    line_stage_cycles(b, words_per_atom) + line_stage_cycles(b, (2 * b + 1) * words_per_atom)
}

/// Simulate one marching-multicast stage along a line. `payloads[i]` is
/// tile `i`'s outgoing vector (lengths may differ near fabric edges; the
/// phase schedule uses the maximum).
#[allow(clippy::needless_range_loop)] // lockstep indexing over parallel arrays
pub fn simulate_line_stage<W: Clone>(payloads: &[Vec<W>], b: usize) -> LineStageResult<W> {
    let n = payloads.len();
    assert!(b >= 1, "propagation distance must be at least 1");
    assert!(n >= 2, "a line stage needs at least two tiles");
    let l_max = payloads.iter().map(Vec::len).max().unwrap();
    assert!(l_max >= 1, "payloads must be non-empty");

    let mut delivered: Vec<Vec<Delivery<W>>> = vec![Vec::new(); n];
    // Occupancy key: (link origin tile, direction, cycle).
    let mut occupancy: HashMap<(usize, i8, u64), u32> = HashMap::new();
    let mut max_cycle: u64 = 0;
    let mut words_moved: u64 = 0;
    let mut max_link_load: u32 = 0;

    for dir in [1i64, -1i64] {
        for phase in 0..=(b as u64) {
            let phase_start = phase * (l_max as u64 + 1);
            for x in 0..n {
                // The multicast domain marches *downstream* (in the data
                // flow direction): rightward lanes advance the head in +x,
                // leftward lanes in −x. Advancing upstream would let a new
                // head's stream collide with the tail of an earlier
                // phase's stream still draining through the pipeline.
                let is_head = if dir == 1 {
                    x as u64 % (b as u64 + 1) == phase
                } else {
                    (x as u64 + phase).is_multiple_of(b as u64 + 1)
                };
                if !is_head {
                    continue;
                }
                let payload = &payloads[x];
                let l = payload.len();
                // Data words: word w crosses hop k's link
                // (from x + dir·(k−1)) during cycle phase_start + w + k − 1.
                for k in 1..=(b as i64) {
                    let target = x as i64 + dir * k;
                    if target < 0 || target >= n as i64 {
                        break; // clipped at the fabric edge
                    }
                    let link_from = (x as i64 + dir * (k - 1)) as usize;
                    for w in 0..l {
                        let cycle = phase_start + w as u64 + k as u64 - 1;
                        let load = occupancy.entry((link_from, dir as i8, cycle)).or_insert(0);
                        *load += 1;
                        max_link_load = max_link_load.max(*load);
                        assert!(
                            *load <= 1,
                            "link contention: link {link_from} dir {dir} cycle {cycle}"
                        );
                        words_moved += 1;
                        max_cycle = max_cycle.max(cycle + 1);
                    }
                    if l > 0 {
                        let arrival = phase_start + (l as u64 - 1) + k as u64 - 1;
                        delivered[target as usize].push(Delivery {
                            source: x,
                            arrival_cycle: arrival,
                            words: payload.clone(),
                        });
                    }
                }
                // Command wavelet advancing the role assignment: one word
                // on the head's downstream link at the slot after its data.
                let t0 = x as i64 + dir;
                if (0..n as i64).contains(&t0) {
                    let cycle = phase_start + l_max as u64;
                    let load = occupancy.entry((x, dir as i8, cycle)).or_insert(0);
                    *load += 1;
                    max_link_load = max_link_load.max(*load);
                    assert!(*load <= 1, "command wavelet contention at link {x}");
                    words_moved += 1;
                    max_cycle = max_cycle.max(cycle + 1);
                }
            }
        }
    }

    for d in &mut delivered {
        d.sort_by_key(|d| (d.arrival_cycle, d.source));
    }

    LineStageResult {
        delivered,
        cycles: max_cycle,
        words_moved,
        max_link_load,
    }
}

/// Result of the full two-stage 2-D neighborhood exchange.
#[derive(Clone, Debug)]
pub struct ExchangeResult<W> {
    /// `received[flat]` — (source flat index, payload) for every other
    /// tile in the `(2b+1)²` neighborhood, sorted by source index.
    pub received: Vec<Vec<(usize, Vec<W>)>>,
    pub horizontal_cycles: u64,
    pub vertical_cycles: u64,
}

impl<W> ExchangeResult<W> {
    pub fn total_cycles(&self) -> u64 {
        self.horizontal_cycles + self.vertical_cycles
    }
}

/// Simulate the complete neighborhood exchange on an `extent` fabric at
/// the router level: horizontal marching multicast of each tile's own
/// payload, then vertical marching multicast of the accumulated row
/// data. Rows (then columns) are mutually independent line stages, so
/// each stage fans out across the worker pool; the stage cycle count is
/// the max over lines, combined in line order.
pub fn simulate_neighborhood_exchange<W: Clone + Send + Sync>(
    extent: Extent,
    payloads: &[Vec<W>],
    b: usize,
) -> ExchangeResult<W> {
    assert_eq!(payloads.len(), extent.count());
    let (w, h) = (extent.width, extent.height);

    // ---- Horizontal stage: rows exchange single-atom payloads. ----
    type RowData<W> = Vec<Vec<(usize, Vec<W>)>>;
    let row_results: Vec<(u64, RowData<W>)> = (0..h)
        .into_par_iter()
        .map(|y| {
            let row_payloads: Vec<Vec<W>> = (0..w).map(|x| payloads[y * w + x].clone()).collect();
            let res = simulate_line_stage(&row_payloads, b);
            let mut row: RowData<W> = vec![Vec::new(); w];
            for (x, tile) in row.iter_mut().enumerate() {
                let flat = y * w + x;
                // Own payload plus everything received, ordered by source
                // x so the vertical payload layout is deterministic.
                tile.push((flat, payloads[flat].clone()));
                for d in &res.delivered[x] {
                    tile.push((y * w + d.source, d.words.clone()));
                }
                tile.sort_by_key(|(src, _)| *src);
            }
            (res.cycles, row)
        })
        .collect();
    let mut horizontal_cycles = 0;
    let mut row_data: RowData<W> = Vec::with_capacity(extent.count());
    for (cycles, row) in row_results {
        horizontal_cycles = horizontal_cycles.max(cycles);
        row_data.extend(row);
    }

    // ---- Vertical stage: columns exchange the accumulated row data,
    //      each word tagged with its original source tile. ----
    let row_data = &row_data;
    // Per column: (stage cycles, per-tile (flat index, gathered entries)).
    type ColData<W> = Vec<(usize, Vec<(usize, Vec<W>)>)>;
    let col_results: Vec<(u64, ColData<W>)> = (0..w)
        .into_par_iter()
        .map(|x| {
            let col_payloads: Vec<Vec<(usize, W)>> = (0..h)
                .map(|y| {
                    row_data[y * w + x]
                        .iter()
                        .flat_map(|(src, words)| words.iter().map(|wd| (*src, wd.clone())))
                        .collect()
                })
                .collect();
            let res = simulate_line_stage(&col_payloads, b);
            let col = (0..h)
                .map(|y| {
                    let flat = y * w + x;
                    let mut entries: Vec<(usize, Vec<W>)> = row_data[flat]
                        .iter()
                        .filter(|(src, _)| *src != flat)
                        .cloned()
                        .collect();
                    for d in &res.delivered[y] {
                        // Ungroup the tagged word stream back into
                        // per-source payloads (words from one source are
                        // contiguous).
                        let mut it = d.words.iter();
                        if let Some(first) = it.next() {
                            let mut cur_src = first.0;
                            let mut cur: Vec<W> = vec![first.1.clone()];
                            for (src, word) in it {
                                if *src == cur_src {
                                    cur.push(word.clone());
                                } else {
                                    entries.push((cur_src, std::mem::take(&mut cur)));
                                    cur_src = *src;
                                    cur.push(word.clone());
                                }
                            }
                            entries.push((cur_src, cur));
                        }
                    }
                    entries.sort_by_key(|(src, _)| *src);
                    (flat, entries)
                })
                .collect();
            (res.cycles, col)
        })
        .collect();
    let mut vertical_cycles = 0;
    let mut received: Vec<Vec<(usize, Vec<W>)>> = vec![Vec::new(); extent.count()];
    for (cycles, col) in col_results {
        vertical_cycles = vertical_cycles.max(cycles);
        for (flat, entries) in col {
            received[flat] = entries;
        }
    }

    ExchangeResult {
        received,
        horizontal_cycles,
        vertical_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Coord;

    #[test]
    fn line_stage_delivers_to_every_tile_within_b() {
        let n = 12;
        let payloads: Vec<Vec<u32>> = (0..n).map(|i| vec![i as u32 * 10, i as u32]).collect();
        for b in 1..=4 {
            let res = simulate_line_stage(&payloads, b);
            for i in 0..n {
                let mut sources: Vec<usize> = res.delivered[i].iter().map(|d| d.source).collect();
                sources.sort_unstable();
                let expected: Vec<usize> = (i.saturating_sub(b)..(i + b + 1).min(n))
                    .filter(|&j| j != i)
                    .collect();
                assert_eq!(sources, expected, "tile {i} b {b}");
            }
        }
    }

    #[test]
    fn line_stage_preserves_payload_contents() {
        let payloads: Vec<Vec<u32>> = (0..8).map(|i| vec![i, i + 100, i + 200]).collect();
        let res = simulate_line_stage(&payloads, 2);
        for i in 0..8 {
            for d in &res.delivered[i] {
                assert_eq!(d.words, payloads[d.source], "tile {i} from {}", d.source);
            }
        }
    }

    #[test]
    fn line_stage_is_contention_free() {
        for b in 1..=5 {
            for l in 1..=6 {
                let payloads: Vec<Vec<u32>> = (0..20).map(|i| vec![i; l]).collect();
                let res = simulate_line_stage(&payloads, b);
                assert_eq!(res.max_link_load, 1, "b={b} l={l}");
            }
        }
    }

    #[test]
    fn line_stage_cycles_match_closed_form() {
        for b in 1..=5 {
            for l in 1..=8 {
                let payloads: Vec<Vec<u32>> =
                    (0..((b + 1) * 4)).map(|i| vec![i as u32; l]).collect();
                let res = simulate_line_stage(&payloads, b);
                assert_eq!(res.cycles, line_stage_cycles(b, l), "b={b} l={l}");
            }
        }
    }

    #[test]
    fn stage_cost_is_linear_in_payload_and_distance() {
        // The per-candidate multicast cost in the paper's linear model
        // stems from this linearity.
        let c1 = line_stage_cycles(3, 4);
        let c2 = line_stage_cycles(3, 8);
        assert!(c2 < 2 * c1, "payload doubling must be sub-2x (pipelining)");
        assert!(c2 > c1);
    }

    #[test]
    fn exchange_matches_direct_neighborhood_gather() {
        let extent = Extent::new(9, 7);
        let payloads: Vec<Vec<u32>> = (0..extent.count())
            .map(|i| vec![i as u32, 1000 + i as u32])
            .collect();
        for b in [1usize, 2, 3] {
            let res = simulate_neighborhood_exchange(extent, &payloads, b);
            for (flat, entries) in res.received.iter().enumerate() {
                let center = extent.coord(flat);
                let mut expected: Vec<usize> = extent
                    .neighborhood(center, b as i32)
                    .filter(|&c| c != center)
                    .map(|c| extent.index(c))
                    .collect();
                expected.sort_unstable();
                let got: Vec<usize> = entries.iter().map(|(s, _)| *s).collect();
                assert_eq!(got, expected, "tile {flat} b {b}");
                for (src, words) in entries {
                    assert_eq!(words, &payloads[*src]);
                }
            }
        }
    }

    #[test]
    fn exchange_corner_tiles_get_clipped_neighborhoods() {
        let extent = Extent::new(6, 6);
        let payloads: Vec<Vec<u32>> = (0..36).map(|i| vec![i as u32]).collect();
        let res = simulate_neighborhood_exchange(extent, &payloads, 2);
        // Corner (0,0): 3×3 neighborhood minus self = 8.
        assert_eq!(res.received[0].len(), 8);
        // Interior (3,3): 5×5 minus self = 24.
        let interior = extent.index(Coord::new(3, 3));
        assert_eq!(res.received[interior].len(), 24);
    }

    #[test]
    fn vertical_stage_dominates_exchange_cost() {
        // The vertical stage moves (2b+1)× the data; the closed form must
        // reflect that.
        let b = 3;
        let l = 4;
        let total = exchange_cycles(b, l);
        let horizontal = line_stage_cycles(b, l);
        let vertical = line_stage_cycles(b, (2 * b + 1) * l);
        assert_eq!(total, horizontal + vertical);
        assert!(vertical > 4 * horizontal);
    }

    #[test]
    fn simulated_exchange_cycles_match_closed_form() {
        let extent = Extent::new(8, 8);
        let l = 4;
        let payloads: Vec<Vec<u32>> = (0..extent.count()).map(|i| vec![i as u32; l]).collect();
        for b in [1usize, 2, 3] {
            let res = simulate_neighborhood_exchange(extent, &payloads, b);
            assert_eq!(res.horizontal_cycles, line_stage_cycles(b, l), "h b={b}");
            // Interior columns carry (2b+1)·l words per tile; edge columns
            // carry less, so the max equals the interior closed form.
            assert_eq!(
                res.vertical_cycles,
                line_stage_cycles(b, (2 * b + 1) * l),
                "v b={b}"
            );
            assert_eq!(res.total_cycles(), exchange_cycles(b, l));
        }
    }

    #[test]
    fn embedding_exchange_is_much_cheaper_than_position_exchange() {
        // Positions are 3–4 words; embedding energies are 1 word
        // (Sec. III-B: 12 bytes vs 4 bytes).
        assert!(exchange_cycles(4, 1) < exchange_cycles(4, 4) / 2);
    }
}
