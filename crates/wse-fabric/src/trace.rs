//! Timestep cycle traces and the paper's stability statistics.
//!
//! Sec. V-B reports that per-tile timestep times are remarkably stable:
//! standard deviation 0.11% per tile (3,477 ± 3.77 cycles), dropping to
//! 91 ppm when per-timestep times are first averaged across the array.
//! [`TimestepTrace`] reproduces both reductions from raw per-tile,
//! per-timestep cycle samples.

/// Per-tile, per-timestep cycle samples: `samples[tile][timestep]`.
#[derive(Clone, Debug, Default)]
pub struct TimestepTrace {
    samples: Vec<Vec<f64>>,
}

/// Mean and standard deviation of a sample set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stats {
    pub mean: f64,
    pub std_dev: f64,
}

impl Stats {
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty());
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        Stats {
            mean,
            std_dev: var.sqrt(),
        }
    }

    /// Relative standard deviation (σ/μ).
    pub fn relative(&self) -> f64 {
        self.std_dev / self.mean
    }
}

impl TimestepTrace {
    pub fn new(n_tiles: usize) -> Self {
        Self {
            samples: vec![Vec::new(); n_tiles],
        }
    }

    /// Record one timestep's cycle count for one tile.
    pub fn record(&mut self, tile: usize, cycles: f64) {
        self.samples[tile].push(cycles);
    }

    pub fn n_tiles(&self) -> usize {
        self.samples.len()
    }

    pub fn n_timesteps(&self) -> usize {
        self.samples.first().map_or(0, Vec::len)
    }

    /// Pooled per-tile statistics: every (tile, timestep) sample treated
    /// independently — the paper's "on a per-tile basis" 0.11% figure.
    pub fn per_tile_stats(&self) -> Stats {
        let all: Vec<f64> = self.samples.iter().flatten().copied().collect();
        Stats::of(&all)
    }

    /// Array-averaged statistics: average each timestep across all tiles
    /// first, then take the deviation of those means — the paper's
    /// 91 ppm figure. Local synchronization through the neighborhood
    /// exchange makes per-timestep noise average out across the array.
    pub fn array_mean_stats(&self) -> Stats {
        let steps = self.n_timesteps();
        assert!(steps > 0, "trace has no timesteps");
        let n_tiles = self.samples.len() as f64;
        let means: Vec<f64> = (0..steps)
            .map(|k| self.samples.iter().map(|t| t[k]).sum::<f64>() / n_tiles)
            .collect();
        Stats::of(&means)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    #[test]
    fn stats_of_constant_sequence() {
        let s = Stats::of(&[5.0; 10]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn stats_of_known_values() {
        let s = Stats::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
    }

    #[test]
    fn array_averaging_suppresses_independent_tile_noise() {
        // Independent per-tile jitter of relative size σ shrinks by
        // ~1/sqrt(n_tiles) after array averaging — the mechanism behind
        // the paper's 0.11% → 91 ppm reduction.
        let n_tiles = 400;
        let n_steps = 200;
        let mut rng = StdRng::seed_from_u64(99);
        let mut trace = TimestepTrace::new(n_tiles);
        for tile in 0..n_tiles {
            for _ in 0..n_steps {
                let noise: f64 = rng.gen_range(-6.0..6.0);
                trace.record(tile, 3477.0 + noise);
            }
        }
        let per_tile = trace.per_tile_stats();
        let array = trace.array_mean_stats();
        assert!((per_tile.mean - 3477.0).abs() < 1.0);
        let reduction = per_tile.relative() / array.relative();
        let expected = (n_tiles as f64).sqrt();
        assert!(
            reduction > expected * 0.6 && reduction < expected * 1.6,
            "reduction {reduction}, expected ≈ {expected}"
        );
    }

    #[test]
    fn trace_dimensions() {
        let mut t = TimestepTrace::new(3);
        for tile in 0..3 {
            t.record(tile, 1.0);
            t.record(tile, 2.0);
        }
        assert_eq!(t.n_tiles(), 3);
        assert_eq!(t.n_timesteps(), 2);
    }
}
