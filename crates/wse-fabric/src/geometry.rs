//! Tile coordinates and neighborhood geometry on the wafer mesh.
//!
//! The WSE is a Cartesian grid of tiles; the MD algorithm's candidate
//! exchange covers the square `(2b+1) × (2b+1)` neighborhood around each
//! tile (paper Sec. III-A/B). Distances on the fabric are measured in the
//! max norm (Chebyshev distance), matching the paper's assignment-cost
//! definition.

/// A tile position on the wafer: column `x`, row `y`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coord {
    pub x: i32,
    pub y: i32,
}

impl Coord {
    pub const fn new(x: i32, y: i32) -> Self {
        Self { x, y }
    }

    /// Chebyshev (max-norm) distance — the fabric-neighborhood metric.
    #[inline]
    pub fn chebyshev(self, o: Coord) -> i32 {
        (self.x - o.x).abs().max((self.y - o.y).abs())
    }

    /// Manhattan distance — the number of mesh hops under X-Y routing.
    #[inline]
    pub fn manhattan(self, o: Coord) -> i32 {
        (self.x - o.x).abs() + (self.y - o.y).abs()
    }
}

/// Rectangular fabric extent `width × height` with row-major indexing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Extent {
    pub width: usize,
    pub height: usize,
}

impl Extent {
    pub const fn new(width: usize, height: usize) -> Self {
        Self { width, height }
    }

    pub fn count(self) -> usize {
        self.width * self.height
    }

    #[inline]
    pub fn contains(self, c: Coord) -> bool {
        c.x >= 0 && c.y >= 0 && (c.x as usize) < self.width && (c.y as usize) < self.height
    }

    /// Row-major linear index of a coordinate (must be in range).
    #[inline]
    pub fn index(self, c: Coord) -> usize {
        debug_assert!(self.contains(c));
        c.y as usize * self.width + c.x as usize
    }

    /// Inverse of [`Extent::index`].
    #[inline]
    pub fn coord(self, idx: usize) -> Coord {
        debug_assert!(idx < self.count());
        Coord::new((idx % self.width) as i32, (idx / self.width) as i32)
    }

    /// Iterate the `(2b+1)²` neighborhood of `center` clipped to the
    /// fabric, in deterministic row-major order (the order candidates
    /// arrive in, which makes the paper's neighbor list "trivially a list
    /// of ordinal numbers").
    pub fn neighborhood(self, center: Coord, b: i32) -> impl Iterator<Item = Coord> {
        let (w, h) = (self.width as i32, self.height as i32);
        let x0 = (center.x - b).max(0);
        let x1 = (center.x + b).min(w - 1);
        let y0 = (center.y - b).max(0);
        let y1 = (center.y + b).min(h - 1);
        (y0..=y1).flat_map(move |y| (x0..=x1).map(move |x| Coord::new(x, y)))
    }

    /// All coordinates in row-major order.
    pub fn iter(self) -> impl Iterator<Item = Coord> {
        let w = self.width as i32;
        let n = self.count();
        (0..n).map(move |i| Coord::new(i as i32 % w, i as i32 / w))
    }
}

/// The WSE-2 fabric extent used in the paper: roughly a 920 × 920 array
/// of ~850,000 cores (Sec. IV-A).
pub const WSE2_EXTENT: Extent = Extent::new(924, 920);

/// Number of cores on the WSE-2 as quoted in the paper.
pub const WSE2_CORES: usize = 850_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chebyshev_and_manhattan() {
        let a = Coord::new(2, 3);
        let b = Coord::new(-1, 5);
        assert_eq!(a.chebyshev(b), 3);
        assert_eq!(a.manhattan(b), 5);
        assert_eq!(a.chebyshev(a), 0);
    }

    #[test]
    fn index_round_trip() {
        let e = Extent::new(7, 5);
        for idx in 0..e.count() {
            assert_eq!(e.index(e.coord(idx)), idx);
        }
    }

    #[test]
    fn neighborhood_size_in_the_interior() {
        let e = Extent::new(20, 20);
        let n: Vec<_> = e.neighborhood(Coord::new(10, 10), 2).collect();
        assert_eq!(n.len(), 25);
        // All within Chebyshev distance 2.
        assert!(n.iter().all(|c| c.chebyshev(Coord::new(10, 10)) <= 2));
    }

    #[test]
    fn neighborhood_clips_at_edges() {
        let e = Extent::new(10, 10);
        let n: Vec<_> = e.neighborhood(Coord::new(0, 0), 3).collect();
        assert_eq!(n.len(), 16); // 4×4 corner
        let n: Vec<_> = e.neighborhood(Coord::new(9, 5), 2).collect();
        assert_eq!(n.len(), 15); // 3 wide × 5 tall
    }

    #[test]
    fn neighborhood_is_row_major_deterministic() {
        let e = Extent::new(10, 10);
        let n: Vec<_> = e.neighborhood(Coord::new(5, 5), 1).collect();
        assert_eq!(n[0], Coord::new(4, 4));
        assert_eq!(n[1], Coord::new(5, 4));
        assert_eq!(n[8], Coord::new(6, 6));
    }

    #[test]
    fn wse2_extent_covers_the_quoted_core_count() {
        assert!(WSE2_EXTENT.count() >= WSE2_CORES);
        // 94% utilization claim: 801,792 atoms on 850k cores.
        assert!((801_792.0 / WSE2_CORES as f64 - 0.94).abs() < 0.01);
    }
}
