//! Calibrated datapath/communication cost model for the WSE MD kernel.
//!
//! The paper reduces a timestep's wall-clock time to a linear model
//! (Table II, r² = 0.9998):
//!
//! ```text
//! t_wall = A·n_candidate + B·n_interaction + C
//! A = 26.6 ns, B = 71.4 ns, C = 574.0 ns
//! ```
//!
//! and re-expresses it in the Table V basis by splitting A into a
//! multicast share (6 ns) and a candidate-reject share (≈21 ns):
//!
//! ```text
//! t_wall = Mcast·n_cand + Miss·(n_cand − n_inter) + Interaction·n_inter + Fixed
//! Mcast = 6 ns, Miss = 20.6 ns, Interaction = 92 ns, Fixed = 574 ns
//! ```
//!
//! The two bases are algebraically identical
//! (`Miss = A − Mcast`, `Interaction = A − Mcast + B + Mcast = A + B − ...`,
//! see [`CostModel::table2_coefficients`]). This module carries the model,
//! the clock calibration, and the Fig. 10 optimization staircase.

/// WSE-2 clock frequency in GHz, calibrated so the paper's quoted
/// per-timestep cycle count (3,477 cycles) and the measured tantalum rate
/// (274,016 timesteps/s → 3,649.4 ns/step) agree.
pub const WSE2_CLOCK_GHZ: f64 = 3477.0 / 3649.4;

/// Nanoseconds per clock cycle.
pub fn ns_per_cycle() -> f64 {
    1.0 / WSE2_CLOCK_GHZ
}

/// The per-phase linear cost model in nanoseconds (Table V basis).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Neighborhood multicast cost per candidate received.
    pub mcast_ns: f64,
    /// Processing cost per *rejected* candidate (distance check + skip).
    pub miss_ns: f64,
    /// Processing cost per accepted interaction (distance check, splines,
    /// embedding and force terms).
    pub interaction_ns: f64,
    /// Fixed per-timestep cost (embedding self-term, integration, control).
    pub fixed_ns: f64,
}

impl CostModel {
    /// The paper's measured baseline (Table II / Table V first row).
    pub fn paper_baseline() -> Self {
        Self {
            mcast_ns: 6.0,
            miss_ns: 20.6,
            interaction_ns: 92.0,
            fixed_ns: 574.0,
        }
    }

    /// Wall-clock nanoseconds for one timestep with `n_cand` candidates
    /// and `n_inter` accepted interactions per atom.
    pub fn timestep_ns(&self, n_cand: f64, n_inter: f64) -> f64 {
        debug_assert!(n_inter <= n_cand);
        self.mcast_ns * n_cand
            + self.miss_ns * (n_cand - n_inter)
            + self.interaction_ns * n_inter
            + self.fixed_ns
    }

    /// Timestep cost in clock cycles.
    pub fn timestep_cycles(&self, n_cand: f64, n_inter: f64) -> f64 {
        self.timestep_ns(n_cand, n_inter) * WSE2_CLOCK_GHZ
    }

    /// Simulation rate in timesteps per second.
    pub fn timesteps_per_second(&self, n_cand: f64, n_inter: f64) -> f64 {
        1e9 / self.timestep_ns(n_cand, n_inter)
    }

    /// Equivalent Table II coefficients `(A, B, C)` in nanoseconds.
    pub fn table2_coefficients(&self) -> (f64, f64, f64) {
        let a = self.mcast_ns + self.miss_ns;
        let b = self.interaction_ns - self.miss_ns;
        (a, b, self.fixed_ns)
    }

    /// Apply multiplicative factors to each component (used by the
    /// Table V projections and the Fig. 10 staircase).
    pub fn scaled(&self, mcast: f64, miss: f64, interaction: f64, fixed: f64) -> Self {
        Self {
            mcast_ns: self.mcast_ns * mcast,
            miss_ns: self.miss_ns * miss,
            interaction_ns: self.interaction_ns * interaction,
            fixed_ns: self.fixed_ns * fixed,
        }
    }
}

/// One entry in the Fig. 10 optimization staircase: a named code change
/// and the overall slowdown factor relative to the performance-model
/// target *after* the change is applied.
#[derive(Clone, Copy, Debug)]
pub struct OptimizationStep {
    pub name: &'static str,
    /// Whether the change was made in the Tungsten source or by editing
    /// compiler assembly output (Sec. V-G splits the effort into these
    /// two campaigns).
    pub level: OptimizationLevel,
    /// t_measured / t_model after this change (1.0 = at target).
    pub slowdown: f64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OptimizationLevel {
    /// High-level, domain-specific-language change.
    Tungsten,
    /// Manual edit of the compiler's assembly output.
    Assembly,
}

/// The 19-step optimization campaign of Fig. 10 (Sec. V-G): the first
/// functioning code was 5.6× slower than the model; Tungsten-level work
/// brought it within 2×; assembly-level work closed the rest of the gap
/// (true-crystal runs end 1–3% *better* than the model, Sec. V-B).
pub fn fig10_campaign() -> Vec<OptimizationStep> {
    use OptimizationLevel::*;
    vec![
        OptimizationStep {
            name: "first functioning EAM code",
            level: Tungsten,
            slowdown: 5.60,
        },
        OptimizationStep {
            name: "loop vectorization: density pass",
            level: Tungsten,
            slowdown: 4.70,
        },
        OptimizationStep {
            name: "loop vectorization: force pass",
            level: Tungsten,
            slowdown: 3.95,
        },
        OptimizationStep {
            name: "eliminate unused multi-species support",
            level: Tungsten,
            slowdown: 3.40,
        },
        OptimizationStep {
            name: "interleave spline terms in memory layout",
            level: Tungsten,
            slowdown: 2.95,
        },
        OptimizationStep {
            name: "hoist candidate-loop conditionals",
            level: Tungsten,
            slowdown: 2.60,
        },
        OptimizationStep {
            name: "fuse distance check with gather",
            level: Tungsten,
            slowdown: 2.30,
        },
        OptimizationStep {
            name: "minimize conditional logic in reject path",
            level: Tungsten,
            slowdown: 2.10,
        },
        OptimizationStep {
            name: "batch neighbor-list compaction",
            level: Tungsten,
            slowdown: 2.00,
        },
        OptimizationStep {
            name: "reorder instructions to hide FP latency",
            level: Assembly,
            slowdown: 1.78,
        },
        OptimizationStep {
            name: "reuse stream descriptors across phases",
            level: Assembly,
            slowdown: 1.58,
        },
        OptimizationStep {
            name: "shift array offsets to avoid bank conflicts",
            level: Assembly,
            slowdown: 1.42,
        },
        OptimizationStep {
            name: "hardware offload: segment lookup",
            level: Assembly,
            slowdown: 1.30,
        },
        OptimizationStep {
            name: "hardware offload: fused multiply-add chains",
            level: Assembly,
            slowdown: 1.20,
        },
        OptimizationStep {
            name: "software-pipeline embedding exchange",
            level: Assembly,
            slowdown: 1.12,
        },
        OptimizationStep {
            name: "overlap integration with tail of force pass",
            level: Assembly,
            slowdown: 1.07,
        },
        OptimizationStep {
            name: "pack position payloads into wide moves",
            level: Assembly,
            slowdown: 1.03,
        },
        OptimizationStep {
            name: "retire redundant register spills",
            level: Assembly,
            slowdown: 1.01,
        },
        OptimizationStep {
            name: "final schedule polish",
            level: Assembly,
            slowdown: 0.99,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_near_one_ghz() {
        assert!((0.90..1.00).contains(&WSE2_CLOCK_GHZ), "{WSE2_CLOCK_GHZ}");
    }

    #[test]
    fn baseline_reproduces_table2_coefficients() {
        let (a, b, c) = CostModel::paper_baseline().table2_coefficients();
        assert!((a - 26.6).abs() < 1e-9);
        assert!((b - 71.4).abs() < 1e-9);
        assert!((c - 574.0).abs() < 1e-9);
    }

    #[test]
    fn baseline_predicts_paper_tantalum_rate() {
        // Table I: Ta has 14 interactions / 80 candidates, predicted
        // 270,097 timesteps/s.
        let m = CostModel::paper_baseline();
        let rate = m.timesteps_per_second(80.0, 14.0);
        assert!(
            (rate - 270_097.0).abs() / 270_097.0 < 0.005,
            "predicted {rate}"
        );
    }

    #[test]
    fn baseline_predicts_paper_copper_and_tungsten_rates() {
        let m = CostModel::paper_baseline();
        // Cu: 42/224, predicted 104,895. W: 59/224, predicted 93,048.
        let cu = m.timesteps_per_second(224.0, 42.0);
        let w = m.timesteps_per_second(224.0, 59.0);
        assert!((cu - 104_895.0).abs() / 104_895.0 < 0.005, "Cu {cu}");
        assert!((w - 93_048.0).abs() / 93_048.0 < 0.005, "W {w}");
    }

    #[test]
    fn cycle_count_matches_papers_measured_stability_figure() {
        // Sec. V-B: mean timestep time 3,477 cycles (the Ta sweep point).
        let m = CostModel::paper_baseline();
        let cycles = m.timestep_cycles(80.0, 14.0);
        assert!((cycles - 3477.0).abs() < 60.0, "cycles {cycles}");
    }

    #[test]
    fn scaling_composes_multiplicatively() {
        let m = CostModel::paper_baseline();
        let s = m.scaled(0.5, 1.0, 1.0, 0.5);
        assert_eq!(s.mcast_ns, 3.0);
        assert_eq!(s.fixed_ns, 287.0);
        assert_eq!(s.miss_ns, m.miss_ns);
    }

    #[test]
    fn fig10_campaign_is_monotone_and_ends_at_target() {
        let steps = fig10_campaign();
        assert_eq!(steps.len(), 19);
        assert!((steps[0].slowdown - 5.6).abs() < 1e-9);
        for w in steps.windows(2) {
            assert!(
                w[1].slowdown < w[0].slowdown,
                "{} did not improve",
                w[1].name
            );
        }
        let last = steps.last().unwrap().slowdown;
        assert!((0.97..=1.0).contains(&last));
        // The Tungsten campaign reaches within 2× before assembly work
        // begins (Sec. V-G).
        let last_tungsten = steps
            .iter()
            .rfind(|s| s.level == OptimizationLevel::Tungsten)
            .unwrap();
        assert!(last_tungsten.slowdown <= 2.0);
    }

    #[test]
    fn more_interactions_cost_more() {
        let m = CostModel::paper_baseline();
        assert!(m.timestep_ns(224.0, 59.0) > m.timestep_ns(224.0, 42.0));
        assert!(m.timestep_ns(224.0, 42.0) > m.timestep_ns(80.0, 14.0));
    }
}
