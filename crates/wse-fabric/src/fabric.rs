//! The fabric: a rectangular grid of tiles with generic per-tile payload.
//!
//! [`Fabric`] is the container the MD driver programs against. It offers
//! direct (functional-mode) neighborhood access — the data movement the
//! marching multicast performs on hardware — while cycle costs are
//! charged separately from the calibrated [`crate::cost::CostModel`] and
//! validated against the router-level simulation in
//! [`crate::multicast`].

use crate::geometry::{Coord, Extent};

/// A grid of per-tile payloads.
#[derive(Clone, Debug)]
pub struct Fabric<T> {
    extent: Extent,
    cells: Vec<T>,
}

impl<T> Fabric<T> {
    /// Build a fabric with every tile initialized by `init(coord)`.
    pub fn from_fn(extent: Extent, mut init: impl FnMut(Coord) -> T) -> Self {
        let cells = (0..extent.count()).map(|i| init(extent.coord(i))).collect();
        Self { extent, cells }
    }

    pub fn extent(&self) -> Extent {
        self.extent
    }

    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    #[inline]
    pub fn get(&self, c: Coord) -> &T {
        &self.cells[self.extent.index(c)]
    }

    #[inline]
    pub fn get_mut(&mut self, c: Coord) -> &mut T {
        let i = self.extent.index(c);
        &mut self.cells[i]
    }

    #[inline]
    pub fn at(&self, idx: usize) -> &T {
        &self.cells[idx]
    }

    #[inline]
    pub fn at_mut(&mut self, idx: usize) -> &mut T {
        &mut self.cells[idx]
    }

    /// Iterate `(coord, &payload)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Coord, &T)> {
        let e = self.extent;
        self.cells
            .iter()
            .enumerate()
            .map(move |(i, t)| (e.coord(i), t))
    }

    /// Iterate `(coord, &mut payload)`.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Coord, &mut T)> {
        let e = self.extent;
        self.cells
            .iter_mut()
            .enumerate()
            .map(move |(i, t)| (e.coord(i), t))
    }

    /// Gather references to the `(2b+1)²` neighborhood of `center`
    /// (clipped at fabric edges, excluding the center tile itself), in the
    /// deterministic row-major arrival order of the marching multicast.
    pub fn gather_neighborhood(&self, center: Coord, b: i32) -> Vec<(Coord, &T)> {
        self.extent
            .neighborhood(center, b)
            .filter(|&c| c != center)
            .map(|c| (c, self.get(c)))
            .collect()
    }

    /// Direct slice access for bulk/parallel processing.
    pub fn cells(&self) -> &[T] {
        &self.cells
    }

    pub fn cells_mut(&mut self) -> &mut [T] {
        &mut self.cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_initializes_by_coordinate() {
        let f = Fabric::from_fn(Extent::new(4, 3), |c| c.x * 10 + c.y);
        assert_eq!(*f.get(Coord::new(2, 1)), 21);
        assert_eq!(f.len(), 12);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut f = Fabric::from_fn(Extent::new(3, 3), |_| 0);
        *f.get_mut(Coord::new(1, 2)) = 7;
        assert_eq!(*f.get(Coord::new(1, 2)), 7);
        assert_eq!(*f.at(f.extent().index(Coord::new(1, 2))), 7);
    }

    #[test]
    fn iteration_is_row_major() {
        let f = Fabric::from_fn(Extent::new(3, 2), |c| (c.x, c.y));
        let coords: Vec<_> = f.iter().map(|(c, _)| c).collect();
        assert_eq!(coords[0], Coord::new(0, 0));
        assert_eq!(coords[1], Coord::new(1, 0));
        assert_eq!(coords[3], Coord::new(0, 1));
    }

    #[test]
    fn gather_neighborhood_excludes_center_and_clips() {
        let f = Fabric::from_fn(Extent::new(5, 5), |c| c);
        let n = f.gather_neighborhood(Coord::new(2, 2), 1);
        assert_eq!(n.len(), 8);
        assert!(n.iter().all(|(c, _)| *c != Coord::new(2, 2)));
        let corner = f.gather_neighborhood(Coord::new(0, 0), 2);
        assert_eq!(corner.len(), 8); // 3×3 minus the center
    }

    #[test]
    fn gather_order_matches_multicast_arrival_order() {
        let f = Fabric::from_fn(Extent::new(5, 5), |c| c);
        let n = f.gather_neighborhood(Coord::new(2, 2), 1);
        let coords: Vec<_> = n.iter().map(|(c, _)| *c).collect();
        assert_eq!(
            coords,
            vec![
                Coord::new(1, 1),
                Coord::new(2, 1),
                Coord::new(3, 1),
                Coord::new(1, 2),
                Coord::new(3, 2),
                Coord::new(1, 3),
                Coord::new(2, 3),
                Coord::new(3, 3),
            ]
        );
    }
}
