//! Event-driven router state machine for the marching multicast
//! (paper Fig. 4a/4b).
//!
//! [`crate::multicast`] simulates the multicast from its global phase
//! *schedule*. This module executes the same stage from the bottom up:
//! each router holds only its local Fig. 4 state — **Head**, **Body**, or
//! **Tail** (plus the HeadWait intermediate the hardware needs because a
//! router cannot change its input and output simultaneously) — and reacts
//! to the wavelets that arrive on its upstream link:
//!
//! * data wavelets: a Body forwards downstream *and* delivers to its
//!   core; a Tail delivers only; a Head is transmitting its own vector.
//! * command wavelets carrying the `(ADV, ADV, RST)` / `(ADV)` lists of
//!   Fig. 4c: the first Body pops an `ADV` and becomes the new Head; the
//!   old Head retires to Tail; the old Tail pops the `RST` and resets to
//!   Body.
//!
//! The test suite proves this *rule-driven* execution delivers exactly
//! the same payload sets as the schedule-driven simulator and finishes in
//! the same closed-form cycle count — i.e., the distributed state machine
//! and the global schedule are two views of one protocol.

use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

/// Fig. 4 router roles for one virtual channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Accepts data from its local core and transmits downstream.
    Head,
    /// Forwards upstream data downstream and delivers it to its core.
    Body,
    /// Delivers upstream data to its core only (end of the domain).
    Tail,
}

/// A wavelet on a link: one payload word or a command list.
#[derive(Clone, Debug, PartialEq)]
enum Wavelet<W> {
    Data {
        source: usize,
        word: W,
        last: bool,
    },
    /// Command list, front element is acted on / popped per Fig. 4c.
    Command(Vec<Command>),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Command {
    /// Advance to the next role in the march.
    Adv,
    /// Reset to Body.
    Rst,
}

/// One router lane (single direction, single VC) in the line.
struct RouterLane<W> {
    role: Role,
    /// Words of the local core's payload not yet transmitted (only
    /// meaningful while Head).
    pending: Vec<W>,
    /// Wavelet arriving from upstream this cycle (set by the fabric).
    inbox: Option<Wavelet<W>>,
    /// The stage promotes each tile to Head exactly once; a command
    /// reaching a tile that has already transmitted is spent.
    has_transmitted: bool,
}

/// Result of the event-driven stage.
#[derive(Clone, Debug)]
pub struct RouterStageResult<W> {
    /// `delivered[i]` — (source, words) received by tile `i`'s core, in
    /// arrival order (grouped per source).
    pub delivered: Vec<Vec<(usize, Vec<W>)>>,
    pub cycles: u64,
}

/// Deliver `word` from `source` into one tile's receive assembly,
/// grouping consecutive words from the same source.
fn deliver_to<W>(slot: &mut Vec<(usize, Vec<W>)>, source: usize, word: W) {
    match slot.last_mut() {
        Some((s, words)) if *s == source => words.push(word),
        _ => slot.push((source, vec![word])),
    }
}

/// Execute one marching-multicast direction along a line of `n` tiles
/// using only per-router Fig. 4 rules. `dir` is +1 (rightward) or −1.
///
/// Within a cycle each router reads only its own lane state and inbox
/// and writes only its own outgoing link and core delivery buffer, so
/// the per-tile rule evaluation runs in parallel; the link-transfer
/// step between cycles stays sequential (it scatters across tiles).
#[allow(clippy::needless_range_loop)] // x indexes outgoing/inbox in lockstep
pub fn run_line_stage_event_driven<W: Clone + Send>(
    payloads: &[Vec<W>],
    b: usize,
    dir: i64,
) -> RouterStageResult<W> {
    let n = payloads.len();
    assert!(b >= 1 && n >= 2);
    assert!(dir == 1 || dir == -1);
    let l_max = payloads.iter().map(Vec::len).max().unwrap();
    assert!(l_max >= 1);

    // Initial roles from the strip layout: the phase-0 heads are at
    // downstream-marching positions; the tile b downstream of a head is
    // its tail; everything between is body. Tiles upstream of the first
    // head in a clipped edge region idle as Body (they receive nothing
    // on this lane).
    let head0 = |x: usize| -> bool {
        if dir == 1 {
            x.is_multiple_of(b + 1)
        } else {
            x % (b + 1) == (n - 1) % (b + 1)
        }
    };
    let mut lanes: Vec<RouterLane<W>> = (0..n)
        .map(|x| {
            let role = if head0(x) {
                Role::Head
            } else {
                // Distance upstream to the nearest phase-0 head.
                let dist = (0..=b)
                    .find(|&k| {
                        let up = x as i64 - dir * k as i64;
                        up >= 0 && (up as usize) < n && head0(up as usize)
                    })
                    .unwrap_or(b + 1);
                if dist == b {
                    Role::Tail
                } else {
                    Role::Body
                }
            };
            RouterLane {
                role,
                pending: payloads[x].clone(),
                inbox: None,
                has_transmitted: false,
            }
        })
        .collect();

    // Per-tile receive assembly: (source, words so far).
    let mut delivered: Vec<Vec<(usize, Vec<W>)>> = vec![Vec::new(); n];

    let mut cycles: u64 = 0;
    let max_cycles = 8 * (b as u64 + 2) * (l_max as u64 + 2) * (n as u64 + 2); // divergence guard
    loop {
        // 1. Decide what each router puts on its downstream link this
        //    cycle (reading only local state + inbox). Per-tile
        //    independent: run across the worker pool.
        let mut outgoing: Vec<Option<Wavelet<W>>> = vec![None; n];
        let mut next_inbox: Vec<Option<Wavelet<W>>> = vec![None; n];
        let any_activity = AtomicBool::new(false);

        (&mut lanes, &mut outgoing)
            .into_par_iter()
            .enumerate()
            .for_each(|(x, (lane, out))| {
                let downstream = x as i64 + dir;
                let has_downstream = downstream >= 0 && (downstream as usize) < n;

                match lane.role {
                    Role::Head => {
                        any_activity.store(true, Ordering::Relaxed);
                        if !lane.pending.is_empty() {
                            let word = lane.pending.remove(0);
                            let last = lane.pending.is_empty();
                            if has_downstream {
                                *out = Some(Wavelet::Data {
                                    source: x,
                                    word,
                                    last,
                                });
                            } else if lane.pending.is_empty() {
                                // Edge head with no downstream: retire.
                                lane.role = Role::Tail;
                                lane.has_transmitted = true;
                            }
                        } else {
                            // Vector done: emit the Fig. 4c command list
                            // and retire to Tail ("the head proceeds to
                            // the tail state").
                            if has_downstream {
                                *out = Some(Wavelet::Command(vec![Command::Adv, Command::Rst]));
                            }
                            lane.role = Role::Tail;
                            lane.has_transmitted = true;
                        }
                    }
                    Role::Body | Role::Tail => {}
                }
            });

        // 2. Process arrivals from the previous cycle: Body forwards and
        //    delivers; Tail delivers; commands mutate roles. Also
        //    per-tile independent (each tile drains its own inbox and
        //    touches only its own role/link/delivery buffer).
        (&mut lanes, &mut outgoing, &mut delivered)
            .into_par_iter()
            .enumerate()
            .for_each(|(x, (lane, out, del))| {
                let Some(wavelet) = lane.inbox.take() else {
                    return;
                };
                any_activity.store(true, Ordering::Relaxed);
                let downstream = x as i64 + dir;
                let has_downstream = downstream >= 0 && (downstream as usize) < n;
                match wavelet {
                    Wavelet::Data { source, word, last } => {
                        deliver_to(del, source, word.clone());
                        let forwards = lane.role == Role::Body;
                        if forwards && has_downstream {
                            // Store-and-forward: occupies the link next
                            // cycle.
                            debug_assert!(out.is_none(), "link contention at {x}");
                            *out = Some(Wavelet::Data { source, word, last });
                        }
                    }
                    Wavelet::Command(mut list) => {
                        match lane.role {
                            Role::Body => {
                                match list.first() {
                                    Some(Command::Adv) if !lane.has_transmitted => {
                                        // First body pops the ADV and
                                        // becomes Head ("the next tile in
                                        // line proceeds to the head
                                        // state"); the rest of the list
                                        // travels on for the old tail.
                                        list.remove(0);
                                        lane.role = Role::Head;
                                    }
                                    Some(Command::Adv) => {
                                        // Every tile in this strip has
                                        // had its turn: the march is
                                        // complete and the command is
                                        // spent.
                                        list.clear();
                                    }
                                    Some(Command::Rst) | None => {
                                        // Interior bodies are configured
                                        // to pass RST through untouched;
                                        // it is addressed to the old
                                        // tail.
                                    }
                                }
                                if !list.is_empty() && has_downstream {
                                    debug_assert!(out.is_none());
                                    *out = Some(Wavelet::Command(list));
                                }
                            }
                            Role::Tail => {
                                // The old tail pops the RST and resets to
                                // Body ("the tail proceeds to the body
                                // state") — unless it is also a retired
                                // head still holding Tail from its own
                                // phase; the strip periodicity makes that
                                // unambiguous.
                                if list.first() == Some(&Command::Rst) {
                                    lane.role = Role::Body;
                                } else if list.first() == Some(&Command::Adv)
                                    && !lane.has_transmitted
                                {
                                    lane.role = Role::Head;
                                }
                            }
                            Role::Head => {
                                // A head never receives commands in a
                                // correct run (the marching order
                                // prevents it).
                                debug_assert!(false, "command reached an active head at {x}");
                            }
                        }
                    }
                }
            });

        // 3. Move link contents to the downstream inboxes (1 cycle/hop).
        for x in 0..n {
            if let Some(w) = outgoing[x].take() {
                let downstream = (x as i64 + dir) as usize;
                debug_assert!(next_inbox[downstream].is_none());
                next_inbox[downstream] = Some(w);
            }
        }
        for (lane, inbox) in lanes.iter_mut().zip(next_inbox) {
            debug_assert!(lane.inbox.is_none());
            lane.inbox = inbox;
        }

        cycles += 1;
        if !any_activity.load(Ordering::Relaxed) {
            break;
        }
        assert!(cycles < max_cycles, "router state machine diverged");
    }

    RouterStageResult {
        delivered,
        cycles: cycles - 1, // last cycle was the quiescence check
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multicast::line_stage_cycles;

    fn sources_received(res: &RouterStageResult<u32>, tile: usize) -> Vec<usize> {
        let mut s: Vec<usize> = res.delivered[tile].iter().map(|(src, _)| *src).collect();
        s.sort_unstable();
        s.dedup();
        s
    }

    #[test]
    fn event_driven_stage_delivers_the_correct_neighborhoods() {
        for dir in [1i64, -1] {
            for b in 1..=4usize {
                let n = 17;
                let payloads: Vec<Vec<u32>> =
                    (0..n).map(|i| vec![i as u32, 100 + i as u32]).collect();
                let res = run_line_stage_event_driven(&payloads, b, dir);
                for i in 0..n {
                    let expected: Vec<usize> = (0..n)
                        .filter(|&j| {
                            let d = i as i64 - j as i64; // j upstream of i
                            d * dir >= 1 && (d * dir) <= b as i64
                        })
                        .collect();
                    let got = sources_received(&res, i);
                    assert_eq!(got, expected, "dir {dir} b {b} tile {i}");
                }
            }
        }
    }

    #[test]
    fn payload_words_arrive_in_order_and_complete() {
        let payloads: Vec<Vec<u32>> = (0..10).map(|i| vec![i, i + 50, i + 90]).collect();
        let res = run_line_stage_event_driven(&payloads, 3, 1);
        for tile in 0..10 {
            for (src, words) in &res.delivered[tile] {
                assert_eq!(words, &payloads[*src], "tile {tile} from {src}");
            }
        }
    }

    #[test]
    fn state_machine_matches_schedule_cycle_count() {
        // The distributed rules and the global schedule are the same
        // protocol: cycle counts must agree (up to the command-drain tail
        // the closed form includes).
        for b in 1..=4usize {
            for l in 1..=4usize {
                let n = (b + 1) * 4;
                let payloads: Vec<Vec<u32>> = (0..n).map(|i| vec![i as u32; l]).collect();
                let res = run_line_stage_event_driven(&payloads, b, 1);
                let schedule = line_stage_cycles(b, l);
                let diff = res.cycles.abs_diff(schedule);
                assert!(
                    diff <= b as u64 + 2,
                    "b={b} l={l}: event-driven {} vs schedule {}",
                    res.cycles,
                    schedule
                );
            }
        }
    }

    #[test]
    fn every_tile_heads_exactly_once() {
        // The march must rotate the Head role through every tile: each
        // tile's payload is seen by its downstream neighbor.
        let n = 12;
        let payloads: Vec<Vec<u32>> = (0..n).map(|i| vec![i as u32]).collect();
        let res = run_line_stage_event_driven(&payloads, 2, 1);
        for i in 1..n {
            assert!(
                sources_received(&res, i).contains(&(i - 1)),
                "tile {i} never heard its upstream neighbor"
            );
        }
    }

    #[test]
    fn leftward_direction_mirrors_rightward() {
        let n = 13;
        let payloads: Vec<Vec<u32>> = (0..n).map(|i| vec![i as u32, 7 * i as u32]).collect();
        let right = run_line_stage_event_driven(&payloads, 2, 1);
        let left = run_line_stage_event_driven(&payloads, 2, -1);
        for i in 0..n {
            let r: Vec<usize> = sources_received(&right, i);
            let l: Vec<usize> = sources_received(&left, n - 1 - i);
            let mirrored: Vec<usize> = l.iter().map(|&s| n - 1 - s).rev().collect();
            assert_eq!(r, mirrored, "tile {i}");
        }
    }
}
