//! Benchmarks of the router-level marching-multicast simulation — the
//! cycle-mode substrate that validates the communication schedule.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wse_fabric::geometry::Extent;
use wse_fabric::multicast::{simulate_line_stage, simulate_neighborhood_exchange};

fn bench_line_stage(c: &mut Criterion) {
    let mut group = c.benchmark_group("line_stage");
    for b_radius in [2usize, 4, 7] {
        let payloads: Vec<Vec<u32>> = (0..64).map(|i| vec![i as u32; 4]).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(b_radius),
            &b_radius,
            |bench, &b_radius| {
                bench.iter(|| black_box(simulate_line_stage(black_box(&payloads), b_radius)))
            },
        );
    }
    group.finish();
}

fn bench_full_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighborhood_exchange");
    group.sample_size(20);
    for (w, h, b) in [(16usize, 16usize, 2usize), (24, 24, 4)] {
        let extent = Extent::new(w, h);
        let payloads: Vec<Vec<u32>> = (0..extent.count()).map(|i| vec![i as u32; 4]).collect();
        group.throughput(Throughput::Elements(extent.count() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{w}x{h}_b{b}")),
            &(),
            |bench, _| {
                bench.iter(|| {
                    black_box(simulate_neighborhood_exchange(
                        extent,
                        black_box(&payloads),
                        b,
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_line_stage, bench_full_exchange);
criterion_main!(benches);
