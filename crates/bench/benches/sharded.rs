//! Sharded-engine stepping: the in-process wall-clock cost of the
//! ghost-region decomposition at exchange period 1 (refresh every step,
//! the unamortized baseline) vs 4 (the amortized Table VI k-column).
//!
//! The halo is provisioned per-step-sync (a fixed `2·cutoff + skin`,
//! independent of k), so amortization saves the period's membership
//! recomputes, reshards, and engine rebuilds without buying any extra
//! redundant force work: k4 must meet or beat k1 in the recorded
//! `elements_per_sec` (owned atoms · steps/sec), and `check-bench`
//! holds both entries to absolute floors. On real multi-node hardware
//! the saved exchanges are additionally saved latency — the regime the
//! perf-model reconciliation projects.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use md_core::lattice::SlabSpec;
use md_core::materials::{Material, Species};
use md_core::system::Box3;
use md_core::thermostat;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wafer_md::md::engine::Engine;
use wafer_md::shard::ShardedEngine;

fn bench_sharded_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_step");
    group.sample_size(10);
    let material = Material::new(Species::Ta);
    let spec = SlabSpec {
        crystal: material.crystal,
        lattice_a: material.lattice_a,
        nx: 24,
        ny: 8,
        nz: 2,
    };
    let positions = spec.generate();
    let mut rng = StdRng::seed_from_u64(42);
    let velocities = thermostat::maxwell_boltzmann(&mut rng, positions.len(), material.mass, 290.0);
    let bbox = Box3::open(spec.dimensions());
    for period in [1usize, 4] {
        let mut engine = ShardedEngine::baseline(
            Species::Ta,
            positions.clone(),
            velocities.clone(),
            bbox,
            2e-3,
            2,
            period,
        );
        group.throughput(Throughput::Elements(engine.n_atoms() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k{period}")),
            &(),
            |b, _| {
                b.iter(|| {
                    Engine::step(&mut engine);
                    black_box(engine.ghost_copies())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sharded_step);
criterion_main!(benches);
