//! Whole-timestep benchmarks: the wafer engine's five-phase step for
//! each benchmark material (the quantity behind every rate in Table I
//! and Figs. 7/8) and the LAMMPS-style baseline step it is validated
//! against.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use md_core::materials::{Material, Species};
use md_core::system::System;
use wafer_md_bench::thermal_slab_sim;

fn bench_wse_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("wse_step_per_material");
    group.sample_size(20);
    for sp in [Species::Ta, Species::W, Species::Cu] {
        let mut sim = thermal_slab_sim(sp, 16, 2, 290.0, 0.05, 4);
        // One iteration = one timestep over n atoms, so the recorded
        // throughput is host atoms·steps/sec.
        group.throughput(Throughput::Elements(sim.n_atoms() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(sp.symbol()), &(), |b, _| {
            b.iter(|| black_box(sim.step()))
        });
    }
    group.finish();
}

fn bench_wse_step_scaling(c: &mut Criterion) {
    // Host cost per step vs atom count — the simulator's own weak-scaling
    // profile (one atom per core throughout).
    let mut group = c.benchmark_group("wse_step_vs_atoms");
    group.sample_size(10);
    for nx in [8usize, 16, 32] {
        let mut sim = thermal_slab_sim(Species::Ta, nx, 2, 290.0, 0.05, 4);
        let atoms = sim.n_atoms();
        group.throughput(Throughput::Elements(atoms as u64));
        group.bench_with_input(BenchmarkId::from_parameter(atoms), &(), |b, _| {
            b.iter(|| black_box(sim.step()))
        });
    }
    group.finish();
}

fn bench_baseline_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_step");
    group.sample_size(20);
    for sp in [Species::Ta, Species::Cu] {
        let material = Material::new(sp);
        let spec = md_core::lattice::SlabSpec {
            crystal: material.crystal,
            lattice_a: material.lattice_a,
            nx: 16,
            ny: 16,
            nz: 2,
        };
        let system = System::from_slab(sp, spec);
        group.throughput(Throughput::Elements(system.len() as u64));
        let mut engine = md_baseline::equilibrated_engine(system, 290.0, 2e-3, 5, 4);
        group.bench_with_input(BenchmarkId::from_parameter(sp.symbol()), &(), |b, _| {
            b.iter(|| {
                engine.step();
                black_box(engine.potential_energy)
            })
        });
    }
    group.finish();
}

fn bench_swap_round(c: &mut Criterion) {
    let mut sim = thermal_slab_sim(Species::W, 12, 2, 900.0, 0.1, 4);
    sim.run(10);
    let atoms = sim.n_atoms() as u64;
    let mut group = c.benchmark_group("swap");
    group.throughput(Throughput::Elements(atoms));
    group.bench_function("swap_round_576_atoms", |b| {
        b.iter(|| {
            sim.step();
            black_box(wse_md::swap_round(&mut sim))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_wse_step,
    bench_wse_step_scaling,
    bench_baseline_step,
    bench_swap_round
);
criterion_main!(benches);
