//! Benchmarks of the atom→core mapping construction (done once per run
//! or after major reconfiguration) and the assignment-cost evaluation
//! (done every sampled step of the Fig. 9 experiment).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use md_core::lattice::{Crystal, SlabSpec};
use wse_fabric::geometry::Extent;
use wse_md::Mapping;

fn slab(nx: usize) -> Vec<md_core::vec3::V3d> {
    SlabSpec {
        crystal: Crystal::Bcc,
        lattice_a: 3.304,
        nx,
        ny: nx,
        nz: 3,
    }
    .generate()
}

fn bench_mapping_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping_build");
    group.sample_size(20);
    for nx in [16usize, 32, 64] {
        let pos = slab(nx);
        let cores = (pos.len() as f64 * 1.04).ceil() as usize;
        let w = (cores as f64).sqrt().ceil() as usize;
        let extent = Extent::new(w, cores.div_ceil(w));
        group.throughput(Throughput::Elements(pos.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(pos.len()), &(), |bench, _| {
            bench.iter(|| black_box(Mapping::greedy(black_box(&pos), extent)))
        });
    }
    group.finish();
}

fn bench_assignment_cost(c: &mut Criterion) {
    let pos = slab(32);
    let cores = (pos.len() as f64 * 1.04).ceil() as usize;
    let w = (cores as f64).sqrt().ceil() as usize;
    let m = Mapping::greedy(&pos, Extent::new(w, cores.div_ceil(w)));
    c.bench_function("assignment_cost_6144_atoms", |b| {
        b.iter(|| black_box(m.assignment_cost_angstroms(black_box(&pos))))
    });
}

criterion_group!(benches, bench_mapping_build, bench_assignment_cost);
criterion_main!(benches);
