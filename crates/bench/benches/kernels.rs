//! Microbenchmarks of the per-interaction kernels that the paper's
//! Table III accounts operation-by-operation: spline segment lookup and
//! evaluation, the EAM pair/density/embedding evaluations, in both tile
//! (f32) and reference (f64) precision.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use md_core::eam::EamPotential;
use md_core::materials::{Material, Species};

fn bench_spline(c: &mut Criterion) {
    let pot = Material::new(Species::Ta).potential();
    let pot32: EamPotential<f32> = pot.cast();
    let mut group = c.benchmark_group("spline_eval");
    group.bench_function("phi_f64", |b| {
        let mut x = 2.0f64;
        b.iter(|| {
            x = 2.0 + (x * 1.37) % 1.9;
            black_box(pot.phi.eval_both(black_box(x)))
        })
    });
    group.bench_function("phi_f32", |b| {
        let mut x = 2.0f32;
        b.iter(|| {
            x = 2.0 + (x * 1.37) % 1.9;
            black_box(pot32.phi.eval_both(black_box(x)))
        })
    });
    group.finish();
}

fn bench_eam_terms(c: &mut Criterion) {
    let pot = Material::new(Species::W).potential();
    let pot32: EamPotential<f32> = pot.cast();
    let mut group = c.benchmark_group("eam_interaction_terms");
    // One full per-interaction evaluation: pair + density + their
    // derivatives (the 36-op row block of Table III).
    group.bench_function("interaction_f64", |b| {
        let mut r = 2.8f64;
        b.iter(|| {
            r = 2.5 + (r * 1.618) % 2.4;
            let (phi, dphi) = pot.pair(black_box(r));
            let (rho, drho) = pot.density(r);
            black_box((phi, dphi, rho, drho))
        })
    });
    group.bench_function("interaction_f32", |b| {
        let mut r = 2.8f32;
        b.iter(|| {
            r = 2.5 + (r * 1.618) % 2.4;
            let (phi, dphi) = pot32.pair(black_box(r));
            let (rho, drho) = pot32.density(r);
            black_box((phi, dphi, rho, drho))
        })
    });
    group.bench_function("embedding_f32", |b| {
        let rho_e = pot32.rho_equilibrium as f32;
        let mut d = rho_e;
        b.iter(|| {
            d = rho_e * (0.5 + (d * 1.1) % 1.0);
            black_box(pot32.embedding(black_box(d)))
        })
    });
    group.finish();
}

fn bench_bruteforce_cluster(c: &mut Criterion) {
    // Whole-cluster force evaluation (the validation oracle).
    let pot = Material::new(Species::Cu).potential();
    let spec = md_core::lattice::SlabSpec {
        crystal: md_core::lattice::Crystal::Fcc,
        lattice_a: 3.615,
        nx: 3,
        ny: 3,
        nz: 2,
    };
    let pos = spec.generate();
    c.bench_function("bruteforce_72_atoms", |b| {
        b.iter(|| black_box(pot.compute_bruteforce(black_box(&pos), md_core::eam::open_disp)))
    });
}

criterion_group!(
    benches,
    bench_spline,
    bench_eam_terms,
    bench_bruteforce_cluster
);
criterion_main!(benches);
