//! Microbenchmarks of the per-interaction kernels that the paper's
//! Table III accounts operation-by-operation: spline segment lookup and
//! evaluation, the EAM pair/density/embedding evaluations, in both tile
//! (f32) and reference (f64) precision.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use md_core::eam::EamPotential;
use md_core::materials::{Material, Species};
use md_core::spline::LANES;

/// Ring of precomputed in-range radii. Power-of-two length so the
/// single-eval benches can advance with a mask instead of a `%` (the
/// fmod used to dominate the old measurement, hiding the spline cost).
const RING: usize = 1024;

fn radii_ring(lo: f64, hi: f64) -> Vec<f64> {
    (0..RING)
        .map(|i| lo + (hi - lo) * (i as f64 + 0.5) / RING as f64)
        .collect()
}

fn bench_spline(c: &mut Criterion) {
    let pot = Material::new(Species::Ta).potential();
    let pot32: EamPotential<f32> = pot.cast();
    let radii = radii_ring(2.0, 3.9);
    let radii32: Vec<f32> = radii.iter().map(|&r| r as f32).collect();
    let mut group = c.benchmark_group("spline_eval");
    // Headline per-call latency: one φ(r), φ'(r) evaluation per
    // iteration on a precomputed argument.
    group.bench_function("phi_f64", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) & (RING - 1);
            black_box(pot.phi.eval_both(black_box(radii[i])))
        })
    });
    group.bench_function("phi_f32", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) & (RING - 1);
            black_box(pot32.phi.eval_both(black_box(radii32[i])))
        })
    });
    // Ring sweeps: the same evaluations amortized over the whole ring
    // per iteration, so the recorded elements_per_sec is robust to
    // timer granularity even at CI's 3-sample budget — these are the
    // entries `check-bench` holds to absolute floors.
    group.throughput(Throughput::Elements(RING as u64));
    group.bench_function("phi_f64_ring", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for &r in &radii {
                let (phi, dphi) = pot.phi.eval_both(black_box(r));
                acc += phi + dphi;
            }
            black_box(acc)
        })
    });
    // The f64x4 lane batch the vectorized force loops are built from:
    // same ring, LANES arguments per spline call.
    group.bench_function("phi_f64x4_ring", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for chunk in radii.chunks_exact(LANES) {
                let x4 = [chunk[0], chunk[1], chunk[2], chunk[3]];
                let (phi4, dphi4) = pot.phi.eval_both4(black_box(x4));
                for l in 0..LANES {
                    acc += phi4[l] + dphi4[l];
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_force_loop(c: &mut Criterion) {
    // One full vectorized force evaluation on the reference backend:
    // chunked pair/density accumulation, embedding fold, and the force
    // pass, with neighbor lists warm (the steady-state hot path).
    let material = Material::new(Species::Ta);
    let spec = md_core::lattice::SlabSpec {
        crystal: material.crystal,
        lattice_a: material.lattice_a,
        nx: 16,
        ny: 8,
        nz: 2,
    };
    let system = md_core::system::System::from_slab(Species::Ta, spec);
    let n = system.len() as u64;
    let mut engine = md_baseline::BaselineEngine::new(system, 2e-3);
    let mut group = c.benchmark_group("force_loop");
    group.throughput(Throughput::Elements(n));
    group.bench_function("baseline_eval", |b| {
        b.iter(|| {
            engine.compute_forces();
            black_box(engine.potential_energy)
        })
    });
    group.finish();
}

fn bench_eam_terms(c: &mut Criterion) {
    let pot = Material::new(Species::W).potential();
    let pot32: EamPotential<f32> = pot.cast();
    let mut group = c.benchmark_group("eam_interaction_terms");
    // One full per-interaction evaluation: pair + density + their
    // derivatives (the 36-op row block of Table III).
    group.bench_function("interaction_f64", |b| {
        let mut r = 2.8f64;
        b.iter(|| {
            r = 2.5 + (r * 1.618) % 2.4;
            let (phi, dphi) = pot.pair(black_box(r));
            let (rho, drho) = pot.density(r);
            black_box((phi, dphi, rho, drho))
        })
    });
    group.bench_function("interaction_f32", |b| {
        let mut r = 2.8f32;
        b.iter(|| {
            r = 2.5 + (r * 1.618) % 2.4;
            let (phi, dphi) = pot32.pair(black_box(r));
            let (rho, drho) = pot32.density(r);
            black_box((phi, dphi, rho, drho))
        })
    });
    group.bench_function("embedding_f32", |b| {
        let rho_e = pot32.rho_equilibrium as f32;
        let mut d = rho_e;
        b.iter(|| {
            d = rho_e * (0.5 + (d * 1.1) % 1.0);
            black_box(pot32.embedding(black_box(d)))
        })
    });
    group.finish();
}

fn bench_bruteforce_cluster(c: &mut Criterion) {
    // Whole-cluster force evaluation (the validation oracle).
    let pot = Material::new(Species::Cu).potential();
    let spec = md_core::lattice::SlabSpec {
        crystal: md_core::lattice::Crystal::Fcc,
        lattice_a: 3.615,
        nx: 3,
        ny: 3,
        nz: 2,
    };
    let pos = spec.generate();
    c.bench_function("bruteforce_72_atoms", |b| {
        b.iter(|| black_box(pot.compute_bruteforce(black_box(&pos), md_core::eam::open_disp)))
    });
}

criterion_group!(
    benches,
    bench_spline,
    bench_force_loop,
    bench_eam_terms,
    bench_bruteforce_cluster
);
criterion_main!(benches);
