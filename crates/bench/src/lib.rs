//! Shared workload builders and formatting for the experiment
//! regenerator binaries (one binary per paper table/figure; see
//! DESIGN.md's per-experiment index).

use md_core::lattice::SlabSpec;
use md_core::materials::{Material, Species};
use md_core::thermostat;
use md_core::vec3::V3d;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wse_md::{WseMdConfig, WseMdSim};

/// Build a thermalized thin-slab wafer simulation for `species`:
/// `nx × nx × nz` conventional cells at `temperature` K, mapped with
/// `spare` fraction of vacant tiles.
pub fn thermal_slab_sim(
    species: Species,
    nx: usize,
    nz: usize,
    temperature: f64,
    spare: f64,
    seed: u64,
) -> WseMdSim {
    let material = Material::new(species);
    let spec = SlabSpec {
        crystal: material.crystal,
        lattice_a: material.lattice_a,
        nx,
        ny: nx,
        nz,
    };
    let positions = spec.generate();
    let mut rng = StdRng::seed_from_u64(seed);
    let velocities =
        thermostat::maxwell_boltzmann(&mut rng, positions.len(), material.mass, temperature);
    let config = WseMdConfig::open_for(positions.len(), spare, 2e-3);
    WseMdSim::new(species, &positions, &velocities, config)
}

/// Build the paper's controlled performance configuration (Sec. IV-B,
/// condition 2): a regular 2-D grid of frozen atoms, one per core, with
/// the neighborhood-size parameter `b` forced and the interaction count
/// controlled by the grid `spacing` relative to the cutoff.
pub fn controlled_grid_sim(species: Species, side: usize, spacing: f64, b: i32) -> WseMdSim {
    let positions = wse_md::controlled_grid_positions(side, spacing);
    let velocities = vec![V3d::zero(); positions.len()];
    WseMdSim::new(
        species,
        &positions,
        &velocities,
        WseMdConfig::controlled_grid(side, b),
    )
}

/// Print a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Format a rate with thousands separators.
pub fn fmt_rate(rate: f64) -> String {
    let r = rate.round() as i64;
    let s = r.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controlled_grid_has_exact_interior_candidates() {
        let sim = controlled_grid_sim(Species::Ta, 20, 1.5, 4);
        // (2·4+1)² − 1 = 80 — the paper's Ta candidate count.
        assert_eq!(sim.interior_candidates(), 80);
    }

    #[test]
    fn controlled_grid_atoms_stay_frozen() {
        let mut sim = controlled_grid_sim(Species::Ta, 12, 2.0, 3);
        let before = sim.positions_by_atom();
        sim.run(5);
        let after = sim.positions_by_atom();
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(274_016.4), "274,016");
        assert_eq!(fmt_rate(973.0), "973");
    }
}
