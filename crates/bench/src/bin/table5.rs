//! Table V — projected performance gains from future optimizations.

use md_core::materials::Species;
use perf_model::projection::projection_table;
use wafer_md_bench::{fmt_rate, header};

fn main() {
    header("Table V — projected gains from future optimizations (cumulative)");
    println!(
        "{:<14} {:>6} {:>6} {:>12} {:>7} {:>9} {:>9} {:>9}",
        "Stage", "Mcast", "Miss", "Interaction", "Fixed", "Ta ts/s", "W ts/s", "Cu ts/s"
    );
    let tables: Vec<_> = [Species::Ta, Species::W, Species::Cu]
        .iter()
        .map(|&sp| projection_table(sp))
        .collect();
    #[allow(clippy::needless_range_loop)]
    for row in 0..tables[0].len() {
        let m = tables[0][row].model;
        println!(
            "{:<14} {:>6.1} {:>6.2} {:>12.1} {:>7.0} {:>9} {:>9} {:>9}",
            tables[0][row].stage.name(),
            m.mcast_ns,
            m.miss_ns,
            m.interaction_ns,
            m.fixed_ns,
            fmt_rate(tables[0][row].rate),
            fmt_rate(tables[1][row].rate),
            fmt_rate(tables[2][row].rate)
        );
    }
    println!(
        "\npaper Table V (Ta, 1000 ts/s): 270 -> 290 -> 460 -> 650 -> 1,100\n\
         (tantalum crosses one million timesteps per second with all four applied)"
    );
}
