//! Table I — predicted and measured WSE performance vs Frontier/Quartz
//! for the three benchmark metals.
//!
//! Two blocks:
//!
//! 1. **Paper workload through our models** — the Table II cost model at
//!    the paper's (candidates, interactions) against the calibrated
//!    cluster baselines: reproduces every Table I column.
//! 2. **Simulated slabs** — actual `WseMdSim` runs with the paper's
//!    thin-slab geometry (6 cells thick, open boundaries, 290 K, one
//!    atom per core). Default runs scaled-down slabs; pass `--full` for
//!    the true 801,792-atom replications (174×192×6 Cu, 256×261×6 W/Ta),
//!    which take a few minutes on one host core.
//!
//! Our balanced mapping reaches W/Cu candidate counts within a few
//! percent of the paper's 224; for Ta our ~150 candidates exceed the
//! authors' hand-optimized 80, so the simulated Ta rate (≈180k ts/s)
//! undershoots their 274k while preserving the ordering Ta ≫ Cu ≈ W.

use md_baseline::cluster::{ClusterModel, Machine};
use md_baseline::strongscale::{paper_workload, wse_model_rate};
use md_core::lattice::{Crystal, SlabSpec};
use md_core::materials::{Material, Species};
use md_core::thermostat;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wafer_md_bench::{fmt_rate, header};
use wse_fabric::cost::CostModel;
use wse_md::{WseMdConfig, WseMdSim};

fn main() {
    let full = std::env::args().any(|a| a == "--full");

    header("Table I (block 1): paper workload, 801,792 atoms");
    println!(
        "{:<8} {:>12} {:>11} {:>11} {:>9} {:>9} {:>8} {:>8}",
        "Element",
        "Inter/Cand",
        "Predicted",
        "Paper-Meas",
        "Frontier",
        "Quartz",
        "vs GPU",
        "vs CPU"
    );
    let paper_measured = [
        (Species::Cu, 106_313.0),
        (Species::W, 96_140.0),
        (Species::Ta, 274_016.0),
    ];
    for (sp, measured) in paper_measured {
        let (cand, inter) = paper_workload(sp);
        let predicted = wse_model_rate(sp);
        let gpu = ClusterModel::calibrated(Machine::FrontierGpu, sp).peak_rate();
        let cpu = ClusterModel::calibrated(Machine::QuartzCpu, sp).peak_rate();
        println!(
            "{:<8} {:>9.0}/{:<4.0} {:>9} {:>11} {:>9.0} {:>9.0} {:>7.0}x {:>7.0}x",
            sp.symbol(),
            inter,
            cand,
            fmt_rate(predicted),
            fmt_rate(measured),
            gpu,
            cpu,
            measured / gpu,
            measured / cpu
        );
    }
    println!("(paper: Cu 109x/34x, W 96x/26x, Ta 179x/55x; prediction errors 1.3-3.2%)");

    header(&format!(
        "Table I (block 2): simulated thin slabs ({}, 6 cells thick, 1 atom/core)",
        if full {
            "FULL 801,792-atom replications"
        } else {
            "reduced scale; --full for 801,792"
        }
    ));
    println!(
        "{:<8} {:>8} {:>8} {:>12} {:>11} {:>11} {:>7}",
        "Element", "Atoms", "b", "Inter/Cand", "Predicted", "Measured", "Error"
    );
    let model = CostModel::paper_baseline();
    for sp in [Species::Cu, Species::W, Species::Ta] {
        let material = Material::new(sp);
        let (nx, ny) = if full {
            match material.crystal {
                Crystal::Fcc => (174, 192),
                Crystal::Bcc => (256, 261),
            }
        } else {
            (48, 48)
        };
        let spec = SlabSpec {
            crystal: material.crystal,
            lattice_a: material.lattice_a,
            nx,
            ny,
            nz: 6,
        };
        let positions = spec.generate();
        let mut rng = StdRng::seed_from_u64(31);
        let velocities =
            thermostat::maxwell_boltzmann(&mut rng, positions.len(), material.mass, 290.0);
        let config = WseMdConfig::open_for(positions.len(), 0.06, 2e-3);
        let mut sim = WseMdSim::new(sp, &positions, &velocities, config);
        let steps = if full { 5 } else { 20 };
        sim.run(steps);
        let s = sim.last_stats;
        // Prediction from the interior (bulk) workload, as the paper
        // predicts from nominal counts; measurement reflects actual
        // per-tile work including boundary atoms.
        let predicted = model.timesteps_per_second(
            sim.interior_candidates() as f64,
            material.bulk_interactions() as f64,
        );
        let measured = sim.timesteps_per_second(steps);
        let err = (measured - predicted) / predicted * 100.0;
        println!(
            "{:<8} {:>8} {:>8} {:>6.1}/{:<5.0} {:>11} {:>11} {:>+6.1}%",
            sp.symbol(),
            sim.n_atoms(),
            format!("({},{})", sim.b.0, sim.b.1),
            s.mean_interactions,
            s.mean_candidates,
            fmt_rate(predicted),
            fmt_rate(measured),
            err
        );
    }
    println!(
        "(measured runs faster than the interior-workload prediction because\n\
         boundary atoms carry fewer candidates/interactions — the paper sees\n\
         the same effect at 1-3% for its 800k-atom slabs; the effect shrinks\n\
         with slab size as the boundary fraction falls)"
    );
}
