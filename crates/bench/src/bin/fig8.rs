//! Fig. 8 — weak scaling across core counts on a single wafer.
//!
//! Grows the problem and the fabric together (always one atom per core)
//! and reports the per-step rate. Two series:
//!
//! * **controlled grids** (fixed per-core workload, the paper's test
//!   design): converges to flat — the largest sizes agree to well under
//!   1%, matching the paper's "perfect weak scaling within 1%";
//! * **thermal slabs**: converging to flat as the interior fraction
//!   grows (small sizes are edge-dominated and run faster).

use md_core::materials::Species;
use wafer_md_bench::{controlled_grid_sim, fmt_rate, header, thermal_slab_sim};

fn main() {
    header("Fig. 8 — weak scaling, controlled grids (fixed workload per core)");
    let mut rows = Vec::new();
    for side in [24usize, 48, 96, 192, 384] {
        let mut sim = controlled_grid_sim(Species::Ta, side, 1.3, 4);
        sim.run(6);
        let s = sim.last_stats;
        rows.push((
            sim.n_atoms(),
            sim.extent().count(),
            s.mean_candidates,
            s.mean_interactions,
            s.cycles,
            sim.timesteps_per_second(6),
        ));
    }
    let reference = rows.last().unwrap().5; // converged large-size rate
    println!("    atoms |     cores | cand  | inter | cycles/step | ts/s (dev vs largest)");
    for (atoms, cores, cand, inter, cycles, rate) in &rows {
        println!(
            "{:>9} | {:>9} | {:>5.1} | {:>5.1} | {:>11.0} | {:>9} ({:+.2}%)",
            atoms,
            cores,
            cand,
            inter,
            cycles,
            fmt_rate(*rate),
            (rate / reference - 1.0) * 100.0
        );
    }
    let tail_dev = (rows[rows.len() - 2].5 / reference - 1.0) * 100.0;
    println!(
        "largest two sizes agree to {tail_dev:+.2}% — the paper measures <1% across\n\
         3 orders of magnitude (its sweep spans 10³..8×10⁵ cores at full workload,\n\
         where edge tiles are a negligible fraction)"
    );

    header("Fig. 8 — weak scaling, thermal Ta slabs (realistic workload)");
    println!("    atoms |     cores | cand  | inter | ts/s");
    for nx in [8usize, 16, 32, 48, 64] {
        let mut sim = thermal_slab_sim(Species::Ta, nx, 2, 290.0, 0.04, 8);
        sim.run(8);
        let s = sim.last_stats;
        println!(
            "{:>9} | {:>9} | {:>5.1} | {:>5.1} | {:>9}",
            sim.n_atoms(),
            sim.extent().count(),
            s.mean_candidates,
            s.mean_interactions,
            fmt_rate(sim.timesteps_per_second(8))
        );
    }
    println!("(edge atoms have lighter workloads, so small slabs run faster;\n the series flattens as the interior dominates)");
}
