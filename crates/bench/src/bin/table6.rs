//! Table VI — modeled multi-wafer performance vs ghost-region size.

use perf_model::multiwafer::MultiWaferConfig;
use wafer_md_bench::{fmt_rate, header};

fn main() {
    header("Table VI — multi-wafer weak scaling (ghost regions, ω = 1.2 Tb/s, τ = 2 µs)");
    println!(
        "{:<4} {:>4} {:>3} {:>9} {:>6} {:>7} | {:>4} {:>3} {:>10} {:>5} | {:>4} {:>3} {:>10} {:>5}",
        "El",
        "X",
        "Z",
        "N_int",
        "rc/rl",
        "tw(us)",
        "λ",
        "k",
        "ts/s",
        "perf",
        "λ",
        "k",
        "ts/s",
        "perf"
    );
    for (lo, hi) in MultiWaferConfig::paper_rows() {
        let p_lo = lo.evaluate();
        let p_hi = hi.evaluate();
        println!(
            "{:<4} {:>4} {:>3} {:>9} {:>6.2} {:>7.2} | {:>4} {:>3} {:>10} {:>4.0}% | {:>4} {:>3} {:>10} {:>4.0}%",
            lo.species.symbol(),
            lo.x,
            lo.z,
            fmt_rate(p_lo.n_interior),
            lo.rcut_over_rlattice,
            lo.t_wall * 1e6,
            lo.lambda,
            p_lo.k,
            fmt_rate(p_lo.rate),
            100.0 * p_lo.performance,
            hi.lambda,
            p_hi.k,
            fmt_rate(p_hi.rate),
            100.0 * p_hi.performance
        );
    }
    println!(
        "\npaper Table VI: Cu 105,152 (99%) / 99,239 (93%); W 95,281 (99%) / 91,743 (95%);\n\
         Ta 269,214 (98%) / 251,046 (92%). A 64-node cluster simulates 10-40M+ atoms\n\
         at 92-99% of single-wafer speed."
    );
}
