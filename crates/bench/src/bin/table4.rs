//! Table IV — utilization (fraction of peak) for CS-2, Frontier, Quartz.

use md_core::materials::Species;
use perf_model::flops::{machine_utilization, Platform};
use wafer_md_bench::header;

fn main() {
    header("Table IV — utilization (fraction of peak) for three architectures");
    println!(
        "{:<20} {:>6} {:>10} {:>8} {:>8} {:>8}",
        "Machine", "Chips", "Peak PF/s", "Cu", "W", "Ta"
    );
    for (platform, chips, peak) in [
        (Platform::Cs2, "1 WSE", 1.45),
        (Platform::Frontier32Gcd, "32 GCD", 0.77),
        (Platform::Quartz800Cpu, "800 CPU", 0.50),
    ] {
        let u = |sp| 100.0 * machine_utilization(platform, sp);
        println!(
            "{:<20} {:>6} {:>10.2} {:>7.1}% {:>7.1}% {:>7.1}%",
            platform.name(),
            chips,
            peak,
            u(Species::Cu),
            u(Species::W),
            u(Species::Ta)
        );
    }
    println!("\npaper Table IV: CS-2 22/23/20%, Frontier 0.4/0.4/0.2%, Quartz 1.9/2.5/1.0%");
}
