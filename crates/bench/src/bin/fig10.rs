//! Fig. 10 — performance across the 19-step optimization campaign.
//!
//! The first functioning EAM code ran 5.6× slower than the performance
//! model; Tungsten-level changes reached 2×, assembly edits closed the
//! gap (Sec. V-G). For each step we report the implied rate of all three
//! materials against the model targets.

use md_baseline::strongscale::wse_model_rate;
use md_core::materials::Species;
use wafer_md_bench::{fmt_rate, header};
use wse_fabric::cost::{fig10_campaign, OptimizationLevel};

fn main() {
    header("Fig. 10 — performance trends across code changes");
    let targets: Vec<(Species, f64)> = Species::ALL
        .iter()
        .map(|&sp| (sp, wse_model_rate(sp)))
        .collect();

    println!(
        "{:>3} {:<46} {:>5} {:>9} {:>9} {:>9}",
        "#", "change", "level", "Cu ts/s", "W ts/s", "Ta ts/s"
    );
    for (i, step) in fig10_campaign().iter().enumerate() {
        let level = match step.level {
            OptimizationLevel::Tungsten => "HLL",
            OptimizationLevel::Assembly => "asm",
        };
        let rate = |sp: Species| {
            let target = targets.iter().find(|(s, _)| *s == sp).unwrap().1;
            fmt_rate(target / step.slowdown)
        };
        println!(
            "{:>3} {:<46} {:>5} {:>9} {:>9} {:>9}",
            i + 1,
            step.name,
            level,
            rate(Species::Cu),
            rate(Species::W),
            rate(Species::Ta)
        );
    }
    println!(
        "\ntargets (performance model): Cu {}, W {}, Ta {}",
        fmt_rate(targets[0].1),
        fmt_rate(targets[1].1),
        fmt_rate(targets[2].1),
    );
    println!("paper: starts 5.6x below target, Tungsten work reaches 2x, assembly closes the gap");
}
