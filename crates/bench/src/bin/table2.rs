//! Table II — linear regression of time per timestep.
//!
//! Runs the paper's controlled sweep (frozen regular grid, forced
//! neighborhood size, cutoff-controlled interactions; Sec. IV-B) on the
//! simulator and fits `t_wall = A·n_cand + B·n_inter + C` by least
//! squares, reporting coefficients and r². Two fits are reported:
//!
//! * **charged-cycle fit** — over the cycles the simulator charges from
//!   its calibrated cost model; recovering A = 26.6 ns, B = 71.4 ns,
//!   C = 574 ns with r² ≈ 1 validates the whole accounting pipeline
//!   (per-tile candidate/interaction counting through to the fit);
//! * **host wall-clock fit** — over the *real* time this Rust simulator
//!   spends per step, showing that the functional engine itself obeys a
//!   linear cost law in (candidates, interactions).
//!
//! Also reproduces the timing-stability measurement (Sec. V-B): per-tile
//! vs array-averaged standard deviation of step cycles.

use md_core::materials::Species;
use perf_model::linear::{fit, SweepSample};
use wafer_md_bench::{controlled_grid_sim, header};
use wse_fabric::cost::WSE2_CLOCK_GHZ;

fn main() {
    header("Table II — controlled sweep and linear fit");
    let mut charged = Vec::new();
    let mut host = Vec::new();
    let side = 40;
    for b in [2i32, 3, 4, 5, 6, 7] {
        for spacing_frac in [0.22, 0.35, 0.5, 0.7, 0.95] {
            let m = md_core::materials::Material::new(Species::Ta);
            let spacing = m.cutoff * spacing_frac;
            let mut sim = controlled_grid_sim(Species::Ta, side, spacing, b);
            let t0 = std::time::Instant::now();
            sim.run(8);
            let host_ns_per_step = t0.elapsed().as_nanos() as f64 / 8.0;
            let s = sim.last_stats;
            charged.push(SweepSample {
                n_candidates: s.mean_candidates,
                n_interactions: s.mean_interactions,
                t_wall_ns: s.cycles / WSE2_CLOCK_GHZ,
            });
            host.push(SweepSample {
                n_candidates: s.mean_candidates,
                n_interactions: s.mean_interactions,
                t_wall_ns: host_ns_per_step,
            });
        }
    }

    let f = fit(&charged);
    println!("charged-cycle fit over {} sweep points:", charged.len());
    println!(
        "  A = {:.1} ns/candidate   B = {:.1} ns/interaction   C = {:.1} ns   r² = {:.4}",
        f.a, f.b, f.c, f.r_squared
    );
    println!("  paper Table II:  A = 26.6           B = 71.4            C = 574.0     r² = 0.9998");

    let h = fit(&host);
    println!("\nhost wall-clock fit (this Rust simulator, per step, whole array):");
    println!(
        "  A' = {:.0} ns/candidate  B' = {:.0} ns/interaction  C' = {:.0} ns  r² = {:.4}",
        h.a, h.b, h.c, h.r_squared
    );

    header("Timing stability (Sec. V-B)");
    // Rerun one configuration and collect per-step cycles.
    let mut sim = controlled_grid_sim(Species::Ta, side, 1.3, 4);
    sim.run(50);
    let trace = &sim.cycle_trace;
    let mean: f64 = trace.iter().sum::<f64>() / trace.len() as f64;
    let std: f64 =
        (trace.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / trace.len() as f64).sqrt();
    println!(
        "array-level step cycles: {:.0} ± {:.2} ({} steps; paper: 3,477 ± 0.316 after array averaging)",
        mean, std, trace.len()
    );
    println!("(a frozen controlled grid is deterministic, so the simulated deviation is 0)");
}
