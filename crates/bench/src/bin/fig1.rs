//! Fig. 1 — achievable MD timescale: WSE vs exascale GPU.
//!
//! Regenerates the star coordinates on the length/time map and the
//! headline "every year of runtime becomes two days" arithmetic.

use perf_model::timescale::{
    days_to_reach, gpu_star, reachable_timescale_s, slab_length_m, wse_star,
};
use wafer_md_bench::header;

fn main() {
    header("Fig. 1 — maximum achievable MD timescale (801,792 Ta atoms, 2 fs, 30 days)");
    let wse = wse_star();
    let gpu = gpu_star();
    println!("platform | length scale (m) | reachable timescale (s)");
    println!(
        "WSE      | {:>14.2e}   | {:>10.2e}",
        wse.length_m, wse.time_s
    );
    println!(
        "GPU      | {:>14.2e}   | {:>10.2e}",
        gpu.length_m, gpu.time_s
    );
    println!("timescale expansion: {:.0}x", wse.time_s / gpu.time_s);

    header("Fig. 1 annotations");
    println!(
        "paper-quoted WSE timescale (250k ts/s): {:.2e} s (vs our {:.2e} s at measured 274,016 ts/s)",
        reachable_timescale_s(250_000.0, 2e-3, 30.0),
        wse.time_s
    );
    println!(
        "maximum MD length scale (1.2e9 atoms): {:.1e} m",
        slab_length_m(1.2e9)
    );
    println!(
        "100 us of Ta dynamics: {:.1} days on WSE, {:.0} days on Frontier",
        days_to_reach(100e-6, 2e-3, 274_016.0),
        days_to_reach(100e-6, 2e-3, 1_530.0)
    );
    println!(
        "one year of GPU runtime compresses to {:.1} days on the WSE",
        365.0 / (wse.time_s / gpu.time_s)
    );
}
