//! Fig. 7 — strong scaling (a), energy efficiency (b), and relative
//! Pareto dominance (c) for the 801,792-atom benchmarks.

use md_baseline::cluster::{ClusterModel, Machine};
use md_baseline::energy::{node_sweep, relative_series, wse_timesteps_per_joule};
use md_baseline::strongscale::strong_scaling_data;
use md_core::materials::Species;
use wafer_md_bench::{fmt_rate, header};

/// Paper-measured WSE rates (Table I).
fn wse_measured(sp: Species) -> f64 {
    match sp {
        Species::Cu => 106_313.0,
        Species::W => 96_140.0,
        Species::Ta => 274_016.0,
    }
}

fn main() {
    for sp in [Species::Ta, Species::Cu, Species::W] {
        let data = strong_scaling_data(sp, wse_measured(sp));

        header(&format!("Fig. 7a — {}: timesteps/s vs nodes", sp.name()));
        println!("{:>9} {:>12} {:>12}", "nodes", "GPU ts/s", "CPU ts/s");
        for p in &data.gpu {
            let cpu = data
                .cpu
                .iter()
                .find(|c| (c.nodes - p.nodes).abs() < 1e-9)
                .map(|c| fmt_rate(c.timesteps_per_second))
                .unwrap_or_else(|| "-".into());
            println!(
                "{:>9} {:>12} {:>12}",
                p.nodes,
                fmt_rate(p.timesteps_per_second),
                cpu
            );
        }
        println!(
            "WSE: {} ts/s -> {:.0}x vs best GPU, {:.0}x vs best CPU",
            fmt_rate(data.wse.timesteps_per_second),
            data.speedup_vs_gpu(),
            data.speedup_vs_cpu()
        );

        header(&format!(
            "Fig. 7b — {}: timesteps/Joule vs timesteps/s",
            sp.name()
        ));
        println!(
            "{:>9} {:>12} {:>14} {:>14}",
            "machine", "nodes", "ts/s", "ts/J"
        );
        for (name, pts) in [("GPU", &data.gpu), ("CPU", &data.cpu)] {
            for p in pts.iter().step_by(3) {
                println!(
                    "{:>9} {:>12} {:>14} {:>14.4}",
                    name,
                    p.nodes,
                    fmt_rate(p.timesteps_per_second),
                    p.timesteps_per_joule
                );
            }
        }
        println!(
            "{:>9} {:>12} {:>14} {:>14.4}",
            "WSE",
            1,
            fmt_rate(data.wse.timesteps_per_second),
            wse_timesteps_per_joule(data.wse.timesteps_per_second)
        );

        header(&format!(
            "Fig. 7c — {}: WSE speedup factor vs WSE energy-efficiency factor",
            sp.name()
        ));
        println!(
            "{:>9} {:>9} {:>14} {:>14}",
            "machine", "nodes", "speedup", "energy"
        );
        for machine in [Machine::FrontierGpu, Machine::QuartzCpu] {
            let model = ClusterModel::calibrated(machine, sp);
            for p in relative_series(&model, &node_sweep(machine), wse_measured(sp))
                .iter()
                .step_by(3)
            {
                println!(
                    "{:>9} {:>9} {:>13.0}x {:>13.0}x",
                    if machine == Machine::FrontierGpu {
                        "GPU"
                    } else {
                        "CPU"
                    },
                    p.nodes,
                    p.wse_speedup_factor,
                    p.wse_energy_factor
                );
            }
        }
        println!("(every cluster point is >1 on both axes: WSE Pareto dominance)");
    }
}
