//! Table III — FLOP accounting for every step of the EAM kernel, with
//! theoretical at-peak time and per-phase utilization.

use perf_model::flops::{at_peak_ns, phase_ops, phase_utilization, table3_rows, Phase};
use wafer_md_bench::header;

fn main() {
    header("Table III — FLOP count for all adds, muls, and other steps");
    println!("{:<28} {:>4} {:>4} {:>4}  note", "Term", "+", "x", "~");
    for (phase, label, measured) in [
        (Phase::PerCandidate, "Per Candidate", 26.6),
        (Phase::PerInteraction, "Per Interaction", 71.4),
        (Phase::Fixed, "Fixed", 574.0),
    ] {
        for row in table3_rows(phase) {
            println!(
                "{:<28} {:>4} {:>4} {:>4}  {}",
                row.term, row.ops.adds, row.ops.muls, row.ops.other, row.note
            );
        }
        let ops = phase_ops(phase);
        println!(
            "{:<28} {:>4} {:>4} {:>4}  {:.1} ns / {:.1} ns = {:.0}%\n",
            format!("{label} Subtotal"),
            ops.adds,
            ops.muls,
            ops.other,
            at_peak_ns(ops),
            measured,
            100.0 * phase_utilization(phase)
        );
    }
    println!("paper: 5.3/26.6 = 20% candidate, 21.2/71.4 = 30% interaction, 7.1/574 = 1% fixed");
}
