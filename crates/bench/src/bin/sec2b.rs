//! Sec. II-B — small-system Lennard-Jones reference rates: the
//! strong-scaling limit that motivates the paper.

use md_baseline::lj::{skylake36_lj_rate, v100_lj_rate, LjPotential};
use md_core::vec3::V3d;
use wafer_md_bench::{fmt_rate, header};

fn main() {
    header("Sec. II-B — 1k-atom LJ strong-scaling limits on conventional hardware");
    println!(
        "{:>9} {:>16} {:>16}",
        "atoms", "V100 GPU ts/s", "36-rank CPU ts/s"
    );
    for n in [1_000.0, 4_000.0, 16_000.0, 64_000.0, 256_000.0] {
        println!(
            "{:>9} {:>16} {:>16}",
            n,
            fmt_rate(v100_lj_rate(n)),
            fmt_rate(skylake36_lj_rate(n))
        );
    }
    println!(
        "\npaper: <10k ts/s on the GPU (kernel-launch bound) and ~25k ts/s on the\n\
         CPU (MPI bound) at 1k atoms — versus >100k ts/s on the WSE for an\n\
         800x larger EAM system."
    );

    header("LJ potential sanity run (1k atoms, FCC-ish cluster)");
    let lj = LjPotential::<f64>::reduced();
    let side = 10;
    let positions: Vec<V3d> = (0..side * side * side)
        .map(|k| {
            let (x, y, z) = (k % side, (k / side) % side, k / (side * side));
            V3d::new(x as f64 * 1.1, y as f64 * 1.1, z as f64 * 1.1)
        })
        .collect();
    let t0 = std::time::Instant::now();
    let (energy, forces) = lj.compute(&positions);
    let net: V3d = forces.iter().copied().sum();
    println!(
        "{} atoms: U = {:.1} ε, |Σ F| = {:.2e}, evaluated in {:?}",
        positions.len(),
        energy,
        net.norm(),
        t0.elapsed()
    );
}
