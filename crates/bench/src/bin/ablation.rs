//! Ablation: the Table V optimizations *realized in simulation*.
//!
//! Table V projects four future optimizations analytically. Two of them
//! — neighbor-list reuse (Sec. VI-A-2) and force symmetry via
//! neighborhood reduction (Sec. VI-A-3) — are implemented for real in
//! this repository's engine (`WseMdConfig::{neighbor_reuse_interval,
//! symmetric_forces}`), with physics verified unchanged. This binary
//! measures their effect on actual thin-slab runs and compares against
//! the projection. The other two (fixed-cost reduction, 4-core workers)
//! are micro-architectural and remain model-only.

use md_core::lattice::SlabSpec;
use md_core::materials::{Material, Species};
use md_core::thermostat;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wafer_md_bench::{fmt_rate, header};
use wse_md::{WseMdConfig, WseMdSim};

fn run(species: Species, symmetric: bool, reuse: usize) -> (f64, f64, f64) {
    let m = Material::new(species);
    let spec = SlabSpec {
        crystal: m.crystal,
        lattice_a: m.lattice_a,
        nx: 24,
        ny: 24,
        nz: 3,
    };
    let positions = spec.generate();
    let mut rng = StdRng::seed_from_u64(77);
    let velocities = thermostat::maxwell_boltzmann(&mut rng, positions.len(), m.mass, 290.0);
    let mut config = WseMdConfig::open_for(positions.len(), 0.04, 2e-3);
    config.symmetric_forces = symmetric;
    config.neighbor_reuse_interval = reuse;
    config.neighbor_skin = if reuse > 1 { 1.0 } else { 0.0 };
    let mut sim = WseMdSim::new(species, &positions, &velocities, config);
    sim.run(40);
    (
        sim.timesteps_per_second(40),
        sim.last_stats.mean_candidates,
        sim.last_stats.mean_interactions,
    )
}

fn main() {
    header("Ablation — Table V optimizations realized in simulation");
    println!("thin slabs, 24x24x3 cells, 290 K, 40 steps each; ts/s from charged cycles\n");
    println!(
        "{:<8} {:>11} {:>11} {:>11} {:>11} {:>8} {:>8}",
        "Element", "baseline", "+reuse(10)", "+symmetry", "+both", "gain", "TableV*"
    );
    for sp in [Species::Ta, Species::W, Species::Cu] {
        let (base, cand, inter) = run(sp, false, 1);
        let (reuse, _, _) = run(sp, false, 10);
        let (sym, _, _) = run(sp, true, 1);
        let (both, _, _) = run(sp, true, 10);
        // Analytic expectation for these two stages at this workload.
        let model = wse_fabric::cost::CostModel::paper_baseline();
        let t_base = model.timestep_ns(cand, inter);
        let t_opt = model.mcast_ns * cand
            + 0.1 * model.miss_ns * (cand - inter)
            + 0.5 * model.interaction_ns * inter
            + model.fixed_ns;
        println!(
            "{:<8} {:>11} {:>11} {:>11} {:>11} {:>7.2}x {:>7.2}x",
            sp.symbol(),
            fmt_rate(base),
            fmt_rate(reuse),
            fmt_rate(sym),
            fmt_rate(both),
            both / base,
            t_base / t_opt
        );
    }
    println!(
        "\n* analytic gain of the same two stages (miss x0.1, interaction x0.5)\n\
         at this slab's measured workload. The simulated gain is slightly\n\
         lower because rebuild steps still pay full reject processing and\n\
         the skin adds entries to reused lists — costs Table V abstracts away.\n\
         Physics equivalence of both optimizations is enforced by tests\n\
         (crates/wse-md/tests/optimizations.rs)."
    );
}
