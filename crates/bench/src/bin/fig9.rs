//! Fig. 9 — atom motion and assignment cost under swap intervals.
//!
//! A tungsten grain-boundary bicrystal runs hot while we track (black
//! line) the largest max-norm x-y displacement of any atom and (colored
//! lines) the atom-to-core assignment cost for swap intervals from 1 to
//! 250 timesteps, starting from a deliberately sub-optimal mapping.

use md_core::grain::GrainBoundarySpec;
use md_core::materials::{Material, Species};
use md_core::thermostat;
use md_core::vec3::V3d;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wafer_md_bench::header;
use wse_md::{swap_round, WseMdConfig, WseMdSim};

fn build() -> (WseMdSim, Vec<V3d>) {
    let material = Material::new(Species::W);
    let spec = GrainBoundarySpec::tungsten_like(V3d::new(42.0, 42.0, 2.0 * material.lattice_a));
    let positions = spec.generate();
    let mut rng = StdRng::seed_from_u64(99);
    let velocities =
        thermostat::maxwell_boltzmann(&mut rng, positions.len(), material.mass, 1600.0);
    // ~4% empty tiles, matching the paper's 62,500 cores for 61,600 atoms.
    let config = WseMdConfig::open_for(positions.len(), 0.04, 2e-3);
    let sim = WseMdSim::new(Species::W, &positions, &velocities, config);
    (sim, positions)
}

fn main() {
    header("Fig. 9 — assignment cost vs time, by swap interval");
    let steps = 250usize;
    let sample_every = 25usize;
    let intervals: [usize; 6] = [1, 10, 25, 50, 100, 250];

    let (probe, _) = build();
    println!(
        "{} atoms on {} cores ({} empty); EAM cutoff {:.2} Å\n",
        probe.n_atoms(),
        probe.extent().count(),
        probe.extent().count() - probe.n_atoms(),
        Material::new(Species::W).cutoff
    );

    // Black line: max-norm displacement over time (no swaps needed).
    let (mut free, start) = build();
    let mut displacement = Vec::new();
    for k in 0..steps {
        free.step();
        if (k + 1) % sample_every == 0 {
            let now = free.positions_by_atom();
            let d = now
                .iter()
                .zip(&start)
                .map(|(a, b)| (*a - *b).max_norm_xy())
                .fold(0.0, f64::max);
            displacement.push(d);
        }
    }

    // Colored lines: assignment cost per swap interval.
    let mut cost_series: Vec<(usize, Vec<f64>)> = Vec::new();
    for &interval in &intervals {
        let (mut sim, _) = build();
        let mut series = Vec::new();
        for k in 0..steps {
            sim.step();
            if (k + 1) % interval == 0 {
                swap_round(&mut sim);
            }
            if (k + 1) % sample_every == 0 {
                series.push(sim.assignment_cost());
            }
        }
        cost_series.push((interval, series));
    }

    print!("{:>6} {:>10}", "step", "max-disp");
    for (i, _) in &cost_series {
        print!(" {:>8}", format!("swap={i}"));
    }
    println!();
    for row in 0..displacement.len() {
        print!(
            "{:>6} {:>10.2}",
            (row + 1) * sample_every,
            displacement[row]
        );
        for (_, series) in &cost_series {
            print!(" {:>8.2}", series[row]);
        }
        println!();
    }

    let final_costs: Vec<f64> = cost_series
        .iter()
        .map(|(_, s)| *s.last().unwrap())
        .collect();
    println!(
        "\nfrequent swapping (1-100) holds the cost near {:.1}-{:.1} Å while\n\
         unconstrained displacement reaches {:.1} Å; the paper's threshold is\n\
         ~3 Å + cutoff for swap intervals of 100 steps or less.",
        final_costs[0],
        final_costs[4],
        displacement.last().unwrap()
    );
}
