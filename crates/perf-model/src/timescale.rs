//! Achievable-timescale computation behind Fig. 1.
//!
//! Fig. 1 places the WSE and GPU "stars" on the length/time map of
//! materials-simulation methods: for the 801,792-atom Ta benchmark with a
//! 2 fs timestep and 30 days of wall clock, the WSE reaches ~1.3 ms of
//! simulated time versus ~7 µs on the exascale GPU machine — the nearly
//! 180× timescale expansion that is the paper's headline.

use md_core::units::PAPER_TIMESTEP;

/// Seconds in a wall-clock day.
pub const SECONDS_PER_DAY: f64 = 86_400.0;

/// Simulated physical time (s) reachable at `rate` timesteps/s with
/// timestep `dt_ps` (ps) over `days` of wall clock.
pub fn reachable_timescale_s(rate: f64, dt_ps: f64, days: f64) -> f64 {
    rate * dt_ps * 1e-12 * days * SECONDS_PER_DAY
}

/// Length scale (m) of an N-atom slab with the paper's geometry
/// (~0.3 nm lattice pitch, 6×2 atoms per column): edge ≈ √(N/12)·0.3 nm.
pub fn slab_length_m(n_atoms: f64) -> f64 {
    (n_atoms / 12.0).sqrt() * 0.3e-9
}

/// The Fig. 1 star coordinates: (length m, time s).
#[derive(Clone, Copy, Debug)]
pub struct TimescaleStar {
    pub length_m: f64,
    pub time_s: f64,
}

/// WSE star: measured Ta rate, 30 days, 2 fs.
pub fn wse_star() -> TimescaleStar {
    TimescaleStar {
        length_m: slab_length_m(801_792.0),
        time_s: reachable_timescale_s(274_016.0, PAPER_TIMESTEP, 30.0),
    }
}

/// GPU star: the same problem at the Frontier rate (179× slower).
pub fn gpu_star() -> TimescaleStar {
    TimescaleStar {
        length_m: slab_length_m(801_792.0),
        time_s: reachable_timescale_s(274_016.0 / 179.0, PAPER_TIMESTEP, 30.0),
    }
}

/// Timesteps needed to reach `target_s` seconds of simulated time at
/// timestep `dt_ps`.
pub fn steps_to_reach(target_s: f64, dt_ps: f64) -> f64 {
    target_s / (dt_ps * 1e-12)
}

/// Wall-clock days to reach `target_s` simulated seconds at `rate`.
pub fn days_to_reach(target_s: f64, dt_ps: f64, rate: f64) -> f64 {
    steps_to_reach(target_s, dt_ps) / rate / SECONDS_PER_DAY
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wse_star_reaches_about_1_3_milliseconds() {
        // Fig. 1 annotation: 250,000 ts/s × 2 fs × 30 days ≈ 1.3 ms; our
        // star uses the measured 274,016 ts/s (≈1.42 ms).
        let t = wse_star().time_s;
        assert!((1.2e-3..1.6e-3).contains(&t), "WSE timescale {t} s");
    }

    #[test]
    fn gpu_star_reaches_only_microseconds() {
        let t = gpu_star().time_s;
        assert!((5e-6..10e-6).contains(&t), "GPU timescale {t} s");
    }

    #[test]
    fn the_gap_is_179x() {
        let ratio = wse_star().time_s / gpu_star().time_s;
        assert!((ratio - 179.0).abs() < 1e-6);
    }

    #[test]
    fn slab_length_matches_fig1_annotation() {
        // 801,792 atoms ⇒ ~7.5e-8 m edge.
        let l = slab_length_m(801_792.0);
        assert!((7e-8..8e-8).contains(&l), "length {l}");
    }

    #[test]
    fn hundred_microseconds_becomes_reachable() {
        // Sec. VI-B: ~100 µs MD "achieved here" — 100 µs of Ta dynamics
        // takes ~2 days on the WSE but over a year on the GPU.
        let wse_days = days_to_reach(100e-6, PAPER_TIMESTEP, 274_016.0);
        let gpu_days = days_to_reach(100e-6, PAPER_TIMESTEP, 1_530.0);
        assert!(wse_days < 3.0, "WSE days {wse_days}");
        assert!(gpu_days > 365.0, "GPU days {gpu_days}");
    }

    #[test]
    fn reducing_a_year_to_two_days() {
        // Abstract: "Reducing every year of runtime to two days" — the
        // 179× factor turns 365 days into ~2.04 days.
        assert!((365.0_f64 / 179.0 - 2.04).abs() < 0.01);
    }
}
