//! Projected performance gains from future optimizations (paper Table V).
//!
//! Starting from the baseline model in the (Mcast, Miss, Interaction,
//! Fixed) basis, the paper stacks four conservative optimizations:
//!
//! 1. **Fixed cost** — targeted optimization of the fixed component (2×),
//! 2. **Neighbor list** — re-examine candidates every 10th step (reject
//!    processing drops to 10%),
//! 3. **Force symmetry** — compute (·)ᵢⱼ terms once for i < j and return
//!    them through a systolic neighborhood reduction (interaction 2×),
//! 4. **Multi-core workers** — spread each worker over 4 cores (2× on
//!    multicast, reject, and interaction processing).
//!
//! Combined, tantalum is projected past one million timesteps per second.

use md_core::materials::Species;
use wse_fabric::cost::CostModel;

/// The cumulative optimization stages of Table V, in order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    Baseline,
    FixedCost,
    NeighborList,
    ForceSymmetry,
    ParallelWorkers,
}

impl Stage {
    pub const ALL: [Stage; 5] = [
        Stage::Baseline,
        Stage::FixedCost,
        Stage::NeighborList,
        Stage::ForceSymmetry,
        Stage::ParallelWorkers,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Stage::Baseline => "Baseline",
            Stage::FixedCost => "Fixed cost",
            Stage::NeighborList => "Neighbor list",
            Stage::ForceSymmetry => "Symmetry",
            Stage::ParallelWorkers => "Parallel",
        }
    }

    /// The cost model with all optimizations up to and including this
    /// stage applied (cumulatively, as in Table V's rows).
    pub fn model(self) -> CostModel {
        let base = CostModel::paper_baseline();
        let mut m = base;
        let stages = Stage::ALL;
        let upto = stages.iter().position(|&s| s == self).unwrap();
        for stage in &stages[1..=upto] {
            m = match stage {
                Stage::Baseline => m,
                Stage::FixedCost => m.scaled(1.0, 1.0, 1.0, 0.5),
                Stage::NeighborList => m.scaled(1.0, 0.1, 1.0, 1.0),
                Stage::ForceSymmetry => m.scaled(1.0, 1.0, 0.5, 1.0),
                Stage::ParallelWorkers => m.scaled(0.5, 0.5, 0.5, 1.0),
            };
        }
        m
    }
}

/// One row of Table V for one material.
#[derive(Clone, Copy, Debug)]
pub struct ProjectionRow {
    pub stage: Stage,
    pub model: CostModel,
    /// Projected rate (timesteps/s).
    pub rate: f64,
}

/// The paper's per-material workload (candidates, interactions).
fn workload(species: Species) -> (f64, f64) {
    match species {
        Species::Cu => (224.0, 42.0),
        Species::W => (224.0, 59.0),
        Species::Ta => (80.0, 14.0),
    }
}

/// Build the Table V column for `species`.
pub fn projection_table(species: Species) -> Vec<ProjectionRow> {
    let (cand, inter) = workload(species);
    Stage::ALL
        .iter()
        .map(|&stage| {
            let model = stage.model();
            ProjectionRow {
                stage,
                model,
                rate: model.timesteps_per_second(cand, inter),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table V tantalum column (1,000 timesteps/s units). The W and
    /// Cu columns in the published table (130k/150k baseline) are not
    /// consistent with Table I's own measured baselines (96k/106k) under
    /// the stated cost model, so we pin the Ta column — which is exactly
    /// reproducible — and check W/Cu structurally below.
    const PAPER_TA: [(Stage, f64); 5] = [
        (Stage::Baseline, 270.0),
        (Stage::FixedCost, 290.0),
        (Stage::NeighborList, 460.0),
        (Stage::ForceSymmetry, 650.0),
        (Stage::ParallelWorkers, 1100.0),
    ];

    #[test]
    fn tantalum_rates_match_paper_table5_within_rounding() {
        let table = projection_table(Species::Ta);
        for (row, (stage, want)) in PAPER_TA.iter().enumerate() {
            assert_eq!(table[row].stage, *stage);
            let got = table[row].rate / 1000.0;
            // Paper rounds to 2 significant figures.
            assert!(
                (got - want).abs() / want < 0.03,
                "Ta {}: {got}k vs paper {want}k",
                stage.name()
            );
        }
    }

    #[test]
    fn w_and_cu_projections_are_consistent_with_table1_baselines() {
        // Structural check: baselines equal the Table I predictions, and
        // the full stack gives roughly 3.4–4× overall (as Ta's 270→1100).
        for (sp, table1_predicted) in [(Species::W, 93_048.0), (Species::Cu, 104_895.0)] {
            let t = projection_table(sp);
            assert!(
                (t[0].rate - table1_predicted).abs() / table1_predicted < 0.005,
                "{sp:?} baseline {}",
                t[0].rate
            );
            let overall = t.last().unwrap().rate / t[0].rate;
            assert!(
                (2.5..5.0).contains(&overall),
                "{sp:?} overall stack gain {overall}"
            );
        }
    }

    #[test]
    fn tantalum_crosses_one_million_timesteps() {
        let table = projection_table(Species::Ta);
        assert!(
            table.last().unwrap().rate > 1.0e6,
            "final Ta projection {}",
            table.last().unwrap().rate
        );
    }

    #[test]
    fn every_stage_improves_every_material() {
        for sp in Species::ALL {
            let t = projection_table(sp);
            for w in t.windows(2) {
                assert!(
                    w[1].rate > w[0].rate,
                    "{sp:?}: {} did not improve",
                    w[1].stage.name()
                );
            }
        }
    }

    #[test]
    fn stage_models_match_table5_component_columns() {
        // Table V nanosecond columns: baseline (6, 21, 92, 574); fixed-cost
        // row 287; neighbor-list row miss 2.1; symmetry row interaction 46;
        // parallel row (3, ~1.0, 23, 287).
        let m = Stage::ParallelWorkers.model();
        assert!((m.mcast_ns - 3.0).abs() < 1e-9);
        assert!((m.miss_ns - 1.03).abs() < 0.1);
        assert!((m.interaction_ns - 23.0).abs() < 1e-9);
        assert!((m.fixed_ns - 287.0).abs() < 1e-9);
    }

    #[test]
    fn neighbor_list_reuse_matters_most_for_sparse_potentials() {
        // Ta (14/80) spends nearly half its time on rejected candidates;
        // the neighbor-list stage must help Ta far more than W.
        let ta = projection_table(Species::Ta);
        let w = projection_table(Species::W);
        let gain = |t: &[ProjectionRow]| t[2].rate / t[1].rate;
        assert!(gain(&ta) > 1.4);
        assert!(gain(&ta) > gain(&w));
    }
}
