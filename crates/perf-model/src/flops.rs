//! FLOP accounting and utilization (paper Tables III and IV).
//!
//! Table III counts every add, multiply, and other (conversion/compare)
//! operation in the per-candidate, per-interaction, and fixed phases of
//! the timestep, converts the totals to theoretical at-peak runtime, and
//! divides by the measured phase times to obtain per-phase utilization.
//! Table IV extends this to whole-machine utilization for the CS-2,
//! Frontier, and Quartz.

use md_core::materials::Species;

/// Operation counts for one Table III row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpCounts {
    pub adds: u32,
    pub muls: u32,
    pub other: u32,
}

impl OpCounts {
    pub const fn new(adds: u32, muls: u32, other: u32) -> Self {
        Self { adds, muls, other }
    }

    pub fn total(self) -> u32 {
        self.adds + self.muls + self.other
    }
}

impl std::ops::Add for OpCounts {
    type Output = Self;
    fn add(self, o: Self) -> Self {
        Self::new(self.adds + o.adds, self.muls + o.muls, self.other + o.other)
    }
}

/// One row of Table III.
#[derive(Clone, Copy, Debug)]
pub struct OpScheduleRow {
    pub term: &'static str,
    pub ops: OpCounts,
    pub note: &'static str,
}

/// Which cost phase a row belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    PerCandidate,
    PerInteraction,
    Fixed,
}

const PER_CANDIDATE_ROWS: [OpScheduleRow; 3] = [
    OpScheduleRow {
        term: "r_ij <- r_j - r_i",
        ops: OpCounts::new(3, 0, 0),
        note: "Relative displacement",
    },
    OpScheduleRow {
        term: "r2_ij <- r_ij . r_ij",
        ops: OpCounts::new(2, 3, 0),
        note: "Squared distance",
    },
    OpScheduleRow {
        term: "r2_ij < r2_cut",
        ops: OpCounts::new(1, 0, 0),
        note: "Threshold check",
    },
];

const PER_INTERACTION_ROWS: [OpScheduleRow; 6] = [
    OpScheduleRow {
        term: "r_ij^-1 <- (r2_ij)^-1/2",
        ops: OpCounts::new(3, 8, 1),
        note: "Newton-Raphson",
    },
    OpScheduleRow {
        term: "r_ij <- r2_ij * r_ij^-1",
        ops: OpCounts::new(0, 1, 0),
        note: "Euclidean distance",
    },
    OpScheduleRow {
        term: "k, dx <- segment(r_ij)",
        ops: OpCounts::new(1, 1, 2),
        note: "Spline segment",
    },
    OpScheduleRow {
        term: "sum_j rho[k](dx)",
        ops: OpCounts::new(3, 2, 0),
        note: "Density evaluation",
    },
    OpScheduleRow {
        term: "rho'[k](dx), phi'[k](dx)",
        ops: OpCounts::new(2, 2, 0),
        note: "Linear splines",
    },
    OpScheduleRow {
        term: "force evaluation",
        ops: OpCounts::new(5, 5, 0),
        note: "Force evaluation",
    },
];

const FIXED_ROWS: [OpScheduleRow; 3] = [
    OpScheduleRow {
        term: "k, dx <- segment(rho_i)",
        ops: OpCounts::new(1, 1, 2),
        note: "Spline segment",
    },
    OpScheduleRow {
        term: "F'_i[k](dx)",
        ops: OpCounts::new(1, 1, 0),
        note: "Embedding component",
    },
    OpScheduleRow {
        term: "integrate v_i, r_i",
        ops: OpCounts::new(6, 0, 0),
        note: "Verlet integration",
    },
];

/// The full Table III operation schedule.
pub fn table3_rows(phase: Phase) -> &'static [OpScheduleRow] {
    match phase {
        Phase::PerCandidate => &PER_CANDIDATE_ROWS,
        Phase::PerInteraction => &PER_INTERACTION_ROWS,
        Phase::Fixed => &FIXED_ROWS,
    }
}

/// Phase subtotal op counts.
pub fn phase_ops(phase: Phase) -> OpCounts {
    table3_rows(phase)
        .iter()
        .fold(OpCounts::new(0, 0, 0), |acc, r| acc + r.ops)
}

/// The clock the paper uses for peak-rate conversions (850 MHz; the WSE-2
/// datapath retires 2 FP32 operations per cycle at this clock, giving the
/// 1.45 PFLOP/s peak over 850k cores).
pub const PEAK_CLOCK_GHZ: f64 = 0.85;

/// FP32 operations per cycle per core at peak.
pub const OPS_PER_CYCLE: f64 = 2.0;

/// Theoretical at-peak time (ns) to execute `ops` on one core.
pub fn at_peak_ns(ops: OpCounts) -> f64 {
    ops.total() as f64 / (OPS_PER_CYCLE * PEAK_CLOCK_GHZ)
}

/// Per-phase utilization: at-peak time / measured phase time (Table III's
/// right-hand column: 20% candidate, 30% interaction, 1% fixed).
pub fn phase_utilization(phase: Phase) -> f64 {
    let measured_ns = match phase {
        Phase::PerCandidate => 26.6,
        Phase::PerInteraction => 71.4,
        Phase::Fixed => 574.0,
    };
    at_peak_ns(phase_ops(phase)) / measured_ns
}

// ---------------- Table IV: machine utilization ----------------

/// Machines in Table IV with their chip counts and peak PFLOP/s.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Platform {
    /// 1 WSE (CS-2), 1.45 PFLOP/s FP32.
    Cs2,
    /// 32 MI250X GCDs (4 Frontier nodes), 0.77 PFLOP/s FP64.
    Frontier32Gcd,
    /// 800 Quartz CPUs, 0.50 PFLOP/s FP64.
    Quartz800Cpu,
}

impl Platform {
    pub fn name(self) -> &'static str {
        match self {
            Platform::Cs2 => "CS-2 (1 WSE)",
            Platform::Frontier32Gcd => "Frontier (32 GCD)",
            Platform::Quartz800Cpu => "Quartz (800 CPU)",
        }
    }

    /// Peak throughput in FLOP/s.
    pub fn peak_flops(self) -> f64 {
        match self {
            Platform::Cs2 => 1.45e15,
            Platform::Frontier32Gcd => 0.77e15,
            Platform::Quartz800Cpu => 0.50e15,
        }
    }

    /// Timestepping rate (timesteps/s) each platform achieved for the
    /// 801,792-atom benchmarks (measured, Table I).
    pub fn measured_rate(self, species: Species) -> f64 {
        match (self, species) {
            (Platform::Cs2, Species::Cu) => 106_313.0,
            (Platform::Cs2, Species::W) => 96_140.0,
            (Platform::Cs2, Species::Ta) => 274_016.0,
            (Platform::Frontier32Gcd, Species::Cu) => 973.0,
            (Platform::Frontier32Gcd, Species::W) => 998.0,
            (Platform::Frontier32Gcd, Species::Ta) => 1_530.0,
            (Platform::Quartz800Cpu, Species::Cu) => 3_120.0,
            (Platform::Quartz800Cpu, Species::W) => 3_633.0,
            (Platform::Quartz800Cpu, Species::Ta) => 4_938.0,
        }
    }
}

/// Algorithm FLOPs per atom per timestep in the (interaction, candidate,
/// fixed) basis the paper uses: every platform is credited the same
/// model, which is "slightly generous" to LAMMPS (Sec. V-D).
pub fn flops_per_atom_step(species: Species) -> f64 {
    let (cand, inter) = match species {
        Species::Cu => (224.0, 42.0),
        Species::W => (224.0, 59.0),
        Species::Ta => (80.0, 14.0),
    };
    phase_ops(Phase::PerCandidate).total() as f64 * cand
        + phase_ops(Phase::PerInteraction).total() as f64 * inter
        + phase_ops(Phase::Fixed).total() as f64
}

/// Table IV utilization (fraction of peak) for a platform and material.
pub fn machine_utilization(platform: Platform, species: Species) -> f64 {
    let n_atoms = 801_792.0;
    let achieved = platform.measured_rate(species) * n_atoms * flops_per_atom_step(species);
    achieved / platform.peak_flops()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_subtotals_match_table3() {
        assert_eq!(phase_ops(Phase::PerCandidate), OpCounts::new(6, 3, 0));
        assert_eq!(phase_ops(Phase::PerInteraction), OpCounts::new(14, 19, 3));
        assert_eq!(phase_ops(Phase::Fixed), OpCounts::new(8, 2, 2));
    }

    #[test]
    fn at_peak_times_match_table3() {
        // Table III: 5.3 ns candidate, 21.2 ns interaction, 7.1 ns fixed.
        assert!((at_peak_ns(phase_ops(Phase::PerCandidate)) - 5.3).abs() < 0.1);
        assert!((at_peak_ns(phase_ops(Phase::PerInteraction)) - 21.2).abs() < 0.1);
        assert!((at_peak_ns(phase_ops(Phase::Fixed)) - 7.1).abs() < 0.1);
    }

    #[test]
    fn phase_utilizations_match_table3() {
        assert!((phase_utilization(Phase::PerCandidate) - 0.20).abs() < 0.01);
        assert!((phase_utilization(Phase::PerInteraction) - 0.30).abs() < 0.01);
        assert!((phase_utilization(Phase::Fixed) - 0.01).abs() < 0.005);
    }

    #[test]
    fn cs2_utilization_matches_table4() {
        // Table IV: Cu 22%, W 23%, Ta 20%.
        let cu = machine_utilization(Platform::Cs2, Species::Cu);
        let w = machine_utilization(Platform::Cs2, Species::W);
        let ta = machine_utilization(Platform::Cs2, Species::Ta);
        assert!((cu - 0.22).abs() < 0.02, "Cu {cu}");
        assert!((w - 0.23).abs() < 0.02, "W {w}");
        assert!((ta - 0.20).abs() < 0.02, "Ta {ta}");
    }

    #[test]
    fn frontier_utilization_matches_table4() {
        // Table IV: Cu 0.4%, W 0.4%, Ta 0.2%.
        let cu = machine_utilization(Platform::Frontier32Gcd, Species::Cu);
        let w = machine_utilization(Platform::Frontier32Gcd, Species::W);
        let ta = machine_utilization(Platform::Frontier32Gcd, Species::Ta);
        assert!((cu - 0.004).abs() < 0.001, "Cu {cu}");
        assert!((w - 0.004).abs() < 0.002, "W {w}");
        assert!((ta - 0.002).abs() < 0.001, "Ta {ta}");
    }

    #[test]
    fn quartz_utilization_matches_table4() {
        // Table IV: Cu 1.9%, W 2.5%, Ta 1.0%.
        let cu = machine_utilization(Platform::Quartz800Cpu, Species::Cu);
        let w = machine_utilization(Platform::Quartz800Cpu, Species::W);
        let ta = machine_utilization(Platform::Quartz800Cpu, Species::Ta);
        assert!((cu - 0.019).abs() < 0.004, "Cu {cu}");
        assert!((w - 0.025).abs() < 0.004, "W {w}");
        assert!((ta - 0.010).abs() < 0.003, "Ta {ta}");
    }

    #[test]
    fn wse_utilization_is_orders_above_clusters() {
        for sp in Species::ALL {
            let wse = machine_utilization(Platform::Cs2, sp);
            let gpu = machine_utilization(Platform::Frontier32Gcd, sp);
            let cpu = machine_utilization(Platform::Quartz800Cpu, sp);
            assert!(wse / gpu > 20.0, "{sp:?}: WSE/GPU utilization ratio");
            assert!(wse / cpu > 5.0, "{sp:?}: WSE/CPU utilization ratio");
        }
    }

    #[test]
    fn row_totals_are_consistent() {
        for phase in [Phase::PerCandidate, Phase::PerInteraction, Phase::Fixed] {
            let sum = table3_rows(phase)
                .iter()
                .map(|r| r.ops.total())
                .sum::<u32>();
            assert_eq!(sum, phase_ops(phase).total());
        }
    }
}
