//! Least-squares fit of the paper's linear timestep model (Table II).
//!
//! The paper fits `t_wall = A·n_candidate + B·n_interaction + C` to a
//! controlled sweep of configurations and reports A = 26.6 ns,
//! B = 71.4 ns, C = 574.0 ns with r² = 0.9998. This module provides the
//! 3-parameter ordinary-least-squares fit (normal equations, closed-form
//! 3×3 solve) and the r² statistic, applied to sweep samples produced by
//! the simulator.

/// One sweep observation.
#[derive(Clone, Copy, Debug)]
pub struct SweepSample {
    pub n_candidates: f64,
    pub n_interactions: f64,
    /// Measured wall time per timestep (ns).
    pub t_wall_ns: f64,
}

/// Fitted model and goodness of fit.
#[derive(Clone, Copy, Debug)]
pub struct LinearFit {
    /// ns per candidate.
    pub a: f64,
    /// ns per interaction.
    pub b: f64,
    /// fixed ns per timestep.
    pub c: f64,
    pub r_squared: f64,
}

impl LinearFit {
    pub fn predict(&self, n_candidates: f64, n_interactions: f64) -> f64 {
        self.a * n_candidates + self.b * n_interactions + self.c
    }
}

/// Solve the 3×3 system `m · x = v` by Gaussian elimination with partial
/// pivoting. Panics on a singular system (degenerate sweep design).
#[allow(clippy::needless_range_loop)] // lockstep indexing over parallel arrays
fn solve3(mut m: [[f64; 3]; 3], mut v: [f64; 3]) -> [f64; 3] {
    for col in 0..3 {
        // Pivot.
        let pivot = (col..3)
            .max_by(|&i, &j| m[i][col].abs().partial_cmp(&m[j][col].abs()).unwrap())
            .unwrap();
        m.swap(col, pivot);
        v.swap(col, pivot);
        assert!(
            m[col][col].abs() > 1e-12,
            "singular design matrix: sweep does not vary independently"
        );
        for row in (col + 1)..3 {
            let f = m[row][col] / m[col][col];
            for k in col..3 {
                m[row][k] -= f * m[col][k];
            }
            v[row] -= f * v[col];
        }
    }
    let mut x = [0.0; 3];
    for row in (0..3).rev() {
        let mut s = v[row];
        for k in (row + 1)..3 {
            s -= m[row][k] * x[k];
        }
        x[row] = s / m[row][row];
    }
    x
}

/// Ordinary least squares for `t = a·cand + b·inter + c`.
pub fn fit(samples: &[SweepSample]) -> LinearFit {
    assert!(
        samples.len() >= 3,
        "need at least 3 sweep samples, got {}",
        samples.len()
    );
    // Normal equations Xᵀ X β = Xᵀ y with design columns (cand, inter, 1).
    let mut xtx = [[0.0f64; 3]; 3];
    let mut xty = [0.0f64; 3];
    for s in samples {
        let row = [s.n_candidates, s.n_interactions, 1.0];
        for i in 0..3 {
            for j in 0..3 {
                xtx[i][j] += row[i] * row[j];
            }
            xty[i] += row[i] * s.t_wall_ns;
        }
    }
    let beta = solve3(xtx, xty);

    let mean_y: f64 = samples.iter().map(|s| s.t_wall_ns).sum::<f64>() / samples.len() as f64;
    let ss_tot: f64 = samples.iter().map(|s| (s.t_wall_ns - mean_y).powi(2)).sum();
    let ss_res: f64 = samples
        .iter()
        .map(|s| {
            let pred = beta[0] * s.n_candidates + beta[1] * s.n_interactions + beta[2];
            (s.t_wall_ns - pred).powi(2)
        })
        .sum();
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };

    LinearFit {
        a: beta[0],
        b: beta[1],
        c: beta[2],
        r_squared,
    }
}

/// The paper's published Table II coefficients.
pub fn paper_table2() -> LinearFit {
    LinearFit {
        a: 26.6,
        b: 71.4,
        c: 574.0,
        r_squared: 0.9998,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn synthetic_sweep(a: f64, b: f64, c: f64, noise: f64, seed: u64) -> Vec<SweepSample> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for cand in [24.0, 48.0, 80.0, 120.0, 168.0, 224.0] {
            for frac in [0.1, 0.2, 0.35, 0.5] {
                let inter = cand * frac;
                let t = a * cand + b * inter + c + noise * rng.gen_range(-1.0..1.0);
                out.push(SweepSample {
                    n_candidates: cand,
                    n_interactions: inter,
                    t_wall_ns: t,
                });
            }
        }
        out
    }

    #[test]
    fn exact_data_recovers_exact_coefficients() {
        let fit = fit(&synthetic_sweep(26.6, 71.4, 574.0, 0.0, 1));
        assert!((fit.a - 26.6).abs() < 1e-9);
        assert!((fit.b - 71.4).abs() < 1e-9);
        assert!((fit.c - 574.0).abs() < 1e-9);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn noisy_data_recovers_coefficients_approximately() {
        let fit = fit(&synthetic_sweep(26.6, 71.4, 574.0, 20.0, 7));
        assert!((fit.a - 26.6).abs() < 1.0, "a = {}", fit.a);
        assert!((fit.b - 71.4).abs() < 2.0, "b = {}", fit.b);
        assert!((fit.c - 574.0).abs() < 40.0, "c = {}", fit.c);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn prediction_matches_model() {
        let f = paper_table2();
        // Table I predicted values follow from Table II coefficients.
        let ta = 1e9 / f.predict(80.0, 14.0);
        assert!((ta - 270_097.0).abs() / 270_097.0 < 0.005);
        let cu = 1e9 / f.predict(224.0, 42.0);
        assert!((cu - 104_895.0).abs() / 104_895.0 < 0.005);
    }

    #[test]
    fn degenerate_sweep_panics() {
        // All samples identical: the design matrix is singular.
        let s = SweepSample {
            n_candidates: 80.0,
            n_interactions: 14.0,
            t_wall_ns: 3700.0,
        };
        let result = std::panic::catch_unwind(|| fit(&[s; 5]));
        assert!(result.is_err());
    }

    #[test]
    fn r_squared_penalizes_wrong_model() {
        // Quadratic ground truth fit by the linear model: r² must drop
        // visibly below the paper's 0.9998.
        let samples: Vec<SweepSample> = (1..30)
            .map(|k| {
                let cand = 8.0 * k as f64;
                SweepSample {
                    n_candidates: cand,
                    n_interactions: 0.2 * cand,
                    t_wall_ns: 5.0 * cand * cand + 100.0,
                }
            })
            .collect();
        let f = fit(&samples);
        assert!(f.r_squared < 0.99, "r² = {}", f.r_squared);
    }
}
