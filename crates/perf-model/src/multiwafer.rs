//! Multi-wafer weak scaling via ghost regions (paper Sec. VI-C, Table VI).
//!
//! To weak-scale across WSE nodes, non-overlapping subdomains are
//! distributed one per node; each node also holds *ghost* atoms in a
//! λ-lattice-unit expansion of its boundary. Every timestep invalidates
//! the outermost 2·r_cut strip of ghosts, so a node can run
//! `k = λ·r_lattice / (2·r_cut)` timesteps before refreshing 192 bits of
//! position+velocity per ghost over the inter-node link (ω = 1.2 Tb/s,
//! τ = 2 µs).
//!
//! Ghost refresh streams in while the node computes (WSE dataflow
//! receive overlaps compute), so the period is
//!
//! ```text
//! t_period = max(k · t_wall, 192·N_ghost/ω) + τ
//! rate     = k / t_period
//! ```
//!
//! which reproduces every Table VI rate cell to better than 0.5%.

use md_core::materials::Species;

/// Inter-node bandwidth (bits/s): current-generation WSE I/O.
pub const OMEGA_BITS_PER_S: f64 = 1.2e12;

/// Inter-node latency (s): exascale-class interconnect.
pub const TAU_S: f64 = 2.0e-6;

/// Bits transferred per ghost atom per refresh (position + velocity).
pub const GHOST_BITS: f64 = 192.0;

/// One Table VI configuration.
#[derive(Clone, Copy, Debug)]
pub struct MultiWaferConfig {
    pub species: Species,
    /// Subdomain edge in lattice units (Table VI column X).
    pub x: f64,
    /// Subdomain thickness in lattice units (column Z).
    pub z: f64,
    /// Ghost-region width in lattice units (column λ).
    pub lambda: f64,
    /// Single-wafer time per timestep (s).
    pub t_wall: f64,
    /// r_cut / r_lattice for this material (Table VI column).
    pub rcut_over_rlattice: f64,
}

/// Predicted multi-wafer operating point.
#[derive(Clone, Copy, Debug)]
pub struct MultiWaferPoint {
    /// Timesteps per refresh period.
    pub k: f64,
    /// Interior atoms per node.
    pub n_interior: f64,
    /// Ghost atoms per node (boundary strips of the thin-slab
    /// decomposition).
    pub n_ghost: f64,
    /// Refresh transfer time (s).
    pub t_transfer: f64,
    /// Period length (s).
    pub t_period: f64,
    /// Achieved timesteps/s.
    pub rate: f64,
    /// Fraction of the single-wafer rate preserved.
    pub performance: f64,
}

impl MultiWaferConfig {
    /// The paper's Table VI rows: (species, X, Z, λ_low, λ_high,
    /// rcut/rlattice, measured single-wafer rate).
    pub fn paper_rows() -> Vec<(MultiWaferConfig, MultiWaferConfig)> {
        let rows = [
            (Species::Cu, 283.0, 10.0, 78.0, 15.0, 1.94, 106_313.0),
            (Species::W, 317.0, 8.0, 88.0, 17.0, 2.02, 96_140.0),
            (Species::Ta, 317.0, 8.0, 88.0, 17.0, 1.39, 274_016.0),
        ];
        rows.iter()
            .map(|&(species, x, z, lam_lo, lam_hi, ratio, rate)| {
                let mk = |lambda| MultiWaferConfig {
                    species,
                    x,
                    z,
                    lambda,
                    t_wall: 1.0 / rate,
                    rcut_over_rlattice: ratio,
                };
                (mk(lam_lo), mk(lam_hi))
            })
            .collect()
    }

    /// Evaluate the model.
    pub fn evaluate(&self) -> MultiWaferPoint {
        let k = (self.lambda / (2.0 * self.rcut_over_rlattice)).floor();
        assert!(k >= 1.0, "ghost region too thin for even one timestep");
        let n_interior = self.x * self.x * self.z;
        // Thin-slab decomposition: ghost strips of width λ along the
        // split axis on both sides.
        let n_ghost = 2.0 * self.lambda * self.x * self.z;
        evaluate_ghost_period(k, n_interior, n_ghost, self.t_wall)
    }
}

/// The Table VI period model on explicit operands: `k` timesteps of
/// `t_wall` each per ghost refresh of `n_ghost` atoms, transfer
/// overlapped with compute, latency `τ` exposed once per period.
/// Shared by the analytic table rows and by reconciliation against
/// measured sharded runs.
pub fn evaluate_ghost_period(
    k: f64,
    n_interior: f64,
    n_ghost: f64,
    t_wall: f64,
) -> MultiWaferPoint {
    let t_transfer = GHOST_BITS * n_ghost / OMEGA_BITS_PER_S;
    let t_compute = k * t_wall;
    let t_period = t_compute.max(t_transfer) + TAU_S;
    let rate = k / t_period;
    MultiWaferPoint {
        k,
        n_interior,
        n_ghost,
        t_transfer,
        t_period,
        rate,
        performance: rate * t_wall,
    }
}

/// Ghost-region statistics **measured from a real sharded run** (the
/// `ShardedEngine` in the `wafer-md` facade), reconciled with the
/// Table VI cost model.
///
/// The sharded engine is the model's decomposition executed for real:
/// each shard owns an interior slab and hosts a ghost strip it
/// refreshes from its neighbors every timestep. Feeding the *measured*
/// interior/ghost counts, modeled single-wafer rate, and ghost width
/// into the same period formula yields the projected multi-node rate —
/// the model↔measurement seam the paper's Table VI projects from.
#[derive(Clone, Copy, Debug)]
pub struct GhostMeasurement {
    /// Mean interior (owned) atoms per shard.
    pub n_interior: f64,
    /// Mean ghost copies per shard.
    pub n_ghost: f64,
    /// Modeled single-wafer rate (timesteps/s) of the workload — by the
    /// sharded determinism guarantee, identical to the sharded run's.
    pub single_wafer_rate: f64,
    /// Measured ghost strip width in lattice units (the model's λ).
    pub lambda: f64,
    /// r_cut / r_lattice of the material.
    pub rcut_over_rlattice: f64,
}

impl GhostMeasurement {
    /// Project the multi-node operating point at `k` timesteps per
    /// ghost refresh (the executed exchange is `k = 1`: ghosts are
    /// refreshed every step).
    pub fn project(&self, k: f64) -> MultiWaferPoint {
        assert!(k >= 1.0);
        evaluate_ghost_period(
            k,
            self.n_interior,
            self.n_ghost,
            1.0 / self.single_wafer_rate,
        )
    }

    /// The largest refresh interval the measured ghost width supports
    /// under the model's 2·r_cut-per-step invalidation (at least 1 —
    /// an every-step exchange).
    pub fn k_max(&self) -> f64 {
        (self.lambda / (2.0 * self.rcut_over_rlattice))
            .floor()
            .max(1.0)
    }

    /// Project the operating point at the amortization a real sharded
    /// run **measured**: `steps / exchanges` timesteps per ghost
    /// refresh (see [`measured_amortization`]).
    ///
    /// This is the execution of the Table VI k-column: a scheduler that
    /// exchanges purely on period expiry performs `floor(steps / k)`
    /// exchanges in `steps` timesteps, so whenever `steps` is a
    /// multiple of `k` the measured amortization equals the configured
    /// period exactly and this reconciliation reproduces
    /// [`GhostMeasurement::project`]`(k)` bit for bit. Otherwise the
    /// measured k deviates in either direction: early (drift-triggered)
    /// exchanges lower it, while tail steps after the final exchange
    /// raise it (60 steps at period 8 → 7 exchanges → measured
    /// k = 60/7 ≈ 8.6).
    pub fn reconcile(&self, steps: u64, exchanges: u64) -> MultiWaferPoint {
        self.project(measured_amortization(steps, exchanges))
    }
}

/// The amortization a measured run achieved: timesteps per ghost
/// exchange (the model's k). A run that never exchanged amortized over
/// (at least) its whole length.
pub fn measured_amortization(steps: u64, exchanges: u64) -> f64 {
    assert!(steps > 0, "amortization of an empty run");
    steps as f64 / exchanges.max(1) as f64
}

/// Choose λ to hit a target interior-atom utilization
/// `u = N_interior / N_atom` under 2-D ghost accounting (how the paper
/// labels its Low/High brackets): `λ = X(u^{-1/2} − 1)/2`.
pub fn lambda_for_utilization(x: f64, utilization: f64) -> f64 {
    assert!((0.0..1.0).contains(&utilization) && utilization > 0.0);
    x * (utilization.powf(-0.5) - 1.0) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table VI rate cells: (low ts/s, low %, high ts/s, high %).
    const PAPER_CELLS: [(Species, f64, f64, f64, f64); 3] = [
        (Species::Cu, 105_152.0, 0.99, 99_239.0, 0.93),
        (Species::W, 95_281.0, 0.99, 91_743.0, 0.95),
        (Species::Ta, 269_214.0, 0.98, 251_046.0, 0.92),
    ];

    #[test]
    fn rates_match_table6_cells() {
        for ((lo, hi), (sp, r_lo, _, r_hi, _)) in
            MultiWaferConfig::paper_rows().iter().zip(PAPER_CELLS)
        {
            assert_eq!(lo.species, sp);
            let p_lo = lo.evaluate();
            let p_hi = hi.evaluate();
            assert!(
                (p_lo.rate - r_lo).abs() / r_lo < 0.005,
                "{sp:?} low: {} vs {r_lo}",
                p_lo.rate
            );
            assert!(
                (p_hi.rate - r_hi).abs() / r_hi < 0.005,
                "{sp:?} high: {} vs {r_hi}",
                p_hi.rate
            );
        }
    }

    #[test]
    fn k_values_match_table6() {
        // Table VI: k = 20/3 (Cu), 21/4 (W), 31/6 (Ta).
        let rows = MultiWaferConfig::paper_rows();
        let ks: Vec<(f64, f64)> = rows
            .iter()
            .map(|(lo, hi)| (lo.evaluate().k, hi.evaluate().k))
            .collect();
        assert_eq!(ks[0], (20.0, 3.0));
        assert_eq!(ks[1], (21.0, 4.0));
        assert_eq!(ks[2], (31.0, 6.0));
    }

    #[test]
    fn performance_preserved_between_92_and_99_percent() {
        // The headline claim of Table VI.
        for (lo, hi) in MultiWaferConfig::paper_rows() {
            for cfg in [lo, hi] {
                let p = cfg.evaluate();
                assert!(
                    (0.91..=0.995).contains(&p.performance),
                    "{:?} λ={}: preserved {}",
                    cfg.species,
                    cfg.lambda,
                    p.performance
                );
            }
        }
    }

    #[test]
    fn interior_atom_counts_match_table6() {
        // N_atom column: Cu 800,890; W/Ta 803,912.
        let rows = MultiWaferConfig::paper_rows();
        assert_eq!(rows[0].0.evaluate().n_interior, 800_890.0);
        assert_eq!(rows[1].0.evaluate().n_interior, 803_912.0);
        assert_eq!(rows[2].0.evaluate().n_interior, 803_912.0);
    }

    #[test]
    fn ghost_transfer_hides_under_compute_in_all_rows() {
        // The full-overlap assumption: transfer < compute everywhere in
        // Table VI, so only τ is exposed.
        for (lo, hi) in MultiWaferConfig::paper_rows() {
            for cfg in [lo, hi] {
                let p = cfg.evaluate();
                assert!(
                    p.t_transfer <= cfg.t_wall * p.k * 1.05,
                    "{:?} λ={}: transfer {} vs compute {}",
                    cfg.species,
                    cfg.lambda,
                    p.t_transfer,
                    cfg.t_wall * p.k
                );
            }
        }
    }

    #[test]
    fn larger_ghosts_amortize_latency() {
        // "Greater ghost counts achieve higher timestep/s by amortizing
        // away transmission latency; this comes at the cost of smaller
        // subdomains."
        let (lo, hi) = &MultiWaferConfig::paper_rows()[2];
        let p_lo = lo.evaluate();
        let p_hi = hi.evaluate();
        assert!(p_lo.rate > p_hi.rate);
        assert!(p_lo.n_ghost > p_hi.n_ghost);
    }

    #[test]
    fn measured_reconciliation_matches_table_rows_on_identical_inputs() {
        // Feeding a Table VI row's own numbers through the measurement
        // path must reproduce the row's projection exactly.
        let (lo, _) = &MultiWaferConfig::paper_rows()[2];
        let p = lo.evaluate();
        let m = GhostMeasurement {
            n_interior: p.n_interior,
            n_ghost: p.n_ghost,
            single_wafer_rate: 1.0 / lo.t_wall,
            lambda: lo.lambda,
            rcut_over_rlattice: lo.rcut_over_rlattice,
        };
        assert_eq!(m.k_max(), p.k);
        let q = m.project(m.k_max());
        assert_eq!(q.rate.to_bits(), p.rate.to_bits());
        assert_eq!(q.t_period.to_bits(), p.t_period.to_bits());
    }

    #[test]
    fn every_step_exchange_pays_latency_each_step() {
        // k = 1 (the executed exchange) exposes τ every period, so the
        // projected rate sits below the amortized k_max projection.
        let m = GhostMeasurement {
            n_interior: 400.0,
            n_ghost: 220.0,
            single_wafer_rate: 300_000.0,
            lambda: 8.0,
            rcut_over_rlattice: 1.39,
        };
        assert_eq!(m.k_max(), 2.0);
        let executed = m.project(1.0);
        let amortized = m.project(m.k_max());
        assert!(executed.rate < amortized.rate);
        assert!(executed.performance < 1.0);
    }

    #[test]
    fn measured_exchange_count_reconciles_to_the_period_projection() {
        // 60 steps with a period-4 scheduler and no drift violations:
        // 15 exchanges, measured k = 4.0 — the reconciliation must be
        // the k = 4 projection to the bit.
        let m = GhostMeasurement {
            n_interior: 400.0,
            n_ghost: 220.0,
            single_wafer_rate: 300_000.0,
            lambda: 12.0,
            rcut_over_rlattice: 1.39,
        };
        assert_eq!(measured_amortization(60, 15), 4.0);
        let reconciled = m.reconcile(60, 15);
        let projected = m.project(4.0);
        assert_eq!(reconciled.rate.to_bits(), projected.rate.to_bits());
        assert_eq!(reconciled.t_period.to_bits(), projected.t_period.to_bits());
        // Early exchanges lower the measured k and never raise the rate.
        assert!(m.reconcile(60, 20).rate <= projected.rate);
        // A run that never exchanged amortized over its whole length.
        assert_eq!(measured_amortization(60, 0), 60.0);
        assert_eq!(
            m.reconcile(60, 0).rate.to_bits(),
            m.project(60.0).rate.to_bits()
        );
    }

    #[test]
    fn utilization_helper_inverts_correctly() {
        let x = 283.0;
        let lam = lambda_for_utilization(x, 0.8);
        let u = (x / (x + 2.0 * lam)).powi(2);
        assert!((u - 0.8).abs() < 1e-9);
        // 80% utilization ⇒ λ ≈ 17 for X = 283 (the high-bracket scale).
        assert!((10.0..25.0).contains(&lam));
    }

    #[test]
    fn sixty_four_node_cluster_scale() {
        // Sec. VI-C: 64-node clusters could simulate >10M (high-util) or
        // ~40M (low-util... inverted: low util has bigger nodes) atoms at
        // 251k-269k ts/s for tantalum.
        let (lo, hi) = &MultiWaferConfig::paper_rows()[2];
        let total_lo = 64.0 * lo.evaluate().n_interior;
        let total_hi = 64.0 * hi.evaluate().n_interior;
        assert!(total_lo > 4.0e7 || total_hi > 4.0e7 || total_lo > 1.0e7);
        assert!(total_hi > 1.0e7);
    }
}
