//! # perf-model — analytic performance models and fits
//!
//! Every quantitative model in the paper's evaluation, as testable code:
//!
//! * [`linear`] — the Table II least-squares fit of
//!   `t_wall = A·n_cand + B·n_inter + C` and its r² statistic.
//! * [`flops`] — the Table III operation schedule and per-phase
//!   utilization, and Table IV machine utilization (CS-2 vs Frontier vs
//!   Quartz).
//! * [`projection`] — the Table V stacked future-optimization
//!   projections (fixed cost, neighbor-list reuse, force symmetry,
//!   multi-core workers → >1M timesteps/s for Ta).
//! * [`multiwafer`] — the Table VI ghost-region multi-wafer weak-scaling
//!   model (≥92% of single-wafer performance preserved).
//! * [`timescale`] — the Fig. 1 achievable-timescale stars.

pub mod flops;
pub mod linear;
pub mod multiwafer;
pub mod projection;
pub mod timescale;

pub use flops::{machine_utilization, phase_utilization, Phase, Platform};
pub use linear::{fit, LinearFit, SweepSample};
pub use multiwafer::{MultiWaferConfig, MultiWaferPoint};
pub use projection::{projection_table, ProjectionRow, Stage};
pub use timescale::{gpu_star, wse_star, TimescaleStar};
