//! Offline, API-compatible subset of the `criterion` benchmark API.
//!
//! Provides the surface the workspace's benches use — `Criterion`,
//! `benchmark_group`/`bench_with_input`/`bench_function`, `BenchmarkId`,
//! [`Throughput`], `black_box`, and the `criterion_group!`/
//! `criterion_main!` macros — backed by a minimal wall-clock harness:
//! each benchmark is warmed up once, then timed over a batch sized to
//! the group's `sample_size`, and the mean time per iteration is
//! printed. No statistics, plots, or baselines.
//!
//! On top of the console report, every bench binary records its
//! measurements and — from `criterion_main!` — merges them into a
//! machine-readable **`BENCH_results.json`** (path overridable via
//! `BENCH_RESULTS_PATH`): one entry per benchmark with the name, mean
//! wall time per iteration, iteration count, optional throughput
//! element count (atoms × steps for the MD benches), the derived
//! elements/sec rate, and the `WAFER_MD_THREADS` worker-pool size the
//! numbers were taken at. CI's `bench-smoke` job uploads this file as
//! the perf-regression trajectory; `BENCH_SAMPLE_SIZE` overrides every
//! group's sample size so a short CI budget still produces entries.

use std::fmt::Display;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Work performed per iteration, for derived rates (real criterion's
/// `Throughput`, reduced to the one variant the workspace uses).
/// `Elements` is atoms stepped per iteration for the MD benches, making
/// the derived rate atoms·steps/sec.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
}

impl Throughput {
    fn elements(&self) -> u64 {
        match *self {
            Throughput::Elements(n) => n,
        }
    }
}

/// One recorded measurement, destined for `BENCH_results.json`.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    pub name: String,
    pub nanos_per_iter: f64,
    pub iters: u64,
    pub elements_per_iter: Option<u64>,
    /// Worker-pool size this entry was measured at. Recorded per entry
    /// because a merged file can mix measurements from different runs.
    pub threads: usize,
}

fn recorder() -> &'static Mutex<Vec<BenchRecord>> {
    static RECORDS: OnceLock<Mutex<Vec<BenchRecord>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

/// `BENCH_SAMPLE_SIZE` overrides every group's sample size (CI's short
/// bench-smoke budget).
fn sample_size_override() -> Option<u64> {
    static OVERRIDE: OnceLock<Option<u64>> = OnceLock::new();
    *OVERRIDE.get_or_init(|| {
        std::env::var("BENCH_SAMPLE_SIZE")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&n| n >= 1)
    })
}

/// Passed to the measured closure; `iter` runs and times the payload.
pub struct Bencher {
    iters: u64,
    nanos_per_iter: f64,
}

impl Bencher {
    /// Run `f` once to warm up, then time `iters` calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

fn fmt_nanos(nanos: f64) -> (f64, &'static str) {
    if nanos >= 1e9 {
        (nanos / 1e9, "s")
    } else if nanos >= 1e6 {
        (nanos / 1e6, "ms")
    } else if nanos >= 1e3 {
        (nanos / 1e3, "µs")
    } else {
        (nanos, "ns")
    }
}

fn report(name: &str, nanos: f64, iters: u64, throughput: Option<Throughput>) {
    let (value, unit) = fmt_nanos(nanos);
    let elements = throughput.map(|t| t.elements());
    match elements.filter(|_| nanos > 0.0) {
        Some(n) => {
            let rate = n as f64 * 1e9 / nanos;
            println!("{name:<40} time: {value:>10.3} {unit}/iter   thrpt: {rate:>14.0} elem/s");
        }
        None => println!("{name:<40} time: {value:>10.3} {unit}/iter"),
    }
    recorder().lock().unwrap().push(BenchRecord {
        name: name.to_string(),
        nanos_per_iter: nanos,
        iters,
        elements_per_iter: elements,
        threads: rayon::current_num_threads(),
    });
}

/// A named group of benchmarks sharing a sample size and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Set the per-iteration work accounted to subsequent benches in
    /// this group (set it again per input inside sweep loops).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    fn effective_sample_size(&self) -> u64 {
        sample_size_override().unwrap_or(self.sample_size)
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let iters = self.effective_sample_size();
        let mut b = Bencher {
            iters,
            nanos_per_iter: 0.0,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.id),
            b.nanos_per_iter,
            iters,
            self.throughput,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let iters = self.effective_sample_size();
        let mut b = Bencher {
            iters,
            nanos_per_iter: 0.0,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.id),
            b.nanos_per_iter,
            iters,
            self.throughput,
        );
        self
    }

    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    default_sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(1) as u64;
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let iters = sample_size_override().unwrap_or(self.default_sample_size);
        let mut b = Bencher {
            iters,
            nanos_per_iter: 0.0,
        };
        f(&mut b);
        report(name, b.nanos_per_iter, iters, None);
        self
    }

    pub fn final_summary(&mut self) {}
}

// ---------------------------------------------------------------------
// BENCH_results.json emission
// ---------------------------------------------------------------------

/// Default output file name, placed at the workspace root.
pub const DEFAULT_RESULTS_FILE: &str = "BENCH_results.json";

/// Resolve the output path: `BENCH_RESULTS_PATH` wins; otherwise walk
/// up from the bench binary's working directory (cargo sets it to the
/// *package* root) to the nearest ancestor holding a `Cargo.lock` — the
/// workspace root — so all bench binaries merge into one file.
fn results_path() -> std::path::PathBuf {
    if let Ok(p) = std::env::var("BENCH_RESULTS_PATH") {
        return p.into();
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| ".".into());
    let mut dir = cwd.as_path();
    loop {
        if dir.join("Cargo.lock").is_file() {
            return dir.join(DEFAULT_RESULTS_FILE);
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return cwd.join(DEFAULT_RESULTS_FILE),
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Extract `"key": <string>` from one machine-written entry line.
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\": \"");
    let start = line.find(&marker)? + marker.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extract `"key": <number>` from one machine-written entry line.
fn json_num_field(line: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\": ");
    let start = line.find(&marker)? + marker.len();
    let end = line[start..].find([',', '}']).map(|e| e + start)?;
    line[start..end].trim().parse().ok()
}

/// Parse entries out of a previously-written results file. This is not
/// a general JSON parser — it understands exactly the one-entry-per-line
/// format [`write_results`] emits, which is all it ever reads.
fn parse_existing(contents: &str) -> Vec<BenchRecord> {
    contents
        .lines()
        .filter(|l| l.contains("\"name\":"))
        .filter_map(|line| {
            Some(BenchRecord {
                name: json_str_field(line, "name")?,
                nanos_per_iter: json_num_field(line, "nanos_per_iter")?,
                iters: json_num_field(line, "iters")? as u64,
                elements_per_iter: json_num_field(line, "elements_per_iter").map(|v| v as u64),
                threads: json_num_field(line, "threads")
                    .map(|v| v as usize)
                    .unwrap_or(1),
            })
        })
        .collect()
}

fn render_results(records: &[BenchRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        let mut entry = format!(
            "    {{\"name\": \"{}\", \"nanos_per_iter\": {:.3}, \"iters\": {}, \"threads\": {}",
            json_escape(&r.name),
            r.nanos_per_iter,
            r.iters,
            r.threads
        );
        if let Some(n) = r.elements_per_iter {
            let rate = if r.nanos_per_iter > 0.0 {
                n as f64 * 1e9 / r.nanos_per_iter
            } else {
                0.0
            };
            entry.push_str(&format!(
                ", \"elements_per_iter\": {n}, \"elements_per_sec\": {rate:.1}"
            ));
        }
        entry.push_str(&format!("}}{sep}\n"));
        out.push_str(&entry);
    }
    out.push_str("  ]\n}\n");
    out
}

/// Merge this process's recorded measurements into the results file:
/// entries re-measured here replace their previous values, entries from
/// other bench binaries are kept, and the output is sorted by name so
/// the perf trajectory diffs cleanly between commits.
///
/// Called automatically by `criterion_main!`; harmless when no
/// measurements were recorded.
pub fn write_results() {
    let fresh = recorder().lock().unwrap().clone();
    if fresh.is_empty() {
        return;
    }
    let path = results_path();
    let mut merged: Vec<BenchRecord> = std::fs::read_to_string(&path)
        .map(|s| parse_existing(&s))
        .unwrap_or_default();
    merged.retain(|old| !fresh.iter().any(|new| new.name == old.name));
    merged.extend(fresh);
    merged.sort_by(|a, b| a.name.cmp(&b.name));
    let body = render_results(&merged);
    match std::fs::write(&path, body) {
        Ok(()) => println!("\nwrote {} entries to {}", merged.len(), path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Declare a group function that runs each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare `main` for a bench binary (requires `harness = false`).
/// After all groups run, the recorded measurements are merged into
/// `BENCH_results.json`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_results();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(7), &(), |b, _| {
            b.iter(|| calls += 1)
        });
        group.finish();
        // One warm-up call plus sample_size timed calls.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter("Cu").id, "Cu");
        assert_eq!(BenchmarkId::new("step", 64).id, "step/64");
    }

    #[test]
    fn throughput_is_recorded_per_bench() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("thrpt_smoke");
        group.sample_size(2);
        group.throughput(Throughput::Elements(400));
        group.bench_function("stepper", |b| b.iter(|| std::hint::black_box(1 + 1)));
        group.finish();
        let records = recorder().lock().unwrap();
        let r = records
            .iter()
            .find(|r| r.name == "thrpt_smoke/stepper")
            .expect("record missing");
        assert_eq!(r.elements_per_iter, Some(400));
        assert_eq!(r.iters, 2);
    }

    #[test]
    fn results_render_and_reparse_round_trip() {
        let records = vec![
            BenchRecord {
                name: "a/b".into(),
                nanos_per_iter: 1234.5,
                iters: 10,
                elements_per_iter: Some(400),
                threads: 4,
            },
            BenchRecord {
                name: "c".into(),
                nanos_per_iter: 7.0,
                iters: 3,
                elements_per_iter: None,
                threads: 1,
            },
        ];
        let body = render_results(&records);
        assert!(body.contains("\"threads\": 4"));
        assert!(body.contains("\"elements_per_sec\""));
        let parsed = parse_existing(&body);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "a/b");
        assert_eq!(parsed[0].elements_per_iter, Some(400));
        assert_eq!(parsed[0].iters, 10);
        assert_eq!(parsed[0].threads, 4);
        assert!((parsed[0].nanos_per_iter - 1234.5).abs() < 1e-9);
        assert_eq!(parsed[1].elements_per_iter, None);
        assert_eq!(parsed[1].threads, 1);
    }
}
