//! Offline, API-compatible subset of the `criterion` benchmark API.
//!
//! Provides the surface the workspace's benches use — `Criterion`,
//! `benchmark_group`/`bench_with_input`/`bench_function`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros —
//! backed by a minimal wall-clock harness: each benchmark is warmed up
//! once, then timed over a batch sized to the group's `sample_size`, and
//! the mean time per iteration is printed. No statistics, plots, or
//! baselines; CI only compiles benches (`cargo bench --no-run`), and
//! local runs give a rough-but-honest per-iteration number.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to the measured closure; `iter` runs and times the payload.
pub struct Bencher {
    iters: u64,
    nanos_per_iter: f64,
}

impl Bencher {
    /// Run `f` once to warm up, then time `iters` calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

fn report(name: &str, nanos: f64) {
    let (value, unit) = if nanos >= 1e9 {
        (nanos / 1e9, "s")
    } else if nanos >= 1e6 {
        (nanos / 1e6, "ms")
    } else if nanos >= 1e3 {
        (nanos / 1e3, "µs")
    } else {
        (nanos, "ns")
    };
    println!("{name:<40} time: {value:>10.3} {unit}/iter");
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: self.sample_size,
            nanos_per_iter: 0.0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), b.nanos_per_iter);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: self.sample_size,
            nanos_per_iter: 0.0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), b.nanos_per_iter);
        self
    }

    pub fn finish(self) {}
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    default_sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(1) as u64;
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.default_sample_size,
            nanos_per_iter: 0.0,
        };
        f(&mut b);
        report(name, b.nanos_per_iter);
        self
    }

    pub fn final_summary(&mut self) {}
}

/// Declare a group function that runs each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare `main` for a bench binary (requires `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(7), &(), |b, _| {
            b.iter(|| calls += 1)
        });
        group.finish();
        // One warm-up call plus sample_size timed calls.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter("Cu").id, "Cu");
        assert_eq!(BenchmarkId::new("step", 64).id, "step/64");
    }
}
