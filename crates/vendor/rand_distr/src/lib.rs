//! Offline, API-compatible subset of the `rand_distr` crate: the normal
//! distribution family used by the MD thermostat.
//!
//! `StandardNormal` samples N(0, 1) via the Box–Muller transform (one
//! branch per draw, no cached spare, so sampling is stateless and
//! reproducible given the generator state). `Normal` scales and shifts it.

pub use rand::distributions::Distribution;
use rand::Rng;

/// Errors constructing a [`Normal`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NormalError {
    /// The mean was not finite.
    MeanTooSmall,
    /// The standard deviation was negative or not finite.
    BadVariance,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::MeanTooSmall => write!(f, "mean is not finite"),
            NormalError::BadVariance => write!(f, "standard deviation is negative or not finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// The float operations the normal family needs, so `Normal<F>` has one
/// generic impl (and `Normal::new(1.0f64, ..)` infers `F` from its
/// arguments, matching the real crate's `Float`-bounded API).
pub trait NormalFloat:
    Copy + PartialOrd + std::ops::Add<Output = Self> + std::ops::Mul<Output = Self> + std::fmt::Debug
{
    const ZERO: Self;
    fn is_finite(self) -> bool;
    fn from_f64(x: f64) -> Self;
}

impl NormalFloat for f64 {
    const ZERO: Self = 0.0;
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    fn from_f64(x: f64) -> Self {
        x
    }
}

impl NormalFloat for f32 {
    const ZERO: Self = 0.0;
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    fn from_f64(x: f64) -> Self {
        x as f32
    }
}

/// The standard normal distribution N(0, 1).
#[derive(Clone, Copy, Debug, Default)]
pub struct StandardNormal;

impl<F: NormalFloat> Distribution<F> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> F {
        // Box–Muller; u1 is bounded away from 0 so ln(u1) is finite.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        F::from_f64(z)
    }
}

/// A normal (Gaussian) distribution with configurable mean and spread.
#[derive(Clone, Copy, Debug)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

impl<F: NormalFloat> Normal<F> {
    /// Construct N(mean, std_dev²).
    pub fn new(mean: F, std_dev: F) -> Result<Self, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !(std_dev.is_finite() && std_dev >= F::ZERO) {
            return Err(NormalError::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }

    pub fn mean(&self) -> F {
        self.mean
    }

    pub fn std_dev(&self) -> F {
        self.std_dev
    }
}

impl<F: NormalFloat> Distribution<F> for Normal<F> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> F {
        let z: F = StandardNormal.sample(rng);
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| Distribution::<f64>::sample(&StandardNormal, &mut rng))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn scaled_normal_moments() {
        let mut rng = StdRng::seed_from_u64(13);
        let d = Normal::new(5.0f64, 2.0).unwrap();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn f32_sampling_compiles_and_is_finite() {
        let mut rng = StdRng::seed_from_u64(17);
        let d = Normal::new(0.0f32, 1.0).unwrap();
        for _ in 0..100 {
            let x: f32 = d.sample(&mut rng);
            assert!(x.is_finite());
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0f64, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }
}
