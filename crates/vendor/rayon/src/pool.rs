//! The `std::thread` worker pool behind the parallel iterators.
//!
//! One process-wide pool executes *parallel regions*: a region is a set
//! of `n_tasks` independent chunk tasks drawn from a shared atomic
//! dispenser. The calling thread always participates; up to
//! `threads − 1` pool workers join it. Workers are spawned lazily (and
//! grown on demand when the configured thread count rises) and parked on
//! a condvar between regions, so a region dispatch costs one mutex
//! critical section plus a wakeup — cheap enough to run inside an MD
//! timestep loop.
//!
//! The thread count comes from the `WAFER_MD_THREADS` environment
//! variable (default: the machine's available parallelism; `1` disables
//! the pool and preserves sequential execution). [`set_num_threads`]
//! overrides it at runtime, which the determinism test suite uses to
//! prove results are identical at any thread count.
//!
//! Safety: the region descriptor holds raw pointers into the stack frame
//! of the thread inside [`run`]. That frame cannot unwind or return
//! until the chunk dispenser is exhausted **and** every worker has
//! checked out of the region (`workers_in_region == 0`), and workers
//! only dereference the pointers while holding a check-in slot, so the
//! pointers are dereferenced only while the frame is pinned.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Environment variable selecting the worker-pool size.
pub const THREADS_ENV: &str = "WAFER_MD_THREADS";

/// Hard ceiling on pool workers regardless of configuration.
const MAX_WORKERS: usize = 63;

/// First panic payload captured inside a region, re-thrown by the caller.
type PanicSlot = Mutex<Option<Box<dyn Any + Send>>>;

/// A parallel region: `n_tasks` chunk tasks executed cooperatively.
#[derive(Clone, Copy)]
struct Region {
    task: *const (dyn Fn(usize) + Sync),
    n_tasks: usize,
    /// Next undispensed chunk index.
    next: *const AtomicUsize,
    /// First panic payload from any chunk, if one panicked.
    panic: *const PanicSlot,
}

// SAFETY: the pointers are dereferenced only under the check-in protocol
// documented at module level; the pointed-to values are Sync.
unsafe impl Send for Region {}

struct State {
    region: Option<Region>,
    /// Bumped once per region so a worker can tell fresh work from a
    /// region it already left.
    generation: u64,
    /// Workers currently checked into the active region.
    workers_in_region: usize,
    /// Workers that have joined the active region (monotonic per region).
    region_entries: usize,
    /// Cap on `region_entries` (the caller participates on top of this).
    region_limit: usize,
    workers_spawned: usize,
}

struct Pool {
    state: Mutex<State>,
    /// Workers park here between regions.
    work_cv: Condvar,
    /// The region caller parks here while workers drain the dispenser.
    done_cv: Condvar,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(State {
            region: None,
            generation: 0,
            workers_in_region: 0,
            region_entries: 0,
            region_limit: 0,
            workers_spawned: 0,
        }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
    })
}

thread_local! {
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Runtime override of the thread count; 0 means "use the environment".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        let default = || {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        match std::env::var(THREADS_ENV) {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => n,
                // 0 or garbage: fall back to the hardware default.
                _ => default(),
            },
            Err(_) => default(),
        }
    })
}

/// The number of threads parallel regions currently use (caller
/// included). Mirrors rayon's `current_num_threads`.
pub fn current_num_threads() -> usize {
    let n = match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => env_threads(),
        n => n,
    };
    n.clamp(1, MAX_WORKERS + 1)
}

/// Override the thread count for subsequent parallel regions (`0`
/// reverts to the `WAFER_MD_THREADS` / hardware default).
///
/// This is an offline-subset extension used by the determinism tests:
/// because every reduction combines fixed chunks in a fixed order,
/// results must be bit-identical under any value passed here.
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

fn run_inline(n_tasks: usize, task: &(dyn Fn(usize) + Sync)) {
    for i in 0..n_tasks {
        task(i);
    }
}

/// Execute chunk indices from the region's dispenser until exhausted.
fn execute_chunks(region: Region) {
    // SAFETY: see the module-level check-in protocol.
    let (task, next, panic_slot) = unsafe { (&*region.task, &*region.next, &*region.panic) };
    loop {
        let i = next.fetch_add(1, Ordering::SeqCst);
        if i >= region.n_tasks {
            break;
        }
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(i))) {
            let mut slot = panic_slot.lock().unwrap();
            slot.get_or_insert(payload);
        }
    }
}

fn worker_loop(pool: &'static Pool) {
    IS_POOL_WORKER.with(|w| w.set(true));
    let mut last_generation = 0u64;
    loop {
        let region = {
            let mut st = pool.state.lock().unwrap();
            loop {
                match st.region {
                    Some(region)
                        if st.generation != last_generation
                            && st.region_entries < st.region_limit =>
                    {
                        st.region_entries += 1;
                        st.workers_in_region += 1;
                        last_generation = st.generation;
                        break region;
                    }
                    _ => st = pool.work_cv.wait(st).unwrap(),
                }
            }
        };
        execute_chunks(region);
        let mut st = pool.state.lock().unwrap();
        st.workers_in_region -= 1;
        drop(st);
        pool.done_cv.notify_all();
    }
}

fn spawn_missing_workers(st: &mut State, wanted: usize) {
    while st.workers_spawned < wanted.min(MAX_WORKERS) {
        let handle = std::thread::Builder::new()
            .name("wafer-md-worker".into())
            .spawn(|| worker_loop(pool()));
        match handle {
            Ok(_) => st.workers_spawned += 1,
            // Resource exhaustion: run with the workers we have.
            Err(_) => break,
        }
    }
}

/// Run `n_tasks` independent tasks, cooperatively across the pool.
///
/// Tasks may execute on any thread in any order; callers that need
/// determinism must make the *combination* of task results
/// order-independent (the iterator layer combines per-chunk results in
/// fixed chunk-index order for exactly this reason).
pub fn run(n_tasks: usize, task: &(dyn Fn(usize) + Sync)) {
    let threads = current_num_threads();
    let nested = IS_POOL_WORKER.with(|w| w.get());
    if threads <= 1 || n_tasks <= 1 || nested {
        // Sequential mode, a trivially small region, or a nested call
        // from inside a worker: execute on the calling thread.
        run_inline(n_tasks, task);
        return;
    }

    let pool = pool();
    let next = AtomicUsize::new(0);
    let panic_slot: PanicSlot = Mutex::new(None);
    // SAFETY: erase the borrow's lifetime so the descriptor can cross
    // into worker threads; validity is enforced by the check-in
    // protocol (this frame is pinned until every worker checks out).
    let erased_task: *const (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<
            *const (dyn Fn(usize) + Sync + '_),
            *const (dyn Fn(usize) + Sync + 'static),
        >(task)
    };
    let region = Region {
        task: erased_task,
        n_tasks,
        next: &next,
        panic: &panic_slot,
    };
    {
        let mut st = pool.state.lock().unwrap();
        if st.region.is_some() {
            // Another thread's region is active (e.g. concurrent test
            // threads). Chunk layout does not depend on who executes, so
            // running inline yields bit-identical results.
            drop(st);
            run_inline(n_tasks, task);
            return;
        }
        let limit = threads - 1;
        spawn_missing_workers(&mut st, limit);
        st.region = Some(region);
        st.generation = st.generation.wrapping_add(1);
        st.region_entries = 0;
        st.region_limit = limit;
    }
    pool.work_cv.notify_all();

    // The caller is a full participant.
    execute_chunks(region);

    // Close the region and wait for every worker to check out; only then
    // are the borrows behind `task`/`next`/`panic` free to die.
    let mut st = pool.state.lock().unwrap();
    st.region = None;
    while st.workers_in_region > 0 {
        st = pool.done_cv.wait(st).unwrap();
    }
    drop(st);

    let payload = panic_slot.lock().unwrap().take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_task_exactly_once() {
        set_num_threads(4);
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        run(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        set_num_threads(0);
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "task {i}");
        }
    }

    #[test]
    fn uses_more_than_one_thread_when_forced() {
        set_num_threads(4);
        let ids = Mutex::new(HashSet::new());
        let spin = AtomicU64::new(0);
        // Enough tasks with enough work that workers get a chance to
        // steal some before the caller drains the dispenser.
        run(64, &|_| {
            for _ in 0..20_000 {
                spin.fetch_add(1, Ordering::Relaxed);
            }
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        set_num_threads(0);
        assert!(
            !ids.lock().unwrap().is_empty(),
            "tasks recorded no thread ids"
        );
        // On a single-core machine the scheduler may still let the
        // caller win every chunk, so only assert when workers ran.
        if std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            > 1
        {
            assert!(ids.lock().unwrap().len() > 1, "pool never parallelized");
        }
    }

    #[test]
    fn task_panics_propagate_with_payload() {
        set_num_threads(2);
        let result = std::panic::catch_unwind(|| {
            run(8, &|i| {
                if i == 5 {
                    panic!("boom at {i}");
                }
            });
        });
        set_num_threads(0);
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom at 5"), "payload was {msg:?}");
    }
}
