//! Offline, API-compatible subset of the `rayon` parallel-iterator API.
//!
//! The build environment cannot reach crates.io, so this crate mirrors the
//! slice of rayon the workspace uses — `into_par_iter()` on ranges,
//! vectors, slices, and tuples (rayon's multi-zip), `par_iter_mut()`, and
//! the adaptor/consumer methods on [`ParIter`] including rayon's
//! two-argument `reduce(identity, op)` — but executes **sequentially** on
//! the calling thread. Every call site keeps rayon semantics (closures
//! must still be side-effect-free per item; reduction must still be
//! associative), so swapping the real rayon back in is a manifest change,
//! not a code change.

/// A "parallel" iterator: a thin wrapper over a sequential [`Iterator`]
/// exposing rayon's method surface.
pub struct ParIter<I> {
    inner: I,
}

impl<I: Iterator> ParIter<I> {
    pub fn map<F, R>(self, f: F) -> ParIter<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> R,
    {
        ParIter {
            inner: self.inner.map(f),
        }
    }

    pub fn filter<F>(self, f: F) -> ParIter<std::iter::Filter<I, F>>
    where
        F: FnMut(&I::Item) -> bool,
    {
        ParIter {
            inner: self.inner.filter(f),
        }
    }

    pub fn filter_map<F, R>(self, f: F) -> ParIter<std::iter::FilterMap<I, F>>
    where
        F: FnMut(I::Item) -> Option<R>,
    {
        ParIter {
            inner: self.inner.filter_map(f),
        }
    }

    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter {
            inner: self.inner.enumerate(),
        }
    }

    pub fn zip<J: IntoParallelIterator>(self, other: J) -> ParIter<std::iter::Zip<I, J::Iter>> {
        ParIter {
            inner: self.inner.zip(other.into_par_iter().inner),
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: FnMut(I::Item),
    {
        self.inner.for_each(f)
    }

    pub fn count(self) -> usize {
        self.inner.count()
    }

    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<I::Item>,
    {
        self.inner.sum()
    }

    pub fn collect<C>(self) -> C
    where
        C: FromIterator<I::Item>,
    {
        self.inner.collect()
    }

    /// Rayon-style reduction: fold from an identity with an associative
    /// operator. (Sequentially this is exactly a left fold.)
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.inner.fold(identity(), op)
    }

    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.inner.max()
    }

    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.inner.min()
    }
}

/// Conversion into a [`ParIter`] — rayon's `IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Item;
    type Iter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    type Iter = std::ops::Range<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter { inner: self }
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

impl<'a, T> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

impl<'a, T> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

impl<'a, T> IntoParallelIterator for &'a mut Vec<T> {
    type Item = &'a mut T;
    type Iter = std::slice::IterMut<'a, T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.iter_mut(),
        }
    }
}

impl<'a, T> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;
    type Iter = std::slice::IterMut<'a, T>;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.iter_mut(),
        }
    }
}

/// Rayon's multi-zip: a tuple of parallel-iterables iterates in lockstep,
/// yielding a flat tuple per step and stopping at the shortest member.
macro_rules! tuple_multizip {
    ($zip:ident; $($T:ident : $idx:tt),+) => {
        pub struct $zip<$($T),+> {
            iters: ($($T,)+)
        }

        impl<$($T: Iterator),+> Iterator for $zip<$($T),+> {
            type Item = ($($T::Item,)+);
            #[inline]
            fn next(&mut self) -> Option<Self::Item> {
                Some(($(self.iters.$idx.next()?,)+))
            }
        }

        impl<$($T: IntoParallelIterator),+> IntoParallelIterator for ($($T,)+) {
            type Item = ($($T::Item,)+);
            type Iter = $zip<$($T::Iter),+>;
            fn into_par_iter(self) -> ParIter<Self::Iter> {
                ParIter {
                    inner: $zip {
                        iters: ($(self.$idx.into_par_iter().inner,)+),
                    },
                }
            }
        }
    };
}

tuple_multizip!(MultiZip2; A:0, B:1);
tuple_multizip!(MultiZip3; A:0, B:1, C:2);
tuple_multizip!(MultiZip4; A:0, B:1, C:2, D:3);
tuple_multizip!(MultiZip5; A:0, B:1, C:2, D:3, E:4);
tuple_multizip!(MultiZip6; A:0, B:1, C:2, D:3, E:4, F:5);

/// Rayon's `par_iter` (by shared reference).
pub trait IntoParallelRefIterator<'a> {
    type Item: 'a;
    type Iter: Iterator<Item = Self::Item>;
    fn par_iter(&'a self) -> ParIter<Self::Iter>;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

/// Rayon's `par_iter_mut` (by unique reference).
pub trait IntoParallelRefMutIterator<'a> {
    type Item: 'a;
    type Iter: Iterator<Item = Self::Item>;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter>;
}

impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = std::slice::IterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.iter_mut(),
        }
    }
}

/// Sequential stand-in for `rayon::join`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_and_sum() {
        let v: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(v, vec![0, 1, 4, 9, 16]);
        let s: usize = (0..10usize).into_par_iter().map(|i| i).sum();
        assert_eq!(s, 45);
    }

    #[test]
    fn tuple_multizip_yields_flat_tuples() {
        let mut a = vec![1, 2, 3];
        let mut b = vec![10, 20, 30];
        let mut c = vec![100, 200, 300];
        (&mut a, &mut b, &mut c)
            .into_par_iter()
            .enumerate()
            .for_each(|(i, (x, y, z))| {
                *x += i as i32;
                *y += *x;
                *z += *y;
            });
        assert_eq!(a, vec![1, 3, 5]);
        assert_eq!(b, vec![11, 23, 35]);
        assert_eq!(c, vec![111, 223, 335]);
    }

    #[test]
    fn rayon_style_reduce() {
        let (lo, hi) = (0..100u64)
            .into_par_iter()
            .map(|x| (x, x))
            .reduce(|| (u64::MAX, 0), |a, b| (a.0.min(b.0), a.1.max(b.1)));
        assert_eq!((lo, hi), (0, 99));
    }

    #[test]
    fn par_iter_mut_on_slices() {
        let mut v = vec![1.0f64; 4];
        v.par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x *= i as f64);
        assert_eq!(v, vec![0.0, 1.0, 2.0, 3.0]);
    }
}
