//! Offline, API-compatible subset of the `rayon` parallel-iterator API
//! with a real multithreaded executor.
//!
//! The build environment cannot reach crates.io, so this crate mirrors
//! the slice of rayon the workspace uses — `into_par_iter()` on ranges,
//! vectors, slices, and tuples (rayon's multi-zip), `par_iter()` /
//! `par_iter_mut()`, and the adaptor/consumer methods on [`ParIter`]
//! including rayon's two-argument `reduce(identity, op)` — and executes
//! it on a `std::thread` worker pool (see `pool`'s module docs) sized
//! from `WAFER_MD_THREADS` (default: available parallelism; `1` keeps
//! everything on the calling thread).
//!
//! ## Execution model
//!
//! A parallel iterator is a materialized vector of *base items* plus a
//! composed per-item transform built up by `map`/`filter`/`filter_map`.
//! Consumers split the base into chunks and run the transform plus the
//! consuming operation chunk-by-chunk on the pool.
//!
//! ## Determinism
//!
//! Unlike real rayon, every reduction here is **bit-deterministic across
//! thread counts**: the chunk layout is a pure function of the item
//! count (never of the thread count — see `chunk_len`), per-chunk
//! folds run left-to-right in item order, and chunk partials are
//! combined left-to-right in chunk-index order. Changing
//! `WAFER_MD_THREADS` changes which thread executes a chunk, never what
//! is computed. CI's determinism job relies on this.
//!
//! ## Contract differences from sequential iterators
//!
//! * Closures passed to adaptors and consumers must be `Fn` (not
//!   `FnMut`) and, at the consumers, `Sync`: they run concurrently.
//! * `reduce(identity, op)` folds `identity()` into **every chunk**, so
//!   `identity()` must be a true identity of `op` (rayon's own
//!   contract), and `op` must be associative.
//! * `enumerate`/`zip` index the *base* items; like real rayon (where
//!   both require `IndexedParallelIterator`) they must not be applied
//!   after a `filter`/`filter_map`.

mod pool;

use std::iter::Sum;
use std::marker::PhantomData;
use std::sync::Mutex;

pub use pool::{current_num_threads, set_num_threads, THREADS_ENV};

/// Largest number of chunks a parallel region is split into.
const MAX_CHUNKS: usize = 64;

/// Chunk length for `n` items — a pure function of `n`, never of the
/// thread count, so every reduction's combine tree is fixed and results
/// are bit-identical at any `WAFER_MD_THREADS`. Small item counts get
/// one-item chunks: coarse-grained loops (e.g. one item = a whole
/// fabric row simulation) are exactly the ones that need every item to
/// be schedulable on its own.
fn chunk_len(n: usize) -> usize {
    n.div_ceil(MAX_CHUNKS)
}

/// Split `items` into deterministic chunks, run `f` over each chunk on
/// the pool, and return the per-chunk results in chunk-index order.
fn run_chunked<B, R, F>(items: Vec<B>, f: F) -> Vec<R>
where
    B: Send,
    R: Send,
    F: Fn(Vec<B>) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let len = chunk_len(n);
    let n_chunks = n.div_ceil(len);
    // Split from the back so each split_off copies only the chunk it
    // removes (splitting from the front would recopy the whole tail at
    // every boundary — O(n × chunks) moves instead of O(n)).
    let mut chunks: Vec<Mutex<Option<Vec<B>>>> = Vec::with_capacity(n_chunks);
    let mut rest = items;
    for i in (0..n_chunks).rev() {
        let tail = rest.split_off(i * len);
        chunks.push(Mutex::new(Some(tail)));
    }
    chunks.reverse();
    let results: Vec<Mutex<Option<R>>> = (0..chunks.len()).map(|_| Mutex::new(None)).collect();
    let task = |i: usize| {
        let chunk = chunks[i]
            .lock()
            .unwrap()
            .take()
            .expect("chunk dispensed twice");
        let r = f(chunk);
        *results[i].lock().unwrap() = Some(r);
    };
    pool::run(chunks.len(), &task);
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("missing chunk result"))
        .collect()
}

/// A parallel iterator: materialized base items of type `B` plus a
/// composed per-item transform `B -> Option<T>` (`None` = filtered out).
pub struct ParIter<B, T, F> {
    base: Vec<B>,
    f: F,
    _item: PhantomData<fn() -> T>,
}

impl<B, T, F> ParIter<B, T, F>
where
    F: Fn(B) -> Option<T>,
{
    fn with(base: Vec<B>, f: F) -> Self {
        ParIter {
            base,
            f,
            _item: PhantomData,
        }
    }

    pub fn map<R, G>(self, g: G) -> ParIter<B, R, impl Fn(B) -> Option<R>>
    where
        G: Fn(T) -> R,
    {
        let f = self.f;
        ParIter::with(self.base, move |b| f(b).map(&g))
    }

    pub fn filter<P>(self, p: P) -> ParIter<B, T, impl Fn(B) -> Option<T>>
    where
        P: Fn(&T) -> bool,
    {
        let f = self.f;
        ParIter::with(self.base, move |b| f(b).filter(&p))
    }

    pub fn filter_map<R, G>(self, g: G) -> ParIter<B, R, impl Fn(B) -> Option<R>>
    where
        G: Fn(T) -> Option<R>,
    {
        let f = self.f;
        ParIter::with(self.base, move |b| f(b).and_then(&g))
    }

    /// Pair every item with its base index. Must precede any filtering
    /// (rayon: `enumerate` requires an indexed iterator).
    #[allow(clippy::type_complexity)]
    pub fn enumerate(
        self,
    ) -> ParIter<(usize, B), (usize, T), impl Fn((usize, B)) -> Option<(usize, T)>> {
        let f = self.f;
        let base: Vec<(usize, B)> = self.base.into_iter().enumerate().collect();
        ParIter::with(base, move |(i, b)| f(b).map(|t| (i, t)))
    }

    /// Iterate in lockstep with another parallel iterable, stopping at
    /// the shorter one. Must precede any filtering (rayon: `zip`
    /// requires indexed iterators).
    #[allow(clippy::type_complexity)]
    pub fn zip<J>(
        self,
        other: J,
    ) -> ParIter<(B, J::Item), (T, J::Item), impl Fn((B, J::Item)) -> Option<(T, J::Item)>>
    where
        J: IntoParallelIterator,
    {
        let f = self.f;
        let base: Vec<(B, J::Item)> = self.base.into_iter().zip(other.into_par_vec()).collect();
        ParIter::with(base, move |(b, o)| f(b).map(|t| (t, o)))
    }
}

impl<B, T, F> ParIter<B, T, F>
where
    B: Send,
    T: Send,
    F: Fn(B) -> Option<T> + Sync,
{
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(T) + Sync,
    {
        let f = self.f;
        run_chunked(self.base, |chunk| {
            for b in chunk {
                if let Some(t) = f(b) {
                    g(t);
                }
            }
        });
    }

    pub fn count(self) -> usize {
        let f = self.f;
        run_chunked(self.base, |chunk| chunk.into_iter().filter_map(&f).count())
            .into_iter()
            .sum()
    }

    /// Sum per chunk, then sum the chunk partials in chunk-index order
    /// (the fixed combine order that makes float sums bit-stable across
    /// thread counts).
    pub fn sum<S>(self) -> S
    where
        S: Send + Sum<T> + Sum<S>,
    {
        let f = self.f;
        run_chunked(self.base, |chunk| {
            chunk.into_iter().filter_map(&f).sum::<S>()
        })
        .into_iter()
        .sum()
    }

    pub fn collect<C>(self) -> C
    where
        C: FromIterator<T>,
    {
        let f = self.f;
        run_chunked(self.base, |chunk| {
            chunk.into_iter().filter_map(&f).collect::<Vec<T>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Rayon-style reduction: every chunk folds from `identity()` in
    /// item order, and the chunk partials fold from `identity()` in
    /// chunk-index order. `identity()` must be a true identity of `op`
    /// and `op` must be associative — the combine *tree* differs from a
    /// sequential left fold, but never varies with the thread count.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> T
    where
        ID: Fn() -> T + Sync,
        OP: Fn(T, T) -> T + Sync,
    {
        let f = self.f;
        run_chunked(self.base, |chunk| {
            chunk.into_iter().filter_map(&f).fold(identity(), &op)
        })
        .into_iter()
        .fold(identity(), op)
    }

    pub fn max(self) -> Option<T>
    where
        T: Ord,
    {
        let f = self.f;
        run_chunked(self.base, |chunk| chunk.into_iter().filter_map(&f).max())
            .into_iter()
            .flatten()
            .max()
    }

    pub fn min(self) -> Option<T>
    where
        T: Ord,
    {
        let f = self.f;
        run_chunked(self.base, |chunk| chunk.into_iter().filter_map(&f).min())
            .into_iter()
            .flatten()
            .min()
    }
}

/// Conversion into a [`ParIter`] — rayon's `IntoParallelIterator`.
pub trait IntoParallelIterator {
    type Item;

    /// Materialize the base items in sequential order.
    fn into_par_vec(self) -> Vec<Self::Item>;

    #[allow(clippy::type_complexity)]
    fn into_par_iter(self) -> ParIter<Self::Item, Self::Item, fn(Self::Item) -> Option<Self::Item>>
    where
        Self: Sized,
    {
        ParIter::with(self.into_par_vec(), Some)
    }
}

impl<T> IntoParallelIterator for std::ops::Range<T>
where
    std::ops::Range<T>: Iterator<Item = T>,
{
    type Item = T;
    fn into_par_vec(self) -> Vec<T> {
        self.collect()
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_vec(self) -> Vec<T> {
        self
    }
}

impl<'a, T> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    fn into_par_vec(self) -> Vec<&'a T> {
        self.iter().collect()
    }
}

impl<'a, T> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    fn into_par_vec(self) -> Vec<&'a T> {
        self.iter().collect()
    }
}

impl<'a, T> IntoParallelIterator for &'a mut Vec<T> {
    type Item = &'a mut T;
    fn into_par_vec(self) -> Vec<&'a mut T> {
        self.iter_mut().collect()
    }
}

impl<'a, T> IntoParallelIterator for &'a mut [T] {
    type Item = &'a mut T;
    fn into_par_vec(self) -> Vec<&'a mut T> {
        self.iter_mut().collect()
    }
}

/// Rayon's multi-zip: a tuple of parallel-iterables iterates in
/// lockstep, yielding a flat tuple per step, stopping at the shortest
/// member.
macro_rules! tuple_multizip {
    ($($T:ident : $idx:tt),+) => {
        impl<$($T: IntoParallelIterator),+> IntoParallelIterator for ($($T,)+) {
            type Item = ($($T::Item,)+);
            #[allow(non_snake_case)]
            fn into_par_vec(self) -> Vec<Self::Item> {
                // Type idents double as value idents (separate
                // namespaces): each member becomes its own iterator.
                $(let mut $T = self.$idx.into_par_vec().into_iter();)+
                let mut out = Vec::new();
                loop {
                    let item = ($(
                        match $T.next() {
                            ::std::option::Option::Some(v) => v,
                            ::std::option::Option::None => break,
                        },
                    )+);
                    out.push(item);
                }
                out
            }
        }
    };
}

tuple_multizip!(A:0, B:1);
tuple_multizip!(A:0, B:1, C:2);
tuple_multizip!(A:0, B:1, C:2, D:3);
tuple_multizip!(A:0, B:1, C:2, D:3, E:4);
tuple_multizip!(A:0, B:1, C:2, D:3, E:4, F:5);

/// Rayon's `par_iter` (by shared reference).
pub trait IntoParallelRefIterator<'a> {
    type Item: 'a;
    #[allow(clippy::type_complexity)]
    fn par_iter(&'a self) -> ParIter<Self::Item, Self::Item, fn(Self::Item) -> Option<Self::Item>>;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T, &'a T, fn(&'a T) -> Option<&'a T>> {
        ParIter::with(self.iter().collect(), Some)
    }
}

/// Rayon's `par_iter_mut` (by unique reference).
pub trait IntoParallelRefMutIterator<'a> {
    type Item: 'a;
    #[allow(clippy::type_complexity)]
    fn par_iter_mut(
        &'a mut self,
    ) -> ParIter<Self::Item, Self::Item, fn(Self::Item) -> Option<Self::Item>>;
}

impl<'a, T: 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(
        &'a mut self,
    ) -> ParIter<&'a mut T, &'a mut T, fn(&'a mut T) -> Option<&'a mut T>> {
        ParIter::with(self.iter_mut().collect(), Some)
    }
}

/// Sequential stand-in for `rayon::join` (no call sites need true
/// fork-join; the iterator layer is where the parallelism lives).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect_and_sum() {
        let v: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(v, vec![0, 1, 4, 9, 16]);
        let s: usize = (0..10usize).into_par_iter().map(|i| i).sum();
        assert_eq!(s, 45);
    }

    #[test]
    fn tuple_multizip_yields_flat_tuples() {
        let mut a = vec![1, 2, 3];
        let mut b = vec![10, 20, 30];
        let mut c = vec![100, 200, 300];
        (&mut a, &mut b, &mut c)
            .into_par_iter()
            .enumerate()
            .for_each(|(i, (x, y, z))| {
                *x += i as i32;
                *y += *x;
                *z += *y;
            });
        assert_eq!(a, vec![1, 3, 5]);
        assert_eq!(b, vec![11, 23, 35]);
        assert_eq!(c, vec![111, 223, 335]);
    }

    #[test]
    fn rayon_style_reduce() {
        let (lo, hi) = (0..100u64)
            .into_par_iter()
            .map(|x| (x, x))
            .reduce(|| (u64::MAX, 0), |a, b| (a.0.min(b.0), a.1.max(b.1)));
        assert_eq!((lo, hi), (0, 99));
    }

    #[test]
    fn par_iter_mut_on_slices() {
        let mut v = vec![1.0f64; 4];
        v.par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x *= i as f64);
        assert_eq!(v, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn filter_and_filter_map_drop_items() {
        let evens: Vec<u32> = (0..100u32).into_par_iter().filter(|x| x % 2 == 0).collect();
        assert_eq!(evens.len(), 50);
        let halves: Vec<u32> = (0..100u32)
            .into_par_iter()
            .filter_map(|x| (x % 2 == 0).then_some(x / 2))
            .collect();
        assert_eq!(halves, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn zip_pairs_in_order() {
        let a: Vec<u32> = (0..40).collect();
        let b: Vec<u32> = (100..140).collect();
        let pairs: Vec<(u32, u32)> = a.into_par_iter().zip(b).collect();
        assert_eq!(pairs[0], (0, 100));
        assert_eq!(pairs[39], (39, 139));
    }

    /// The determinism contract: float reductions are bit-identical at
    /// every thread count because the chunk-combine order is fixed.
    #[test]
    fn float_sums_are_bit_stable_across_thread_counts() {
        let data: Vec<f64> = (0..10_000)
            .map(|i| ((i as f64) * 0.7311).sin() * 1e-3 + 1.0 / (i as f64 + 1.0))
            .collect();
        let sum_at = |threads: usize| -> u64 {
            crate::set_num_threads(threads);
            let s: f64 = data.par_iter().map(|&x| x * x + 0.5 * x).sum();
            crate::set_num_threads(0);
            s.to_bits()
        };
        let reference = sum_at(1);
        for threads in [2usize, 3, 4, 8] {
            assert_eq!(sum_at(threads), reference, "threads = {threads}");
        }
    }

    #[test]
    fn reduce_is_bit_stable_across_thread_counts() {
        let data: Vec<f64> = (0..5_000).map(|i| ((i as f64) * 1.313).cos()).collect();
        let reduce_at = |threads: usize| -> (u64, u64) {
            crate::set_num_threads(threads);
            let (sum, max) = data.par_iter().map(|&x| (x, x)).reduce(
                || (0.0f64, f64::NEG_INFINITY),
                |a, b| (a.0 + b.0, a.1.max(b.1)),
            );
            crate::set_num_threads(0);
            (sum.to_bits(), max.to_bits())
        };
        let reference = reduce_at(1);
        for threads in [2usize, 4, 7] {
            assert_eq!(reduce_at(threads), reference, "threads = {threads}");
        }
    }

    #[test]
    fn large_for_each_writes_every_slot() {
        crate::set_num_threads(4);
        let mut v = vec![0u64; 4096];
        v.par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x = (i as u64) * 3 + 1);
        crate::set_num_threads(0);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, (i as u64) * 3 + 1, "slot {i}");
        }
    }

    #[test]
    fn collect_preserves_order_under_parallelism() {
        crate::set_num_threads(4);
        let v: Vec<usize> = (0..10_000usize).into_par_iter().map(|i| i * 2).collect();
        crate::set_num_threads(0);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }
}
