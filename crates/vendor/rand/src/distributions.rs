//! The `Standard` distribution and uniform range sampling.

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The "natural" distribution per type: uniform over the full integer
/// range, uniform in `[0, 1)` for floats, fair coin for `bool`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            #[inline]
            fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<f64> for Standard {
    /// 53 random mantissa bits scaled into `[0, 1)`.
    #[inline]
    fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    /// 24 random mantissa bits scaled into `[0, 1)`.
    #[inline]
    fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: crate::Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod uniform {
    //! Range sampling used by `Rng::gen_range`.

    use super::Distribution;
    use super::Standard;
    use std::ops::{Range, RangeInclusive};

    /// A range that `Rng::gen_range` can sample a `T` from.
    pub trait SampleRange<T> {
        fn sample_single<R: crate::Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! float_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                #[inline]
                fn sample_single<R: crate::Rng + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let u: $t = Standard.sample(rng);
                    let v = self.start + (self.end - self.start) * u;
                    // Guard against rounding up to the excluded endpoint
                    // (and, for one-ULP-wide ranges, below the start).
                    if v < self.end { v } else { self.end.next_down().max(self.start) }
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                #[inline]
                fn sample_single<R: crate::Rng + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let u: $t = Standard.sample(rng);
                    lo + (hi - lo) * u
                }
            }
        )*};
    }
    float_range!(f32, f64);

    macro_rules! int_range {
        ($($t:ty => $wide:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                #[inline]
                fn sample_single<R: crate::Rng + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let width = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                    let offset = (rng.next_u64() as u128) % width;
                    (self.start as $wide).wrapping_add(offset as $wide) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                #[inline]
                fn sample_single<R: crate::Rng + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let width = (hi as $wide).wrapping_sub(lo as $wide) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % width;
                    (lo as $wide).wrapping_add(offset as $wide) as $t
                }
            }
        )*};
    }
    int_range!(
        u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
        i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
    );

    #[cfg(test)]
    mod tests {
        use crate::rngs::StdRng;
        use crate::{Rng, SeedableRng};

        #[test]
        fn float_ranges_respect_bounds() {
            let mut rng = StdRng::seed_from_u64(3);
            for _ in 0..10_000 {
                let x = rng.gen_range(-6.0..6.0);
                assert!((-6.0..6.0).contains(&x));
                let tiny = rng.gen_range(f64::MIN_POSITIVE..1.0);
                assert!(tiny > 0.0 && tiny < 1.0);
            }
        }

        #[test]
        fn float_ranges_with_nonpositive_end_stay_in_range() {
            let mut rng = StdRng::seed_from_u64(21);
            for _ in 0..10_000 {
                let x = rng.gen_range(-2.0f64..-1.0);
                assert!((-2.0..-1.0).contains(&x), "{x}");
                let y = rng.gen_range(-1.0f64..0.0);
                assert!((-1.0..0.0).contains(&y), "{y}");
            }
            // One-ULP-wide range around the worst case: must not panic,
            // return NaN, or escape the range.
            let z = rng.gen_range((-f64::MIN_POSITIVE)..0.0);
            assert!((-f64::MIN_POSITIVE..0.0).contains(&z), "{z}");
        }

        #[test]
        fn int_ranges_hit_every_value() {
            let mut rng = StdRng::seed_from_u64(9);
            let mut seen = [false; 8];
            for _ in 0..1000 {
                seen[rng.gen_range(0usize..8)] = true;
                let s = rng.gen_range(-50i32..50);
                assert!((-50..50).contains(&s));
            }
            assert!(seen.iter().all(|&b| b));
        }
    }
}
