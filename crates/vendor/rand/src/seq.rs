//! Slice helpers (`choose`, `shuffle`) from `rand::seq`.

use crate::Rng;

pub trait SliceRandom {
    type Item;

    /// Uniformly pick one element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..i + 1));
        }
    }
}
