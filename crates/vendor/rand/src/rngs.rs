//! Seedable generators. `StdRng` is xoshiro256++ (Blackman & Vigna), a
//! small, fast, well-tested generator with 256 bits of state — plenty for
//! deterministic simulation seeding and property-test case generation.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator.
///
/// Unlike the real `rand::rngs::StdRng` (ChaCha12) this is xoshiro256++,
/// so seeded streams differ from upstream, but the contract is the same:
/// a reproducible, high-quality, non-cryptographic stream per seed.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(bytes);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0xFE9B_5742_AE91_70A3,
            ];
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = Self::rotl(s[3], 45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn unit_floats_are_in_range_and_cover() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }
}
