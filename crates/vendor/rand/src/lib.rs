//! Offline, API-compatible subset of the `rand` crate (0.8-era surface).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of `rand` it actually uses: the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`, `sample`, `fill`), the
//! [`SeedableRng`] constructor trait, and a deterministic [`rngs::StdRng`]
//! built on xoshiro256++ seeded through SplitMix64. Statistical quality is
//! more than adequate for simulation seeding and property-test case
//! generation; it is *not* a cryptographic generator, exactly like the
//! real `StdRng` contract-wise (reproducible streams, no security claim).
//!
//! Code written against this subset compiles unchanged against the real
//! `rand` 0.8 except for the stream values themselves (`StdRng` here is
//! xoshiro256++ rather than ChaCha12, so seeded sequences differ).

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 (the same scheme the
    /// real `rand_core` uses for its default `seed_from_u64`).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing extension methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Sample from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The traits and types nearly every caller wants in scope.
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}
