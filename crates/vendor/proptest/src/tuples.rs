//! Tuples of strategies generate tuples of values.

use crate::{Strategy, TestRunner};

macro_rules! tuple_strategy {
    ($($S:ident : $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.generate(runner),)+)
            }
        }
    };
}

tuple_strategy!(A:0);
tuple_strategy!(A:0, B:1);
tuple_strategy!(A:0, B:1, C:2);
tuple_strategy!(A:0, B:1, C:2, D:3);
tuple_strategy!(A:0, B:1, C:2, D:3, E:4);
tuple_strategy!(A:0, B:1, C:2, D:3, E:4, F:5);
