//! Collection strategies (`proptest::collection::vec`).

use crate::{Strategy, TestRunner};
use rand::Rng;

/// Generate a `Vec` whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "collection::vec: empty size range");
    VecStrategy { element, size }
}

pub struct VecStrategy<S> {
    element: S,
    size: std::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
        let len = runner.rng.gen_range(self.size.start..self.size.end);
        (0..len).map(|_| self.element.generate(runner)).collect()
    }
}
