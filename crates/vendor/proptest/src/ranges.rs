//! Numeric range expressions (`lo..hi`) as strategies.

use crate::{Strategy, TestRunner};
use rand::Rng;

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng.gen_range(self.start..self.end)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
