//! Offline, API-compatible subset of the `proptest` property-testing
//! crate.
//!
//! Supports the surface this workspace's test suites use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]` inner
//! attribute), range and tuple strategies, [`Strategy::prop_map`],
//! [`collection::vec`], and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` macros. Unlike the real proptest there is **no input
//! shrinking** — a failing case panics with the generated inputs'
//! assertion message directly — and case generation is deterministic per
//! test (seeded from the test's module path and name), so failures
//! reproduce across runs.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
mod ranges;
mod tuples;

/// Generation context handed to strategies. Wraps a seeded [`StdRng`].
pub struct TestRunner {
    pub rng: StdRng,
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; draw a fresh case.
    Reject,
    /// `prop_assert!`-family failure with its message.
    Fail(String),
}

/// Runtime configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each test must pass.
    pub cases: u32,
    /// Give up if rejections exceed this many in a row.
    pub max_local_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_local_rejects: 65_536,
        }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    /// Draw one value. (The real proptest returns a shrinkable value
    /// tree; this subset draws the value directly.)
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Transform generated values with a pure function.
    fn prop_map<F, T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, runner: &mut TestRunner) -> T {
        (self.f)(self.inner.generate(runner))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// Build the deterministic per-test runner used by [`proptest!`].
pub fn test_runner(test_path: &str) -> TestRunner {
    // FNV-1a over the fully qualified test name: stable across runs and
    // platforms, distinct per test.
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in test_path.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x1_0000_01B3);
    }
    TestRunner {
        rng: StdRng::seed_from_u64(hash),
    }
}

/// Everything the `proptest!` test style needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{} (left: `{:?}`, right: `{:?}`)",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}` (both: `{:?}`)",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Define deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0usize..10, v in proptest::collection::vec(0.0..1.0, 1..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut runner =
                    $crate::test_runner(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strategy), &mut runner); )+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                            rejected += 1;
                            if rejected > config.max_local_rejects {
                                panic!(
                                    "proptest '{}': too many prop_assume! rejections ({})",
                                    stringify!($name),
                                    rejected
                                );
                            }
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                            panic!(
                                "proptest '{}' failed after {} passing case(s): {}",
                                stringify!($name),
                                accepted,
                                message
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -3.0f64..3.0, n in 1usize..9) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn tuples_and_prop_map_compose(
            p in (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| a + b),
        ) {
            prop_assert!((0.0..2.0).contains(&p));
        }

        #[test]
        fn collections_respect_length(v in crate::collection::vec(0i32..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            for item in &v {
                prop_assert!((0..5).contains(item), "item {} out of range", item);
            }
        }

        #[test]
        fn assume_rejects_without_failing(a in 0usize..10, b in 0usize..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "proptest 'always_fails' failed")]
    fn failing_property_panics_with_message() {
        proptest! {
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }

    #[test]
    fn runner_is_deterministic_per_test() {
        use crate::Strategy;
        let mut a = crate::test_runner("crate::some_test");
        let mut b = crate::test_runner("crate::some_test");
        let strat = 0.0f64..1.0;
        for _ in 0..16 {
            assert_eq!(
                strat.generate(&mut a).to_bits(),
                strat.generate(&mut b).to_bits()
            );
        }
    }
}
