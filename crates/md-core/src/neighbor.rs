//! Cell lists and Verlet neighbor lists for the reference engine.
//!
//! LAMMPS (the paper's baseline) builds Verlet lists through spatial
//! binning and reuses them across timesteps until any atom has moved more
//! than half the skin distance. The WSE algorithm instead rebuilds its
//! neighbor list every step from the candidate exchange — Table V's
//! "Neighbor list" projection quantifies what reuse would save there.
//! This module provides the binning/reuse machinery for the baseline and
//! for validation of the wafer path.

use crate::soa::PositionSource;
use crate::system::Box3;
use crate::vec3::V3d;
use rayon::prelude::*;

/// Uniform spatial bins of edge ≥ `cell_size` covering the atom extent.
#[derive(Clone, Debug)]
pub struct CellList {
    origin: V3d,
    cell: f64,
    dims: [usize; 3],
    /// Bin index of every atom.
    pub bin_of: Vec<usize>,
    /// Atom indices grouped per bin.
    pub bins: Vec<Vec<usize>>,
}

impl CellList {
    /// Bin `positions` into cells of edge ≥ `cell_size`. For periodic
    /// dimensions the grid spans the box; for open dimensions it spans
    /// the atoms' bounding extent. Accepts either atom layout (AoS
    /// slices or SoA views) through [`PositionSource`].
    pub fn build<S: PositionSource + ?Sized>(positions: &S, bbox: &Box3, cell_size: f64) -> Self {
        assert!(cell_size > 0.0);
        assert!(!positions.is_empty(), "cell list of empty system");
        let mut lo = positions.get(0);
        let mut hi = lo;
        for i in 1..positions.len() {
            let p = positions.get(i);
            lo = V3d::new(lo.x.min(p.x), lo.y.min(p.y), lo.z.min(p.z));
            hi = V3d::new(hi.x.max(p.x), hi.y.max(p.y), hi.z.max(p.z));
        }
        let mut origin = lo;
        let mut extent = [0.0f64; 3];
        let lo_a = lo.to_array();
        let hi_a = hi.to_array();
        let len_a = bbox.lengths.to_array();
        let mut orig_a = origin.to_array();
        for k in 0..3 {
            if bbox.periodic[k] {
                orig_a[k] = 0.0;
                extent[k] = len_a[k];
            } else {
                extent[k] = (hi_a[k] - lo_a[k]).max(cell_size * 1e-9);
            }
        }
        origin = V3d::from_array(orig_a);

        let dims = [
            ((extent[0] / cell_size).floor() as usize).max(1),
            ((extent[1] / cell_size).floor() as usize).max(1),
            ((extent[2] / cell_size).floor() as usize).max(1),
        ];
        let n_bins = dims[0] * dims[1] * dims[2];
        let mut bins = vec![Vec::new(); n_bins];
        let mut bin_of = vec![0usize; positions.len()];
        for (i, slot) in bin_of.iter_mut().enumerate() {
            let idx = Self::bin_index_static(origin, extent, dims, bbox, positions.get(i));
            *slot = idx;
            bins[idx].push(i);
        }
        Self {
            origin,
            cell: cell_size,
            dims,
            bin_of,
            bins,
        }
    }

    fn bin_index_static(
        origin: V3d,
        extent: [f64; 3],
        dims: [usize; 3],
        bbox: &Box3,
        p: V3d,
    ) -> usize {
        let pa = bbox.wrap(p).to_array();
        let oa = origin.to_array();
        let mut c = [0usize; 3];
        for k in 0..3 {
            let width = extent[k] / dims[k] as f64;
            let mut idx = ((pa[k] - oa[k]) / width).floor() as i64;
            if idx < 0 {
                idx = 0;
            }
            if idx >= dims[k] as i64 {
                idx = dims[k] as i64 - 1;
            }
            c[k] = idx as usize;
        }
        (c[2] * dims[1] + c[1]) * dims[0] + c[0]
    }

    /// 3-D coordinates of bin `idx`.
    fn bin_coords(&self, idx: usize) -> [usize; 3] {
        let x = idx % self.dims[0];
        let y = (idx / self.dims[0]) % self.dims[1];
        let z = idx / (self.dims[0] * self.dims[1]);
        [x, y, z]
    }

    /// Visit every atom in the 27-bin stencil around `bin` (respecting
    /// periodic wrap where active).
    pub fn for_each_in_stencil(&self, bin: usize, bbox: &Box3, mut f: impl FnMut(usize)) {
        let c = self.bin_coords(bin);
        for dz in -1i64..=1 {
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let mut coords = [0usize; 3];
                    let mut ok = true;
                    for (k, d) in [dx, dy, dz].into_iter().enumerate() {
                        let dim = self.dims[k] as i64;
                        let mut v = c[k] as i64 + d;
                        if bbox.periodic[k] {
                            v = v.rem_euclid(dim);
                        } else if v < 0 || v >= dim {
                            ok = false;
                            break;
                        }
                        coords[k] = v as usize;
                    }
                    if !ok {
                        continue;
                    }
                    let idx = (coords[2] * self.dims[1] + coords[1]) * self.dims[0] + coords[0];
                    for &a in &self.bins[idx] {
                        f(a);
                    }
                    // Small grids revisit the same bin through wraparound;
                    // dedup below in the caller via the r² > 0 check and
                    // j != i filters, plus the seen-bin guard here:
                }
            }
        }
    }

    /// True when the 27-bin stencil can revisit a bin through periodic
    /// wraparound (a periodic axis narrower than three cells), in which
    /// case stencil visitors must deduplicate candidates.
    pub fn stencil_wraps(&self, bbox: &Box3) -> bool {
        (0..3).any(|k| bbox.periodic[k] && self.dims[k] < 3)
    }

    /// Grid origin (spatial position of bin (0,0,0)).
    pub fn origin(&self) -> V3d {
        self.origin
    }

    pub fn n_bins(&self) -> usize {
        self.bins.len()
    }

    pub fn cell_size(&self) -> f64 {
        self.cell
    }
}

/// Full Verlet neighbor lists with skin-based reuse.
#[derive(Clone, Debug)]
pub struct VerletList {
    /// For each atom, the indices of atoms within `cutoff + skin`.
    pub neighbors: Vec<Vec<usize>>,
    /// Positions at the time of the last rebuild.
    ref_positions: Vec<V3d>,
    pub cutoff: f64,
    pub skin: f64,
    /// Number of rebuilds performed (diagnostic for reuse statistics).
    pub rebuild_count: usize,
}

impl VerletList {
    pub fn new(cutoff: f64, skin: f64) -> Self {
        assert!(cutoff > 0.0 && skin >= 0.0);
        Self {
            neighbors: Vec::new(),
            ref_positions: Vec::new(),
            cutoff,
            skin,
            rebuild_count: 0,
        }
    }

    /// (Re)build the lists from scratch using a cell list. Per-atom
    /// lists are built in parallel (each atom only reads the shared
    /// cell bins) and then sorted into **ascending neighbor-index
    /// order**. The sort makes the enumeration order of each list a
    /// pure function of the atom set itself rather than of the cell
    /// grid: the grid's origin follows the atoms' bounding extent, so
    /// stencil order would differ between a full system and a sharded
    /// subsystem holding the same atoms. With the canonical order, any
    /// force or density sum iterating a list is bit-identical at any
    /// thread count *and* across spatial shard decompositions.
    ///
    /// Accepts either atom layout through [`PositionSource`]; candidate
    /// distances are computed identically, so the lists (and therefore
    /// every downstream force sum) do not depend on the layout.
    pub fn rebuild<S: PositionSource + ?Sized>(&mut self, positions: &S, bbox: &Box3) {
        let reach = self.cutoff + self.skin;
        let reach2 = reach * reach;
        let cells = CellList::build(positions, bbox, reach);
        let n = positions.len();
        // Candidate duplicates only exist when the stencil wraps onto the
        // same bin (tiny periodic grids, where lists are short and a
        // linear membership scan is cheap).
        let dedup = cells.stencil_wraps(bbox);
        let cells = &cells;
        self.neighbors = (0..n)
            .into_par_iter()
            .map(|i| {
                let mut list = Vec::new();
                cells.for_each_in_stencil(cells.bin_of[i], bbox, |j| {
                    if j == i || (dedup && list.contains(&j)) {
                        return;
                    }
                    let d = bbox.displacement(positions.get(i), positions.get(j));
                    if d.norm_sq() < reach2 {
                        list.push(j);
                    }
                });
                list.sort_unstable();
                list
            })
            .collect();
        self.ref_positions = (0..n).map(|i| positions.get(i)).collect();
        self.rebuild_count += 1;
    }

    /// True when some atom has drifted more than half the skin since the
    /// last rebuild — the standard LAMMPS "dangerous build" criterion.
    pub fn needs_rebuild<S: PositionSource + ?Sized>(&self, positions: &S, bbox: &Box3) -> bool {
        if self.ref_positions.len() != positions.len() {
            return true;
        }
        let half_skin2 = (self.skin / 2.0) * (self.skin / 2.0);
        (0..positions.len()).any(|i| {
            bbox.displacement(self.ref_positions[i], positions.get(i))
                .norm_sq()
                > half_skin2
        })
    }

    /// Rebuild only if needed; returns whether a rebuild happened.
    pub fn update<S: PositionSource + ?Sized>(&mut self, positions: &S, bbox: &Box3) -> bool {
        if self.needs_rebuild(positions, bbox) {
            self.rebuild(positions, bbox);
            true
        } else {
            false
        }
    }

    /// Mean neighbors per atom (diagnostic; compare against the paper's
    /// interactions-per-atom column).
    pub fn mean_neighbors(&self) -> f64 {
        if self.neighbors.is_empty() {
            return 0.0;
        }
        self.neighbors.iter().map(|l| l.len()).sum::<usize>() as f64 / self.neighbors.len() as f64
    }
}

/// Brute-force full neighbor lists — O(N²), for validation only.
pub fn bruteforce_neighbors(positions: &[V3d], bbox: &Box3, cutoff: f64) -> Vec<Vec<usize>> {
    let rc2 = cutoff * cutoff;
    (0..positions.len())
        .map(|i| {
            (0..positions.len())
                .filter(|&j| {
                    j != i && bbox.displacement(positions[i], positions[j]).norm_sq() < rc2
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::{Crystal, SlabSpec};
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_positions(n: usize, l: f64, seed: u64) -> Vec<V3d> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                V3d::new(
                    rng.gen::<f64>() * l,
                    rng.gen::<f64>() * l,
                    rng.gen::<f64>() * l,
                )
            })
            .collect()
    }

    fn sorted(mut v: Vec<usize>) -> Vec<usize> {
        v.sort_unstable();
        v
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // comparing parallel per-atom lists
    fn cell_list_matches_bruteforce_open_box() {
        let pos = random_positions(300, 20.0, 7);
        let bbox = Box3::open(V3d::new(20.0, 20.0, 20.0));
        let mut vl = VerletList::new(3.0, 0.0);
        vl.rebuild(&pos, &bbox);
        let bf = bruteforce_neighbors(&pos, &bbox, 3.0);
        for i in 0..pos.len() {
            assert_eq!(
                sorted(vl.neighbors[i].clone()),
                sorted(bf[i].clone()),
                "atom {i}"
            );
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // comparing parallel per-atom lists
    fn cell_list_matches_bruteforce_periodic_box() {
        let pos = random_positions(250, 15.0, 11);
        let bbox = Box3::periodic(V3d::new(15.0, 15.0, 15.0));
        let mut vl = VerletList::new(3.5, 0.3);
        vl.rebuild(&pos, &bbox);
        let bf = bruteforce_neighbors(&pos, &bbox, 3.8);
        for i in 0..pos.len() {
            assert_eq!(
                sorted(vl.neighbors[i].clone()),
                sorted(bf[i].clone()),
                "atom {i}"
            );
        }
    }

    #[test]
    fn small_periodic_grid_does_not_duplicate_neighbors() {
        // Box barely larger than the cutoff: the 27-stencil wraps onto
        // itself. Every neighbor must still appear exactly once.
        let pos = random_positions(40, 6.0, 3);
        let bbox = Box3::periodic(V3d::new(6.0, 6.0, 6.0));
        let mut vl = VerletList::new(2.5, 0.0);
        vl.rebuild(&pos, &bbox);
        for (i, l) in vl.neighbors.iter().enumerate() {
            let mut s = l.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), l.len(), "atom {i} has duplicate neighbors");
        }
    }

    #[test]
    fn skin_reuse_avoids_rebuilds_until_drift_exceeds_half_skin() {
        let pos = random_positions(100, 12.0, 5);
        let bbox = Box3::open(V3d::new(12.0, 12.0, 12.0));
        let mut vl = VerletList::new(3.0, 1.0);
        vl.rebuild(&pos, &bbox);
        assert_eq!(vl.rebuild_count, 1);

        // Drift everything by less than skin/2: no rebuild.
        let drifted: Vec<V3d> = pos.iter().map(|p| *p + V3d::new(0.4, 0.0, 0.0)).collect();
        assert!(!vl.update(&drifted, &bbox));
        assert_eq!(vl.rebuild_count, 1);

        // Move one atom past skin/2: rebuild.
        let mut moved = drifted.clone();
        moved[17] += V3d::new(0.2, 0.0, 0.0);
        assert!(vl.update(&moved, &bbox));
        assert_eq!(vl.rebuild_count, 2);
    }

    #[test]
    fn lattice_neighbor_count_matches_coordination() {
        let spec = SlabSpec {
            crystal: Crystal::Bcc,
            lattice_a: 3.304,
            nx: 6,
            ny: 6,
            nz: 6,
        };
        let pos = spec.generate();
        let bbox = Box3::periodic(spec.dimensions());
        let mut vl = VerletList::new(4.10, 0.0);
        vl.rebuild(&pos, &bbox);
        // In a fully periodic perfect BCC crystal every atom sees exactly
        // the Ta bulk coordination (14 within 4.1 Å).
        for (i, l) in vl.neighbors.iter().enumerate() {
            assert_eq!(l.len(), 14, "atom {i}");
        }
    }

    #[test]
    fn atom_count_change_forces_rebuild() {
        let pos = random_positions(50, 10.0, 1);
        let bbox = Box3::open(V3d::new(10.0, 10.0, 10.0));
        let mut vl = VerletList::new(3.0, 0.5);
        vl.rebuild(&pos, &bbox);
        let fewer = pos[..40].to_vec();
        assert!(vl.needs_rebuild(&fewer, &bbox));
    }
}
