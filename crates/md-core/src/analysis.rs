//! Trajectory analysis: radial distribution function, mean-squared
//! displacement, and common structure diagnostics.
//!
//! These are the observables a materials scientist points at the
//! trajectories this engine produces: the RDF fingerprint distinguishes
//! the FCC/BCC shells the potentials were calibrated to (and shows the
//! grain-boundary disorder of Fig. 2), and MSD quantifies the atom
//! diffusion whose projection drives the Fig. 9 assignment-cost growth.

use crate::system::Box3;
use crate::vec3::V3d;

/// A binned radial distribution function g(r).
#[derive(Clone, Debug)]
pub struct Rdf {
    /// Bin centers (Å).
    pub r: Vec<f64>,
    /// g(r) values (normalized to 1 at large r for a homogeneous system).
    pub g: Vec<f64>,
    pub bin_width: f64,
}

/// Compute g(r) for a configuration. For open boundaries the
/// normalization uses the bounding-box density, so absolute values at
/// large r sag slightly; peak *positions* are exact either way.
pub fn rdf(positions: &[V3d], bbox: &Box3, r_max: f64, n_bins: usize) -> Rdf {
    assert!(n_bins >= 2 && r_max > 0.0);
    let n = positions.len();
    let bin_width = r_max / n_bins as f64;
    let mut counts = vec![0u64; n_bins];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = bbox.displacement(positions[i], positions[j]).norm();
            if d < r_max {
                counts[(d / bin_width) as usize] += 2; // both directions
            }
        }
    }
    // Number density from the (possibly open) extent.
    let volume = if bbox.periodic.iter().all(|&p| p) {
        bbox.volume()
    } else {
        let mut lo = positions[0];
        let mut hi = positions[0];
        for p in positions {
            lo = V3d::new(lo.x.min(p.x), lo.y.min(p.y), lo.z.min(p.z));
            hi = V3d::new(hi.x.max(p.x), hi.y.max(p.y), hi.z.max(p.z));
        }
        let e = hi - lo;
        (e.x.max(1e-9)) * (e.y.max(1e-9)) * (e.z.max(1e-9))
    };
    let density = n as f64 / volume;

    let mut r = Vec::with_capacity(n_bins);
    let mut g = Vec::with_capacity(n_bins);
    for (k, &c) in counts.iter().enumerate() {
        let r_lo = k as f64 * bin_width;
        let r_hi = r_lo + bin_width;
        let shell = 4.0 / 3.0 * std::f64::consts::PI * (r_hi.powi(3) - r_lo.powi(3));
        let ideal = density * shell * n as f64;
        r.push(r_lo + 0.5 * bin_width);
        g.push(if ideal > 0.0 { c as f64 / ideal } else { 0.0 });
    }
    Rdf { r, g, bin_width }
}

impl Rdf {
    /// Location of the highest peak (Å) — the nearest-neighbor distance
    /// for a crystal.
    pub fn main_peak(&self) -> f64 {
        let (k, _) = self
            .g
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        self.r[k]
    }
}

/// Mean-squared displacement (Å²) of `now` relative to `reference`.
pub fn msd(reference: &[V3d], now: &[V3d]) -> f64 {
    assert_eq!(reference.len(), now.len());
    assert!(!reference.is_empty());
    reference
        .iter()
        .zip(now)
        .map(|(a, b)| (*b - *a).norm_sq())
        .sum::<f64>()
        / reference.len() as f64
}

/// Largest max-norm in-plane (x, y) displacement — the black curve of
/// Fig. 9.
pub fn max_norm_xy_displacement(reference: &[V3d], now: &[V3d]) -> f64 {
    reference
        .iter()
        .zip(now)
        .map(|(a, b)| (*b - *a).max_norm_xy())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::{Crystal, SlabSpec};

    #[test]
    fn bcc_rdf_peaks_at_the_neighbor_shells() {
        let a = 3.304; // Ta
        let spec = SlabSpec {
            crystal: Crystal::Bcc,
            lattice_a: a,
            nx: 5,
            ny: 5,
            nz: 5,
        };
        let pos = spec.generate();
        let bbox = Box3::periodic(spec.dimensions());
        let r = rdf(&pos, &bbox, 6.0, 240);
        // Main peak at the 1st shell √3/2·a ≈ 2.861 Å.
        let nn = Crystal::Bcc.nearest_neighbor_distance(a);
        assert!((r.main_peak() - nn).abs() < 0.05, "peak {}", r.main_peak());
        // Second shell at a: g must be large there and ~0 between shells.
        let at = |x: f64| r.g[(x / r.bin_width) as usize];
        assert!(at(a) > 3.0, "2nd shell g = {}", at(a));
        assert!(at(0.5 * (nn + a) - 0.02) < 0.3, "between shells");
    }

    #[test]
    fn fcc_rdf_distinguishes_structure() {
        let a = 3.615; // Cu
        let spec = SlabSpec {
            crystal: Crystal::Fcc,
            lattice_a: a,
            nx: 4,
            ny: 4,
            nz: 4,
        };
        let pos = spec.generate();
        let bbox = Box3::periodic(spec.dimensions());
        let r = rdf(&pos, &bbox, 6.0, 240);
        let nn = Crystal::Fcc.nearest_neighbor_distance(a);
        assert!((r.main_peak() - nn).abs() < 0.05);
    }

    #[test]
    fn msd_of_identical_configurations_is_zero() {
        let pos = vec![V3d::new(1.0, 2.0, 3.0); 10];
        assert_eq!(msd(&pos, &pos), 0.0);
    }

    #[test]
    fn msd_of_rigid_translation() {
        let a: Vec<V3d> = (0..20).map(|k| V3d::new(k as f64, 0.0, 0.0)).collect();
        let b: Vec<V3d> = a.iter().map(|p| *p + V3d::new(0.0, 2.0, 0.0)).collect();
        assert!((msd(&a, &b) - 4.0).abs() < 1e-12);
        assert!((max_norm_xy_displacement(&a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn thermal_crystal_rdf_broadens_but_keeps_peaks() {
        use crate::thermostat;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let a = 3.304;
        let spec = SlabSpec {
            crystal: Crystal::Bcc,
            lattice_a: a,
            nx: 4,
            ny: 4,
            nz: 4,
        };
        let mut pos = spec.generate();
        // Gaussian thermal jitter ~0.1 Å.
        let mut rng = StdRng::seed_from_u64(8);
        let jitter = thermostat::maxwell_boltzmann(&mut rng, pos.len(), 1.0, 1.0);
        let scale = 0.1 / jitter.iter().map(|v| v.norm()).fold(0.0, f64::max);
        for (p, j) in pos.iter_mut().zip(&jitter) {
            *p += j.scale(scale);
        }
        let bbox = Box3::periodic(spec.dimensions());
        let r = rdf(&pos, &bbox, 6.0, 120);
        let nn = Crystal::Bcc.nearest_neighbor_distance(a);
        assert!((r.main_peak() - nn).abs() < 0.15, "peak {}", r.main_peak());
    }
}
