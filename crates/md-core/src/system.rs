//! Simulation box, boundary conditions, and the reference-precision
//! atom container.
//!
//! The paper's benchmark slabs use *open* (non-periodic) boundaries so
//! grain-boundary atoms can migrate in and out at the edges; Sec. V-F
//! additionally evaluates periodic boundary conditions. [`Box3`] supports
//! per-dimension periodicity and provides the minimum-image displacement
//! used by every force evaluator.

use crate::eam::EamPotential;
use crate::lattice::SlabSpec;
use crate::materials::{Material, Species};
use crate::soa::{AtomsView, ParticleStore};
use crate::units;
use crate::vec3::V3d;

/// An axis-aligned simulation region with per-dimension periodicity.
#[derive(Clone, Copy, Debug)]
pub struct Box3 {
    /// Edge lengths (Å). Must be positive in periodic dimensions.
    pub lengths: V3d,
    /// Which dimensions wrap around.
    pub periodic: [bool; 3],
}

impl Box3 {
    /// Fully open boundaries (the paper's thin-slab configuration).
    pub fn open(lengths: V3d) -> Self {
        Self {
            lengths,
            periodic: [false; 3],
        }
    }

    /// Fully periodic boundaries.
    pub fn periodic(lengths: V3d) -> Self {
        Self {
            lengths,
            periodic: [true; 3],
        }
    }

    /// Periodic in selected dimensions only.
    pub fn with_periodicity(lengths: V3d, periodic: [bool; 3]) -> Self {
        Self { lengths, periodic }
    }

    /// Minimum-image displacement `r_b − r_a`.
    #[inline]
    pub fn displacement(&self, a: V3d, b: V3d) -> V3d {
        let mut d = b - a;
        let l = self.lengths.to_array();
        let mut da = d.to_array();
        for k in 0..3 {
            if self.periodic[k] && l[k] > 0.0 {
                da[k] -= l[k] * (da[k] / l[k]).round();
            }
        }
        d = V3d::from_array(da);
        d
    }

    /// Wrap a position into the primary cell along periodic dimensions.
    #[inline]
    pub fn wrap(&self, p: V3d) -> V3d {
        let mut pa = p.to_array();
        let l = self.lengths.to_array();
        for k in 0..3 {
            if self.periodic[k] && l[k] > 0.0 {
                pa[k] = pa[k].rem_euclid(l[k]);
            }
        }
        V3d::from_array(pa)
    }

    pub fn volume(&self) -> f64 {
        self.lengths.x * self.lengths.y * self.lengths.z
    }
}

/// The f64 reference simulation state: one species, structure-of-arrays
/// storage ([`ParticleStore`] columns).
#[derive(Clone, Debug)]
pub struct System {
    pub material: Material,
    pub potential: EamPotential<f64>,
    pub bbox: Box3,
    /// Per-atom columns: positions, velocities, forces, species.
    pub atoms: ParticleStore,
}

impl System {
    /// Build a system from a slab specification with open boundaries and
    /// zero velocities.
    pub fn from_slab(species: Species, spec: SlabSpec) -> Self {
        let material = Material::new(species);
        let potential = material.potential();
        let positions = spec.generate();
        // Pad the open box slightly beyond the outermost atoms.
        let dims = spec.dimensions();
        Self {
            material,
            potential,
            bbox: Box3::open(dims),
            atoms: ParticleStore::from_positions(species, &positions),
        }
    }

    /// Build from explicit positions (e.g. a grain-boundary bicrystal).
    pub fn from_positions(species: Species, positions: Vec<V3d>, bbox: Box3) -> Self {
        let material = Material::new(species);
        let potential = material.potential();
        Self {
            material,
            potential,
            bbox,
            atoms: ParticleStore::from_positions(species, &positions),
        }
    }

    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Zero-copy view of the position columns.
    pub fn positions(&self) -> AtomsView<'_> {
        self.atoms.positions()
    }

    /// Zero-copy view of the velocity columns.
    pub fn velocities(&self) -> AtomsView<'_> {
        self.atoms.velocities()
    }

    /// Overwrite every velocity from an array-of-structs slice.
    pub fn set_velocities(&mut self, velocities: &[V3d]) {
        self.atoms.set_velocities(velocities);
    }

    /// Total kinetic energy (eV).
    pub fn kinetic_energy(&self) -> f64 {
        let m = self.material.mass;
        0.5 * m
            * units::MVV_TO_ENERGY
            * self
                .atoms
                .velocities()
                .iter()
                .map(|v| v.norm_sq())
                .sum::<f64>()
    }

    /// Instantaneous temperature (K).
    pub fn temperature(&self) -> f64 {
        units::temperature_from_ke(self.kinetic_energy(), self.len())
    }

    /// Net momentum (amu·Å/ps) — conserved by leapfrog integration.
    pub fn net_momentum(&self) -> V3d {
        self.atoms
            .velocities()
            .iter()
            .sum::<V3d>()
            .scale(self.material.mass)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Crystal;

    #[test]
    fn open_box_displacement_is_plain_subtraction() {
        let b = Box3::open(V3d::new(10.0, 10.0, 10.0));
        let d = b.displacement(V3d::new(1.0, 1.0, 1.0), V3d::new(9.0, 9.0, 9.0));
        assert_eq!(d, V3d::new(8.0, 8.0, 8.0));
    }

    #[test]
    fn periodic_box_uses_minimum_image() {
        let b = Box3::periodic(V3d::new(10.0, 10.0, 10.0));
        let d = b.displacement(V3d::new(1.0, 0.0, 0.0), V3d::new(9.0, 0.0, 0.0));
        assert_eq!(d, V3d::new(-2.0, 0.0, 0.0));
        // Exactly half the box maps to ±L/2.
        let d = b.displacement(V3d::new(0.0, 0.0, 0.0), V3d::new(5.0, 0.0, 0.0));
        assert_eq!(d.norm(), 5.0);
    }

    #[test]
    fn mixed_periodicity_wraps_only_selected_axes() {
        let b = Box3::with_periodicity(V3d::new(10.0, 10.0, 10.0), [true, false, false]);
        let d = b.displacement(V3d::new(1.0, 1.0, 1.0), V3d::new(9.5, 9.5, 9.5));
        assert!((d.x - -1.5).abs() < 1e-12);
        assert!((d.y - 8.5).abs() < 1e-12);
    }

    #[test]
    fn wrap_maps_into_primary_cell() {
        let b = Box3::periodic(V3d::new(4.0, 4.0, 4.0));
        let w = b.wrap(V3d::new(-1.0, 5.5, 3.0));
        assert_eq!(w, V3d::new(3.0, 1.5, 3.0));
        let open = Box3::open(V3d::new(4.0, 4.0, 4.0));
        assert_eq!(
            open.wrap(V3d::new(-1.0, 5.5, 3.0)),
            V3d::new(-1.0, 5.5, 3.0)
        );
    }

    #[test]
    fn system_from_slab_has_expected_count_and_zero_temperature() {
        let spec = SlabSpec {
            crystal: Crystal::Bcc,
            lattice_a: 3.304,
            nx: 3,
            ny: 3,
            nz: 2,
        };
        let sys = System::from_slab(Species::Ta, spec);
        assert_eq!(sys.len(), 36);
        assert_eq!(sys.temperature(), 0.0);
        assert_eq!(sys.net_momentum(), V3d::zero());
    }

    #[test]
    fn kinetic_energy_matches_hand_computation() {
        let spec = SlabSpec {
            crystal: Crystal::Fcc,
            lattice_a: 3.615,
            nx: 1,
            ny: 1,
            nz: 1,
        };
        let mut sys = System::from_slab(Species::Cu, spec);
        sys.atoms.set_velocity(0, V3d::new(2.0, 0.0, 0.0));
        let expected = 0.5 * 63.546 * 4.0 * units::MVV_TO_ENERGY;
        assert!((sys.kinetic_energy() - expected).abs() < 1e-12);
    }
}
