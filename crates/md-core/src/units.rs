//! Metal units, physical constants, and conversion factors.
//!
//! The whole workspace uses LAMMPS-style *metal* units:
//!
//! | quantity    | unit            |
//! |-------------|-----------------|
//! | distance    | Ångström (Å)    |
//! | time        | picosecond (ps) |
//! | energy      | electron-volt (eV) |
//! | mass        | atomic mass unit (g/mol) |
//! | temperature | Kelvin (K)      |
//! | force       | eV/Å            |
//! | velocity    | Å/ps            |
//!
//! These are the units used by the LAMMPS EAM reference runs in the paper,
//! so trajectories and energies are directly comparable.

/// Boltzmann constant in eV/K.
pub const KB: f64 = 8.617_333_262e-5;

/// Conversion factor: force (eV/Å) divided by mass (amu) to acceleration
/// (Å/ps²). `a = F / m * FORCE_TO_ACCEL`.
///
/// Derivation: `1 eV/Å / 1 amu = 1.602e-19 J / 1e-10 m / 1.6605e-27 kg
/// = 9.6485e17 m/s² = 9648.53 Å/ps²`.
pub const FORCE_TO_ACCEL: f64 = 9.648_533_212e3;

/// Conversion factor: `m v²` in (amu · Å²/ps²) to energy in eV.
/// `KE = 0.5 * m * v² * MVV_TO_ENERGY`.
pub const MVV_TO_ENERGY: f64 = 1.036_426_965e-4;

/// One femtosecond expressed in picoseconds (the paper's timesteps are
/// quoted in femtoseconds; internally we keep picoseconds).
pub const FEMTOSECOND: f64 = 1e-3;

/// The paper's production timestep: 2 fs, in ps.
pub const PAPER_TIMESTEP: f64 = 2.0 * FEMTOSECOND;

/// The paper's equilibration temperature in Kelvin.
pub const PAPER_TEMPERATURE: f64 = 290.0;

/// Instantaneous temperature of `n` atoms with total kinetic energy
/// `ke` (eV), using the equipartition theorem `KE = (3/2) N kB T`.
#[inline]
pub fn temperature_from_ke(ke: f64, n_atoms: usize) -> f64 {
    if n_atoms == 0 {
        return 0.0;
    }
    2.0 * ke / (3.0 * n_atoms as f64 * KB)
}

/// Kinetic energy (eV) corresponding to temperature `t` (K) for `n` atoms.
#[inline]
pub fn ke_from_temperature(t: f64, n_atoms: usize) -> f64 {
    1.5 * n_atoms as f64 * KB * t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceleration_conversion_round_trip() {
        // 1 eV/Å acting on 1 amu for 1 ps reaches 9648.5 Å/ps.
        let accel = 1.0 / 1.0 * FORCE_TO_ACCEL;
        assert!((accel - 9648.533212).abs() < 1e-3);
    }

    #[test]
    fn kinetic_energy_conversion_is_consistent_with_accel() {
        // Work-energy theorem: constant force F over distance d gives
        // KE = F*d. Integrate numerically and compare against MVV_TO_ENERGY.
        let f = 0.75; // eV/Å
        let m = 63.546; // Cu, amu
        let dt = 1e-6; // ps
        let (mut x, mut v) = (0.0f64, 0.0f64);
        for _ in 0..1_000_000 {
            v += f / m * FORCE_TO_ACCEL * dt;
            x += v * dt;
        }
        let ke = 0.5 * m * v * v * MVV_TO_ENERGY;
        let work = f * x;
        assert!((ke - work).abs() / work < 1e-3, "ke={ke} work={work}");
    }

    #[test]
    fn temperature_round_trip() {
        let ke = ke_from_temperature(290.0, 1000);
        let t = temperature_from_ke(ke, 1000);
        assert!((t - 290.0).abs() < 1e-9);
    }

    #[test]
    fn temperature_of_empty_system_is_zero() {
        assert_eq!(temperature_from_ke(1.0, 0), 0.0);
    }
}
