//! Grain-boundary bicrystal generation.
//!
//! Grain boundaries — regions where crystal lattices of different
//! orientation meet (paper Fig. 2) — are the motivating application: the
//! Fig. 9 experiment follows atoms diffusing around a boundary to test
//! the online atom-swap remapping. This module builds a thin-slab
//! bicrystal: two grains rotated about the z-axis by different angles,
//! meeting at a y = L_y/2 interface, with overlapping interface atoms
//! pruned.

use crate::lattice::Crystal;
use crate::vec3::V3d;

/// Specification of a two-grain thin slab.
#[derive(Clone, Copy, Debug)]
pub struct GrainBoundarySpec {
    pub crystal: Crystal,
    /// Lattice constant (Å).
    pub lattice_a: f64,
    /// Slab extent (Å) in x, y, z.
    pub size: V3d,
    /// In-plane rotation of the lower grain (radians).
    pub theta_lower: f64,
    /// In-plane rotation of the upper grain (radians).
    pub theta_upper: f64,
    /// Minimum allowed interatomic distance at the interface; pairs
    /// closer than this have one member removed. A typical choice is
    /// 0.7 × nearest-neighbor distance.
    pub min_separation: f64,
}

impl GrainBoundarySpec {
    /// A tungsten-like default matching the scale of the paper's Fig. 9
    /// run (62,500 cores for 61,600 atoms at full scale; callers pick the
    /// actual size).
    pub fn tungsten_like(size: V3d) -> Self {
        Self {
            crystal: Crystal::Bcc,
            lattice_a: 3.165,
            size,
            theta_lower: 0.0,
            theta_upper: 23.0_f64.to_radians(),
            min_separation: 0.7 * Crystal::Bcc.nearest_neighbor_distance(3.165),
        }
    }

    /// Generate the bicrystal. The lower grain fills y < L_y/2, the upper
    /// grain y ≥ L_y/2; both are rotated about the slab center.
    pub fn generate(&self) -> Vec<V3d> {
        let mut atoms = Vec::new();
        let half_y = self.size.y / 2.0;
        let center = V3d::new(self.size.x / 2.0, self.size.y / 2.0, 0.0);

        for (theta, lower) in [(self.theta_lower, true), (self.theta_upper, false)] {
            let (s, c) = theta.sin_cos();
            // Generate a lattice patch large enough to cover the slab
            // after rotation, then clip to this grain's half.
            let a = self.lattice_a;
            let reach = (self.size.x.hypot(self.size.y)) / 2.0 + 2.0 * a;
            let m = (reach / a).ceil() as i64 + 1;
            let nz = (self.size.z / a).ceil() as i64;
            for i in -m..=m {
                for j in -m..=m {
                    for k in 0..nz.max(1) {
                        for b in self.crystal.basis() {
                            let x0 = (i as f64 + b[0]) * a;
                            let y0 = (j as f64 + b[1]) * a;
                            let z = (k as f64 + b[2]) * a;
                            if z >= self.size.z {
                                continue;
                            }
                            // Rotate about the slab center in-plane.
                            let p =
                                V3d::new(c * x0 - s * y0 + center.x, s * x0 + c * y0 + center.y, z);
                            let in_slab =
                                p.x >= 0.0 && p.x < self.size.x && p.y >= 0.0 && p.y < self.size.y;
                            let in_grain = if lower { p.y < half_y } else { p.y >= half_y };
                            if in_slab && in_grain {
                                atoms.push(p);
                            }
                        }
                    }
                }
            }
        }

        prune_overlaps(atoms, self.min_separation, half_y)
    }
}

/// Remove one atom from every interface pair closer than `min_sep`.
/// Only atoms within a band around the interface need checking, which
/// keeps this O(band²) instead of O(N²).
fn prune_overlaps(atoms: Vec<V3d>, min_sep: f64, interface_y: f64) -> Vec<V3d> {
    let band = 2.0 * min_sep;
    let min_sep2 = min_sep * min_sep;
    let near: Vec<usize> = (0..atoms.len())
        .filter(|&i| (atoms[i].y - interface_y).abs() < band)
        .collect();
    let mut dead = vec![false; atoms.len()];
    for (ai, &i) in near.iter().enumerate() {
        if dead[i] {
            continue;
        }
        for &j in &near[ai + 1..] {
            if dead[j] {
                continue;
            }
            if (atoms[i] - atoms[j]).norm_sq() < min_sep2 {
                dead[j] = true;
            }
        }
    }
    atoms
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !dead[*i])
        .map(|(_, p)| p)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> GrainBoundarySpec {
        GrainBoundarySpec::tungsten_like(V3d::new(40.0, 40.0, 6.4))
    }

    #[test]
    fn bicrystal_has_no_close_pairs() {
        let atoms = spec().generate();
        assert!(atoms.len() > 400, "got only {} atoms", atoms.len());
        let min_sep = spec().min_separation;
        for i in 0..atoms.len() {
            for j in (i + 1)..atoms.len() {
                let d = (atoms[i] - atoms[j]).norm();
                assert!(
                    d >= min_sep * 0.999,
                    "atoms {i},{j} at distance {d} < {min_sep}"
                );
            }
        }
    }

    #[test]
    fn atoms_lie_inside_the_slab() {
        let s = spec();
        for p in s.generate() {
            assert!(p.x >= 0.0 && p.x < s.size.x);
            assert!(p.y >= 0.0 && p.y < s.size.y);
            assert!(p.z >= 0.0 && p.z < s.size.z);
        }
    }

    #[test]
    fn grains_have_different_orientations() {
        // The nearest-neighbor bond directions in the lower and upper
        // grains should differ by the misorientation angle. Test proxy:
        // both halves are populated with comparable densities.
        let s = spec();
        let atoms = s.generate();
        let lower = atoms.iter().filter(|p| p.y < s.size.y / 2.0).count();
        let upper = atoms.len() - lower;
        let ratio = lower as f64 / upper as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "grain populations unbalanced: {lower} vs {upper}"
        );
    }

    #[test]
    fn zero_misorientation_reproduces_single_crystal_density() {
        // Use a z-extent commensurate with the lattice so the density
        // formula (2 atoms per a³ cell) applies without clipping bias.
        let a = 3.165;
        let mut s = GrainBoundarySpec::tungsten_like(V3d::new(40.0, 40.0, 2.0 * a));
        s.theta_upper = 0.0;
        let atoms = s.generate();
        let expected = 2.0 * (s.size.x / a) * (s.size.y / a) * (s.size.z / a);
        let n = atoms.len() as f64;
        assert!(
            (n / expected - 1.0).abs() < 0.15,
            "count {n} vs expected {expected}"
        );
    }

    #[test]
    fn misoriented_boundary_prunes_some_atoms() {
        // The rotated interface must have had at least one overlap pruned
        // (otherwise the generator isn't actually creating a boundary).
        let s = spec();
        let atoms = s.generate();
        let mut s0 = s;
        s0.theta_upper = s0.theta_lower;
        let single = s0.generate();
        assert!(
            atoms.len() != single.len(),
            "bicrystal and single crystal have identical counts"
        );
    }
}
