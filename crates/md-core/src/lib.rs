//! # md-core — molecular-dynamics substrate
//!
//! The physics foundation shared by every engine in the wafer-md
//! workspace: EAM potentials on cubic-spline tables, calibrated Cu/W/Ta
//! parameterizations, crystal lattices and grain-boundary bicrystals,
//! Verlet leap-frog integration, thermostats, and cell/Verlet neighbor
//! lists.
//!
//! Reproduces the MD formulation of *Breaking the Molecular Dynamics
//! Timescale Barrier Using a Wafer-Scale System* (SC 2024), Secs. II-A
//! and IV-B. Both the LAMMPS-like reference engine (`md-baseline`) and
//! the wafer-scale mapping (`wse-md`) build on these types, so the two
//! performance worlds share one physics implementation — and both
//! implement the unified [`engine::Engine`] trait, so drivers compare
//! them through one interface.

pub mod analysis;
pub mod eam;
pub mod engine;
pub mod grain;
pub mod integrate;
pub mod lattice;
pub mod materials;
pub mod neighbor;
pub mod setfl;
pub mod soa;
pub mod spline;
pub mod system;
pub mod thermostat;
pub mod units;
pub mod vec3;

pub use eam::{EamOutput, EamPotential};
pub use engine::{Engine, Observables};
pub use lattice::{Crystal, SlabSpec};
pub use materials::{Material, Species};
pub use soa::{AtomsView, ParticleStore, PositionSource};
pub use system::{Box3, System};
pub use vec3::{Real, V3d, V3f, Vec3};
