//! The unified engine abstraction shared by every MD backend.
//!
//! The paper's evaluation repeatedly runs *the same workload* on two
//! implementations — the LAMMPS-style f64 reference (`md-baseline`) and
//! the one-atom-per-core wafer engine (`wse-md`) — and compares their
//! observables. [`Engine`] is the seam that makes that comparison
//! first-class: both backends implement it, so drivers (the `wafer-md`
//! scenario registry, examples, experiment tests) can be written once
//! against `dyn Engine` and switched between backends with a flag.
//!
//! The contract is deliberately small: advance time ([`Engine::step`] /
//! [`Engine::run`]), expose per-atom state in **atom-id order and f64**
//! as zero-copy structure-of-arrays views ([`AtomsView`]) regardless of
//! internal layout or precision, and report an [`Observables`] snapshot.
//! Cost-model quantities (cycles, modeled timesteps/s) are optional —
//! only engines simulating instrumented hardware provide them.
//!
//! # Example
//!
//! A toy engine showing the contract end to end — per-atom state lives
//! in column vectors and the accessors lend them out without cloning:
//!
//! ```
//! use md_core::engine::{Engine, Observables};
//! use md_core::soa::AtomsView;
//! use md_core::vec3::V3d;
//!
//! /// Free particles drifting at constant velocity, stored as columns.
//! struct Drift {
//!     px: Vec<f64>,
//!     py: Vec<f64>,
//!     pz: Vec<f64>,
//!     vx: Vec<f64>,
//!     vy: Vec<f64>,
//!     vz: Vec<f64>,
//!     zeros: Vec<f64>,
//! }
//!
//! impl Engine for Drift {
//!     fn backend(&self) -> &'static str {
//!         "drift"
//!     }
//!     fn n_atoms(&self) -> usize {
//!         self.px.len()
//!     }
//!     fn step(&mut self) {
//!         for i in 0..self.px.len() {
//!             self.px[i] += self.vx[i];
//!             self.py[i] += self.vy[i];
//!             self.pz[i] += self.vz[i];
//!         }
//!     }
//!     fn positions_view(&self) -> AtomsView<'_> {
//!         AtomsView::new(&self.px, &self.py, &self.pz)
//!     }
//!     fn velocities_view(&self) -> AtomsView<'_> {
//!         AtomsView::new(&self.vx, &self.vy, &self.vz)
//!     }
//!     fn forces_view(&self) -> AtomsView<'_> {
//!         AtomsView::new(&self.zeros, &self.zeros, &self.zeros)
//!     }
//!     fn set_velocities(&mut self, v: &[V3d]) {
//!         for (i, v) in v.iter().enumerate() {
//!             self.vx[i] = v.x;
//!             self.vy[i] = v.y;
//!             self.vz[i] = v.z;
//!         }
//!     }
//!     fn observables(&self) -> Observables {
//!         Observables::default()
//!     }
//! }
//!
//! // Drivers are written once, against the trait.
//! fn advance(engine: &mut dyn Engine, steps: usize) -> Vec<V3d> {
//!     engine.run(steps);
//!     engine.positions_view().to_vec()
//! }
//!
//! let mut e = Drift {
//!     px: vec![0.0],
//!     py: vec![0.0],
//!     pz: vec![0.0],
//!     vx: vec![1.0],
//!     vy: vec![0.0],
//!     vz: vec![0.0],
//!     zeros: vec![0.0],
//! };
//! assert_eq!(advance(&mut e, 3)[0], V3d::new(3.0, 0.0, 0.0));
//! ```

use crate::soa::AtomsView;
use crate::units;
use crate::vec3::V3d;

/// A uniform snapshot of what every backend can report after a step.
///
/// Physics fields are always populated; the `modeled_*` fields are
/// `None` for backends without a hardware cost model (the f64 reference
/// engine) and `Some` for the wafer engine, whose simulator charges
/// every core cycles from the calibrated per-phase model.
#[derive(Clone, Copy, Debug, Default)]
pub struct Observables {
    /// Total potential energy (eV).
    pub potential_energy: f64,
    /// Total kinetic energy (eV).
    pub kinetic_energy: f64,
    /// Instantaneous temperature (K), derived from the kinetic energy.
    pub temperature: f64,
    /// Mean accepted interactions per atom (the paper's n_interaction).
    pub mean_interactions: f64,
    /// Mean examined neighbor candidates per atom (the paper's
    /// n_candidate): atoms whose distance was tested before the cutoff
    /// filter — neighborhood-square occupants on the wafer, Verlet-list
    /// entries (cutoff + skin) on the reference engine.
    pub mean_candidates: f64,
    /// Modeled array-level cycles charged for the last step, if the
    /// backend has a cost model.
    pub modeled_cycles: Option<f64>,
    /// Modeled simulation rate (timesteps/s) over the recent cycle
    /// trace, if the backend has a cost model.
    pub modeled_rate: Option<f64>,
}

impl Observables {
    /// Total energy (eV): potential + kinetic.
    pub fn total_energy(&self) -> f64 {
        self.potential_energy + self.kinetic_energy
    }

    /// Populate the temperature field from a kinetic energy and atom
    /// count (helper for backend implementations).
    pub fn with_temperature_from(mut self, kinetic_energy: f64, n_atoms: usize) -> Self {
        self.kinetic_energy = kinetic_energy;
        self.temperature = units::temperature_from_ke(kinetic_energy, n_atoms);
        self
    }
}

/// Monotonic whole-run execution counters reported through
/// [`Engine::run_counters`].
///
/// Unlike [`Observables`] (a physics snapshot after the last step),
/// these describe the *execution*: how many steps have been advanced
/// and, for sharded drivers, how the ghost-exchange schedule played
/// out. The scenario server publishes them per job, and they feed the
/// Table VI reconciliation (measured exchanges vs the period model).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunCounters {
    /// Timesteps advanced since construction.
    pub steps: u64,
    /// Ghost exchanges performed (sharded drivers; 0 otherwise).
    pub exchanges: u64,
    /// Exchanges forced early by the skin-validity check (sharded
    /// drivers; 0 otherwise).
    pub early_exchanges: u64,
}

/// A molecular-dynamics backend that can advance a trajectory and
/// report uniform observables.
///
/// Implemented by `md_baseline::BaselineEngine` (f64 reference) and
/// `wse_md::WseMdSim` (one atom per core on the simulated wafer).
/// Per-atom accessors lend out state in **atom-id order** as f64
/// structure-of-arrays views ([`AtomsView`]), independent of the
/// backend's internal storage (the wafer engine stores f32 state per
/// *core* and maintains atom-ordered f64 mirror columns behind the
/// views).
///
/// Determinism: both workspace backends run their hot loops on the
/// chunk-deterministic worker pool, so for a fixed backend every method
/// here returns bit-identical results at any `WAFER_MD_THREADS`.
pub trait Engine {
    /// Short stable backend identifier (`"baseline"`, `"wse"`), used in
    /// scenario output headers and CLI `--engine` matching.
    fn backend(&self) -> &'static str;

    /// Number of atoms in the simulation.
    fn n_atoms(&self) -> usize;

    /// Advance one timestep.
    fn step(&mut self);

    /// Advance `n` timesteps.
    fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Positions (Å) in atom-id order, as a zero-copy column view.
    fn positions_view(&self) -> AtomsView<'_>;

    /// Velocities (Å/ps) in atom-id order, as a zero-copy column view.
    fn velocities_view(&self) -> AtomsView<'_>;

    /// Forces (eV/Å) from the last evaluation, atom-id order, as a
    /// zero-copy column view.
    fn forces_view(&self) -> AtomsView<'_>;

    /// Overwrite velocities (Å/ps), atom-id order. Thermostats are
    /// driven through this: rescale a copy of
    /// [`Engine::velocities_view`] and write it back.
    fn set_velocities(&mut self, velocities: &[V3d]);

    /// Monotonic whole-run counters: steps advanced and (for sharded
    /// drivers) the ghost-exchange schedule. Backends that do not track
    /// a counter report it as zero; the default reports all zeros.
    /// Deterministic — counters derive from the execution schedule,
    /// which is itself a pure function of the workload — so they are
    /// safe to publish in byte-diffed artifacts.
    fn run_counters(&self) -> RunCounters {
        RunCounters::default()
    }

    /// Per-shard `(integrate, exchange)` wall-clock nanoseconds
    /// accumulated over the run, for sharded drivers that time their
    /// phases; `None` (the default) for everything else.
    ///
    /// **Wall clock, not physics.** Unlike [`Engine::run_counters`],
    /// these values vary run to run and across hosts, so they are
    /// observability-only: safe for `/stats`, traces, and stderr
    /// summaries, never for any byte-diffed artifact.
    fn shard_phase_nanos(&self) -> Option<Vec<(u64, u64)>> {
        None
    }

    /// Uniform observables after the last completed step.
    fn observables(&self) -> Observables;

    /// Total energy (eV) after the last completed step.
    fn total_energy(&self) -> f64 {
        self.observables().total_energy()
    }
}

/// Where a backend's timestep splits around the halo-exchange point of
/// a sharded (ghost-region) run.
///
/// A spatially sharded driver must refresh every shard's ghost atoms
/// between the moment positions change and the moment forces are
/// evaluated from them. The two workspace backends order those moments
/// differently inside one `step()`, so the driver asks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepSplit {
    /// `step()` first integrates with the stored forces, then evaluates
    /// new forces at the new positions (the reference engine): exchange
    /// ghosts *between* [`HaloEngine::advance_positions`] and
    /// [`HaloEngine::refresh_forces`].
    MoveThenForce,
    /// `step()` first evaluates forces at the current positions, then
    /// integrates (the wafer engine): exchange ghosts *after*
    /// [`HaloEngine::advance_positions`], ready for the next refresh.
    ForceThenMove,
}

/// Halo support: the contract a backend adds to [`Engine`] so a sharded
/// driver can run it as one spatial shard of a larger simulation and
/// merge per-atom results **bit-identically** with the unsharded run.
///
/// Four capabilities make that possible:
///
/// 1. **A split timestep.** `step()` must be exactly equivalent to its
///    two halves called in [`StepSplit`] order, so the driver can
///    overwrite ghost-atom state at the point where the unsharded
///    engine would simply have read its own (already-current) atoms.
/// 2. **Ghost overwrite.** [`HaloEngine::overwrite_atom`] replaces one
///    atom's phase-space state in place; the shard's ghost copies are
///    refreshed from the owning shard at every ghost exchange.
/// 3. **Canonical per-atom accounting.** Every scalar an [`Observables`]
///    reports must be reproducible as a left-to-right fold of per-atom
///    terms in **atom-id order**. Both workspace backends compute their
///    own observables through exactly these folds, so a driver that
///    gathers per-atom terms from shard owners and folds them in global
///    atom-id order reproduces the unsharded bits — for any shard count
///    and any `WAFER_MD_THREADS`.
/// 4. **Skin-validity tracking.** A driver that amortizes the exchange
///    over several steps (the paper's Table VI k-column) keeps ghost
///    *membership* fixed between exchanges while every hosted atom
///    integrates locally. That is valid only while atoms stay close to
///    where they were when membership was computed, so the backend
///    reports the max squared displacement since the last exchange
///    ([`HaloEngine::halo_drift_sq`], referenced by
///    [`HaloEngine::mark_halo_reference`]) and the threshold beyond
///    which the membership may no longer cover its force neighborhoods
///    ([`HaloEngine::halo_drift_limit_sq`]) — for the reference engine
///    the same half-skin criterion its Verlet lists use for reuse.
///
/// Atoms an engine hosts but does not own (ghosts) return garbage in
/// the per-atom accessors near the halo's outer edge; the driver only
/// ever reads an atom's terms from its owner.
pub trait HaloEngine: Engine {
    /// Which half of [`Engine::step`] runs first in this backend.
    fn step_split(&self) -> StepSplit;

    /// Integrate positions/velocities from the last force evaluation
    /// (no force work). One half of [`Engine::step`].
    fn advance_positions(&mut self);

    /// Recompute forces, energies, and neighbor counters at the current
    /// positions (no motion). The other half of [`Engine::step`].
    fn refresh_forces(&mut self);

    /// Overwrite one atom's position and velocity (Å, Å/ps; atom-id
    /// indexing) — the ghost-refresh primitive. Does not recompute
    /// forces or observables.
    fn overwrite_atom(&mut self, atom: usize, position: V3d, velocity: V3d);

    /// Per-atom potential-energy terms (eV) from the last force
    /// evaluation, atom-id order, borrowed from the backend's own
    /// storage (no allocation on the gather path). Folding them
    /// left-to-right reproduces [`Observables::potential_energy`]
    /// bit-for-bit.
    fn per_atom_potential_energies(&self) -> &[f64];

    /// Per-atom squared speeds `|v|²` ((Å/ps)²), atom-id order, in the
    /// exact precision path of the backend's own kinetic-energy sum:
    /// `0.5 · m · MVV_TO_ENERGY · fold` reproduces the backend's
    /// kinetic energy bit-for-bit. Borrowed from a cache the backend
    /// refreshes whenever velocities change (integration, ghost
    /// overwrite, thermostat write-back).
    fn per_atom_squared_speeds(&self) -> &[f64];

    /// Per-atom `(candidates, interactions)` counters from the last
    /// force evaluation, atom-id order. Integer totals divided by the
    /// atom count reproduce the mean fields of [`Observables`].
    /// Diagnostic-path only (allocating is fine here).
    fn per_atom_counts(&self) -> Vec<(u32, u32)>;

    /// Per-atom modeled cycle charges from the last force evaluation,
    /// atom-id order, if the backend has a hardware cost model.
    /// Folding them left-to-right and dividing by the atom count
    /// reproduces [`Observables::modeled_cycles`].
    fn per_atom_modeled_cycles(&self) -> Option<&[f64]>;

    /// Squared drift threshold (Å²) beyond which ghost membership
    /// computed at the last halo reference may no longer cover this
    /// engine's force neighborhoods. The reference engine returns
    /// `(skin/2)²` — the very criterion its Verlet lists use for list
    /// reuse; the wafer engine returns `f64::INFINITY` because its
    /// candidate sets are core-geometric (atoms never change cores
    /// under sharding), so membership never decays with drift.
    fn halo_drift_limit_sq(&self) -> f64;

    /// Snapshot the current positions as the halo reference. The
    /// sharded driver calls this right after every ghost exchange (and
    /// the backend's constructor establishes the initial reference).
    fn mark_halo_reference(&mut self);

    /// Max squared displacement (Å², minimum-image where periodic) of
    /// any hosted atom since the last [`HaloEngine::mark_halo_reference`]
    /// call. A pure f64 `max` fold, so the value — and therefore the
    /// driver's exchange schedule — is deterministic at any thread
    /// count.
    fn halo_drift_sq(&self) -> f64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observables_total_energy_sums_components() {
        let o = Observables {
            potential_energy: -3.0,
            kinetic_energy: 1.25,
            ..Default::default()
        };
        assert_eq!(o.total_energy(), -1.75);
    }

    #[test]
    fn temperature_helper_matches_units() {
        let o = Observables::default().with_temperature_from(1.0, 100);
        assert!((o.temperature - units::temperature_from_ke(1.0, 100)).abs() < 1e-12);
        assert_eq!(o.kinetic_energy, 1.0);
    }

    /// The view accessors are the only per-atom surface (the PR 6
    /// deprecated Vec shims are gone), and counters default to zeros
    /// for backends that track none.
    #[test]
    fn views_are_the_only_surface_and_counters_default_to_zero() {
        struct Fixed {
            x: Vec<f64>,
            y: Vec<f64>,
            z: Vec<f64>,
        }
        impl Engine for Fixed {
            fn backend(&self) -> &'static str {
                "fixed"
            }
            fn n_atoms(&self) -> usize {
                self.x.len()
            }
            fn step(&mut self) {}
            fn positions_view(&self) -> AtomsView<'_> {
                AtomsView::new(&self.x, &self.y, &self.z)
            }
            fn velocities_view(&self) -> AtomsView<'_> {
                AtomsView::new(&self.y, &self.z, &self.x)
            }
            fn forces_view(&self) -> AtomsView<'_> {
                AtomsView::new(&self.z, &self.x, &self.y)
            }
            fn set_velocities(&mut self, _velocities: &[V3d]) {}
            fn observables(&self) -> Observables {
                Observables::default()
            }
        }
        let e = Fixed {
            x: vec![1.0, 2.0],
            y: vec![3.0, 4.0],
            z: vec![5.0, 6.0],
        };
        assert_eq!(
            e.velocities_view().to_vec(),
            vec![V3d::new(3.0, 5.0, 1.0), V3d::new(4.0, 6.0, 2.0)]
        );
        assert_eq!(e.run_counters(), RunCounters::default());
    }
}
