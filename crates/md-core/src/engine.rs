//! The unified engine abstraction shared by every MD backend.
//!
//! The paper's evaluation repeatedly runs *the same workload* on two
//! implementations — the LAMMPS-style f64 reference (`md-baseline`) and
//! the one-atom-per-core wafer engine (`wse-md`) — and compares their
//! observables. [`Engine`] is the seam that makes that comparison
//! first-class: both backends implement it, so drivers (the `wafer-md`
//! scenario registry, examples, experiment tests) can be written once
//! against `dyn Engine` and switched between backends with a flag.
//!
//! The contract is deliberately small: advance time ([`Engine::step`] /
//! [`Engine::run`]), expose per-atom state in **atom-id order and f64**
//! regardless of internal layout or precision, and report an
//! [`Observables`] snapshot. Cost-model quantities (cycles, modeled
//! timesteps/s) are optional — only engines simulating instrumented
//! hardware provide them.
//!
//! # Example
//!
//! A toy single-atom engine showing the contract end to end:
//!
//! ```
//! use md_core::engine::{Engine, Observables};
//! use md_core::vec3::V3d;
//!
//! /// A free particle drifting at constant velocity.
//! struct Drift {
//!     pos: V3d,
//!     vel: V3d,
//! }
//!
//! impl Engine for Drift {
//!     fn backend(&self) -> &'static str {
//!         "drift"
//!     }
//!     fn n_atoms(&self) -> usize {
//!         1
//!     }
//!     fn step(&mut self) {
//!         self.pos += self.vel;
//!     }
//!     fn positions(&self) -> Vec<V3d> {
//!         vec![self.pos]
//!     }
//!     fn velocities(&self) -> Vec<V3d> {
//!         vec![self.vel]
//!     }
//!     fn set_velocities(&mut self, v: &[V3d]) {
//!         self.vel = v[0];
//!     }
//!     fn forces(&self) -> Vec<V3d> {
//!         vec![V3d::zero()]
//!     }
//!     fn observables(&self) -> Observables {
//!         Observables::default()
//!     }
//! }
//!
//! // Drivers are written once, against the trait.
//! fn advance(engine: &mut dyn Engine, steps: usize) -> Vec<V3d> {
//!     engine.run(steps);
//!     engine.positions()
//! }
//!
//! let mut e = Drift { pos: V3d::zero(), vel: V3d::new(1.0, 0.0, 0.0) };
//! assert_eq!(advance(&mut e, 3)[0], V3d::new(3.0, 0.0, 0.0));
//! ```

use crate::units;
use crate::vec3::V3d;

/// A uniform snapshot of what every backend can report after a step.
///
/// Physics fields are always populated; the `modeled_*` fields are
/// `None` for backends without a hardware cost model (the f64 reference
/// engine) and `Some` for the wafer engine, whose simulator charges
/// every core cycles from the calibrated per-phase model.
#[derive(Clone, Copy, Debug, Default)]
pub struct Observables {
    /// Total potential energy (eV).
    pub potential_energy: f64,
    /// Total kinetic energy (eV).
    pub kinetic_energy: f64,
    /// Instantaneous temperature (K), derived from the kinetic energy.
    pub temperature: f64,
    /// Mean accepted interactions per atom (the paper's n_interaction).
    pub mean_interactions: f64,
    /// Mean examined neighbor candidates per atom (the paper's
    /// n_candidate): atoms whose distance was tested before the cutoff
    /// filter — neighborhood-square occupants on the wafer, Verlet-list
    /// entries (cutoff + skin) on the reference engine.
    pub mean_candidates: f64,
    /// Modeled array-level cycles charged for the last step, if the
    /// backend has a cost model.
    pub modeled_cycles: Option<f64>,
    /// Modeled simulation rate (timesteps/s) over the recent cycle
    /// trace, if the backend has a cost model.
    pub modeled_rate: Option<f64>,
}

impl Observables {
    /// Total energy (eV): potential + kinetic.
    pub fn total_energy(&self) -> f64 {
        self.potential_energy + self.kinetic_energy
    }

    /// Populate the temperature field from a kinetic energy and atom
    /// count (helper for backend implementations).
    pub fn with_temperature_from(mut self, kinetic_energy: f64, n_atoms: usize) -> Self {
        self.kinetic_energy = kinetic_energy;
        self.temperature = units::temperature_from_ke(kinetic_energy, n_atoms);
        self
    }
}

/// A molecular-dynamics backend that can advance a trajectory and
/// report uniform observables.
///
/// Implemented by `md_baseline::BaselineEngine` (f64 reference) and
/// `wse_md::WseMdSim` (one atom per core on the simulated wafer).
/// Per-atom accessors return state in **atom-id order** as f64 vectors,
/// independent of the backend's internal storage (the wafer engine
/// stores f32 state per *core* and translates through its atom→core
/// mapping).
///
/// Determinism: both workspace backends run their hot loops on the
/// chunk-deterministic worker pool, so for a fixed backend every method
/// here returns bit-identical results at any `WAFER_MD_THREADS`.
pub trait Engine {
    /// Short stable backend identifier (`"baseline"`, `"wse"`), used in
    /// scenario output headers and CLI `--engine` matching.
    fn backend(&self) -> &'static str;

    /// Number of atoms in the simulation.
    fn n_atoms(&self) -> usize;

    /// Advance one timestep.
    fn step(&mut self);

    /// Advance `n` timesteps.
    fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Positions (Å) in atom-id order.
    fn positions(&self) -> Vec<V3d>;

    /// Velocities (Å/ps) in atom-id order.
    fn velocities(&self) -> Vec<V3d>;

    /// Overwrite velocities (Å/ps), atom-id order. Thermostats are
    /// driven through this: rescale the vector returned by
    /// [`Engine::velocities`] and write it back.
    fn set_velocities(&mut self, velocities: &[V3d]);

    /// Forces (eV/Å) from the last evaluation, atom-id order.
    fn forces(&self) -> Vec<V3d>;

    /// Uniform observables after the last completed step.
    fn observables(&self) -> Observables;

    /// Total energy (eV) after the last completed step.
    fn total_energy(&self) -> f64 {
        self.observables().total_energy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observables_total_energy_sums_components() {
        let o = Observables {
            potential_energy: -3.0,
            kinetic_energy: 1.25,
            ..Default::default()
        };
        assert_eq!(o.total_energy(), -1.75);
    }

    #[test]
    fn temperature_helper_matches_units() {
        let o = Observables::default().with_temperature_from(1.0, 100);
        assert!((o.temperature - units::temperature_from_ke(1.0, 100)).abs() < 1e-12);
        assert_eq!(o.kinetic_energy, 1.0);
    }
}
