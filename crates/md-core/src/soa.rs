//! Structure-of-arrays particle storage and zero-copy views.
//!
//! The hot EAM kernels are memory-bound streams over per-atom scalars:
//! spline arguments, accumulated densities, force components. Storing
//! atoms as an array of 3-vectors interleaves the x/y/z streams, which
//! defeats both hardware prefetch and the compiler's vectorizer. This
//! module provides the workspace's canonical layout instead: one
//! contiguous column per component ([`ParticleStore`]), plus a borrowed
//! column view ([`AtomsView`]) that every [`crate::engine::Engine`]
//! accessor hands out without cloning.
//!
//! The layout change is purely mechanical with respect to physics:
//! per-atom arithmetic reads and writes exactly the scalars it read and
//! wrote before, in the same per-atom operation order, so every result
//! is bit-identical to the array-of-structs layout (the CI golden files
//! and the sharded byte-diff matrix are the executable proof).

use crate::materials::Species;
use crate::vec3::V3d;

/// A borrowed structure-of-arrays view of one per-atom vector quantity
/// (positions, velocities, or forces): three column slices in atom-id
/// order.
///
/// This is the zero-copy return type of the [`crate::engine::Engine`]
/// accessors. Columns can be consumed directly (`view.x[i]`), per atom
/// ([`AtomsView::get`]), or through the id-order iteration helper
/// ([`AtomsView::iter`]); [`AtomsView::to_vec`] reconstructs the owned
/// `Vec<V3d>` the deprecated accessors used to return.
#[derive(Clone, Copy, Debug)]
pub struct AtomsView<'a> {
    /// X components, atom-id order.
    pub x: &'a [f64],
    /// Y components, atom-id order.
    pub y: &'a [f64],
    /// Z components, atom-id order.
    pub z: &'a [f64],
}

impl<'a> AtomsView<'a> {
    /// Bundle three equal-length column slices into a view.
    pub fn new(x: &'a [f64], y: &'a [f64], z: &'a [f64]) -> Self {
        debug_assert!(x.len() == y.len() && y.len() == z.len());
        Self { x, y, z }
    }

    /// Number of atoms in the view.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when the view covers no atoms.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// The vector for atom `i`.
    #[inline]
    pub fn get(&self, i: usize) -> V3d {
        V3d::new(self.x[i], self.y[i], self.z[i])
    }

    /// Iterate the vectors in atom-id order.
    pub fn iter(&self) -> impl Iterator<Item = V3d> + '_ {
        let v = *self;
        (0..v.len()).map(move |i| v.get(i))
    }

    /// Collect into an owned array-of-structs vector (the shape the
    /// deprecated `Vec<V3d>` accessors returned).
    pub fn to_vec(&self) -> Vec<V3d> {
        self.iter().collect()
    }
}

/// Read-only access to positions by atom index, unifying array-of-structs
/// slices and [`AtomsView`] columns so the neighbor-list builders accept
/// either layout without copying.
pub trait PositionSource: Sync {
    /// Number of atoms.
    fn len(&self) -> usize;
    /// Position of atom `i`.
    fn get(&self, i: usize) -> V3d;
    /// True when there are no atoms.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl PositionSource for [V3d] {
    fn len(&self) -> usize {
        <[V3d]>::len(self)
    }
    #[inline]
    fn get(&self, i: usize) -> V3d {
        self[i]
    }
}

impl PositionSource for Vec<V3d> {
    fn len(&self) -> usize {
        <[V3d]>::len(self)
    }
    #[inline]
    fn get(&self, i: usize) -> V3d {
        self[i]
    }
}

impl PositionSource for AtomsView<'_> {
    fn len(&self) -> usize {
        AtomsView::len(self)
    }
    #[inline]
    fn get(&self, i: usize) -> V3d {
        AtomsView::get(self, i)
    }
}

/// The structure-of-arrays particle store: separate contiguous
/// x/y/z/species/force/velocity columns.
///
/// All columns have equal length (one entry per atom, atom-id order).
/// The columns are public so kernels can borrow exactly the streams
/// they touch (e.g. mutate force columns while reading positions);
/// code that grows or shrinks the store must keep every column the
/// same length.
#[derive(Clone, Debug, Default)]
pub struct ParticleStore {
    /// Position x column (Å).
    pub x: Vec<f64>,
    /// Position y column (Å).
    pub y: Vec<f64>,
    /// Position z column (Å).
    pub z: Vec<f64>,
    /// Velocity x column (Å/ps).
    pub vx: Vec<f64>,
    /// Velocity y column (Å/ps).
    pub vy: Vec<f64>,
    /// Velocity z column (Å/ps).
    pub vz: Vec<f64>,
    /// Force x column (eV/Å), from the owner's last force evaluation.
    pub fx: Vec<f64>,
    /// Force y column (eV/Å).
    pub fy: Vec<f64>,
    /// Force z column (eV/Å).
    pub fz: Vec<f64>,
    /// Per-atom species tag.
    pub species: Vec<Species>,
}

impl ParticleStore {
    /// Build a store from array-of-structs positions with zero
    /// velocities and forces, tagging every atom with `species`.
    pub fn from_positions(species: Species, positions: &[V3d]) -> Self {
        let n = positions.len();
        let mut s = Self {
            x: Vec::with_capacity(n),
            y: Vec::with_capacity(n),
            z: Vec::with_capacity(n),
            vx: vec![0.0; n],
            vy: vec![0.0; n],
            vz: vec![0.0; n],
            fx: vec![0.0; n],
            fy: vec![0.0; n],
            fz: vec![0.0; n],
            species: vec![species; n],
        };
        for p in positions {
            s.x.push(p.x);
            s.y.push(p.y);
            s.z.push(p.z);
        }
        s
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when the store holds no atoms.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Position of atom `i`.
    #[inline]
    pub fn position(&self, i: usize) -> V3d {
        V3d::new(self.x[i], self.y[i], self.z[i])
    }

    /// Overwrite the position of atom `i`.
    #[inline]
    pub fn set_position(&mut self, i: usize, p: V3d) {
        self.x[i] = p.x;
        self.y[i] = p.y;
        self.z[i] = p.z;
    }

    /// Velocity of atom `i`.
    #[inline]
    pub fn velocity(&self, i: usize) -> V3d {
        V3d::new(self.vx[i], self.vy[i], self.vz[i])
    }

    /// Overwrite the velocity of atom `i`.
    #[inline]
    pub fn set_velocity(&mut self, i: usize, v: V3d) {
        self.vx[i] = v.x;
        self.vy[i] = v.y;
        self.vz[i] = v.z;
    }

    /// Force on atom `i` from the last evaluation.
    #[inline]
    pub fn force(&self, i: usize) -> V3d {
        V3d::new(self.fx[i], self.fy[i], self.fz[i])
    }

    /// Overwrite the force on atom `i`.
    #[inline]
    pub fn set_force(&mut self, i: usize, f: V3d) {
        self.fx[i] = f.x;
        self.fy[i] = f.y;
        self.fz[i] = f.z;
    }

    /// Zero-copy view of the position columns.
    pub fn positions(&self) -> AtomsView<'_> {
        AtomsView::new(&self.x, &self.y, &self.z)
    }

    /// Zero-copy view of the velocity columns.
    pub fn velocities(&self) -> AtomsView<'_> {
        AtomsView::new(&self.vx, &self.vy, &self.vz)
    }

    /// Zero-copy view of the force columns.
    pub fn forces(&self) -> AtomsView<'_> {
        AtomsView::new(&self.fx, &self.fy, &self.fz)
    }

    /// Overwrite every velocity from an array-of-structs slice.
    pub fn set_velocities(&mut self, velocities: &[V3d]) {
        assert_eq!(velocities.len(), self.len());
        for (i, v) in velocities.iter().enumerate() {
            self.vx[i] = v.x;
            self.vy[i] = v.y;
            self.vz[i] = v.z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ParticleStore {
        let pos = [
            V3d::new(1.0, 2.0, 3.0),
            V3d::new(-1.0, 0.5, 0.25),
            V3d::new(4.0, 5.0, 6.0),
        ];
        ParticleStore::from_positions(Species::Ta, &pos)
    }

    #[test]
    fn columns_round_trip_per_atom_vectors() {
        let mut s = store();
        assert_eq!(s.len(), 3);
        assert_eq!(s.position(1), V3d::new(-1.0, 0.5, 0.25));
        assert_eq!(s.velocity(1), V3d::zero());
        assert_eq!(s.species[2], Species::Ta);
        s.set_velocity(2, V3d::new(7.0, 8.0, 9.0));
        assert_eq!(s.velocity(2), V3d::new(7.0, 8.0, 9.0));
        s.set_force(0, V3d::new(0.5, -0.5, 1.5));
        assert_eq!(s.force(0), V3d::new(0.5, -0.5, 1.5));
        s.set_position(0, V3d::new(9.0, 9.0, 9.0));
        assert_eq!(s.x[0], 9.0);
    }

    #[test]
    fn views_iterate_in_atom_id_order() {
        let s = store();
        let v = s.positions();
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        let collected = v.to_vec();
        assert_eq!(collected[0], V3d::new(1.0, 2.0, 3.0));
        assert_eq!(collected[2], V3d::new(4.0, 5.0, 6.0));
        assert_eq!(v.iter().count(), 3);
        assert_eq!(v.get(2), V3d::new(4.0, 5.0, 6.0));
    }

    #[test]
    fn position_source_unifies_both_layouts() {
        let s = store();
        let aos: Vec<V3d> = s.positions().to_vec();
        let view = s.positions();
        for i in 0..s.len() {
            assert_eq!(PositionSource::get(&aos, i), PositionSource::get(&view, i));
        }
        assert_eq!(PositionSource::len(&aos), PositionSource::len(&view));
        assert!(!PositionSource::is_empty(&view));
    }

    #[test]
    fn set_velocities_overwrites_all_columns() {
        let mut s = store();
        let vels = [
            V3d::new(1.0, 0.0, 0.0),
            V3d::new(0.0, 2.0, 0.0),
            V3d::new(0.0, 0.0, 3.0),
        ];
        s.set_velocities(&vels);
        assert_eq!(s.vx, vec![1.0, 0.0, 0.0]);
        assert_eq!(s.vy, vec![0.0, 2.0, 0.0]);
        assert_eq!(s.vz, vec![0.0, 0.0, 3.0]);
    }
}
