//! Analytic EAM parameterizations for the paper's three benchmark metals.
//!
//! The paper uses published tabulated potentials: Adams copper (its
//! ref. 28), Zhou tungsten (ref. 29), and Li tantalum (ref. 30). Those files are not
//! redistributable here, so we substitute analytic EAM forms (Morse pair
//! term, exponential density, universal-binding embedding) calibrated so
//! that the *performance-relevant* and *stability-relevant* properties
//! match:
//!
//! * the cutoff radius reproduces the paper's per-atom interaction counts
//!   (Cu 42, W ~59, Ta 14 — Table I),
//! * the perfect crystal at the published lattice constant is an energy
//!   minimum (zero pressure, calibrated at construction),
//! * the cohesive energy matches the experimental value,
//! * functions vanish smoothly at the cutoff (C¹), as spline tables
//!   require.
//!
//! See DESIGN.md ("Hardware gate and substitutions") for the argument
//! that this preserves the paper's evaluation behaviour.

use crate::eam::EamPotential;
use crate::lattice::Crystal;
use crate::spline::Spline;

/// The three benchmark species from Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Species {
    /// Copper, FCC, a = 3.615 Å (Adams et al. potential in the paper).
    Cu,
    /// Tungsten, BCC, a = 3.165 Å (Zhou et al. potential in the paper).
    W,
    /// Tantalum, BCC, a = 3.304 Å (Li et al. potential in the paper).
    Ta,
}

impl Species {
    pub const ALL: [Species; 3] = [Species::Cu, Species::W, Species::Ta];

    pub fn symbol(self) -> &'static str {
        match self {
            Species::Cu => "Cu",
            Species::W => "W",
            Species::Ta => "Ta",
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Species::Cu => "Copper",
            Species::W => "Tungsten",
            Species::Ta => "Tantalum",
        }
    }
}

/// A calibrated material: crystal data plus analytic EAM parameters.
#[derive(Clone, Debug)]
pub struct Material {
    pub species: Species,
    pub crystal: Crystal,
    /// Lattice constant a₀ (Å).
    pub lattice_a: f64,
    /// Atomic mass (amu).
    pub mass: f64,
    /// Interaction cutoff (Å), chosen to hit the paper's neighbor counts.
    pub cutoff: f64,
    /// Target cohesive energy (eV/atom), used for energy-scale calibration.
    pub cohesive_energy: f64,
    /// Host density at the equilibrium lattice.
    pub rho_e: f64,
    // --- analytic EAM parameters ---
    pair_d: f64,
    pair_alpha: f64,
    pair_r0: f64,
    dens_beta: f64,
    embed_f0: f64,
}

/// Smooth C¹ cutoff window: 1 below `rs`, 0 above `rc`, cubic blend in
/// between (zero slope at both ends).
fn smooth_window(r: f64, rs: f64, rc: f64) -> f64 {
    if r <= rs {
        1.0
    } else if r >= rc {
        0.0
    } else {
        let x = (r - rs) / (rc - rs);
        2.0 * x * x * x - 3.0 * x * x + 1.0
    }
}

impl Material {
    /// Build and calibrate the material for `species`.
    ///
    /// Calibration solves for the Morse equilibrium radius `r0` such that
    /// the lattice pressure vanishes at a₀ (bisection on the derivative of
    /// the lattice-sum pair energy; the universal-form embedding
    /// contributes zero first-order pressure at ρ = ρₑ by construction),
    /// then scales the pair amplitude so the cohesive energy matches.
    pub fn new(species: Species) -> Self {
        let (crystal, lattice_a, mass, cutoff, cohesive) = match species {
            Species::Cu => (Crystal::Fcc, 3.615, 63.546, 4.60, 3.49),
            Species::W => (Crystal::Bcc, 3.165, 183.84, 5.50, 8.90),
            Species::Ta => (Crystal::Bcc, 3.304, 180.9479, 4.10, 8.10),
        };
        let nn = crystal.nearest_neighbor_distance(lattice_a);
        let dens_beta = 1.2 / (0.2 * nn); // decay over ~20% of the bond length
        let pair_alpha = 1.4;

        let mut mat = Material {
            species,
            crystal,
            lattice_a,
            mass,
            cutoff,
            cohesive_energy: cohesive,
            rho_e: 0.0,
            pair_d: 1.0,
            pair_alpha,
            pair_r0: nn,
            dens_beta,
            embed_f0: cohesive / 2.0,
        };

        // Host density at equilibrium (depends only on the density fn).
        mat.rho_e = mat.lattice_density_sum(lattice_a);

        // Calibrate r0 so d(E_pair)/da = 0 at a0 (embedding is stationary
        // there by the universal form, so this zeroes the total pressure).
        let g = |mat: &Material, r0: f64| -> f64 {
            let mut m = mat.clone();
            m.pair_r0 = r0;
            m.pair_energy_derivative(m.lattice_a)
        };
        let (mut lo, mut hi) = (0.85 * nn, 1.35 * nn);
        let (glo, ghi) = (g(&mat, lo), g(&mat, hi));
        assert!(
            glo * ghi < 0.0,
            "{}: pressure does not change sign over the r0 bracket ({glo}, {ghi})",
            species.symbol()
        );
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if g(&mat, mid) * glo <= 0.0 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        mat.pair_r0 = 0.5 * (lo + hi);

        // Scale the pair amplitude so E(a0) = −E_cohesive. The embedding
        // contributes F(ρe) = −F0 = −Ec/2; the pair sum supplies the rest.
        let pair_per_atom = mat.pair_lattice_sum(mat.lattice_a);
        let target = -(cohesive - mat.embed_f0); // pair share: −Ec/2
        assert!(
            pair_per_atom < 0.0,
            "{}: uncalibrated pair sum must be attractive, got {pair_per_atom}",
            species.symbol()
        );
        mat.pair_d = target / pair_per_atom;

        mat
    }

    /// Start of the smooth cutoff window (fraction of the cutoff).
    fn window_start(&self) -> f64 {
        0.80 * self.cutoff
    }

    /// Analytic pair potential φ(r) (eV).
    pub fn phi(&self, r: f64) -> f64 {
        let e1 = (-2.0 * self.pair_alpha * (r - self.pair_r0)).exp();
        let e2 = (-self.pair_alpha * (r - self.pair_r0)).exp();
        self.pair_d * (e1 - 2.0 * e2) * smooth_window(r, self.window_start(), self.cutoff)
    }

    /// Analytic density contribution ρ(r) (arbitrary units).
    pub fn rho(&self, r: f64) -> f64 {
        let nn = self.crystal.nearest_neighbor_distance(self.lattice_a);
        (-self.dens_beta * (r - nn)).exp() * smooth_window(r, self.window_start(), self.cutoff)
    }

    /// Analytic embedding energy F(ρ) (eV): universal form
    /// `F(ρ) = F₀ · (ρ/ρₑ) · (ln(ρ/ρₑ) − 1)`, which satisfies F(0) = 0,
    /// F(ρₑ) = −F₀, F′(ρₑ) = 0, F″ > 0.
    pub fn embed(&self, rho: f64) -> f64 {
        if rho <= 1e-12 {
            return 0.0;
        }
        let x = rho / self.rho_e;
        self.embed_f0 * x * (x.ln() - 1.0)
    }

    /// Host density of a bulk atom at lattice constant `a` (lattice sum).
    pub fn lattice_density_sum(&self, a: f64) -> f64 {
        self.crystal
            .neighbor_displacements(a, self.cutoff)
            .iter()
            .map(|d| self.rho(d.norm()))
            .sum()
    }

    /// Pair energy per bulk atom at lattice constant `a`.
    fn pair_lattice_sum(&self, a: f64) -> f64 {
        0.5 * self
            .crystal
            .neighbor_displacements(a, self.cutoff)
            .iter()
            .map(|d| self.phi(d.norm()))
            .sum::<f64>()
    }

    /// d(E_pair)/da by central difference.
    fn pair_energy_derivative(&self, a: f64) -> f64 {
        let h = 1e-5 * a;
        (self.pair_lattice_sum(a + h) - self.pair_lattice_sum(a - h)) / (2.0 * h)
    }

    /// Total energy per bulk atom at lattice constant `a` (eV).
    pub fn energy_per_atom(&self, a: f64) -> f64 {
        self.pair_lattice_sum(a) + self.embed(self.lattice_density_sum(a))
    }

    /// Bulk coordination number within the cutoff (the paper's
    /// per-atom interaction count for interior atoms).
    pub fn bulk_interactions(&self) -> usize {
        self.crystal.coordination(self.lattice_a, self.cutoff)
    }

    /// Tabulate the analytic functions into the spline-based
    /// [`EamPotential`] used by every engine in the workspace.
    pub fn potential(&self) -> EamPotential<f64> {
        let nn = self.crystal.nearest_neighbor_distance(self.lattice_a);
        let r_min = 0.35 * nn;
        let n_knots = 1200;
        let rho = Spline::tabulate(r_min, self.cutoff, n_knots, |r| self.rho(r));
        let phi = Spline::tabulate(r_min, self.cutoff, n_knots, |r| self.phi(r));
        let embed = Spline::tabulate(0.0, 3.0 * self.rho_e, n_knots, |d| self.embed(d));
        EamPotential {
            rho,
            phi,
            embed,
            cutoff: self.cutoff,
            mass: self.mass,
            rho_equilibrium: self.rho_e,
        }
    }

    /// The paper's Table I per-atom interaction count (slab average).
    pub fn paper_interactions(&self) -> usize {
        match self.species {
            Species::Cu => 42,
            Species::W => 59,
            Species::Ta => 14,
        }
    }

    /// The paper's Table I candidate count (neighborhood size − 1).
    pub fn paper_candidates(&self) -> usize {
        match self.species {
            Species::Cu | Species::W => 224,
            Species::Ta => 80,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_interaction_counts_match_paper_shells() {
        // Bulk coordination vs the paper's slab-averaged Table I counts:
        // Cu 42 exactly; Ta 14 exactly; W 58 bulk vs 59 reported.
        assert_eq!(Material::new(Species::Cu).bulk_interactions(), 42);
        assert_eq!(Material::new(Species::Ta).bulk_interactions(), 14);
        assert_eq!(Material::new(Species::W).bulk_interactions(), 58);
    }

    #[test]
    fn lattice_constant_is_energy_minimum() {
        for sp in Species::ALL {
            let m = Material::new(sp);
            let e0 = m.energy_per_atom(m.lattice_a);
            for frac in [0.98, 0.99, 1.01, 1.02] {
                let e = m.energy_per_atom(m.lattice_a * frac);
                assert!(
                    e > e0,
                    "{}: E({frac}·a0) = {e} not above E(a0) = {e0}",
                    sp.symbol()
                );
            }
        }
    }

    #[test]
    fn pressure_vanishes_at_equilibrium() {
        for sp in Species::ALL {
            let m = Material::new(sp);
            let h = 1e-4 * m.lattice_a;
            let de = (m.energy_per_atom(m.lattice_a + h) - m.energy_per_atom(m.lattice_a - h))
                / (2.0 * h);
            assert!(de.abs() < 1e-5, "{}: dE/da = {de}", sp.symbol());
        }
    }

    #[test]
    fn cohesive_energy_matches_target() {
        for sp in Species::ALL {
            let m = Material::new(sp);
            let e0 = m.energy_per_atom(m.lattice_a);
            assert!(
                (e0 + m.cohesive_energy).abs() < 1e-6,
                "{}: E(a0) = {e0}, target {}",
                sp.symbol(),
                -m.cohesive_energy
            );
        }
    }

    #[test]
    fn embedding_universal_form_properties() {
        for sp in Species::ALL {
            let m = Material::new(sp);
            assert!(m.embed(0.0).abs() < 1e-12);
            assert!((m.embed(m.rho_e) + m.cohesive_energy / 2.0).abs() < 1e-9);
            // F'(ρe) = 0 numerically.
            let h = 1e-6 * m.rho_e;
            let fp = (m.embed(m.rho_e + h) - m.embed(m.rho_e - h)) / (2.0 * h);
            assert!(fp.abs() < 1e-8, "{}: F'(rho_e) = {fp}", sp.symbol());
        }
    }

    #[test]
    fn functions_vanish_at_cutoff() {
        for sp in Species::ALL {
            let m = Material::new(sp);
            assert_eq!(m.phi(m.cutoff), 0.0);
            assert_eq!(m.rho(m.cutoff), 0.0);
            assert!(m.phi(m.cutoff - 1e-4).abs() < 1e-4);
        }
    }

    #[test]
    fn spline_tables_track_analytic_functions() {
        let m = Material::new(Species::Ta);
        let pot = m.potential();
        let nn = m.crystal.nearest_neighbor_distance(m.lattice_a);
        for i in 0..200 {
            let r = 0.5 * nn + (m.cutoff - 0.5 * nn) * i as f64 / 199.0;
            assert!((pot.phi.eval(r) - m.phi(r)).abs() < 1e-6, "phi at {r}");
            assert!((pot.rho.eval(r) - m.rho(r)).abs() < 1e-6, "rho at {r}");
        }
        for i in 0..200 {
            let d = 2.9 * m.rho_e * i as f64 / 199.0;
            assert!(
                (pot.embed.eval(d) - m.embed(d)).abs() < 2e-5,
                "embed at {d}"
            );
        }
    }

    #[test]
    fn spline_potential_also_has_equilibrium_minimum() {
        // The tabulated potential (what engines actually evaluate) must
        // preserve the calibrated minimum.
        let m = Material::new(Species::Cu);
        let pot = m.potential();
        let e = |a: f64| -> f64 {
            let ds = m.crystal.neighbor_displacements(a, m.cutoff);
            let pair: f64 = 0.5 * ds.iter().map(|d| pot.phi.eval(d.norm())).sum::<f64>();
            let dens: f64 = ds.iter().map(|d| pot.rho.eval(d.norm())).sum();
            pair + pot.embed.eval(dens)
        };
        let e0 = e(m.lattice_a);
        assert!(e(0.985 * m.lattice_a) > e0);
        assert!(e(1.015 * m.lattice_a) > e0);
        assert!((e0 + m.cohesive_energy).abs() < 1e-3);
    }

    #[test]
    fn table_i_constants() {
        let cu = Material::new(Species::Cu);
        assert_eq!(cu.paper_interactions(), 42);
        assert_eq!(cu.paper_candidates(), 224);
        let ta = Material::new(Species::Ta);
        assert_eq!(ta.paper_interactions(), 14);
        assert_eq!(ta.paper_candidates(), 80);
    }

    #[test]
    fn masses_and_lattice_constants_are_physical() {
        let w = Material::new(Species::W);
        assert!((w.mass - 183.84).abs() < 1e-6);
        assert!((w.lattice_a - 3.165).abs() < 1e-6);
        assert_eq!(w.crystal, Crystal::Bcc);
        let cu = Material::new(Species::Cu);
        assert_eq!(cu.crystal, Crystal::Fcc);
    }
}
