//! Verlet leap-frog trajectory integration (paper Eq. 5).
//!
//! ```text
//! v(k+½) = v(k−½) + a(k)·Δt
//! r(k+1) = r(k) + v(k+½)·Δt
//! ```
//!
//! The scheme is second-order, time-reversible, and symplectic; it
//! preserves net momentum exactly, which the tests verify. Acceleration is
//! `a = F/m · FORCE_TO_ACCEL` in metal units.

use crate::soa::ParticleStore;
use crate::units::FORCE_TO_ACCEL;
use crate::vec3::{Real, Vec3};

/// One leap-frog kick–drift update for a single-species system.
///
/// `forces` are in eV/Å, `mass` in amu, `dt` in ps. Velocities advance by
/// a full step (they live at half-integer times), then positions drift.
pub fn leapfrog_step<T: Real>(
    positions: &mut [Vec3<T>],
    velocities: &mut [Vec3<T>],
    forces: &[Vec3<T>],
    mass: f64,
    dt: f64,
) {
    assert_eq!(positions.len(), velocities.len());
    assert_eq!(positions.len(), forces.len());
    let dt_t = T::from_f64(dt);
    let f2a = T::from_f64(FORCE_TO_ACCEL / mass);
    for i in 0..positions.len() {
        let a = forces[i].scale(f2a);
        velocities[i] += a.scale(dt_t);
        positions[i] += velocities[i].scale(dt_t);
    }
}

/// One leap-frog kick–drift update over structure-of-arrays columns.
///
/// Column-layout twin of [`leapfrog_step`]: each atom's update performs
/// the identical scalar operations in the identical order
/// (`v += (f·f2a)·dt` then `r += v·dt`, component by component), and
/// atoms are independent of one another, so the result is bit-identical
/// to the array-of-structs path while streaming nine contiguous columns
/// the compiler can vectorize.
pub fn leapfrog_step_soa(atoms: &mut ParticleStore, mass: f64, dt: f64) {
    let f2a = FORCE_TO_ACCEL / mass;
    for i in 0..atoms.len() {
        let ax = atoms.fx[i] * f2a;
        let ay = atoms.fy[i] * f2a;
        let az = atoms.fz[i] * f2a;
        atoms.vx[i] += ax * dt;
        atoms.vy[i] += ay * dt;
        atoms.vz[i] += az * dt;
        atoms.x[i] += atoms.vx[i] * dt;
        atoms.y[i] += atoms.vy[i] * dt;
        atoms.z[i] += atoms.vz[i] * dt;
    }
}

/// Kick-only half of the update (used to bootstrap the half-step
/// velocities from synchronous initial conditions: one backward half-kick
/// turns v(0) into v(−½)).
pub fn half_kick<T: Real>(velocities: &mut [Vec3<T>], forces: &[Vec3<T>], mass: f64, dt: f64) {
    let f2a = T::from_f64(FORCE_TO_ACCEL / mass);
    let half_dt = T::from_f64(0.5 * dt);
    for (v, f) in velocities.iter_mut().zip(forces) {
        *v += f.scale(f2a).scale(half_dt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::MVV_TO_ENERGY;
    use crate::vec3::V3d;

    /// Harmonic oscillator: F = −k·x. Leap-frog must conserve the shadow
    /// Hamiltonian, so energy oscillates but never drifts.
    #[test]
    fn harmonic_oscillator_energy_is_bounded_over_long_runs() {
        let k = 2.0; // eV/Å²
        let mass = 50.0;
        let dt = 0.001;
        let mut pos = vec![V3d::new(1.0, 0.0, 0.0)];
        let mut vel = vec![V3d::zero()];
        // Bootstrap: shift v(0) back to v(−½).
        let f0 = vec![pos[0].scale(-k)];
        half_kick(&mut vel, &f0, mass, -dt);

        let energy = |p: &V3d, v: &V3d| -> f64 {
            0.5 * k * p.norm_sq() + 0.5 * mass * v.norm_sq() * MVV_TO_ENERGY
        };
        let e0 = 0.5 * k; // all potential at t=0
        let mut min_e = f64::INFINITY;
        let mut max_e = f64::NEG_INFINITY;
        for _ in 0..100_000 {
            let f = vec![pos[0].scale(-k)];
            leapfrog_step(&mut pos, &mut vel, &f, mass, dt);
            let e = energy(&pos[0], &vel[0]);
            min_e = min_e.min(e);
            max_e = max_e.max(e);
        }
        // Leap-frog's energy wobbles at O(dt²) but must not drift.
        assert!((max_e - e0).abs() / e0 < 0.05, "max {max_e} vs {e0}");
        assert!((min_e - e0).abs() / e0 < 0.05, "min {min_e} vs {e0}");
    }

    #[test]
    fn harmonic_oscillator_period_is_correct() {
        // ω = sqrt(k/m · FORCE_TO_ACCEL), T = 2π/ω.
        let k = 1.0;
        let mass = 100.0;
        let omega = (k / mass * FORCE_TO_ACCEL).sqrt();
        let period = 2.0 * std::f64::consts::PI / omega;
        let dt = period / 10_000.0;
        let mut pos = vec![V3d::new(1.0, 0.0, 0.0)];
        let mut vel = vec![V3d::zero()];
        let f0 = vec![pos[0].scale(-k)];
        half_kick(&mut vel, &f0, mass, -dt);
        // Integrate one full period; position should return to start.
        for _ in 0..10_000 {
            let f = vec![pos[0].scale(-k)];
            leapfrog_step(&mut pos, &mut vel, &f, mass, dt);
        }
        assert!(
            (pos[0].x - 1.0).abs() < 1e-3,
            "after one period x = {}",
            pos[0].x
        );
    }

    #[test]
    fn momentum_is_exactly_conserved_under_internal_forces() {
        // Two atoms with equal-and-opposite forces: total momentum fixed.
        let mass = 10.0;
        let dt = 0.002;
        let mut pos = vec![V3d::new(0.0, 0.0, 0.0), V3d::new(2.0, 0.0, 0.0)];
        let mut vel = vec![V3d::new(0.3, -0.1, 0.2), V3d::new(-0.3, 0.1, -0.2)];
        let p0: V3d = vel.iter().copied().sum();
        for step in 0..5000 {
            let f01 = V3d::new((step as f64 * 0.01).sin(), 0.2, -0.1);
            let forces = vec![f01, -f01];
            leapfrog_step(&mut pos, &mut vel, &forces, mass, dt);
        }
        let p1: V3d = vel.iter().copied().sum();
        assert!((p0 - p1).norm() < 1e-12);
    }

    #[test]
    fn free_particle_moves_linearly() {
        let mut pos = vec![V3d::zero()];
        let mut vel = vec![V3d::new(1.0, 2.0, 3.0)];
        let forces = vec![V3d::zero()];
        for _ in 0..100 {
            leapfrog_step(&mut pos, &mut vel, &forces, 1.0, 0.01);
        }
        assert!((pos[0] - V3d::new(1.0, 2.0, 3.0)).norm() < 1e-12);
    }

    #[test]
    fn time_reversibility() {
        // Integrate forward N steps, negate velocities, integrate N more:
        // must return to the initial state (up to roundoff).
        let k = 1.5;
        let mass = 30.0;
        let dt = 0.001;
        let init = V3d::new(0.8, -0.3, 0.2);
        let mut pos = vec![init];
        let mut vel = vec![V3d::new(0.1, 0.2, -0.05)];
        for _ in 0..1000 {
            let f = vec![pos[0].scale(-k)];
            leapfrog_step(&mut pos, &mut vel, &f, mass, dt);
        }
        // Exact reversal of kick-drift leapfrog: the forward loop leaves
        // the state at (r_N, v_{N-½}). Completing the kick to v_{N+½} and
        // negating gives the initial condition whose forward evolution
        // retraces r_N → r_0 exactly.
        let f = vec![pos[0].scale(-k)];
        half_kick(&mut vel, &f, mass, 2.0 * dt); // full kick: v_{N-½} → v_{N+½}
        vel[0] = -vel[0];
        for _ in 0..1000 {
            let f = vec![pos[0].scale(-k)];
            leapfrog_step(&mut pos, &mut vel, &f, mass, dt);
        }
        assert!((pos[0] - init).norm() < 1e-9, "got {:?}", pos[0]);
    }

    #[test]
    fn soa_leapfrog_is_bit_identical_to_aos() {
        use crate::materials::Species;
        use crate::soa::ParticleStore;
        let mass = 42.5;
        let dt = 0.002;
        let mut pos = vec![
            V3d::new(0.0, 0.1, -0.2),
            V3d::new(2.0, -1.0, 0.5),
            V3d::new(-3.0, 4.0, 1.25),
        ];
        let mut vel = vec![
            V3d::new(0.3, -0.1, 0.2),
            V3d::new(-0.25, 0.125, 0.75),
            V3d::new(1.0, -2.0, 3.0),
        ];
        let forces = vec![
            V3d::new(0.7, -0.3, 0.9),
            V3d::new(-1.1, 0.6, -0.4),
            V3d::new(0.05, 0.15, -0.25),
        ];
        let mut store = ParticleStore::from_positions(Species::Cu, &pos);
        store.set_velocities(&vel);
        for (i, f) in forces.iter().enumerate() {
            store.set_force(i, *f);
        }
        for _ in 0..100 {
            leapfrog_step(&mut pos, &mut vel, &forces, mass, dt);
            leapfrog_step_soa(&mut store, mass, dt);
        }
        for i in 0..pos.len() {
            assert_eq!(pos[i].x.to_bits(), store.x[i].to_bits());
            assert_eq!(pos[i].y.to_bits(), store.y[i].to_bits());
            assert_eq!(pos[i].z.to_bits(), store.z[i].to_bits());
            assert_eq!(vel[i].x.to_bits(), store.vx[i].to_bits());
            assert_eq!(vel[i].y.to_bits(), store.vy[i].to_bits());
            assert_eq!(vel[i].z.to_bits(), store.vz[i].to_bits());
        }
    }

    #[test]
    fn f32_integration_tracks_f64() {
        use crate::vec3::V3f;
        let k = 1.0;
        let mass = 60.0;
        let dt = 0.001;
        let mut p64 = vec![V3d::new(1.0, 0.0, 0.0)];
        let mut v64 = vec![V3d::zero()];
        let mut p32: Vec<V3f> = vec![V3f::new(1.0, 0.0, 0.0)];
        let mut v32: Vec<V3f> = vec![V3f::new(0.0, 0.0, 0.0)];
        for _ in 0..1000 {
            let f64v = vec![p64[0].scale(-k)];
            leapfrog_step(&mut p64, &mut v64, &f64v, mass, dt);
            let f32v = vec![p32[0].scale(-(k as f32))];
            leapfrog_step(&mut p32, &mut v32, &f32v, mass, dt);
        }
        let p32c: V3d = p32[0].cast();
        assert!((p64[0] - p32c).norm() < 1e-3);
    }
}
