//! Crystal lattices and thin-slab geometry generation.
//!
//! The paper's benchmark systems are thin slabs (~60 nm × 60 nm × 2 nm)
//! of a single metal: FCC copper or BCC tungsten/tantalum, with open
//! boundaries (Table I: Cu replicated 174×192×6, W/Ta 256×261×6, all
//! 801,792 atoms).

use crate::vec3::V3d;

/// Crystal structure of a cubic metal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Crystal {
    /// Face-centered cubic (4 atoms per conventional cell).
    Fcc,
    /// Body-centered cubic (2 atoms per conventional cell).
    Bcc,
}

impl Crystal {
    /// Fractional coordinates of the conventional-cell basis.
    pub fn basis(self) -> &'static [[f64; 3]] {
        match self {
            Crystal::Fcc => &[
                [0.0, 0.0, 0.0],
                [0.5, 0.5, 0.0],
                [0.5, 0.0, 0.5],
                [0.0, 0.5, 0.5],
            ],
            Crystal::Bcc => &[[0.0, 0.0, 0.0], [0.5, 0.5, 0.5]],
        }
    }

    /// Atoms per conventional cubic cell.
    pub fn atoms_per_cell(self) -> usize {
        self.basis().len()
    }

    /// Nearest-neighbor distance for lattice constant `a`.
    pub fn nearest_neighbor_distance(self, a: f64) -> f64 {
        match self {
            Crystal::Fcc => a / 2f64.sqrt(),
            Crystal::Bcc => a * 3f64.sqrt() / 2.0,
        }
    }

    /// All displacement vectors from an atom at the origin to other
    /// lattice atoms strictly within `rcut`, for a perfect infinite
    /// crystal with lattice constant `a`. Used for lattice-sum energy and
    /// potential calibration.
    pub fn neighbor_displacements(self, a: f64, rcut: f64) -> Vec<V3d> {
        let m = (rcut / a).ceil() as i64 + 1;
        let rc2 = rcut * rcut;
        let mut out = Vec::new();
        for i in -m..=m {
            for j in -m..=m {
                for k in -m..=m {
                    for b in self.basis() {
                        let d = V3d::new(
                            (i as f64 + b[0]) * a,
                            (j as f64 + b[1]) * a,
                            (k as f64 + b[2]) * a,
                        );
                        let r2 = d.norm_sq();
                        if r2 > 1e-12 && r2 < rc2 {
                            out.push(d);
                        }
                    }
                }
            }
        }
        out
    }

    /// Number of bulk neighbors within `rcut` (the paper's
    /// "interactions" count for an interior atom).
    pub fn coordination(self, a: f64, rcut: f64) -> usize {
        self.neighbor_displacements(a, rcut).len()
    }
}

/// Specification of a rectangular slab of crystal, replicated
/// `nx × ny × nz` conventional cells.
#[derive(Clone, Copy, Debug)]
pub struct SlabSpec {
    pub crystal: Crystal,
    /// Lattice constant (Å).
    pub lattice_a: f64,
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
}

impl SlabSpec {
    pub fn atom_count(&self) -> usize {
        self.nx * self.ny * self.nz * self.crystal.atoms_per_cell()
    }

    /// Slab extent in Å.
    pub fn dimensions(&self) -> V3d {
        V3d::new(
            self.nx as f64 * self.lattice_a,
            self.ny as f64 * self.lattice_a,
            self.nz as f64 * self.lattice_a,
        )
    }

    /// Generate atom positions, cell-major with basis-minor ordering so
    /// that atoms sharing an (x, y) column are contiguous in z.
    pub fn generate(&self) -> Vec<V3d> {
        let a = self.lattice_a;
        let basis = self.crystal.basis();
        let mut pos = Vec::with_capacity(self.atom_count());
        for i in 0..self.nx {
            for j in 0..self.ny {
                for k in 0..self.nz {
                    for b in basis {
                        pos.push(V3d::new(
                            (i as f64 + b[0]) * a,
                            (j as f64 + b[1]) * a,
                            (k as f64 + b[2]) * a,
                        ));
                    }
                }
            }
        }
        pos
    }
}

/// The paper's Table I replication for each benchmark material, given the
/// material's crystal and lattice constant: Cu 174×192×6 (FCC),
/// W/Ta 256×261×6 (BCC) — all exactly 801,792 atoms.
pub fn paper_slab(crystal: Crystal, lattice_a: f64) -> SlabSpec {
    let (nx, ny, nz) = match crystal {
        Crystal::Fcc => (174, 192, 6),
        Crystal::Bcc => (256, 261, 6),
    };
    SlabSpec {
        crystal,
        lattice_a,
        nx,
        ny,
        nz,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_replications_give_801792_atoms() {
        assert_eq!(paper_slab(Crystal::Fcc, 3.615).atom_count(), 801_792);
        assert_eq!(paper_slab(Crystal::Bcc, 3.304).atom_count(), 801_792);
    }

    #[test]
    fn fcc_shell_structure() {
        // FCC cumulative neighbor counts: 12 (a/√2), 18 (a), 42 (a√1.5), 54 (a√2).
        let a = 3.615;
        assert_eq!(Crystal::Fcc.coordination(a, 0.75 * a), 12);
        assert_eq!(Crystal::Fcc.coordination(a, 1.05 * a), 18);
        assert_eq!(Crystal::Fcc.coordination(a, 1.30 * a), 42);
        assert_eq!(Crystal::Fcc.coordination(a, 1.45 * a), 54);
    }

    #[test]
    fn bcc_shell_structure() {
        // BCC cumulative counts: 8 (0.866a), 14 (a), 26 (1.414a), 50 (1.658a), 58 (1.732a).
        let a = 3.304;
        assert_eq!(Crystal::Bcc.coordination(a, 0.9 * a), 8);
        assert_eq!(Crystal::Bcc.coordination(a, 1.1 * a), 14);
        assert_eq!(Crystal::Bcc.coordination(a, 1.5 * a), 26);
        assert_eq!(Crystal::Bcc.coordination(a, 1.7 * a), 50);
        assert_eq!(Crystal::Bcc.coordination(a, 1.74 * a), 58);
    }

    #[test]
    fn nearest_neighbor_distances() {
        assert!(
            (Crystal::Fcc.nearest_neighbor_distance(1.0) - std::f64::consts::FRAC_1_SQRT_2).abs()
                < 1e-4
        );
        assert!((Crystal::Bcc.nearest_neighbor_distance(1.0) - 0.8660).abs() < 1e-4);
    }

    #[test]
    fn neighbor_displacements_are_symmetric() {
        // Perfect crystal shells are inversion-symmetric: Σ d = 0.
        for crystal in [Crystal::Fcc, Crystal::Bcc] {
            let ds = crystal.neighbor_displacements(3.3, 5.5);
            let sum: V3d = ds.iter().copied().sum();
            assert!(sum.norm() < 1e-9, "{crystal:?}: {sum:?}");
        }
    }

    #[test]
    fn slab_generation_counts_and_bounds() {
        let spec = SlabSpec {
            crystal: Crystal::Bcc,
            lattice_a: 3.3,
            nx: 4,
            ny: 5,
            nz: 2,
        };
        let pos = spec.generate();
        assert_eq!(pos.len(), spec.atom_count());
        assert_eq!(pos.len(), 4 * 5 * 2 * 2);
        let dims = spec.dimensions();
        for p in &pos {
            assert!(p.x >= 0.0 && p.x < dims.x);
            assert!(p.y >= 0.0 && p.y < dims.y);
            assert!(p.z >= 0.0 && p.z < dims.z);
        }
    }

    #[test]
    fn slab_atoms_are_unique() {
        let spec = SlabSpec {
            crystal: Crystal::Fcc,
            lattice_a: 3.615,
            nx: 3,
            ny: 3,
            nz: 3,
        };
        let pos = spec.generate();
        for i in 0..pos.len() {
            for j in (i + 1)..pos.len() {
                assert!((pos[i] - pos[j]).norm() > 1.0, "atoms {i},{j} overlap");
            }
        }
    }
}
