//! Three-component vector math, generic over `f32`/`f64`.
//!
//! The WSE implementation in the paper computes forces in FP32 while the
//! LAMMPS reference uses FP64; the [`Real`] abstraction lets the same
//! force kernels be instantiated at either precision so the two code
//! paths can be cross-validated bit-for-bit at the algorithm level.

use std::fmt::Debug;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Floating-point scalar abstraction (implemented for `f32` and `f64`).
pub trait Real:
    Copy
    + Clone
    + Debug
    + PartialOrd
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + Send
    + Sync
    + 'static
{
    const ZERO: Self;
    const ONE: Self;
    const TWO: Self;
    const HALF: Self;

    fn from_f64(x: f64) -> Self;
    fn to_f64(self) -> f64;
    fn sqrt(self) -> Self;
    fn abs(self) -> Self;
    fn floor(self) -> Self;
    fn exp(self) -> Self;
    fn powi(self, n: i32) -> Self;
    fn min_val(self, other: Self) -> Self;
    fn max_val(self, other: Self) -> Self;
    fn is_finite_val(self) -> bool;
    /// Reciprocal square root. On the WSE this is a Newton–Raphson
    /// refinement of a seed (8 FLOPs in the paper's Table III); here we
    /// delegate to `1/sqrt` which is numerically equivalent.
    #[inline]
    fn rsqrt(self) -> Self {
        Self::ONE / self.sqrt()
    }
}

macro_rules! impl_real {
    ($t:ty) => {
        impl Real for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const TWO: Self = 2.0;
            const HALF: Self = 0.5;

            #[inline]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline]
            fn floor(self) -> Self {
                <$t>::floor(self)
            }
            #[inline]
            fn exp(self) -> Self {
                <$t>::exp(self)
            }
            #[inline]
            fn powi(self, n: i32) -> Self {
                <$t>::powi(self, n)
            }
            #[inline]
            fn min_val(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline]
            fn max_val(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
            #[inline]
            fn is_finite_val(self) -> bool {
                <$t>::is_finite(self)
            }
        }
    };
}

impl_real!(f32);
impl_real!(f64);

/// A 3-vector of scalars, used for positions, velocities, and forces.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Vec3<T> {
    pub x: T,
    pub y: T,
    pub z: T,
}

/// `Vec3<f64>` — reference precision.
pub type V3d = Vec3<f64>;
/// `Vec3<f32>` — WSE tile precision.
pub type V3f = Vec3<f32>;

impl<T: Real> Vec3<T> {
    pub const fn new(x: T, y: T, z: T) -> Self {
        Self { x, y, z }
    }

    pub fn zero() -> Self {
        Self::new(T::ZERO, T::ZERO, T::ZERO)
    }

    pub fn splat(v: T) -> Self {
        Self::new(v, v, v)
    }

    #[inline]
    pub fn dot(self, o: Self) -> T {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn norm_sq(self) -> T {
        self.dot(self)
    }

    #[inline]
    pub fn norm(self) -> T {
        self.norm_sq().sqrt()
    }

    #[inline]
    pub fn cross(self, o: Self) -> Self {
        Self::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    /// Component-wise max-norm (Chebyshev norm). The paper's assignment
    /// cost C(g) is defined in this norm.
    #[inline]
    pub fn max_norm(self) -> T {
        self.x.abs().max_val(self.y.abs()).max_val(self.z.abs())
    }

    /// Max-norm of the (x, y) components only — the in-plane displacement
    /// used for the Fig. 9 assignment-cost experiment.
    #[inline]
    pub fn max_norm_xy(self) -> T {
        self.x.abs().max_val(self.y.abs())
    }

    #[inline]
    pub fn scale(self, s: T) -> Self {
        Self::new(self.x * s, self.y * s, self.z * s)
    }

    pub fn normalized(self) -> Self {
        let n = self.norm();
        if n == T::ZERO {
            Self::zero()
        } else {
            self.scale(T::ONE / n)
        }
    }

    pub fn is_finite(self) -> bool {
        self.x.is_finite_val() && self.y.is_finite_val() && self.z.is_finite_val()
    }

    /// Cast to another scalar precision.
    pub fn cast<U: Real>(self) -> Vec3<U> {
        Vec3::new(
            U::from_f64(self.x.to_f64()),
            U::from_f64(self.y.to_f64()),
            U::from_f64(self.z.to_f64()),
        )
    }

    pub fn to_array(self) -> [T; 3] {
        [self.x, self.y, self.z]
    }

    pub fn from_array(a: [T; 3]) -> Self {
        Self::new(a[0], a[1], a[2])
    }
}

impl<T: Real> Add for Vec3<T> {
    type Output = Self;
    #[inline]
    fn add(self, o: Self) -> Self {
        Self::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl<T: Real> Sub for Vec3<T> {
    type Output = Self;
    #[inline]
    fn sub(self, o: Self) -> Self {
        Self::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl<T: Real> Neg for Vec3<T> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.x, -self.y, -self.z)
    }
}

impl<T: Real> Mul<T> for Vec3<T> {
    type Output = Self;
    #[inline]
    fn mul(self, s: T) -> Self {
        self.scale(s)
    }
}

impl<T: Real> Div<T> for Vec3<T> {
    type Output = Self;
    #[inline]
    fn div(self, s: T) -> Self {
        Self::new(self.x / s, self.y / s, self.z / s)
    }
}

impl<T: Real> AddAssign for Vec3<T> {
    #[inline]
    fn add_assign(&mut self, o: Self) {
        self.x += o.x;
        self.y += o.y;
        self.z += o.z;
    }
}

impl<T: Real> SubAssign for Vec3<T> {
    #[inline]
    fn sub_assign(&mut self, o: Self) {
        self.x -= o.x;
        self.y -= o.y;
        self.z -= o.z;
    }
}

impl<T: Real> Sum for Vec3<T> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::zero(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        let v = V3d::new(3.0, 4.0, 12.0);
        assert_eq!(v.norm_sq(), 169.0);
        assert_eq!(v.norm(), 13.0);
        assert_eq!(v.dot(V3d::new(1.0, 0.0, 0.0)), 3.0);
    }

    #[test]
    fn cross_is_orthogonal_and_right_handed() {
        let x = V3d::new(1.0, 0.0, 0.0);
        let y = V3d::new(0.0, 1.0, 0.0);
        let z = x.cross(y);
        assert_eq!(z, V3d::new(0.0, 0.0, 1.0));
        assert_eq!(z.dot(x), 0.0);
        assert_eq!(z.dot(y), 0.0);
    }

    #[test]
    fn max_norm_picks_largest_component() {
        let v = V3d::new(-5.0, 2.0, 4.0);
        assert_eq!(v.max_norm(), 5.0);
        assert_eq!(v.max_norm_xy(), 5.0);
        let v = V3d::new(1.0, 2.0, 40.0);
        assert_eq!(v.max_norm_xy(), 2.0);
    }

    #[test]
    fn arithmetic_identities() {
        let a = V3d::new(1.0, -2.0, 3.0);
        let b = V3d::new(0.5, 0.25, -1.0);
        assert_eq!(a + b - b, a);
        assert_eq!(-(-a), a);
        assert_eq!(a * 2.0 / 2.0, a);
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn normalized_has_unit_length() {
        let v = V3d::new(3.0, -4.0, 12.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-14);
        assert_eq!(V3d::zero().normalized(), V3d::zero());
    }

    #[test]
    fn precision_cast_round_trips_small_values() {
        let v = V3d::new(1.5, -2.25, 0.125); // exactly representable in f32
        let w: V3f = v.cast();
        let back: V3d = w.cast();
        assert_eq!(v, back);
    }

    #[test]
    fn sum_of_vectors() {
        let vs = [V3d::new(1.0, 0.0, 0.0), V3d::new(0.0, 2.0, 0.0)];
        let s: V3d = vs.iter().copied().sum();
        assert_eq!(s, V3d::new(1.0, 2.0, 0.0));
    }

    #[test]
    fn rsqrt_matches_reciprocal_sqrt() {
        let x = 7.5f64;
        assert!((x.rsqrt() - 1.0 / x.sqrt()).abs() < 1e-15);
    }
}
