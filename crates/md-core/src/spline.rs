//! Uniform-knot cubic spline tables.
//!
//! The paper's EAM kernels evaluate the density ρ(r), pair potential φ(r),
//! and embedding function F(ρ) through interpolation tables stored in each
//! tile's SRAM ("local copies of interpolation tables for ρᵢ, Fᵢ, and
//! φᵢⱼ"). Table III accounts a `segment(·)` lookup as one add, one
//! multiply, and two other ops — which is exactly what a uniform-knot
//! table gives: `k = ⌊(x−x₀)·h⁻¹⌋`, `Δx = x − x_k`.
//!
//! We store per-segment cubic coefficients so evaluation of value and
//! derivative is a fused Horner pass, and we construct the coefficients as
//! a *natural* cubic spline (second derivative zero at both ends) via the
//! standard tridiagonal solve.

use crate::vec3::Real;

/// Lane width of the explicit-SIMD batched spline kernels
/// ([`Spline::eval4`] / [`Spline::eval_both4`]) and of the chunked
/// force loops built on them.
pub const LANES: usize = 4;

/// A cubic spline on a uniform knot grid, with scalar type `T`
/// (`f32` on the WSE tiles, `f64` in the reference engine).
#[derive(Clone, Debug)]
pub struct Spline<T> {
    x0: T,
    inv_h: T,
    h: T,
    /// Per-segment coefficients `[a, b, c, d]`:
    /// `y(x) = a + b·Δx + c·Δx² + d·Δx³` with `Δx = x − x_k`.
    coef: Vec<[T; 4]>,
    n_knots: usize,
}

impl<T: Real> Spline<T> {
    /// Build a natural cubic spline through `samples[i]` at
    /// `x0 + i·h`. Requires at least 4 samples.
    pub fn from_samples(x0: f64, h: f64, samples: &[f64]) -> Self {
        let n = samples.len();
        assert!(n >= 4, "spline needs at least 4 samples, got {n}");
        assert!(h > 0.0, "knot spacing must be positive");

        // Solve for second derivatives m_i (natural BCs: m_0 = m_{n-1} = 0)
        // using the Thomas algorithm on the standard spline system:
        //   m_{i-1} + 4 m_i + m_{i+1} = 6 (y_{i-1} - 2 y_i + y_{i+1}) / h².
        let mut m = vec![0.0f64; n];
        if n > 2 {
            let k = n - 2; // interior unknowns
            let mut c_prime = vec![0.0f64; k];
            let mut d_prime = vec![0.0f64; k];
            let rhs =
                |i: usize| 6.0 * (samples[i - 1] - 2.0 * samples[i] + samples[i + 1]) / (h * h);
            c_prime[0] = 1.0 / 4.0;
            d_prime[0] = rhs(1) / 4.0;
            for i in 1..k {
                let denom = 4.0 - c_prime[i - 1];
                c_prime[i] = 1.0 / denom;
                d_prime[i] = (rhs(i + 1) - d_prime[i - 1]) / denom;
            }
            m[k] = d_prime[k - 1];
            for i in (1..k).rev() {
                m[i] = d_prime[i - 1] - c_prime[i - 1] * m[i + 1];
            }
        }

        let mut coef = Vec::with_capacity(n - 1);
        for i in 0..n - 1 {
            let a = samples[i];
            let b = (samples[i + 1] - samples[i]) / h - h * (2.0 * m[i] + m[i + 1]) / 6.0;
            let c = m[i] / 2.0;
            let d = (m[i + 1] - m[i]) / (6.0 * h);
            coef.push([
                T::from_f64(a),
                T::from_f64(b),
                T::from_f64(c),
                T::from_f64(d),
            ]);
        }

        Self {
            x0: T::from_f64(x0),
            inv_h: T::from_f64(1.0 / h),
            h: T::from_f64(h),
            coef,
            n_knots: n,
        }
    }

    /// Tabulate `f` on `[x0, x1]` with `n` knots and build the spline.
    pub fn tabulate(x0: f64, x1: f64, n: usize, f: impl Fn(f64) -> f64) -> Self {
        assert!(n >= 4 && x1 > x0);
        let h = (x1 - x0) / (n - 1) as f64;
        let samples: Vec<f64> = (0..n).map(|i| f(x0 + i as f64 * h)).collect();
        Self::from_samples(x0, h, &samples)
    }

    /// The paper's `segment(x)` primitive: segment index and local offset.
    /// Out-of-range arguments clamp to the first/last segment, matching
    /// LAMMPS table semantics.
    #[inline]
    pub fn segment(&self, x: T) -> (usize, T) {
        let t = (x - self.x0) * self.inv_h;
        let k_f = t.floor();
        let mut k = k_f.to_f64() as i64;
        let last = (self.coef.len() - 1) as i64;
        if k < 0 {
            k = 0;
        } else if k > last {
            k = last;
        }
        let xk = self.x0 + T::from_f64(k as f64) * self.h;
        (k as usize, x - xk)
    }

    /// Evaluate the spline value at `x`.
    #[inline]
    pub fn eval(&self, x: T) -> T {
        let (k, dx) = self.segment(x);
        let [a, b, c, d] = self.coef[k];
        a + dx * (b + dx * (c + dx * d))
    }

    /// Evaluate the spline derivative at `x`.
    #[inline]
    pub fn eval_deriv(&self, x: T) -> T {
        let (k, dx) = self.segment(x);
        let [_, b, c, d] = self.coef[k];
        b + dx * (T::TWO * c + T::from_f64(3.0) * dx * d)
    }

    /// Fused value + derivative evaluation (one segment lookup), the form
    /// used inside the per-interaction kernel.
    #[inline]
    pub fn eval_both(&self, x: T) -> (T, T) {
        let (k, dx) = self.segment(x);
        let [a, b, c, d] = self.coef[k];
        let v = a + dx * (b + dx * (c + dx * d));
        let dv = b + dx * (T::TWO * c + T::from_f64(3.0) * dx * d);
        (v, dv)
    }

    /// Evaluate four spline values at once (explicit 4-lane batch for
    /// the stable toolchain — no `std::simd`). Each lane performs
    /// exactly the scalar [`Spline::eval`] operation sequence, so every
    /// lane result is bit-identical to the corresponding scalar call;
    /// the segment lookup is a per-lane gather, while the Horner
    /// polynomial runs as straight-line lane-parallel arithmetic the
    /// compiler can vectorize.
    #[inline]
    pub fn eval4(&self, x: [T; LANES]) -> [T; LANES] {
        let (a, b, c, d, dx) = self.gather4(x);
        let mut v = [T::ZERO; LANES];
        for l in 0..LANES {
            v[l] = a[l] + dx[l] * (b[l] + dx[l] * (c[l] + dx[l] * d[l]));
        }
        v
    }

    /// Fused value + derivative for four inputs at once; the batched
    /// form of [`Spline::eval_both`] with the same per-lane
    /// bit-exactness guarantee as [`Spline::eval4`].
    #[inline]
    pub fn eval_both4(&self, x: [T; LANES]) -> ([T; LANES], [T; LANES]) {
        let (a, b, c, d, dx) = self.gather4(x);
        let mut v = [T::ZERO; LANES];
        let mut dv = [T::ZERO; LANES];
        for l in 0..LANES {
            v[l] = a[l] + dx[l] * (b[l] + dx[l] * (c[l] + dx[l] * d[l]));
            dv[l] = b[l] + dx[l] * (T::TWO * c[l] + T::from_f64(3.0) * dx[l] * d[l]);
        }
        (v, dv)
    }

    /// Per-lane segment lookup + coefficient gather feeding the batched
    /// evaluators: transposes four `[a, b, c, d]` rows into coefficient
    /// lanes so the polynomial arithmetic is loop-free of memory
    /// indirection.
    #[inline]
    #[allow(clippy::type_complexity)] // five parallel coefficient lanes, not a nameable concept
    fn gather4(
        &self,
        x: [T; LANES],
    ) -> ([T; LANES], [T; LANES], [T; LANES], [T; LANES], [T; LANES]) {
        let mut a = [T::ZERO; LANES];
        let mut b = [T::ZERO; LANES];
        let mut c = [T::ZERO; LANES];
        let mut d = [T::ZERO; LANES];
        let mut dx = [T::ZERO; LANES];
        for l in 0..LANES {
            let (k, off) = self.segment(x[l]);
            let [ak, bk, ck, dk] = self.coef[k];
            a[l] = ak;
            b[l] = bk;
            c[l] = ck;
            d[l] = dk;
            dx[l] = off;
        }
        (a, b, c, d, dx)
    }

    /// Domain lower bound.
    pub fn x_min(&self) -> T {
        self.x0
    }

    /// Domain upper bound.
    pub fn x_max(&self) -> T {
        self.x0 + T::from_f64((self.n_knots - 1) as f64) * self.h
    }

    /// Number of knots.
    pub fn len(&self) -> usize {
        self.n_knots
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    /// SRAM footprint of this table in bytes (coefficients only), used by
    /// the per-tile memory audit against the 48 kB budget.
    pub fn table_bytes(&self) -> usize {
        self.coef.len() * 4 * std::mem::size_of::<T>()
    }

    /// Re-tabulate into another precision (f64 master table → f32 tile
    /// copy). Resamples the spline at its own knots.
    pub fn cast<U: Real>(&self) -> Spline<U> {
        self.resample(self.n_knots)
    }

    /// Re-tabulate onto `n` uniform knots over the same domain, possibly
    /// in another precision — used to shrink master tables down to
    /// tile-SRAM-sized copies.
    pub fn resample<U: Real>(&self, n: usize) -> Spline<U> {
        let x0 = self.x0.to_f64();
        let x1 = self.x_max().to_f64();
        let h = (x1 - x0) / (n - 1) as f64;
        let samples: Vec<f64> = (0..n)
            .map(|i| self.eval(T::from_f64(x0 + i as f64 * h)).to_f64())
            .collect();
        Spline::from_samples(x0, h, &samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_err(f: impl Fn(f64) -> f64, s: &Spline<f64>, x0: f64, x1: f64) -> f64 {
        (0..1000)
            .map(|i| {
                let x = x0 + (x1 - x0) * i as f64 / 999.0;
                (s.eval(x) - f(x)).abs()
            })
            .fold(0.0, f64::max)
    }

    #[test]
    fn interpolates_knots_exactly() {
        let s = Spline::<f64>::tabulate(0.0, 10.0, 21, |x| x.sin());
        for i in 0..21 {
            let x = 0.5 * i as f64;
            assert!((s.eval(x) - x.sin()).abs() < 1e-12, "knot {i}");
        }
    }

    #[test]
    fn cubic_polynomials_nearly_exact_between_knots() {
        // A natural spline is not exact for general cubics (end conditions),
        // but interior segments of a fine table should be extremely close.
        let f = |x: f64| 2.0 + 3.0 * x - 0.5 * x * x + 0.01 * x * x * x;
        let s = Spline::<f64>::tabulate(0.0, 10.0, 101, f);
        assert!(max_err(f, &s, 2.0, 8.0) < 1e-6);
    }

    #[test]
    fn smooth_function_converges_with_table_density() {
        let f = |x: f64| (-x).exp() * x.cos();
        let coarse = Spline::<f64>::tabulate(0.0, 5.0, 20, f);
        let fine = Spline::<f64>::tabulate(0.0, 5.0, 200, f);
        let e_coarse = max_err(f, &coarse, 0.2, 4.8);
        let e_fine = max_err(f, &fine, 0.2, 4.8);
        assert!(e_fine < e_coarse / 50.0, "coarse {e_coarse} fine {e_fine}");
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let s = Spline::<f64>::tabulate(0.0, std::f64::consts::TAU, 200, |x| x.sin());
        for i in 0..50 {
            let x = 0.3 + i as f64 * 0.1;
            let eps = 1e-6;
            let fd = (s.eval(x + eps) - s.eval(x - eps)) / (2.0 * eps);
            assert!((s.eval_deriv(x) - fd).abs() < 1e-6, "x={x}");
        }
    }

    #[test]
    fn eval_both_is_consistent() {
        let s = Spline::<f64>::tabulate(1.0, 4.0, 50, |x| 1.0 / x);
        let (v, d) = s.eval_both(2.37);
        assert_eq!(v, s.eval(2.37));
        assert_eq!(d, s.eval_deriv(2.37));
    }

    #[test]
    fn batched_lanes_are_bit_identical_to_scalar_eval() {
        let s = Spline::<f64>::tabulate(1.0, 6.0, 80, |x| (-x).exp() * x.sin());
        let xs = [1.07, 2.93, 4.501, 5.999];
        let v4 = s.eval4(xs);
        let (bv, bd) = s.eval_both4(xs);
        for l in 0..LANES {
            let (v, d) = s.eval_both(xs[l]);
            assert_eq!(v4[l].to_bits(), v.to_bits(), "lane {l} value");
            assert_eq!(bv[l].to_bits(), v.to_bits(), "lane {l} fused value");
            assert_eq!(bd[l].to_bits(), d.to_bits(), "lane {l} derivative");
        }
        // Out-of-range lanes clamp exactly like the scalar path.
        let clamped = [-2.0, 0.0, 7.5, 99.0];
        let v4 = s.eval4(clamped);
        for l in 0..LANES {
            assert_eq!(v4[l].to_bits(), s.eval(clamped[l]).to_bits());
        }
    }

    #[test]
    fn batched_lanes_match_scalar_in_f32() {
        let master = Spline::<f64>::tabulate(0.5, 5.0, 60, |x| 1.0 / (x * x));
        let tile: Spline<f32> = master.cast();
        let xs = [0.51f32, 1.25, 3.75, 4.99];
        let (v4, d4) = tile.eval_both4(xs);
        for l in 0..LANES {
            let (v, d) = tile.eval_both(xs[l]);
            assert_eq!(v4[l].to_bits(), v.to_bits(), "lane {l}");
            assert_eq!(d4[l].to_bits(), d.to_bits(), "lane {l}");
        }
    }

    #[test]
    fn out_of_range_clamps_to_edge_segments() {
        let s = Spline::<f64>::tabulate(0.0, 1.0, 10, |x| x);
        // Extrapolation continues the edge cubic — finite, no panic.
        assert!(s.eval(-0.5).is_finite());
        assert!(s.eval(1.5).is_finite());
        let (k, _) = s.segment(-3.0);
        assert_eq!(k, 0);
        let (k, _) = s.segment(99.0);
        assert_eq!(k, 8);
    }

    #[test]
    fn segment_offsets_are_local() {
        let s = Spline::<f64>::tabulate(2.0, 12.0, 11, |x| x * x);
        let (k, dx) = s.segment(5.3);
        assert_eq!(k, 3);
        assert!((dx - 0.3).abs() < 1e-12);
    }

    #[test]
    fn f32_cast_stays_close_to_f64_master() {
        let f = |x: f64| (-(x - 3.0) * (x - 3.0)).exp();
        let master = Spline::<f64>::tabulate(0.0, 6.0, 400, f);
        let tile: Spline<f32> = master.cast();
        for i in 0..100 {
            let x = 0.3 + i as f64 * 0.054;
            let err = (tile.eval(x as f32) as f64 - master.eval(x)).abs();
            assert!(err < 1e-4, "x={x} err={err}");
        }
    }

    #[test]
    fn table_bytes_scale_with_segments_and_precision() {
        let s64 = Spline::<f64>::tabulate(0.0, 1.0, 100, |x| x);
        let s32: Spline<f32> = s64.cast();
        assert_eq!(s64.table_bytes(), 99 * 4 * 8);
        assert_eq!(s32.table_bytes(), 99 * 4 * 4);
    }

    #[test]
    fn domain_bounds() {
        let s = Spline::<f64>::tabulate(1.0, 9.0, 9, |x| x);
        assert_eq!(s.x_min(), 1.0);
        assert!((s.x_max() - 9.0).abs() < 1e-12);
        assert_eq!(s.len(), 9);
    }
}
