//! Embedded Atom Method (EAM) potential.
//!
//! The system's potential energy (paper Eq. 3) is
//!
//! ```text
//! U = Σ_{i≠j} ½ φ(r_ij) + Σ_i F(ρ(r_i)),    ρ(r_i) = Σ_j ρ(r_ij)
//! ```
//!
//! and the force on atom i (Eq. 4) is
//!
//! ```text
//! f_i = −Σ_j [ F'(ρ_i) ρ'(r_ij) + F'(ρ_j) ρ'(r_ij) + φ'(r_ij) ] · (r_i−r_j)/r_ij
//! ```
//!
//! All three functions are cubic-spline tables ([`crate::spline::Spline`]),
//! mirroring the paper's per-tile interpolation tables. Both the f64
//! reference engine and the f32 WSE tile kernels evaluate through this
//! same module, so any physics discrepancy between the two paths is a
//! precision effect, never an algorithm difference.

use crate::spline::{Spline, LANES};
use crate::vec3::{Real, Vec3};

/// A single-species EAM potential: density ρ(r), pair term φ(r), and
/// embedding function F(ρ), plus the interaction cutoff.
#[derive(Clone, Debug)]
pub struct EamPotential<T> {
    /// Electron-density contribution ρ(r) of one atom at distance r.
    pub rho: Spline<T>,
    /// Pairwise interaction φ(r).
    pub phi: Spline<T>,
    /// Embedding energy F(ρ).
    pub embed: Spline<T>,
    /// Interaction cutoff radius r_cut (Å). ρ and φ vanish smoothly here.
    pub cutoff: T,
    /// Atomic mass (amu).
    pub mass: f64,
    /// Host electron density at the equilibrium lattice (diagnostic).
    pub rho_equilibrium: f64,
}

/// Result of an EAM energy/force evaluation.
#[derive(Clone, Debug)]
pub struct EamOutput<T> {
    /// Total potential energy (accumulated in f64 regardless of `T`).
    pub potential_energy: f64,
    /// Per-atom force vectors.
    pub forces: Vec<Vec3<T>>,
    /// Per-atom host densities ρ(r_i).
    pub densities: Vec<T>,
    /// Per-atom potential energy (½Σφ + F), for spatial diagnostics.
    pub per_atom_energy: Vec<T>,
}

impl<T: Real> EamPotential<T> {
    /// Squared cutoff, the quantity tiles actually compare against
    /// (the paper's neighbor-list step never takes a square root).
    #[inline]
    pub fn cutoff_sq(&self) -> T {
        self.cutoff * self.cutoff
    }

    /// Pair energy and its derivative at distance `r` (must be < cutoff).
    #[inline]
    pub fn pair(&self, r: T) -> (T, T) {
        self.phi.eval_both(r)
    }

    /// Density contribution and its derivative at distance `r`.
    #[inline]
    pub fn density(&self, r: T) -> (T, T) {
        self.rho.eval_both(r)
    }

    /// Embedding energy and its derivative at host density `rho`.
    #[inline]
    pub fn embedding(&self, rho: T) -> (T, T) {
        self.embed.eval_both(rho)
    }

    /// Four pair evaluations at once: [`EamPotential::pair`] applied
    /// per lane, bit-identical to four scalar calls.
    #[inline]
    pub fn pair4(&self, r: [T; LANES]) -> ([T; LANES], [T; LANES]) {
        self.phi.eval_both4(r)
    }

    /// Four density evaluations at once: [`EamPotential::density`]
    /// applied per lane, bit-identical to four scalar calls.
    #[inline]
    pub fn density4(&self, r: [T; LANES]) -> ([T; LANES], [T; LANES]) {
        self.rho.eval_both4(r)
    }

    /// Four embedding evaluations at once: [`EamPotential::embedding`]
    /// applied per lane, bit-identical to four scalar calls.
    #[inline]
    pub fn embedding4(&self, rho: [T; LANES]) -> ([T; LANES], [T; LANES]) {
        self.embed.eval_both4(rho)
    }

    /// Re-tabulate into another precision (f64 master → f32 tile tables).
    pub fn cast<U: Real>(&self) -> EamPotential<U> {
        EamPotential {
            rho: self.rho.cast(),
            phi: self.phi.cast(),
            embed: self.embed.cast(),
            cutoff: U::from_f64(self.cutoff.to_f64()),
            mass: self.mass,
            rho_equilibrium: self.rho_equilibrium,
        }
    }

    /// Re-tabulate onto `n_knots`-point tables per function — the
    /// SRAM-sized local copies each WSE tile actually stores.
    pub fn cast_resampled<U: Real>(&self, n_knots: usize) -> EamPotential<U> {
        EamPotential {
            rho: self.rho.resample(n_knots),
            phi: self.phi.resample(n_knots),
            embed: self.embed.resample(n_knots),
            cutoff: U::from_f64(self.cutoff.to_f64()),
            mass: self.mass,
            rho_equilibrium: self.rho_equilibrium,
        }
    }

    /// Total SRAM footprint of the three tables in bytes — audited by the
    /// WSE worker against the 48 kB tile budget.
    pub fn table_bytes(&self) -> usize {
        self.rho.table_bytes() + self.phi.table_bytes() + self.embed.table_bytes()
    }

    /// O(N²) reference evaluation of energies and forces.
    ///
    /// `disp(a, b)` must return the displacement `r_b − r_a` under the
    /// active boundary conditions (identity subtraction for open
    /// boundaries, minimum-image for periodic ones). This evaluator is the
    /// correctness oracle for both the cell-list engine and the wafer
    /// mapping; it is intended for systems of at most a few thousand atoms.
    pub fn compute_bruteforce(
        &self,
        positions: &[Vec3<T>],
        disp: impl Fn(Vec3<T>, Vec3<T>) -> Vec3<T>,
    ) -> EamOutput<T> {
        let n = positions.len();
        let rc2 = self.cutoff_sq();

        // Pass 1: host densities and pair energy.
        let mut densities = vec![T::ZERO; n];
        let mut per_atom_energy = vec![T::ZERO; n];
        let mut pair_energy = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                let d = disp(positions[i], positions[j]);
                let r2 = d.norm_sq();
                if r2 >= rc2 || r2 == T::ZERO {
                    continue;
                }
                let r = r2.sqrt();
                let (phi, _) = self.pair(r);
                let (rho, _) = self.density(r);
                densities[i] += rho;
                densities[j] += rho;
                pair_energy += phi.to_f64();
                per_atom_energy[i] += phi * T::HALF;
                per_atom_energy[j] += phi * T::HALF;
            }
        }

        // Embedding energies and their derivatives.
        let mut embed_energy = 0.0f64;
        let mut fprime = vec![T::ZERO; n];
        for i in 0..n {
            let (f, fp) = self.embedding(densities[i]);
            embed_energy += f.to_f64();
            per_atom_energy[i] += f;
            fprime[i] = fp;
        }

        // Pass 2: forces.
        let mut forces = vec![Vec3::zero(); n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = disp(positions[i], positions[j]); // r_j − r_i
                let r2 = d.norm_sq();
                if r2 >= rc2 || r2 == T::ZERO {
                    continue;
                }
                let r = r2.sqrt();
                let (_, dphi) = self.pair(r);
                let (_, drho) = self.density(r);
                let scalar = (fprime[i] + fprime[j]) * drho + dphi;
                // f_i = −scalar · (r_i − r_j)/r = +scalar · d/r
                let f = d.scale(scalar / r);
                forces[i] += f;
                forces[j] -= f;
            }
        }

        EamOutput {
            potential_energy: pair_energy + embed_energy,
            forces,
            densities,
            per_atom_energy,
        }
    }

    /// Evaluate energies and forces given precomputed *full* neighbor
    /// lists (`neighbors[i]` lists every j ≠ i within the cutoff).
    /// This is the evaluation order the WSE tiles use.
    pub fn compute_with_neighbors(
        &self,
        positions: &[Vec3<T>],
        neighbors: &[Vec<usize>],
        disp: impl Fn(Vec3<T>, Vec3<T>) -> Vec3<T>,
    ) -> EamOutput<T> {
        let n = positions.len();
        let rc2 = self.cutoff_sq();
        let mut densities = vec![T::ZERO; n];
        let mut per_atom_energy = vec![T::ZERO; n];
        let mut pair_energy = 0.0f64;

        for i in 0..n {
            for &j in &neighbors[i] {
                let d = disp(positions[i], positions[j]);
                let r2 = d.norm_sq();
                if r2 >= rc2 || r2 == T::ZERO {
                    continue;
                }
                let r = r2.sqrt();
                let (phi, _) = self.pair(r);
                let (rho, _) = self.density(r);
                densities[i] += rho;
                pair_energy += T::HALF.to_f64() * phi.to_f64();
                per_atom_energy[i] += phi * T::HALF;
            }
        }

        let mut embed_energy = 0.0f64;
        let mut fprime = vec![T::ZERO; n];
        for i in 0..n {
            let (f, fp) = self.embedding(densities[i]);
            embed_energy += f.to_f64();
            per_atom_energy[i] += f;
            fprime[i] = fp;
        }

        let mut forces = vec![Vec3::zero(); n];
        for i in 0..n {
            let mut acc = Vec3::zero();
            for &j in &neighbors[i] {
                let d = disp(positions[i], positions[j]);
                let r2 = d.norm_sq();
                if r2 >= rc2 || r2 == T::ZERO {
                    continue;
                }
                let r = r2.sqrt();
                let (_, dphi) = self.pair(r);
                let (_, drho) = self.density(r);
                let scalar = (fprime[i] + fprime[j]) * drho + dphi;
                acc += d.scale(scalar / r);
            }
            forces[i] = acc;
        }

        EamOutput {
            potential_energy: pair_energy + embed_energy,
            forces,
            densities,
            per_atom_energy,
        }
    }
}

/// Free-space displacement (open boundary conditions): `r_b − r_a`.
#[inline]
pub fn open_disp<T: Real>(a: Vec3<T>, b: Vec3<T>) -> Vec3<T> {
    b - a
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A smooth toy EAM potential for unit tests (materials.rs provides
    /// the calibrated Cu/W/Ta ones; these tests only need smoothness).
    fn toy() -> EamPotential<f64> {
        let rc = 4.0f64;
        let smooth = move |r: f64| {
            let rs = 0.8 * rc;
            if r <= rs {
                1.0
            } else if r >= rc {
                0.0
            } else {
                let x = (r - rs) / (rc - rs);
                2.0 * x * x * x - 3.0 * x * x + 1.0
            }
        };
        let phi = Spline::tabulate(0.5, rc, 600, |r| {
            let m = ((-2.0 * (r - 2.2)).exp() - 2.0 * (-(r - 2.2)).exp()) * 0.4;
            m * smooth(r)
        });
        let rho = Spline::tabulate(0.5, rc, 600, |r| (-1.2 * (r - 2.2)).exp() * smooth(r));
        let embed = Spline::tabulate(0.0, 40.0, 600, |d| {
            if d <= 0.0 {
                0.0
            } else {
                0.9 * (d / 8.0) * ((d / 8.0).ln() - 1.0)
            }
        });
        EamPotential {
            rho,
            phi,
            embed,
            cutoff: rc,
            mass: 60.0,
            rho_equilibrium: 8.0,
        }
    }

    fn cluster() -> Vec<Vec3<f64>> {
        vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(2.3, 0.1, -0.2),
            Vec3::new(0.3, 2.1, 0.4),
            Vec3::new(-1.9, 0.8, 1.1),
            Vec3::new(1.0, 1.2, 2.0),
            Vec3::new(-0.8, -1.7, -1.3),
        ]
    }

    #[test]
    fn forces_are_negative_energy_gradient() {
        let pot = toy();
        let pos = cluster();
        let out = pot.compute_bruteforce(&pos, open_disp);
        let eps = 1e-6;
        for i in 0..pos.len() {
            for axis in 0..3 {
                let mut p_plus = pos.clone();
                let mut p_minus = pos.clone();
                let a = p_plus[i].to_array();
                let mut ap = a;
                ap[axis] += eps;
                p_plus[i] = Vec3::from_array(ap);
                let mut am = a;
                am[axis] -= eps;
                p_minus[i] = Vec3::from_array(am);
                let e_p = pot.compute_bruteforce(&p_plus, open_disp).potential_energy;
                let e_m = pot.compute_bruteforce(&p_minus, open_disp).potential_energy;
                let fd = -(e_p - e_m) / (2.0 * eps);
                let f = out.forces[i].to_array()[axis];
                assert!(
                    (f - fd).abs() < 1e-5 * (1.0 + fd.abs()),
                    "atom {i} axis {axis}: analytic {f} vs fd {fd}"
                );
            }
        }
    }

    #[test]
    fn newtons_third_law_total_force_is_zero() {
        let pot = toy();
        let out = pot.compute_bruteforce(&cluster(), open_disp);
        let total: Vec3<f64> = out.forces.iter().copied().sum();
        assert!(total.norm() < 1e-10, "net force {total:?}");
    }

    #[test]
    fn neighbor_list_path_matches_bruteforce() {
        let pot = toy();
        let pos = cluster();
        let n = pos.len();
        let rc2 = pot.cutoff_sq();
        let neighbors: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                (0..n)
                    .filter(|&j| j != i && (pos[j] - pos[i]).norm_sq() < rc2)
                    .collect()
            })
            .collect();
        let a = pot.compute_bruteforce(&pos, open_disp);
        let b = pot.compute_with_neighbors(&pos, &neighbors, open_disp);
        assert!((a.potential_energy - b.potential_energy).abs() < 1e-10);
        for i in 0..n {
            assert!((a.forces[i] - b.forces[i]).norm() < 1e-10);
            assert!((a.densities[i] - b.densities[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn isolated_pair_beyond_cutoff_does_not_interact() {
        let pot = toy();
        let pos = vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(pot.cutoff + 0.1, 0.0, 0.0),
        ];
        let out = pot.compute_bruteforce(&pos, open_disp);
        // Densities are zero so embedding contributes F(0) ≈ 0.
        assert!(out.potential_energy.abs() < 1e-9);
        assert!(out.forces[0].norm() < 1e-12);
    }

    #[test]
    fn dimer_force_is_radial_and_antisymmetric() {
        let pot = toy();
        let pos = vec![Vec3::new(0.0, 0.0, 0.0), Vec3::new(1.9, 0.7, -0.4)];
        let out = pot.compute_bruteforce(&pos, open_disp);
        let u = (pos[1] - pos[0]).normalized();
        let f0 = out.forces[0];
        // Force on atom 0 must be parallel (or antiparallel) to the bond.
        let cross = f0.cross(u).norm();
        assert!(cross < 1e-12 * (1.0 + f0.norm()), "non-radial component");
        assert!((out.forces[0] + out.forces[1]).norm() < 1e-12);
    }

    #[test]
    fn per_atom_energies_sum_to_total() {
        let pot = toy();
        let out = pot.compute_bruteforce(&cluster(), open_disp);
        let sum: f64 = out.per_atom_energy.iter().sum();
        assert!((sum - out.potential_energy).abs() < 1e-9);
    }

    #[test]
    fn batched_potential_lanes_match_scalar_calls() {
        let pot = toy();
        let r = [0.9, 1.7, 2.6, 3.9];
        let (phi4, dphi4) = pot.pair4(r);
        let (rho4, drho4) = pot.density4(r);
        for l in 0..r.len() {
            let (phi, dphi) = pot.pair(r[l]);
            let (rho, drho) = pot.density(r[l]);
            assert_eq!(phi.to_bits(), phi4[l].to_bits(), "phi lane {l}");
            assert_eq!(dphi.to_bits(), dphi4[l].to_bits(), "dphi lane {l}");
            assert_eq!(rho.to_bits(), rho4[l].to_bits(), "rho lane {l}");
            assert_eq!(drho.to_bits(), drho4[l].to_bits(), "drho lane {l}");
        }
        let d = [0.5, 4.0, 11.0, 31.5];
        let (f4, fp4) = pot.embedding4(d);
        for l in 0..d.len() {
            let (f, fp) = pot.embedding(d[l]);
            assert_eq!(f.to_bits(), f4[l].to_bits(), "embed lane {l}");
            assert_eq!(fp.to_bits(), fp4[l].to_bits(), "embed' lane {l}");
        }
    }

    #[test]
    fn f32_cast_tracks_f64_forces() {
        let pot = toy();
        let pot32: EamPotential<f32> = pot.cast();
        let pos = cluster();
        let pos32: Vec<Vec3<f32>> = pos.iter().map(|p| p.cast()).collect();
        let out64 = pot.compute_bruteforce(&pos, open_disp);
        let out32 = pot32.compute_bruteforce(&pos32, open_disp);
        for i in 0..pos.len() {
            let f64v = out64.forces[i];
            let f32v: Vec3<f64> = out32.forces[i].cast();
            let scale = 1.0 + f64v.norm();
            assert!(
                (f64v - f32v).norm() / scale < 1e-4,
                "atom {i}: {f64v:?} vs {f32v:?}"
            );
        }
    }
}
