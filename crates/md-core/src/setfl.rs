//! LAMMPS `eam/alloy` (setfl) tabulated-potential interchange.
//!
//! The paper's reference runs use published setfl potentials (Adams Cu,
//! Zhou W, Li Ta) through LAMMPS. We cannot redistribute those files,
//! but this module closes the interoperability gap from our side: any
//! [`crate::materials::Material`] can be exported as a
//! standards-conforming single-element setfl file (runnable in LAMMPS
//! with `pair_style eam/alloy`), and external setfl files can be
//! imported as an [`EamPotential`] — so users with the original
//! potentials can drop them straight into this engine.
//!
//! Format (as consumed by LAMMPS `pair_eam_alloy`):
//!
//! ```text
//! 3 comment lines
//! Nelements Element1 ...
//! Nrho drho Nr dr cutoff
//! per element: "atomic-number mass lattice-constant structure"
//!              F(rho): Nrho values;  rho(r): Nr values
//! phi tables: r*phi(r) for each pair, Nr values
//! ```

use crate::eam::EamPotential;
use crate::materials::Material;
use crate::spline::Spline;
use std::fmt::Write as _;

/// A parsed single-element setfl file.
#[derive(Clone, Debug)]
pub struct SetflData {
    pub element: String,
    pub atomic_number: u32,
    pub mass: f64,
    pub lattice_constant: f64,
    pub structure: String,
    pub nrho: usize,
    pub drho: f64,
    pub nr: usize,
    pub dr: f64,
    pub cutoff: f64,
    /// Embedding F(ρ), `nrho` samples at spacing `drho` from 0.
    pub f_embed: Vec<f64>,
    /// Density ρ(r), `nr` samples at spacing `dr` from 0.
    pub rho: Vec<f64>,
    /// Pair term stored LAMMPS-style as r·φ(r), `nr` samples.
    pub rphi: Vec<f64>,
}

/// Error type for setfl parsing.
#[derive(Debug)]
pub struct SetflError(pub String);

impl std::fmt::Display for SetflError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "setfl parse error: {}", self.0)
    }
}

impl std::error::Error for SetflError {}

fn atomic_number(symbol: &str) -> u32 {
    match symbol {
        "Cu" => 29,
        "W" => 74,
        "Ta" => 73,
        _ => 0,
    }
}

/// Export a calibrated material as setfl text.
pub fn export_material(material: &Material, nrho: usize, nr: usize) -> String {
    assert!(nrho >= 4 && nr >= 4);
    let cutoff = material.cutoff;
    let rho_max = 3.0 * material.rho_e;
    let drho = rho_max / (nrho - 1) as f64;
    let dr = cutoff / (nr - 1) as f64;

    let mut out = String::new();
    let _ = writeln!(out, "wafer-md analytic EAM for {}", material.species.name());
    let _ = writeln!(
        out,
        "calibrated: a0 = {} A, Ec = {} eV, rcut = {} A",
        material.lattice_a, material.cohesive_energy, cutoff
    );
    let _ = writeln!(
        out,
        "reproduction of SC24 wafer-scale MD paper; see DESIGN.md"
    );
    let _ = writeln!(out, "1 {}", material.species.symbol());
    let _ = writeln!(out, "{nrho} {drho:.16e} {nr} {dr:.16e} {cutoff:.16e}");
    let structure = match material.crystal {
        crate::lattice::Crystal::Fcc => "fcc",
        crate::lattice::Crystal::Bcc => "bcc",
    };
    let _ = writeln!(
        out,
        "{} {:.6} {:.6} {}",
        atomic_number(material.species.symbol()),
        material.mass,
        material.lattice_a,
        structure
    );
    let mut write_block = |values: &[f64]| {
        for chunk in values.chunks(5) {
            let line: Vec<String> = chunk.iter().map(|v| format!("{v:.16e}")).collect();
            let _ = writeln!(out, "{}", line.join(" "));
        }
    };
    let f_embed: Vec<f64> = (0..nrho).map(|i| material.embed(i as f64 * drho)).collect();
    write_block(&f_embed);
    let rho: Vec<f64> = (0..nr).map(|i| material.rho(i as f64 * dr)).collect();
    write_block(&rho);
    let rphi: Vec<f64> = (0..nr)
        .map(|i| {
            let r = i as f64 * dr;
            r * material.phi(r)
        })
        .collect();
    write_block(&rphi);
    out
}

/// Parse a single-element setfl file.
pub fn parse(text: &str) -> Result<SetflData, SetflError> {
    let mut tokens_after_header: Vec<&str> = Vec::new();
    let lines: Vec<&str> = text.lines().collect();
    if lines.len() < 6 {
        return Err(SetflError("file too short".into()));
    }
    // Line 3 (0-indexed): element count + names.
    let elem_line: Vec<&str> = lines[3].split_whitespace().collect();
    if elem_line.is_empty() {
        return Err(SetflError("missing element line".into()));
    }
    let n_elem: usize = elem_line[0]
        .parse()
        .map_err(|_| SetflError("bad element count".into()))?;
    if n_elem != 1 {
        return Err(SetflError(format!(
            "only single-element files supported, got {n_elem}"
        )));
    }
    let element = elem_line
        .get(1)
        .ok_or_else(|| SetflError("missing element symbol".into()))?
        .to_string();

    // Line 4: nrho drho nr dr cutoff.
    let grid: Vec<&str> = lines[4].split_whitespace().collect();
    if grid.len() != 5 {
        return Err(SetflError("bad grid line".into()));
    }
    let nrho: usize = grid[0].parse().map_err(|_| SetflError("bad nrho".into()))?;
    let drho: f64 = grid[1].parse().map_err(|_| SetflError("bad drho".into()))?;
    let nr: usize = grid[2].parse().map_err(|_| SetflError("bad nr".into()))?;
    let dr: f64 = grid[3].parse().map_err(|_| SetflError("bad dr".into()))?;
    let cutoff: f64 = grid[4]
        .parse()
        .map_err(|_| SetflError("bad cutoff".into()))?;

    // Line 5: element header.
    let hdr: Vec<&str> = lines[5].split_whitespace().collect();
    if hdr.len() < 4 {
        return Err(SetflError("bad per-element header".into()));
    }
    let atomic_number: u32 = hdr[0].parse().map_err(|_| SetflError("bad Z".into()))?;
    let mass: f64 = hdr[1].parse().map_err(|_| SetflError("bad mass".into()))?;
    let lattice_constant: f64 = hdr[2].parse().map_err(|_| SetflError("bad a0".into()))?;
    let structure = hdr[3].to_string();

    for line in &lines[6..] {
        tokens_after_header.extend(line.split_whitespace());
    }
    let needed = nrho + 2 * nr;
    if tokens_after_header.len() < needed {
        return Err(SetflError(format!(
            "expected {needed} table values, found {}",
            tokens_after_header.len()
        )));
    }
    let mut values = Vec::with_capacity(needed);
    for t in &tokens_after_header[..needed] {
        values.push(
            t.parse::<f64>()
                .map_err(|_| SetflError(format!("bad table value '{t}'")))?,
        );
    }
    let f_embed = values[..nrho].to_vec();
    let rho = values[nrho..nrho + nr].to_vec();
    let rphi = values[nrho + nr..].to_vec();

    Ok(SetflData {
        element,
        atomic_number,
        mass,
        lattice_constant,
        structure,
        nrho,
        drho,
        nr,
        dr,
        cutoff,
        f_embed,
        rho,
        rphi,
    })
}

impl SetflData {
    /// Build the engine's spline-table potential from the parsed data.
    /// The pair table is converted from LAMMPS's r·φ form back to φ,
    /// with φ(0) extrapolated from the first nonzero sample.
    pub fn to_potential(&self) -> EamPotential<f64> {
        let embed = Spline::from_samples(0.0, self.drho, &self.f_embed);
        let rho = Spline::from_samples(0.0, self.dr, &self.rho);
        let phi_samples: Vec<f64> = self
            .rphi
            .iter()
            .enumerate()
            .map(|(i, rphi)| {
                if i == 0 {
                    // φ(0) is never evaluated (r² > 0 guard); extend flat.
                    self.rphi[1] / self.dr
                } else {
                    rphi / (i as f64 * self.dr)
                }
            })
            .collect();
        let phi = Spline::from_samples(0.0, self.dr, &phi_samples);
        EamPotential {
            rho,
            phi,
            embed,
            cutoff: self.cutoff,
            mass: self.mass,
            rho_equilibrium: 0.0, // unknown for external files
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eam::open_disp;
    use crate::materials::Species;
    use crate::vec3::V3d;

    #[test]
    fn export_parse_round_trip_preserves_metadata() {
        let m = Material::new(Species::Ta);
        let text = export_material(&m, 500, 500);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.element, "Ta");
        assert_eq!(parsed.atomic_number, 73);
        assert!((parsed.mass - m.mass).abs() < 1e-5);
        assert!((parsed.cutoff - m.cutoff).abs() < 1e-12);
        assert_eq!(parsed.structure, "bcc");
        assert_eq!(parsed.nrho, 500);
        assert_eq!(parsed.nr, 500);
    }

    #[test]
    fn round_tripped_potential_reproduces_forces() {
        let m = Material::new(Species::Cu);
        let original = m.potential();
        let round_tripped = parse(&export_material(&m, 1500, 1500))
            .unwrap()
            .to_potential();

        let pos = vec![
            V3d::new(0.0, 0.0, 0.0),
            V3d::new(2.5, 0.2, 0.1),
            V3d::new(0.3, 2.6, -0.2),
            V3d::new(-2.2, 0.4, 1.0),
        ];
        let a = original.compute_bruteforce(&pos, open_disp);
        let b = round_tripped.compute_bruteforce(&pos, open_disp);
        assert!(
            (a.potential_energy - b.potential_energy).abs() < 1e-4,
            "{} vs {}",
            a.potential_energy,
            b.potential_energy
        );
        for i in 0..pos.len() {
            let err = (a.forces[i] - b.forces[i]).norm() / (1.0 + a.forces[i].norm());
            assert!(err < 1e-3, "atom {i}: {err}");
        }
    }

    #[test]
    fn round_tripped_potential_keeps_the_lattice_stable() {
        let m = Material::new(Species::W);
        let pot = parse(&export_material(&m, 2000, 2000))
            .unwrap()
            .to_potential();
        let e = |a: f64| -> f64 {
            let ds = m.crystal.neighbor_displacements(a, m.cutoff);
            let pair: f64 = 0.5 * ds.iter().map(|d| pot.phi.eval(d.norm())).sum::<f64>();
            let dens: f64 = ds.iter().map(|d| pot.rho.eval(d.norm())).sum();
            pair + pot.embed.eval(dens)
        };
        let e0 = e(m.lattice_a);
        assert!(e(0.98 * m.lattice_a) > e0);
        assert!(e(1.02 * m.lattice_a) > e0);
        assert!((e0 + m.cohesive_energy).abs() < 0.01, "E0 = {e0}");
    }

    #[test]
    fn malformed_files_are_rejected_with_context() {
        assert!(parse("too\nshort").is_err());
        let m = Material::new(Species::Ta);
        let text = export_material(&m, 100, 100);
        // Corrupt the element count.
        let bad = text.replacen("1 Ta", "2 Ta W", 1);
        let err = parse(&bad).unwrap_err();
        assert!(err.to_string().contains("single-element"));
        // Truncate the tables.
        let truncated: String = text.lines().take(10).collect::<Vec<_>>().join("\n");
        assert!(parse(&truncated).is_err());
    }

    #[test]
    fn exported_tables_use_lammps_rphi_convention() {
        let m = Material::new(Species::Ta);
        let parsed = parse(&export_material(&m, 200, 200)).unwrap();
        // Check a mid-table point: rphi[i] == r * phi(r).
        let i = 120;
        let r = i as f64 * parsed.dr;
        assert!((parsed.rphi[i] - r * m.phi(r)).abs() < 1e-9);
        // And the density table matches the analytic density.
        assert!((parsed.rho[i] - m.rho(r)).abs() < 1e-9);
    }
}
