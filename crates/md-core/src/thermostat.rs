//! Velocity initialization and equilibration.
//!
//! The paper equilibrates each benchmark configuration in LAMMPS for 20k
//! timesteps at 290 K before measuring. We reproduce that with
//! Maxwell–Boltzmann velocity initialization followed by a simple
//! velocity-rescale thermostat during a warm-up phase.

use crate::units::{self, MVV_TO_ENERGY};
use crate::vec3::V3d;
use rand::Rng;
use rand_distr::{Distribution, StandardNormal};

/// Draw one standard-normal variate (pinned to `f64`).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    Distribution::<f64>::sample(&StandardNormal, rng)
}

/// Draw Maxwell–Boltzmann velocities at temperature `t` (K) for atoms of
/// mass `mass` (amu), remove center-of-mass drift, and rescale to hit the
/// target temperature exactly.
pub fn maxwell_boltzmann<R: Rng + ?Sized>(rng: &mut R, n: usize, mass: f64, t: f64) -> Vec<V3d> {
    if n == 0 {
        return Vec::new();
    }
    // σ_v = sqrt(kB T / m) in Å/ps: kB T [eV] / (m [amu] · MVV_TO_ENERGY).
    let sigma = (units::KB * t / (mass * MVV_TO_ENERGY)).sqrt();
    let mut v: Vec<V3d> = (0..n)
        .map(|_| {
            V3d::new(
                sigma * standard_normal(rng),
                sigma * standard_normal(rng),
                sigma * standard_normal(rng),
            )
        })
        .collect();
    remove_com_drift(&mut v);
    rescale_to_temperature(&mut v, mass, t);
    v
}

/// Subtract the mean velocity so net momentum is zero.
pub fn remove_com_drift(velocities: &mut [V3d]) {
    if velocities.is_empty() {
        return;
    }
    let mean = velocities.iter().copied().sum::<V3d>() / velocities.len() as f64;
    for v in velocities.iter_mut() {
        *v -= mean;
    }
}

/// Rescale velocities so the instantaneous temperature equals `t` exactly.
/// No-op if the system is at rest or `t` ≤ 0.
pub fn rescale_to_temperature(velocities: &mut [V3d], mass: f64, t: f64) {
    let n = velocities.len();
    if n == 0 || t <= 0.0 {
        return;
    }
    let ke: f64 = 0.5 * mass * MVV_TO_ENERGY * velocities.iter().map(|v| v.norm_sq()).sum::<f64>();
    if ke <= 0.0 {
        return;
    }
    let current = units::temperature_from_ke(ke, n);
    let lambda = (t / current).sqrt();
    for v in velocities.iter_mut() {
        *v = v.scale(lambda);
    }
}

/// One Langevin-thermostat kick (BBK-style): friction plus matched
/// stochastic forcing,
/// `v ← v·(1−γΔt) + √(2γ·kB·T·Δt / (m·MVV)) · ξ`,
/// which drives the system to the canonical distribution at `t` K.
/// Apply once per timestep after the deterministic force kick.
pub fn langevin_kick<R: Rng + ?Sized>(
    rng: &mut R,
    velocities: &mut [V3d],
    mass: f64,
    gamma: f64,
    t: f64,
    dt: f64,
) {
    assert!(gamma >= 0.0 && dt >= 0.0);
    let damp = 1.0 - gamma * dt;
    let sigma = (2.0 * gamma * units::KB * t * dt / (mass * MVV_TO_ENERGY)).sqrt();
    for v in velocities.iter_mut() {
        *v = v.scale(damp)
            + V3d::new(
                sigma * standard_normal(rng),
                sigma * standard_normal(rng),
                sigma * standard_normal(rng),
            );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::temperature_from_ke;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn temperature(v: &[V3d], mass: f64) -> f64 {
        let ke: f64 = 0.5 * mass * MVV_TO_ENERGY * v.iter().map(|x| x.norm_sq()).sum::<f64>();
        temperature_from_ke(ke, v.len())
    }

    #[test]
    fn maxwell_boltzmann_hits_target_temperature_exactly() {
        let mut rng = StdRng::seed_from_u64(42);
        let v = maxwell_boltzmann(&mut rng, 5000, 180.9479, 290.0);
        assert!((temperature(&v, 180.9479) - 290.0).abs() < 1e-9);
    }

    #[test]
    fn maxwell_boltzmann_has_zero_net_momentum() {
        let mut rng = StdRng::seed_from_u64(7);
        let v = maxwell_boltzmann(&mut rng, 1000, 63.546, 290.0);
        let p: V3d = v.iter().copied().sum();
        assert!(p.norm() < 1e-10);
    }

    #[test]
    fn velocity_components_are_roughly_gaussian() {
        // Check the second and fourth moments of the x-component against a
        // Gaussian (kurtosis 3) to catch distribution bugs.
        let mut rng = StdRng::seed_from_u64(1234);
        let mass = 100.0;
        let t = 300.0;
        let v = maxwell_boltzmann(&mut rng, 200_000, mass, t);
        let sigma2_expected = units::KB * t / (mass * MVV_TO_ENERGY);
        let m2: f64 = v.iter().map(|x| x.x * x.x).sum::<f64>() / v.len() as f64;
        let m4: f64 = v.iter().map(|x| x.x.powi(4)).sum::<f64>() / v.len() as f64;
        assert!((m2 / sigma2_expected - 1.0).abs() < 0.02, "m2 {m2}");
        let kurtosis = m4 / (m2 * m2);
        assert!((kurtosis - 3.0).abs() < 0.1, "kurtosis {kurtosis}");
    }

    #[test]
    fn rescale_is_exact_and_preserves_direction() {
        let mut v = vec![V3d::new(1.0, 0.0, 0.0), V3d::new(-1.0, 0.0, 0.0)];
        rescale_to_temperature(&mut v, 50.0, 600.0);
        assert!((temperature(&v, 50.0) - 600.0).abs() < 1e-9);
        assert!(v[0].y == 0.0 && v[0].z == 0.0);
        assert!((v[0] + v[1]).norm() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_are_handled() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(maxwell_boltzmann(&mut rng, 0, 1.0, 300.0).is_empty());
        let mut at_rest = vec![V3d::zero(); 5];
        rescale_to_temperature(&mut at_rest, 10.0, 300.0);
        assert!(at_rest.iter().all(|v| v.norm() == 0.0));
        remove_com_drift(&mut []);
    }

    #[test]
    fn langevin_equilibrates_free_particles_to_target_temperature() {
        // No conservative forces: the stationary temperature is set by
        // the fluctuation-dissipation balance alone.
        let mut rng = StdRng::seed_from_u64(77);
        let mass = 100.0;
        let target = 400.0;
        let dt = 2e-3;
        let gamma = 20.0; // 1/ps (fast thermalization keeps the test cheap)
        let mut v = vec![V3d::zero(); 1500];
        // Burn in, then average the instantaneous temperature.
        for _ in 0..300 {
            langevin_kick(&mut rng, &mut v, mass, gamma, target, dt);
        }
        let mut acc = 0.0;
        let samples = 200;
        for _ in 0..samples {
            langevin_kick(&mut rng, &mut v, mass, gamma, target, dt);
            acc += temperature(&v, mass);
        }
        let mean_t = acc / samples as f64;
        assert!(
            (mean_t - target).abs() / target < 0.05,
            "equilibrated at {mean_t} K, target {target} K"
        );
    }

    #[test]
    fn langevin_with_zero_friction_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v = vec![V3d::new(1.0, -2.0, 0.5); 3];
        let before = v.clone();
        langevin_kick(&mut rng, &mut v, 50.0, 0.0, 300.0, 2e-3);
        for (a, b) in v.iter().zip(&before) {
            assert_eq!(a, b);
        }
    }
}
