//! Property-based tests for the MD substrate's core invariants.

use md_core::eam::open_disp;
use md_core::materials::{Material, Species};
use md_core::spline::Spline;
use md_core::system::Box3;
use md_core::vec3::V3d;
use proptest::prelude::*;

fn arb_vec3(range: f64) -> impl Strategy<Value = V3d> {
    (-range..range, -range..range, -range..range).prop_map(|(x, y, z)| V3d::new(x, y, z))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Minimum-image displacements never exceed half the box per axis.
    #[test]
    fn minimum_image_is_within_half_box(
        a in arb_vec3(30.0),
        b in arb_vec3(30.0),
        lx in 4.0f64..20.0,
        ly in 4.0f64..20.0,
        lz in 4.0f64..20.0,
    ) {
        let bbox = Box3::periodic(V3d::new(lx, ly, lz));
        let d = bbox.displacement(a, b);
        prop_assert!(d.x.abs() <= lx / 2.0 + 1e-9);
        prop_assert!(d.y.abs() <= ly / 2.0 + 1e-9);
        prop_assert!(d.z.abs() <= lz / 2.0 + 1e-9);
    }

    /// Minimum image is antisymmetric: d(a,b) = −d(b,a).
    #[test]
    fn minimum_image_is_antisymmetric(
        a in arb_vec3(30.0),
        b in arb_vec3(30.0),
        l in 4.0f64..25.0,
    ) {
        let bbox = Box3::periodic(V3d::new(l, l, l));
        let fwd = bbox.displacement(a, b);
        let bwd = bbox.displacement(b, a);
        prop_assert!((fwd + bwd).norm() < 1e-9);
    }

    /// Wrapped positions are physically identical: displacements to any
    /// third point are preserved.
    #[test]
    fn wrapping_preserves_displacements(
        a in arb_vec3(50.0),
        c in arb_vec3(50.0),
        l in 5.0f64..30.0,
    ) {
        let bbox = Box3::periodic(V3d::new(l, l, l));
        let before = bbox.displacement(a, c);
        let after = bbox.displacement(bbox.wrap(a), c);
        prop_assert!((before - after).norm() < 1e-9, "{before:?} vs {after:?}");
    }

    /// Natural cubic splines interpolate their knots exactly and stay
    /// bounded by the sample extremes on smooth monotone data.
    #[test]
    fn spline_interpolates_knots(offset in -5.0f64..5.0, scale in 0.1f64..3.0) {
        let f = move |x: f64| offset + scale * x + (0.3 * x).sin();
        let s = Spline::<f64>::tabulate(0.0, 8.0, 40, f);
        for i in 0..40 {
            let x = 8.0 * i as f64 / 39.0;
            prop_assert!((s.eval(x) - f(x)).abs() < 1e-9);
        }
    }

    /// Spline derivative is consistent with a finite difference of the
    /// spline itself (not of the source function) everywhere in-domain.
    #[test]
    fn spline_derivative_consistent(x in 0.5f64..7.5) {
        let s = Spline::<f64>::tabulate(0.0, 8.0, 60, |t| (t * 0.7).cos() + 0.1 * t * t);
        let eps = 1e-7;
        let fd = (s.eval(x + eps) - s.eval(x - eps)) / (2.0 * eps);
        prop_assert!((s.eval_deriv(x) - fd).abs() < 1e-5);
    }

    /// EAM forces on random clusters are the exact negative gradient of
    /// the potential energy (checked on one random atom and axis).
    #[test]
    fn eam_force_is_negative_gradient(
        seedlings in proptest::collection::vec(arb_vec3(4.0), 3..8),
        pick in 0usize..8,
        axis in 0usize..3,
    ) {
        // Reject configurations with overlapping atoms (forces diverge).
        let mut pos = seedlings;
        for i in 0..pos.len() {
            for j in (i + 1)..pos.len() {
                prop_assume!((pos[i] - pos[j]).norm() > 1.6);
            }
        }
        let i = pick % pos.len();
        let pot = Material::new(Species::Cu).potential();
        let out = pot.compute_bruteforce(&pos, open_disp);
        let eps = 1e-6;
        let mut plus = pos.clone();
        let mut arr = plus[i].to_array();
        arr[axis] += eps;
        plus[i] = V3d::from_array(arr);
        let mut minus = pos.clone();
        let mut arr = minus[i].to_array();
        arr[axis] -= eps;
        minus[i] = V3d::from_array(arr);
        let ep = pot.compute_bruteforce(&plus, open_disp).potential_energy;
        let em = pot.compute_bruteforce(&minus, open_disp).potential_energy;
        let fd = -(ep - em) / (2.0 * eps);
        let f = out.forces[i].to_array()[axis];
        prop_assert!(
            (f - fd).abs() < 1e-4 * (1.0 + fd.abs()),
            "force {f} vs gradient {fd}"
        );
        pos.clear(); // silence unused-mut lint paths
    }

    /// Total EAM force on any isolated cluster vanishes (Newton's third
    /// law survives arbitrary geometry).
    #[test]
    fn eam_net_force_vanishes(
        cluster in proptest::collection::vec(arb_vec3(5.0), 2..10),
    ) {
        for i in 0..cluster.len() {
            for j in (i + 1)..cluster.len() {
                prop_assume!((cluster[i] - cluster[j]).norm() > 1.5);
            }
        }
        let pot = Material::new(Species::Ta).potential();
        let out = pot.compute_bruteforce(&cluster, open_disp);
        let net: V3d = out.forces.iter().copied().sum();
        let scale: f64 = out.forces.iter().map(|f| f.norm()).fold(1.0, f64::max);
        prop_assert!(net.norm() < 1e-9 * scale);
    }
}
