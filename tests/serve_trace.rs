//! Structured-event-trace integration tests: tracing must be
//! byte-invisible to every deterministic artifact (the drain report,
//! cached `report.txt` and `counters.json`), while the trace file
//! itself is a complete, well-formed record of the request lifecycle —
//! every admitted request appears exactly once, timestamps are
//! monotone, and every line parses as compact JSON.

mod common;

use std::path::{Path, PathBuf};
use std::sync::Arc;

use common::{fixture_spec, header, http, scratch};
use wafer_md::json::Value;
use wafer_md::serve::{
    drain_file, drain_file_with, CacheBudget, ResultCache, ServeConfig, ServeMetrics, Server,
};

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// Parse a trace file into `(event, key)` pairs in file order,
/// asserting the whole-file contract on the way: every line is a
/// compact JSON object whose first field is `event` and whose last
/// field is the monotone-nondecreasing timestamp `t_us`, and every
/// `key` is 16 lowercase hex characters.
fn parse_trace(path: &Path) -> Vec<(String, Option<String>)> {
    let text = std::fs::read_to_string(path).expect("trace file exists");
    let mut last_t = 0u64;
    let mut events = Vec::new();
    for line in text.lines() {
        assert!(
            line.starts_with("{\"event\":\"") && line.ends_with('}'),
            "trace line must lead with its event kind: {line}"
        );
        let v = Value::parse(line).unwrap_or_else(|e| panic!("malformed trace line {line}: {e}"));
        let event = v
            .get("event")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("trace line without event: {line}"))
            .to_string();
        let t = v
            .get("t_us")
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("trace line without t_us: {line}"));
        assert!(
            line.contains(&format!(",\"t_us\":{t}}}")),
            "t_us must be the last field so a timing filter strips it: {line}"
        );
        assert!(t >= last_t, "timestamps went backwards at: {line}");
        last_t = t;
        let key = v.get("key").and_then(Value::as_str).map(str::to_string);
        if let Some(key) = &key {
            assert!(
                key.len() == 16
                    && key
                        .bytes()
                        .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase()),
                "malformed cache key in trace: {line}"
            );
        }
        events.push((event, key));
    }
    events
}

/// The keys of all events of one kind, in file order.
fn keys_of<'a>(events: &'a [(String, Option<String>)], kind: &str) -> Vec<&'a str> {
    events
        .iter()
        .filter(|(e, _)| e == kind)
        .map(|(_, k)| {
            k.as_deref()
                .unwrap_or_else(|| panic!("{kind} event without key"))
        })
        .collect()
}

#[test]
fn drain_with_tracing_is_byte_invisible_and_records_every_admission_once() {
    let root = scratch("trace-drain");
    std::fs::create_dir_all(&root).unwrap();
    let requests = repo_path("tests/fixtures/serve-requests.jsonl");
    let golden = std::fs::read(repo_path("tests/golden/serve-drain-cold.txt")).unwrap();

    // A plain drain and a traced drain over fresh caches: stdout must
    // be byte-identical to the golden either way — the trace writer is
    // observability, never part of the deterministic surface.
    let mut plain = Vec::new();
    let cache = ResultCache::open_bounded(root.join("plain"), CacheBudget::UNBOUNDED).unwrap();
    drain_file(cache, &requests, &mut plain).unwrap();
    assert_eq!(plain, golden, "untraced drain reproduces the golden");

    let trace_path = root.join("drain-trace.jsonl");
    let mut traced = Vec::new();
    let metrics =
        Arc::new(ServeMetrics::with_trace(0, &trace_path).expect("create the trace file"));
    let cache = ResultCache::open_bounded(root.join("traced"), CacheBudget::UNBOUNDED).unwrap();
    drain_file_with(cache, &requests, &mut traced, Arc::clone(&metrics)).unwrap();
    metrics.flush_trace();
    assert_eq!(traced, golden, "tracing never changes a drain byte");

    // The cached artifacts must also match byte for byte across the
    // traced and untraced runs, for every key the drain produced.
    let keys = ["be33b34cae2c7158", "27227cd96b5e9ec8"];
    for key in keys {
        for artifact in ["report.txt", "counters.json"] {
            let plain = std::fs::read(root.join("plain").join(key).join(artifact)).unwrap();
            let traced = std::fs::read(root.join("traced").join(key).join(artifact)).unwrap();
            assert_eq!(plain, traced, "{key}/{artifact} diverged under tracing");
        }
    }

    // The trace itself: three valid requests, so exactly three
    // admission-outcome events, in request-file order, matching the
    // golden dispositions (run / coalesced / run) — and each admitted
    // request runs and batches exactly once.
    let events = parse_trace(&trace_path);
    assert_eq!(keys_of(&events, "admitted"), vec![keys[0], keys[1]]);
    assert_eq!(keys_of(&events, "coalesced"), vec![keys[0]]);
    assert!(keys_of(&events, "hit").is_empty(), "cold drain has no hits");
    let mut batched = keys_of(&events, "batched");
    batched.sort_unstable();
    let mut expected = keys.to_vec();
    expected.sort_unstable();
    assert_eq!(batched, expected, "each admitted key batched exactly once");
    let mut ran = keys_of(&events, "run");
    ran.sort_unstable();
    assert_eq!(ran, expected, "each admitted key ran exactly once");
    assert!(
        keys_of(&events, "evicted").is_empty(),
        "unbounded cache never evicts"
    );
    let (emitted, dropped) = metrics.trace_counts();
    assert_eq!(
        emitted,
        events.len() as u64,
        "every emitted event reached the file"
    );
    assert_eq!(dropped, 0, "nothing dropped at drain pace");

    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn http_serving_traces_the_full_lifecycle() {
    let root = scratch("trace-http");
    std::fs::create_dir_all(&root).unwrap();
    let trace_path = root.join("serve-trace.jsonl");
    let metrics =
        Arc::new(ServeMetrics::with_trace(2, &trace_path).expect("create the trace file"));
    let cache = ResultCache::open_bounded(root.join("cache"), CacheBudget::UNBOUNDED).unwrap();
    let config = ServeConfig {
        threads: 2,
        ..ServeConfig::default()
    };
    let mut server =
        Server::bind_metrics("127.0.0.1:0", cache, config, Arc::clone(&metrics)).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve().unwrap());

    let spec = fixture_spec();
    let (status, headers, _) = http(addr, "POST", "/run", &spec.to_json());
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-wafer-cache"), "miss");
    let key = header(&headers, "x-wafer-key").to_string();
    let (status, headers, _) = http(addr, "POST", "/run", &spec.to_json());
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-wafer-cache"), "hit");

    // With a tracer attached, /stats reports live emission counters.
    let (_, _, stats) = http(addr, "GET", "/stats", "");
    let v = Value::parse(stats.trim()).unwrap();
    let emitted = v
        .get("trace")
        .and_then(|t| t.get("emitted"))
        .and_then(Value::as_u64)
        .unwrap();
    assert!(emitted > 0, "tracer counters surface in /stats: {stats}");
    assert_eq!(
        v.get("trace")
            .and_then(|t| t.get("dropped"))
            .and_then(Value::as_u64),
        Some(0)
    );

    let (status, _, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().expect("acceptor pool drains cleanly");
    metrics.flush_trace();

    let events = parse_trace(&trace_path);
    assert_eq!(
        keys_of(&events, "admitted"),
        vec![key.as_str()],
        "one admission for the miss"
    );
    assert_eq!(
        keys_of(&events, "hit"),
        vec![key.as_str()],
        "one hit for the repeat"
    );
    assert_eq!(
        keys_of(&events, "run"),
        vec![key.as_str()],
        "one engine run"
    );
    let accepted = events.iter().filter(|(e, _)| e == "accepted").count();
    // Four client connections above; shutdown wake-up connections may
    // add more.
    assert!(
        accepted >= 4,
        "every connection traces an accepted event: {accepted}"
    );
    assert!(
        keys_of(&events, "streamed").contains(&key.as_str()),
        "the run's response stream is traced"
    );

    std::fs::remove_dir_all(&root).unwrap();
}
