//! Concurrency stress tests for `wafer-md serve`: many client threads
//! firing shuffled duplicate, distinct, and malformed specs at an
//! acceptor pool, asserting the service's whole contract at once —
//! exactly one engine run per unique spec, every 200 body
//! byte-identical to a single-threaded golden run, the cache never
//! over budget, and a clean drain on shutdown.
//!
//! The pool width is `WAFER_MD_SERVE_THREADS` (default 4), so CI can
//! drive the same assertions at widths 1 and 4 — under the engines'
//! byte-determinism guarantee, no interleaving may change a single
//! byte of any response.

mod common;

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use common::{fixture_spec, header, http, scratch, KeepAliveClient};
use wafer_md::json::Value;
use wafer_md::scenario::{GhostPeriod, ScenarioSpec};
use wafer_md::serve::{run_spec, CacheBudget, ResultCache, ServeConfig, Server};

/// The acceptor-pool width under test.
fn serve_threads() -> usize {
    std::env::var("WAFER_MD_SERVE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// Pull one histogram object out of a parsed `/stats` document.
fn histogram<'a>(v: &'a Value, group: &str, name: &str) -> &'a Value {
    v.get(group)
        .and_then(|g| g.get(name))
        .unwrap_or_else(|| panic!("missing {group}.{name} histogram"))
}

/// The core histogram invariant: the bucket counts partition the
/// recorded values. Returns the count for further assertions.
fn buckets_partition_count(h: &Value, what: &str) -> u64 {
    let count = h.get("count").and_then(Value::as_u64).unwrap();
    let bucket_sum: u64 = h
        .get("buckets")
        .and_then(Value::as_arr)
        .unwrap()
        .iter()
        .map(|b| b.as_u64().unwrap())
        .sum();
    assert_eq!(
        bucket_sum, count,
        "{what}: bucket counts must sum to the record count"
    );
    count
}

/// Poll `/stats` until the service histogram has recorded `expected`
/// requests. The service clock stops after the response flush, so a
/// client can observe its own response a moment before the record
/// lands — quiescence is reached by polling, not assumed.
fn settled_stats(addr: std::net::SocketAddr, expected: u64) -> Value {
    for _ in 0..1000 {
        let (status, _, stats) = http(addr, "GET", "/stats", "");
        assert_eq!(status, 200);
        let v = Value::parse(stats.trim()).unwrap();
        let count = histogram(&v, "latency", "service")
            .get("count")
            .and_then(Value::as_u64)
            .unwrap();
        if count == expected {
            return v;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    panic!("service histogram never settled to {expected} records");
}

/// A deterministic splitmix-style step, so the request shuffle is
/// reproducible per client without a rand dependency.
fn next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// The unique specs of the storm: seed variants (distinct physics),
/// a sharded geometry variant (distinct key, byte-identical report),
/// and a trajectory variant (distinct key and artifacts, identical
/// report). Small enough that a full storm stays in test-suite
/// territory.
fn unique_specs() -> Vec<ScenarioSpec> {
    let base = {
        let mut s = fixture_spec();
        s.steps = 10;
        s
    };
    let mut specs = Vec::new();
    for seed in 0..4 {
        let mut s = base;
        s.seed = 100 + seed;
        specs.push(s);
    }
    let mut sharded = base;
    sharded.seed = 100;
    sharded.shards = 2;
    sharded.ghost_period = GhostPeriod::Every(4);
    specs.push(sharded);
    let mut with_xyz = base;
    with_xyz.seed = 101;
    with_xyz.xyz = true;
    specs.push(with_xyz);
    specs
}

#[test]
fn storm_of_duplicates_runs_each_unique_spec_exactly_once() {
    let root = scratch("stress-once");
    let specs = unique_specs();
    // The single-threaded golden: what every 200 body must equal,
    // byte for byte, regardless of interleaving or disposition.
    let golden: Vec<String> = specs.iter().map(|s| run_spec(s).report).collect();
    // The sharded variant proves report bytes carry no geometry.
    assert_eq!(golden[0], golden[4]);

    let budget = CacheBudget {
        max_bytes: u64::MAX,
        max_entries: specs.len(),
    };
    let cache = ResultCache::open_bounded(&root, budget).unwrap();
    let config = ServeConfig {
        threads: serve_threads(),
        ..ServeConfig::default()
    };
    let mut server = Server::bind_with("127.0.0.1:0", cache, config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve().unwrap());

    const CLIENTS: u64 = 8;
    const REQUESTS: u64 = 12;
    let requested: Mutex<HashSet<String>> = Mutex::new(HashSet::new());
    let valid = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let (specs, golden, requested, valid) = (&specs, &golden, &requested, &valid);
            scope.spawn(move || {
                let mut state = (client + 1).wrapping_mul(0x9e3779b97f4a7c15);
                for req in 0..REQUESTS {
                    let roll = next(&mut state);
                    if roll.is_multiple_of(7) {
                        // A malformed spec: answered 400, never admitted.
                        let (status, _, body) = http(addr, "POST", "/run", "pure garbage");
                        assert_eq!(status, 400, "client {client} req {req}");
                        assert!(body.contains("malformed scenario spec"), "{body}");
                        continue;
                    }
                    let i = roll as usize % specs.len();
                    let (status, headers, body) = http(addr, "POST", "/run", &specs[i].to_json());
                    assert_eq!(status, 200, "client {client} req {req}");
                    assert_eq!(header(&headers, "x-wafer-key"), specs[i].key());
                    assert!(
                        matches!(
                            header(&headers, "x-wafer-cache"),
                            "hit" | "miss" | "coalesced"
                        ),
                        "unexpected disposition"
                    );
                    assert_eq!(
                        body, golden[i],
                        "client {client} req {req}: response bytes diverged from the \
                         single-threaded golden"
                    );
                    requested.lock().unwrap().insert(specs[i].key());
                    valid.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
    });

    let distinct = requested.lock().unwrap().len() as u64;
    let valid = valid.load(Ordering::SeqCst);
    assert!(distinct >= 2, "the storm must touch multiple unique specs");

    let (status, _, stats) = http(addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    let v = Value::parse(stats.trim()).unwrap();
    let runs = v.get("runs").and_then(Value::as_u64).unwrap();
    let hits = v.get("cache_hits").and_then(Value::as_u64).unwrap();
    let coalesced = v.get("coalesced").and_then(Value::as_u64).unwrap();
    let batches = v.get("batches").and_then(Value::as_u64).unwrap();
    assert_eq!(runs, distinct, "exactly one engine run per unique spec");
    assert_eq!(v.get("requests").and_then(Value::as_u64), Some(valid));
    assert_eq!(
        runs + hits + coalesced,
        valid,
        "every request classified once"
    );
    assert!(batches >= 1 && batches <= runs, "batches cover the runs");
    assert_eq!(v.get("pending").and_then(Value::as_u64), Some(0));
    assert_eq!(v.get("evictions").and_then(Value::as_u64), Some(0));
    assert!(
        v.get("cache_entries").and_then(Value::as_u64).unwrap() <= specs.len() as u64,
        "cache stayed within its entry budget"
    );

    // The observability layer must agree with the counters once the
    // service histogram settles: every valid request recorded exactly
    // once, every queued job waited exactly once, every engine run
    // timed exactly once, and the batch histograms cover every pass.
    let v = settled_stats(addr, valid);
    let service = buckets_partition_count(histogram(&v, "latency", "service"), "service");
    assert_eq!(service, valid, "one service record per valid request");
    let waited = buckets_partition_count(histogram(&v, "latency", "queue_wait"), "queue_wait");
    assert_eq!(waited, runs, "one queue-wait record per admitted run");
    let timed = buckets_partition_count(histogram(&v, "latency", "engine_run"), "engine_run");
    assert_eq!(timed, runs, "one engine timing per run");
    let passes = buckets_partition_count(histogram(&v, "batch", "pass"), "batch.pass");
    assert_eq!(passes, batches, "one pass timing per batch");
    let occupancy = histogram(&v, "batch", "occupancy");
    buckets_partition_count(occupancy, "batch.occupancy");
    assert_eq!(
        occupancy.get("sum").and_then(Value::as_u64),
        Some(runs),
        "batch occupancy sums to the jobs executed"
    );
    let acceptors = v.get("acceptors").and_then(Value::as_arr).unwrap();
    assert_eq!(acceptors.len(), serve_threads(), "one counter per acceptor");
    let connections: u64 = acceptors.iter().map(|a| a.as_u64().unwrap()).sum();
    assert!(
        connections >= valid,
        "every valid request arrived on some acceptor: {connections} < {valid}"
    );

    let (status, _, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().expect("acceptor pool drains cleanly");
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn latency_ordering_holds_and_prometheus_exposition_is_well_formed() {
    let root = scratch("stress-latency");
    let specs = unique_specs();
    let cache = ResultCache::open_bounded(&root, CacheBudget::UNBOUNDED).unwrap();
    let config = ServeConfig {
        threads: 1,
        ..ServeConfig::default()
    };
    let mut server = Server::bind_with("127.0.0.1:0", cache, config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve().unwrap());

    // Sequential clients: each request's queue-wait interval nests
    // inside its service interval, so with one request in flight at a
    // time the histogram sums must order the same way.
    for spec in &specs {
        let (status, _, _) = http(addr, "POST", "/run", &spec.to_json());
        assert_eq!(status, 200);
    }
    let (status, headers, _) = http(addr, "POST", "/run", &specs[0].to_json());
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-wafer-cache"), "hit");
    let valid = specs.len() as u64 + 1;

    let v = settled_stats(addr, valid);
    let runs = v.get("runs").and_then(Value::as_u64).unwrap();
    assert_eq!(runs, specs.len() as u64);
    let service = histogram(&v, "latency", "service");
    let wait = histogram(&v, "latency", "queue_wait");
    let engine = histogram(&v, "latency", "engine_run");
    for (h, what) in [
        (service, "service"),
        (wait, "queue_wait"),
        (engine, "engine_run"),
    ] {
        buckets_partition_count(h, what);
    }
    let sum = |h: &Value| h.get("sum").and_then(Value::as_u64).unwrap();
    let max = |h: &Value| h.get("max").and_then(Value::as_u64).unwrap();
    assert!(
        sum(wait) <= sum(service),
        "queue wait nests inside service time: {} > {}",
        sum(wait),
        sum(service)
    );
    assert!(
        max(wait) <= max(service),
        "the longest wait belongs to some request that served at least as long"
    );
    // The sharded variant ran, so the per-shard phase clocks accrued.
    let shards = v.get("shards").unwrap_or_else(|| panic!("missing shards"));
    assert!(shards.get("integrate_us").and_then(Value::as_u64).unwrap() > 0);
    assert!(shards.get("exchange_us").and_then(Value::as_u64).unwrap() > 0);
    // No tracer attached: the trace counters stay zero.
    let trace = v.get("trace").unwrap_or_else(|| panic!("missing trace"));
    assert_eq!(trace.get("emitted").and_then(Value::as_u64), Some(0));
    assert_eq!(trace.get("dropped").and_then(Value::as_u64), Some(0));

    // The same state through the Prometheus text exposition: every
    // line well-formed, every histogram internally consistent.
    let (status, headers, prom) = http(addr, "GET", "/stats/prom", "");
    assert_eq!(status, 200);
    assert_eq!(
        header(&headers, "content-type"),
        "text/plain; version=0.0.4"
    );
    let mut service_buckets: Vec<f64> = Vec::new();
    let mut service_count = None;
    let mut requests_total = None;
    for line in prom.lines().filter(|l| !l.is_empty()) {
        if line.starts_with('#') {
            assert!(
                line.starts_with("# HELP wafer_md_") || line.starts_with("# TYPE wafer_md_"),
                "malformed comment line: {line}"
            );
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("bad line: {line}"));
        assert!(name.starts_with("wafer_md_"), "foreign metric: {line}");
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("bad value: {line}"));
        assert!(value.is_finite() && value >= 0.0, "bad value: {line}");
        if name.starts_with("wafer_md_request_service_seconds_bucket") {
            service_buckets.push(value);
        }
        if name == "wafer_md_request_service_seconds_count" {
            service_count = Some(value);
        }
        if name == "wafer_md_requests_total" {
            requests_total = Some(value);
        }
    }
    assert!(
        service_buckets.windows(2).all(|w| w[0] <= w[1]),
        "bucket counters must be cumulative: {service_buckets:?}"
    );
    assert_eq!(
        service_buckets.last().copied(),
        service_count,
        "the +Inf bucket equals the histogram count"
    );
    assert_eq!(requests_total, Some(valid as f64));

    let (status, _, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().expect("acceptor pool drains cleanly");
    std::fs::remove_dir_all(&root).unwrap();
}

/// Every file under `root`, as sorted (relative path, bytes) pairs —
/// for whole-cache byte comparisons.
fn dir_snapshot(root: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    fn walk(dir: &std::path::Path, base: &std::path::Path, out: &mut Vec<(String, Vec<u8>)>) {
        for entry in std::fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(&path, base, out);
            } else {
                let rel = path
                    .strip_prefix(base)
                    .unwrap()
                    .to_string_lossy()
                    .into_owned();
                out.push((rel, std::fs::read(&path).unwrap()));
            }
        }
    }
    let mut out = Vec::new();
    walk(root, root, &mut out);
    out.sort();
    out
}

#[test]
fn keep_alive_socket_matches_fresh_connections_byte_for_byte() {
    // The keep-alive conformance contract: the same 8-request mixed
    // hit/miss sequence, issued as 8 fresh connections against one
    // server and down a single persistent socket against an identical
    // second server, must produce pairwise byte-identical bodies and
    // dispositions — and leave byte-identical caches behind.
    let specs = unique_specs();
    let seq: [usize; 8] = [0, 1, 0, 2, 3, 1, 4, 5];
    let config = ServeConfig {
        threads: serve_threads(),
        ..ServeConfig::default()
    };

    let fresh_root = scratch("keepalive-fresh");
    let cache = ResultCache::open_bounded(&fresh_root, CacheBudget::UNBOUNDED).unwrap();
    let mut server = Server::bind_with("127.0.0.1:0", cache, config).unwrap();
    let fresh_addr = server.local_addr().unwrap();
    let fresh_handle = std::thread::spawn(move || server.serve().unwrap());
    let fresh: Vec<(String, String)> = seq
        .iter()
        .map(|&i| {
            let (status, headers, body) = http(fresh_addr, "POST", "/run", &specs[i].to_json());
            assert_eq!(status, 200);
            (header(&headers, "x-wafer-cache").to_string(), body)
        })
        .collect();

    let ka_root = scratch("keepalive-persistent");
    let cache = ResultCache::open_bounded(&ka_root, CacheBudget::UNBOUNDED).unwrap();
    let mut server = Server::bind_with("127.0.0.1:0", cache, config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve().unwrap());
    let mut client = KeepAliveClient::connect(addr);
    for (n, &i) in seq.iter().enumerate() {
        let (status, headers, body) = client.exchange("POST", "/run", &[], &specs[i].to_json());
        assert_eq!(status, 200, "request {n}");
        assert_eq!(
            header(&headers, "connection"),
            "keep-alive",
            "request {n} must not close the connection"
        );
        let (fresh_label, fresh_body) = &fresh[n];
        assert_eq!(
            header(&headers, "x-wafer-cache"),
            fresh_label,
            "request {n}"
        );
        assert_eq!(
            &body, fresh_body,
            "request {n}: keep-alive body diverged from the fresh-connection body"
        );
    }

    // The whole sequence rode one connection: exactly one reused
    // connection counted, nothing pipelined (each request waited for
    // the previous response).
    let v = settled_stats(addr, seq.len() as u64);
    let conns = v.get("connections").expect("connections stats object");
    assert_eq!(conns.get("reused").and_then(Value::as_u64), Some(1));
    assert_eq!(conns.get("pipelined").and_then(Value::as_u64), Some(0));
    assert_eq!(v.get("requests").and_then(Value::as_u64), Some(8));

    for (a, h) in [(fresh_addr, fresh_handle), (addr, handle)] {
        let (status, _, _) = http(a, "POST", "/shutdown", "");
        assert_eq!(status, 200);
        h.join().expect("acceptor pool drains cleanly");
    }
    // Same access sequence, clean shutdowns: the two cache trees are
    // byte-identical, index file included.
    assert_eq!(
        dir_snapshot(&fresh_root),
        dir_snapshot(&ka_root),
        "keep-alive serving must leave the same cache as fresh connections"
    );
    std::fs::remove_dir_all(&fresh_root).unwrap();
    std::fs::remove_dir_all(&ka_root).unwrap();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let root = scratch("pipeline");
    let specs = unique_specs();
    let golden: Vec<String> = specs.iter().map(|s| run_spec(s).report).collect();
    let cache = ResultCache::open_bounded(&root, CacheBudget::UNBOUNDED).unwrap();
    let config = ServeConfig {
        threads: serve_threads(),
        ..ServeConfig::default()
    };
    let mut server = Server::bind_with("127.0.0.1:0", cache, config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve().unwrap());

    // Three POSTs back-to-back before reading a single response byte:
    // two distinct misses, then a repeat of the first. The responses
    // must come back in request order with the right dispositions —
    // the repeat is a hit because request 1 completed before the
    // serial reader reached request 3.
    let mut client = KeepAliveClient::connect(addr);
    client.send("POST", "/run", &[], &specs[0].to_json());
    client.send("POST", "/run", &[], &specs[1].to_json());
    client.send("POST", "/run", &[], &specs[0].to_json());
    for (n, (i, want)) in [(0usize, "miss"), (1, "miss"), (0, "hit")]
        .iter()
        .enumerate()
    {
        let (status, headers, body) = client.read_response();
        assert_eq!(status, 200, "pipelined response {n}");
        assert_eq!(
            header(&headers, "x-wafer-key"),
            specs[*i].key(),
            "response {n}"
        );
        assert_eq!(header(&headers, "x-wafer-cache"), *want, "response {n}");
        assert_eq!(body, golden[*i], "pipelined response {n} body");
    }

    // At least the third request was already buffered when the server
    // went back to the socket (the client wrote everything before the
    // first run finished), so the pipelined counter moved.
    let v = settled_stats(addr, 3);
    let conns = v.get("connections").expect("connections stats object");
    assert!(
        conns.get("pipelined").and_then(Value::as_u64).unwrap() >= 1,
        "pipelined requests must be counted: {v:?}"
    );
    assert_eq!(conns.get("reused").and_then(Value::as_u64), Some(1));

    let (status, _, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().expect("acceptor pool drains cleanly");
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn max_requests_per_conn_caps_a_persistent_connection() {
    let root = scratch("conn-cap");
    let cache = ResultCache::open_bounded(&root, CacheBudget::UNBOUNDED).unwrap();
    let config = ServeConfig {
        threads: 2,
        max_requests_per_conn: 3,
        ..ServeConfig::default()
    };
    let mut server = Server::bind_with("127.0.0.1:0", cache, config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve().unwrap());

    let mut client = KeepAliveClient::connect(addr);
    for n in 0..3 {
        let (status, headers, _) = client.exchange("GET", "/stats", &[], "");
        assert_eq!(status, 200);
        let want = if n < 2 { "keep-alive" } else { "close" };
        assert_eq!(
            header(&headers, "connection"),
            want,
            "request {n} of a 3-request cap"
        );
    }
    assert!(
        client.at_eof(),
        "the server closes the socket at the request cap"
    );
    // A fresh connection is served normally afterwards.
    let (status, _, _) = http(addr, "GET", "/stats", "");
    assert_eq!(status, 200);

    let (status, _, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().expect("acceptor pool drains cleanly");
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn a_polite_client_is_not_starved_by_a_greedy_flood() {
    let root = scratch("fairness");
    let cache = ResultCache::open_bounded(&root, CacheBudget::UNBOUNDED).unwrap();
    // One worker per connection: three greedy sockets plus the polite
    // one all admit concurrently, so the queue actually interleaves.
    let config = ServeConfig {
        threads: 4,
        ..ServeConfig::default()
    };
    let mut server = Server::bind_with("127.0.0.1:0", cache, config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve().unwrap());

    // Greedy: three persistent connections under ONE client identity,
    // flooding distinct sharded specs (a different batch class than
    // the polite client's plain specs, so fairness stops are
    // observable). Polite: one connection, a handful of distinct
    // specs, each round trip timed.
    let base = {
        let mut s = fixture_spec();
        s.steps = 10;
        s
    };
    let worst = Mutex::new(Duration::ZERO);
    std::thread::scope(|scope| {
        for conn in 0..3u64 {
            let base = &base;
            scope.spawn(move || {
                let mut client = KeepAliveClient::connect(addr);
                for req in 0..8u64 {
                    let mut spec = *base;
                    spec.seed = 5000 + conn * 100 + req;
                    spec.shards = 2;
                    spec.ghost_period = GhostPeriod::Every(4);
                    let (status, headers, body) = client.exchange(
                        "POST",
                        "/run",
                        &[("X-Wafer-Client", "greedy")],
                        &spec.to_json(),
                    );
                    assert_eq!(status, 200, "greedy conn {conn} req {req}");
                    assert_eq!(header(&headers, "x-wafer-cache"), "miss");
                    assert!(body.starts_with("== wafer-md serve:"), "{body}");
                }
            });
        }
        let (base, worst) = (&base, &worst);
        scope.spawn(move || {
            let mut client = KeepAliveClient::connect(addr);
            for req in 0..5u64 {
                let mut spec = *base;
                spec.seed = 9000 + req;
                let started = Instant::now();
                let (status, _, body) = client.exchange(
                    "POST",
                    "/run",
                    &[("X-Wafer-Client", "polite")],
                    &spec.to_json(),
                );
                let elapsed = started.elapsed();
                assert_eq!(status, 200, "polite req {req}");
                assert!(body.starts_with("== wafer-md serve:"), "{body}");
                let mut worst = worst.lock().unwrap();
                if elapsed > *worst {
                    *worst = elapsed;
                }
            }
        });
    });

    // Starvation would park the polite client behind the entire
    // greedy backlog; round-robin dispatch bounds its wait to roughly
    // one batch. The bound is deliberately generous — it catches
    // unbounded queue-behind-the-flood behavior, not jitter.
    let worst = *worst.lock().unwrap();
    assert!(
        worst < Duration::from_secs(30),
        "polite client starved: worst round trip {worst:?}"
    );

    let v = settled_stats(addr, 3 * 8 + 5);
    assert_eq!(v.get("runs").and_then(Value::as_u64), Some(3 * 8 + 5));
    assert_eq!(v.get("pending").and_then(Value::as_u64), Some(0));
    assert_eq!(v.get("pending_high").and_then(Value::as_u64), Some(0));
    assert_eq!(v.get("pending_normal").and_then(Value::as_u64), Some(0));
    assert_eq!(v.get("pending_low").and_then(Value::as_u64), Some(0));
    // The preemption counter is surfaced; whether any fired depends on
    // the interleaving, so only its presence is asserted.
    assert!(
        v.get("fairness_preemptions")
            .and_then(Value::as_u64)
            .is_some(),
        "{v:?}"
    );

    // Priority-header handling rides the same server: a valid band is
    // accepted, an invalid one is a 400 with the typed hint.
    let mut spec = base;
    spec.seed = 9999;
    let mut client = KeepAliveClient::connect(addr);
    let (status, _, _) = client.exchange(
        "POST",
        "/run",
        &[("X-Wafer-Priority", "HIGH")],
        &spec.to_json(),
    );
    assert_eq!(status, 200, "priority bands parse case-insensitively");
    let (status, _, body) = client.exchange(
        "POST",
        "/run",
        &[("X-Wafer-Priority", "urgent")],
        &spec.to_json(),
    );
    assert_eq!(status, 400);
    assert!(body.contains("invalid X-Wafer-Priority"), "{body}");
    assert!(client.at_eof(), "a malformed request closes the connection");

    let (status, _, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().expect("acceptor pool drains cleanly");
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn bounded_cache_under_concurrency_stays_in_budget_and_reruns_identically() {
    let root = scratch("stress-bounded");
    let specs = unique_specs();
    let golden: Vec<String> = specs.iter().map(|s| run_spec(s).report).collect();

    // A budget far below the working set: evictions are guaranteed, and
    // an evicted spec re-requested must re-run to byte-identical bytes.
    let budget = CacheBudget {
        max_bytes: u64::MAX,
        max_entries: 2,
    };
    let cache = ResultCache::open_bounded(&root, budget).unwrap();
    let config = ServeConfig {
        threads: serve_threads(),
        ..ServeConfig::default()
    };
    let mut server = Server::bind_with("127.0.0.1:0", cache, config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve().unwrap());

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // A monitor thread polls /stats throughout the storm: the
        // budget must hold at every observable moment, not just at the
        // end.
        let done_ref = &done;
        scope.spawn(move || {
            while !done_ref.load(Ordering::SeqCst) {
                let (status, _, stats) = http(addr, "GET", "/stats", "");
                assert_eq!(status, 200);
                let v = Value::parse(stats.trim()).unwrap();
                assert!(
                    v.get("cache_entries").and_then(Value::as_u64).unwrap() <= 2,
                    "cache exceeded its entry budget mid-storm: {stats}"
                );
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        });
        let clients: Vec<_> = (0..4u64)
            .map(|client| {
                let (specs, golden) = (&specs, &golden);
                scope.spawn(move || {
                    let mut state = (client + 1).wrapping_mul(0x2545f4914f6cdd1d);
                    for req in 0..10u64 {
                        let i = next(&mut state) as usize % specs.len();
                        let (status, _, body) = http(addr, "POST", "/run", &specs[i].to_json());
                        assert_eq!(status, 200, "client {client} req {req}");
                        assert_eq!(
                            body, golden[i],
                            "an eviction-forced rerun must reproduce the bytes exactly"
                        );
                    }
                })
            })
            .collect();
        for client in clients {
            client.join().expect("client thread");
        }
        // Release the monitor only after every client is done, so it
        // watched the whole storm.
        done.store(true, Ordering::SeqCst);
    });

    let (_, _, stats) = http(addr, "GET", "/stats", "");
    let v = Value::parse(stats.trim()).unwrap();
    let runs = v.get("runs").and_then(Value::as_u64).unwrap();
    assert!(
        v.get("evictions").and_then(Value::as_u64).unwrap() > 0,
        "the budget was tight enough to force evictions: {stats}"
    );
    assert!(
        runs >= 3,
        "evictions force re-runs past the unique-spec floor: {stats}"
    );
    assert!(v.get("cache_entries").and_then(Value::as_u64).unwrap() <= 2);

    let (status, _, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().expect("acceptor pool drains cleanly");
    std::fs::remove_dir_all(&root).unwrap();
}
