//! Sharded multi-wafer execution vs the single-engine run: positions,
//! velocities, forces, and energies must be **bit-identical** (`to_bits`,
//! not merely close) for any shard count, on both backends. This is the
//! executable form of the ghost-region determinism guarantee:
//! halos two cutoffs wide + canonical neighbor enumeration + atom-id-order
//! merge folds mean a spatial decomposition can never change physics.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wafer_md::baseline::BaselineEngine;
use wafer_md::md::engine::Engine;
use wafer_md::md::lattice::SlabSpec;
use wafer_md::md::materials::{Material, Species};
use wafer_md::md::system::System;
use wafer_md::md::thermostat;
use wafer_md::md::vec3::V3d;
use wafer_md::shard::ShardedEngine;
use wafer_md::wse::{WseMdConfig, WseMdSim};

fn slab(species: Species, nx: usize, nz: usize) -> (SlabSpec, Vec<V3d>) {
    let material = Material::new(species);
    let spec = SlabSpec {
        crystal: material.crystal,
        lattice_a: material.lattice_a,
        nx,
        ny: nx,
        nz,
    };
    let positions = spec.generate();
    (spec, positions)
}

fn mb_velocities(species: Species, n: usize, t: f64, seed: u64) -> Vec<V3d> {
    let material = Material::new(species);
    let mut rng = StdRng::seed_from_u64(seed);
    thermostat::maxwell_boltzmann(&mut rng, n, material.mass, t)
}

/// Everything the shard merge must reproduce exactly, as bits.
#[derive(Debug, PartialEq)]
struct Bits {
    positions: Vec<[u64; 3]>,
    velocities: Vec<[u64; 3]>,
    forces: Vec<[u64; 3]>,
    potential: u64,
    kinetic: u64,
    temperature: u64,
    mean_interactions: u64,
    modeled_cycles: Option<u64>,
    modeled_rate: Option<u64>,
}

fn v3_bits(vs: &[V3d]) -> Vec<[u64; 3]> {
    vs.iter()
        .map(|v| [v.x.to_bits(), v.y.to_bits(), v.z.to_bits()])
        .collect()
}

fn bits_of(engine: &dyn Engine) -> Bits {
    let o = engine.observables();
    Bits {
        positions: v3_bits(&engine.positions()),
        velocities: v3_bits(&engine.velocities()),
        forces: v3_bits(&engine.forces()),
        potential: o.potential_energy.to_bits(),
        kinetic: o.kinetic_energy.to_bits(),
        temperature: o.temperature.to_bits(),
        mean_interactions: o.mean_interactions.to_bits(),
        modeled_cycles: o.modeled_cycles.map(f64::to_bits),
        modeled_rate: o.modeled_rate.map(f64::to_bits),
    }
}

fn baseline_single(species: Species, spec: SlabSpec, velocities: &[V3d]) -> BaselineEngine {
    let mut system = System::from_slab(species, spec);
    system.velocities = velocities.to_vec();
    BaselineEngine::new(system, 2e-3)
}

fn run_pair(
    species: Species,
    nx: usize,
    temperature: f64,
    seed: u64,
    steps: usize,
    shards: usize,
    wse: bool,
) -> (Bits, Bits) {
    let (spec, positions) = slab(species, nx, 2);
    let velocities = mb_velocities(species, positions.len(), temperature, seed);
    if wse {
        let config = WseMdConfig::open_for(positions.len(), 0.05, 2e-3);
        let mut single = WseMdSim::new(species, &positions, &velocities, config.clone());
        let mut sharded = ShardedEngine::wse(species, positions, velocities, config, shards);
        assert!(sharded.shard_count() > 1, "decomposition degenerated");
        for _ in 0..steps {
            single.step();
            Engine::step(&mut sharded);
        }
        (bits_of(&single), bits_of(&sharded))
    } else {
        let system = System::from_slab(species, spec);
        let bbox = system.bbox;
        let mut single = baseline_single(species, spec, &velocities);
        let mut sharded =
            ShardedEngine::baseline(species, positions, velocities, bbox, 2e-3, shards);
        assert!(sharded.shard_count() > 1, "decomposition degenerated");
        for _ in 0..steps {
            single.step();
            Engine::step(&mut sharded);
        }
        (bits_of(&single), bits_of(&sharded))
    }
}

#[test]
fn quickstart_scale_slab_is_bit_identical_across_shard_counts() {
    for wse in [false, true] {
        let mut merged = Vec::new();
        for shards in [2usize, 3, 4] {
            let (single, sharded) = run_pair(Species::Ta, 10, 290.0, 2024, 5, shards, wse);
            assert_eq!(
                single, sharded,
                "wse={wse} shards={shards}: sharded run diverged from single engine"
            );
            merged.push(sharded);
        }
        assert!(
            merged.windows(2).all(|w| w[0] == w[1]),
            "wse={wse}: shard counts disagree among themselves"
        );
    }
}

#[test]
fn hot_baseline_run_survives_dynamic_resharding() {
    // 1400 K for 25 steps: atoms drift across halo boundaries, so ghost
    // membership changes and shards rebuild mid-run — the merge must
    // stay bit-exact through every rebuild.
    let (single, sharded) = run_pair(Species::Cu, 6, 1400.0, 7, 25, 3, false);
    assert_eq!(single, sharded);
}

#[test]
fn wse_candidate_counters_match_globally() {
    // The wafer decomposition must reproduce the global candidate
    // statistics exactly (owned cores see the global neighborhoods).
    let (spec, positions) = slab(Species::W, 6, 2);
    let _ = spec;
    let velocities = mb_velocities(Species::W, positions.len(), 200.0, 11);
    let config = WseMdConfig::open_for(positions.len(), 0.05, 2e-3);
    let mut single = WseMdSim::new(Species::W, &positions, &velocities, config.clone());
    let mut sharded = ShardedEngine::wse(Species::W, positions, velocities, config, 4);
    for _ in 0..3 {
        single.step();
        Engine::step(&mut sharded);
    }
    let a = single.observables();
    let b = sharded.observables();
    assert_eq!(a.mean_candidates.to_bits(), b.mean_candidates.to_bits());
    assert_eq!(a.mean_interactions.to_bits(), b.mean_interactions.to_bits());
}

mod proptest_sharding {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        // Random slab workloads on both backends at random shard counts;
        // a handful of cases exercises uneven decompositions, both
        // species' cutoffs, and hot/cold dynamics.
        #![proptest_config(ProptestConfig::with_cases(6))]

        #[test]
        fn sharded_equals_single_engine_bitwise(
            species_idx in 0usize..3,
            nx in 4usize..7,
            seed in 0u64..1_000_000,
            temperature in 50.0f64..600.0,
            shards in 2usize..5,
            wse_idx in 0usize..2,
        ) {
            let wse = wse_idx == 1;
            let species = [Species::Ta, Species::Cu, Species::W][species_idx];
            let (single, sharded) =
                run_pair(species, nx, temperature, seed, 3, shards, wse);
            prop_assert_eq!(
                single,
                sharded,
                "species {:?}, nx {}, seed {}, shards {}, wse {}",
                species,
                nx,
                seed,
                shards,
                wse
            );
        }
    }
}
