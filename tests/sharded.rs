//! Sharded multi-wafer execution vs the single-engine run: positions,
//! velocities, forces, and energies must be **bit-identical** (`to_bits`,
//! not merely close) for any shard count *and any ghost-exchange
//! period*, on both backends. This is the executable form of the
//! ghost-region determinism guarantee: per-step ghost motion sync over
//! a fixed `2·cutoff + skin` halo + canonical neighbor enumeration +
//! atom-id-order merge folds mean neither the spatial decomposition nor
//! the membership-exchange schedule can change physics.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wafer_md::baseline::BaselineEngine;
use wafer_md::md::engine::Engine;
use wafer_md::md::lattice::SlabSpec;
use wafer_md::md::materials::{Material, Species};
use wafer_md::md::system::System;
use wafer_md::md::thermostat;
use wafer_md::md::vec3::V3d;
use wafer_md::shard::{auto_ghost_period, GhostPeriod, ShardedEngine, AUTO_PERIOD_CAP};
use wafer_md::wse::{WseMdConfig, WseMdSim};

fn slab(species: Species, nx: usize, nz: usize) -> (SlabSpec, Vec<V3d>) {
    let material = Material::new(species);
    let spec = SlabSpec {
        crystal: material.crystal,
        lattice_a: material.lattice_a,
        nx,
        ny: nx,
        nz,
    };
    let positions = spec.generate();
    (spec, positions)
}

fn mb_velocities(species: Species, n: usize, t: f64, seed: u64) -> Vec<V3d> {
    let material = Material::new(species);
    let mut rng = StdRng::seed_from_u64(seed);
    thermostat::maxwell_boltzmann(&mut rng, n, material.mass, t)
}

/// Everything the shard merge must reproduce exactly, as bits.
#[derive(Debug, PartialEq)]
struct Bits {
    positions: Vec<[u64; 3]>,
    velocities: Vec<[u64; 3]>,
    forces: Vec<[u64; 3]>,
    potential: u64,
    kinetic: u64,
    temperature: u64,
    mean_interactions: u64,
    modeled_cycles: Option<u64>,
    modeled_rate: Option<u64>,
}

fn v3_bits(vs: &[V3d]) -> Vec<[u64; 3]> {
    vs.iter()
        .map(|v| [v.x.to_bits(), v.y.to_bits(), v.z.to_bits()])
        .collect()
}

fn bits_of(engine: &dyn Engine) -> Bits {
    let o = engine.observables();
    Bits {
        positions: v3_bits(&engine.positions_view().to_vec()),
        velocities: v3_bits(&engine.velocities_view().to_vec()),
        forces: v3_bits(&engine.forces_view().to_vec()),
        potential: o.potential_energy.to_bits(),
        kinetic: o.kinetic_energy.to_bits(),
        temperature: o.temperature.to_bits(),
        mean_interactions: o.mean_interactions.to_bits(),
        modeled_cycles: o.modeled_cycles.map(f64::to_bits),
        modeled_rate: o.modeled_rate.map(f64::to_bits),
    }
}

fn baseline_single(species: Species, spec: SlabSpec, velocities: &[V3d]) -> BaselineEngine {
    let mut system = System::from_slab(species, spec);
    system.set_velocities(velocities);
    BaselineEngine::new(system, 2e-3)
}

#[allow(clippy::too_many_arguments)] // a test matrix axis per argument
fn run_pair(
    species: Species,
    nx: usize,
    temperature: f64,
    seed: u64,
    steps: usize,
    shards: usize,
    wse: bool,
    ghost_period: GhostPeriod,
) -> (Bits, Bits) {
    let (spec, positions) = slab(species, nx, 2);
    let velocities = mb_velocities(species, positions.len(), temperature, seed);
    let period = ghost_period.resolve(&velocities, 2e-3);
    if wse {
        let config = WseMdConfig::open_for(positions.len(), 0.05, 2e-3);
        let mut single = WseMdSim::new(species, &positions, &velocities, config.clone());
        let mut sharded =
            ShardedEngine::wse(species, positions, velocities, config, shards, period);
        assert!(sharded.shard_count() > 1, "decomposition degenerated");
        for _ in 0..steps {
            single.step();
            Engine::step(&mut sharded);
        }
        (bits_of(&single), bits_of(&sharded))
    } else {
        let system = System::from_slab(species, spec);
        let bbox = system.bbox;
        let mut single = baseline_single(species, spec, &velocities);
        let mut sharded =
            ShardedEngine::baseline(species, positions, velocities, bbox, 2e-3, shards, period);
        assert!(sharded.shard_count() > 1, "decomposition degenerated");
        for _ in 0..steps {
            single.step();
            Engine::step(&mut sharded);
        }
        (bits_of(&single), bits_of(&sharded))
    }
}

#[test]
fn quickstart_scale_slab_is_bit_identical_across_shard_counts_and_periods() {
    for wse in [false, true] {
        let mut merged = Vec::new();
        for (shards, period) in [(2usize, 1usize), (3, 2), (4, 4)] {
            let (single, sharded) = run_pair(
                Species::Ta,
                10,
                290.0,
                2024,
                5,
                shards,
                wse,
                GhostPeriod::Every(period),
            );
            assert_eq!(
                single, sharded,
                "wse={wse} shards={shards} period={period}: sharded run diverged"
            );
            merged.push(sharded);
        }
        assert!(
            merged.windows(2).all(|w| w[0] == w[1]),
            "wse={wse}: shard counts / ghost periods disagree among themselves"
        );
    }
}

#[test]
fn hot_baseline_run_survives_dynamic_resharding() {
    // 1400 K for 25 steps: atoms drift across halo boundaries, so ghost
    // membership changes and shards rebuild mid-run — the merge must
    // stay bit-exact through every rebuild.
    let (single, sharded) = run_pair(
        Species::Cu,
        6,
        1400.0,
        7,
        25,
        3,
        false,
        GhostPeriod::Every(1),
    );
    assert_eq!(single, sharded);
}

#[test]
fn wse_candidate_counters_match_globally() {
    // The wafer decomposition must reproduce the global candidate
    // statistics exactly (owned cores see the global neighborhoods).
    let (spec, positions) = slab(Species::W, 6, 2);
    let _ = spec;
    let velocities = mb_velocities(Species::W, positions.len(), 200.0, 11);
    let config = WseMdConfig::open_for(positions.len(), 0.05, 2e-3);
    let mut single = WseMdSim::new(Species::W, &positions, &velocities, config.clone());
    let mut sharded = ShardedEngine::wse(Species::W, positions, velocities, config, 4, 1);
    for _ in 0..3 {
        single.step();
        Engine::step(&mut sharded);
    }
    let a = single.observables();
    let b = sharded.observables();
    assert_eq!(a.mean_candidates.to_bits(), b.mean_candidates.to_bits());
    assert_eq!(a.mean_interactions.to_bits(), b.mean_interactions.to_bits());
}

mod proptest_sharding {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        // Random slab workloads on both backends at random shard counts
        // and ghost-exchange periods; a handful of cases exercises
        // uneven decompositions, both species' cutoffs, hot/cold
        // dynamics, and amortized exchange schedules (including auto).
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn sharded_equals_single_engine_bitwise(
            species_idx in 0usize..3,
            nx in 4usize..7,
            seed in 0u64..1_000_000,
            temperature in 50.0f64..600.0,
            shards in 2usize..5,
            wse_idx in 0usize..2,
            period_idx in 0usize..4,
        ) {
            let wse = wse_idx == 1;
            let species = [Species::Ta, Species::Cu, Species::W][species_idx];
            let ghost_period = [
                GhostPeriod::Every(1),
                GhostPeriod::Every(2),
                GhostPeriod::Every(4),
                GhostPeriod::Auto,
            ][period_idx];
            let (single, sharded) =
                run_pair(species, nx, temperature, seed, 3, shards, wse, ghost_period);
            prop_assert_eq!(
                single,
                sharded,
                "species {:?}, nx {}, seed {}, shards {}, wse {}, period {:?}",
                species,
                nx,
                seed,
                shards,
                wse,
                ghost_period
            );
        }
    }
}

/// Partial halos under amortized membership exchange: elongated slabs
/// where the `2·cutoff + skin` halo covers a strict subset of the box,
/// so atoms genuinely drift across ghost-region edges between the
/// period-k membership recomputes and only the per-step ghost motion
/// sync keeps owned forces exact. (Small boxes degenerate to full
/// replication, which would leave the halo math untested.)
#[test]
fn partial_halo_baseline_stays_exact_over_amortized_periods() {
    let species = Species::Ta;
    let material = Material::new(species);
    for (nx, period, shards, steps) in [(30usize, 2usize, 2usize, 10usize), (40, 3, 2, 9)] {
        let spec = SlabSpec {
            crystal: material.crystal,
            lattice_a: material.lattice_a,
            nx,
            ny: 4,
            nz: 2,
        };
        let positions = spec.generate();
        let velocities = mb_velocities(species, positions.len(), 290.0, 5);
        let bbox = System::from_slab(species, spec).bbox;
        let mut single = baseline_single(species, spec, &velocities);
        let mut sharded = ShardedEngine::baseline(
            species,
            positions.clone(),
            velocities,
            bbox,
            2e-3,
            shards,
            period,
        );
        // The halo must be partial, or this test proves nothing.
        let hosted: usize =
            sharded.owned_per_shard().iter().sum::<usize>() + sharded.ghost_copies();
        assert!(
            hosted < shards * positions.len(),
            "nx={nx} period={period}: halo degenerated to full replication"
        );
        for _ in 0..steps {
            single.step();
            Engine::step(&mut sharded);
        }
        assert_eq!(
            bits_of(&single),
            bits_of(&sharded),
            "nx={nx} period={period}: eroded ghosts leaked into owned forces"
        );
        // Cold-ish run: the schedule must have been purely periodic.
        assert_eq!(sharded.early_exchanges(), 0);
        assert_eq!(sharded.exchanges(), (steps / period) as u64);
    }
}

/// Same erosion coverage for the wafer backend: a fabric wide enough
/// that the period-k column strip is a strict subset, so ghost cores at
/// the strip edge erode between exchanges.
#[test]
fn partial_strip_wse_stays_exact_over_amortized_periods() {
    let species = Species::Ta;
    let (_, positions) = slab(species, 14, 2);
    let velocities = mb_velocities(species, positions.len(), 200.0, 3);
    // Prescribe the neighborhood radius (it still covers every
    // interaction at this scale) so the period-2 strip of 2·period·bx
    // columns fits strictly inside the fabric; the same override goes
    // to the single engine, so both run identical candidate geometry.
    let mut config = WseMdConfig::open_for(positions.len(), 0.05, 2e-3);
    config.b_override = Some((3, 3));
    let mut single = WseMdSim::new(species, &positions, &velocities, config.clone());
    let n = positions.len();
    let mut sharded = ShardedEngine::wse(species, positions, velocities, config, 2, 2);
    let hosted: usize = sharded.owned_per_shard().iter().sum::<usize>() + sharded.ghost_copies();
    assert!(
        hosted < 2 * n,
        "strip degenerated to full replication (hosted {hosted} of {n} x2)"
    );
    for _ in 0..6 {
        single.step();
        Engine::step(&mut sharded);
    }
    assert_eq!(bits_of(&single), bits_of(&sharded));
    assert_eq!(sharded.exchanges(), 3);
}

/// The adversarial schedule: hot thermostatted atoms violate the
/// half-skin criterion long before a (deliberately huge) period
/// expires. The early exchange must fire — visible in the per-shard
/// exchange counters — and it must fire *before* any stale-ghost force
/// error, which the bitwise comparison against the single engine
/// proves. A mid-run rescale thermostat (driven through the trait, as
/// `Scenario::advance` drives it) keeps the atoms hot and exercises
/// `set_velocities` mid-period under amortization.
#[test]
fn skin_violation_forces_early_exchange_before_stale_forces() {
    let species = Species::Cu;
    let (spec, positions) = slab(species, 6, 2);
    // ~2200 K: the fastest atoms cover half the 1 Å skin in well under
    // 40 steps.
    let velocities = mb_velocities(species, positions.len(), 2200.0, 13);
    let system = System::from_slab(species, spec);
    let bbox = system.bbox;
    let material = Material::new(species);
    let mut single = baseline_single(species, spec, &velocities);
    let period = 1000;
    let mut sharded =
        ShardedEngine::baseline(species, positions, velocities, bbox, 2e-3, 3, period);
    for step in 0..40 {
        if step == 20 {
            // Thermostat kick on both engines: rescale back to 2200 K.
            for engine in [&mut single as &mut dyn Engine, &mut sharded] {
                let mut v = engine.velocities_view().to_vec();
                thermostat::rescale_to_temperature(&mut v, material.mass, 2200.0);
                engine.set_velocities(&v);
            }
        }
        single.step();
        Engine::step(&mut sharded);
    }
    assert_eq!(
        bits_of(&single),
        bits_of(&sharded),
        "stale ghosts corrupted forces despite the skin-validity check"
    );
    assert!(
        sharded.early_exchanges() >= 1,
        "hot run never tripped the skin-validity check"
    );
    assert_eq!(
        sharded.periodic_exchanges(),
        0,
        "period {period} cannot expire in 40 steps"
    );
    // The per-shard counters advance in lockstep and meter exactly the
    // scheduler's exchanges.
    let counts = sharded.exchange_counts();
    assert_eq!(counts.len(), sharded.shard_count());
    assert!(counts.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(
        counts[0],
        sharded.early_exchanges() + sharded.periodic_exchanges()
    );
    assert!(sharded.measured_amortization() < period as f64);
}

/// The Table VI k-column executed: a real amortized run's measured
/// exchange count, fed through `GhostMeasurement`, must reproduce the
/// period model's own projection (exactly, when the schedule was purely
/// periodic and the step budget is a multiple of the period — the
/// documented reconciliation contract).
#[test]
fn measured_exchange_count_executes_the_table6_projection() {
    use wafer_md::model::multiwafer::{measured_amortization, GhostMeasurement};

    let species = Species::Ta;
    let material = Material::new(species);
    let (_, positions) = slab(species, 10, 2);
    // 50 K: drift over a 4-step period is far under half the skin.
    let velocities = mb_velocities(species, positions.len(), 50.0, 21);
    let config = WseMdConfig::open_for(positions.len(), 0.05, 2e-3);
    let n = positions.len();
    let period = 4usize;
    let steps = 24usize;
    let mut sharded = ShardedEngine::wse(species, positions, velocities, config, 2, period);
    let interior = n as f64 / sharded.shard_count() as f64;
    let ghosts = sharded.ghost_copies() as f64 / sharded.shard_count() as f64;
    let strip = sharded.ghost_strip_angstroms().expect("wafer strip");
    Engine::run(&mut sharded, steps);

    // Purely periodic schedule: the measured count is the model's
    // floor(steps / k), so the measured amortization is exactly k.
    assert_eq!(sharded.early_exchanges(), 0);
    assert_eq!(sharded.exchanges(), (steps / period) as u64);
    let measured_k = measured_amortization(steps as u64, sharded.exchanges());
    assert_eq!(measured_k, period as f64);
    assert_eq!(measured_k, sharded.measured_amortization());

    let rate = sharded
        .observables()
        .modeled_rate
        .expect("wafer cost model");
    let m = GhostMeasurement {
        n_interior: interior,
        n_ghost: ghosts,
        single_wafer_rate: rate,
        lambda: strip / material.lattice_a,
        rcut_over_rlattice: material.cutoff / material.lattice_a,
    };
    // The provisioned strip supports at least the period we ran.
    assert!(m.k_max() >= period as f64);
    let reconciled = m.reconcile(steps as u64, sharded.exchanges());
    let projected = m.project(period as f64);
    assert_eq!(reconciled.rate.to_bits(), projected.rate.to_bits());
    // Amortization pays: the executed k beats an every-step exchange.
    assert!(reconciled.rate > m.project(1.0).rate);
}

/// Both backends' halo drift tracking reports real displacement: zero
/// at the reference, growing as atoms move, zero again after a new
/// reference — and the limits are the documented ones ((skin/2)² for
/// the reference engine, unbounded for the geometric wafer mapping).
#[test]
fn halo_drift_tracking_reports_real_displacement() {
    use wafer_md::md::engine::HaloEngine;

    let species = Species::Ta;
    let (spec, positions) = slab(species, 4, 2);
    let velocities = mb_velocities(species, positions.len(), 600.0, 17);

    let mut baseline = baseline_single(species, spec, &velocities);
    assert_eq!(baseline.halo_drift_limit_sq(), 0.25); // (1 Å skin / 2)²
    assert_eq!(baseline.halo_drift_sq(), 0.0);
    baseline.run(5);
    let drifted = baseline.halo_drift_sq();
    assert!(drifted > 0.0, "hot atoms must register drift");
    baseline.run(5);
    assert!(baseline.halo_drift_sq() > drifted, "drift accumulates");
    baseline.mark_halo_reference();
    assert_eq!(baseline.halo_drift_sq(), 0.0);

    let config = WseMdConfig::open_for(positions.len(), 0.05, 2e-3);
    let mut wse = WseMdSim::new(species, &positions, &velocities, config);
    assert!(wse.halo_drift_limit_sq().is_infinite());
    assert_eq!(wse.halo_drift_sq(), 0.0);
    wse.run(5);
    assert!(wse.halo_drift_sq() > 0.0, "hot atoms must register drift");
    wse.mark_halo_reference();
    assert_eq!(wse.halo_drift_sq(), 0.0);
}

/// `auto` resolves from the workload alone — identically at any shard
/// count — and stays within its documented clamp.
#[test]
fn auto_ghost_period_is_workload_determined() {
    let (_, positions) = slab(Species::Ta, 6, 2);
    let hot = mb_velocities(Species::Ta, positions.len(), 1200.0, 9);
    let cold = vec![V3d::zero(); positions.len()];
    let k_hot = auto_ghost_period(&hot, 2e-3);
    let k_cold = auto_ghost_period(&cold, 2e-3);
    assert!((1..=AUTO_PERIOD_CAP).contains(&k_hot));
    assert_eq!(
        k_cold, AUTO_PERIOD_CAP,
        "frozen workloads are drift-unlimited"
    );
    // Faster atoms can only shorten the period.
    let hotter = mb_velocities(Species::Ta, positions.len(), 20_000.0, 9);
    assert!(auto_ghost_period(&hotter, 2e-3) <= k_hot);
    // The resolved value survives the GhostPeriod seam unchanged.
    assert_eq!(GhostPeriod::Auto.resolve(&hot, 2e-3), k_hot);
    assert_eq!(GhostPeriod::Every(3).resolve(&hot, 2e-3), 3);
    assert_eq!(GhostPeriod::parse("auto"), Some(GhostPeriod::Auto));
    assert_eq!(GhostPeriod::parse("4"), Some(GhostPeriod::Every(4)));
    assert_eq!(GhostPeriod::parse("0"), None);
    assert_eq!(GhostPeriod::parse("banana"), None);
}

/// The per-shard phase timers behind `Engine::shard_phase_nanos`:
/// wall-clock observability for `/stats`, never physics. One pair per
/// shard, integrate time accruing on every step, exchange time
/// accruing whenever ghosts are synced or exchanged — and the trait
/// default staying `None` for unsharded engines.
#[test]
fn shard_phase_timers_accrue_per_shard_and_survive_resharding() {
    let species = Species::Cu;
    let (spec, positions) = slab(species, 6, 2);
    // Hot enough to force dynamic resharding (shard rebuilds), which
    // must carry the timers across instead of zeroing them.
    let velocities = mb_velocities(species, positions.len(), 1400.0, 7);
    let system = System::from_slab(species, spec);
    let mut sharded = ShardedEngine::baseline(
        species,
        positions,
        velocities.clone(),
        system.bbox,
        2e-3,
        3,
        1,
    );
    Engine::run(&mut sharded, 25);
    let phases = sharded.shard_phase_nanos();
    assert_eq!(phases.len(), sharded.shard_count());
    for (i, &(integrate, exchange)) in phases.iter().enumerate() {
        assert!(integrate > 0, "shard {i} never accrued integrate time");
        assert!(exchange > 0, "shard {i} never accrued exchange time");
    }

    // The same values are reachable through the Engine trait object —
    // the seam the serve scheduler reads.
    let trait_view = Engine::shard_phase_nanos(&sharded).expect("sharded engines report phases");
    assert_eq!(trait_view, phases);

    // Unsharded engines keep the trait default: no phases to report.
    let mut single = baseline_single(species, spec, &velocities);
    single.step();
    assert!(Engine::shard_phase_nanos(&single).is_none());
}
