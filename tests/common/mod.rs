//! Shared helpers for the serve integration suites: a scratch-dir
//! factory, the canonical fixture spec, and a minimal HTTP/1.1 client
//! that understands the server's two body framings (Content-Length and
//! chunked transfer encoding).

// Each test crate compiles this module independently and uses a
// subset of it.
#![allow(dead_code)]

use std::fs;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

use wafer_md::md::materials::Species;
use wafer_md::scenario::{Scenario, ScenarioSpec};

/// A process-unique scratch directory, cleared on entry.
pub fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("wafer-md-serve-test-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The spec behind line 1 of `tests/fixtures/serve-requests.jsonl`.
pub fn fixture_spec() -> ScenarioSpec {
    Scenario::slab(Species::Ta, 3, 3, 1)
        .temperature(120.0)
        .seed(7)
        .steps(20)
        .to_spec()
}

/// Pull one header (lowercased name) out of a parsed response.
pub fn header<'a>(headers: &'a [(String, String)], name: &str) -> &'a str {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
        .unwrap_or_else(|| panic!("missing header {name}"))
}

/// Reassemble a chunked-transfer body. Panics on a missing terminal
/// chunk, so a truncated stream fails the test that read it.
pub fn dechunk(body: &str) -> String {
    let mut out = String::new();
    let mut rest = body;
    loop {
        let (size_line, after) = rest.split_once("\r\n").expect("chunk size line");
        let size = usize::from_str_radix(size_line.trim(), 16).expect("hex chunk size");
        if size == 0 {
            return out;
        }
        out.push_str(&after[..size]);
        rest = &after[size + 2..];
    }
}

/// One request/response exchange: returns (status, lowercased headers,
/// de-framed body).
pub fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to test server");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: wafer-md\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let body = if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v == "chunked")
    {
        dechunk(body)
    } else {
        body.to_string()
    };
    (status, headers, body)
}
