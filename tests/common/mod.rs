//! Shared helpers for the serve integration suites: a scratch-dir
//! factory, the canonical fixture spec, and a minimal HTTP/1.1 client
//! that understands the server's two body framings (Content-Length and
//! chunked transfer encoding).

// Each test crate compiles this module independently and uses a
// subset of it.
#![allow(dead_code)]

use std::fs;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

use wafer_md::md::materials::Species;
use wafer_md::scenario::{Scenario, ScenarioSpec};

/// A process-unique scratch directory, cleared on entry.
pub fn scratch(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("wafer-md-serve-test-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The spec behind line 1 of `tests/fixtures/serve-requests.jsonl`.
pub fn fixture_spec() -> ScenarioSpec {
    Scenario::slab(Species::Ta, 3, 3, 1)
        .temperature(120.0)
        .seed(7)
        .steps(20)
        .to_spec()
}

/// Pull one header (lowercased name) out of a parsed response.
pub fn header<'a>(headers: &'a [(String, String)], name: &str) -> &'a str {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
        .unwrap_or_else(|| panic!("missing header {name}"))
}

/// Reassemble a chunked-transfer body. Panics on a missing terminal
/// chunk, so a truncated stream fails the test that read it.
pub fn dechunk(body: &str) -> String {
    let mut out = String::new();
    let mut rest = body;
    loop {
        let (size_line, after) = rest.split_once("\r\n").expect("chunk size line");
        let size = usize::from_str_radix(size_line.trim(), 16).expect("hex chunk size");
        if size == 0 {
            return out;
        }
        out.push_str(&after[..size]);
        rest = &after[size + 2..];
    }
}

/// One request/response exchange on a fresh connection: returns
/// (status, lowercased headers, de-framed body). Sends
/// `Connection: close` so the server ends the connection after the
/// response and a read-to-EOF sees exactly one response.
pub fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to test server");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: wafer-md\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let body = if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v == "chunked")
    {
        dechunk(body)
    } else {
        body.to_string()
    };
    (status, headers, body)
}

/// A persistent-connection HTTP/1.1 client: one socket, many
/// request/response exchanges. Responses are parsed by their framing
/// (Content-Length or chunked transfer encoding) rather than
/// read-to-EOF, so the socket survives for the next exchange — and
/// requests can be pipelined (several `send`s before the first
/// `read_response`).
pub struct KeepAliveClient {
    stream: TcpStream,
    /// Received-but-unconsumed bytes (the tail of a read may already
    /// hold the start of the next response).
    buf: Vec<u8>,
}

impl KeepAliveClient {
    /// Connect a persistent client to the test server.
    pub fn connect(addr: SocketAddr) -> Self {
        Self {
            stream: TcpStream::connect(addr).expect("connect to test server"),
            buf: Vec::new(),
        }
    }

    /// Write one request, leaving the connection open (HTTP/1.1
    /// default keep-alive; no `Connection` header is sent). `extra`
    /// headers ride along verbatim.
    pub fn send(&mut self, method: &str, path: &str, extra: &[(&str, &str)], body: &str) {
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: wafer-md\r\nContent-Length: {}\r\n",
            body.len()
        );
        for (name, value) in extra {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        write!(self.stream, "{head}\r\n{body}").expect("write request");
    }

    /// Read exactly one response off the socket: (status, lowercased
    /// headers, de-framed body). Panics if the server closes
    /// mid-response.
    pub fn read_response(&mut self) -> (u16, Vec<(String, String)>, String) {
        let head_end = self.fill_until(|buf| find(buf, b"\r\n\r\n"));
        let head = String::from_utf8(self.buf[..head_end].to_vec()).expect("UTF-8 head");
        self.buf.drain(..head_end + 4);
        let mut lines = head.lines();
        let status: u16 = lines
            .next()
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let headers: Vec<(String, String)> = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
            .collect();
        let chunked = headers
            .iter()
            .any(|(k, v)| k == "transfer-encoding" && v == "chunked");
        let body = if chunked {
            let mut out = String::new();
            loop {
                let line_end = self.fill_until(|buf| find(buf, b"\r\n"));
                let size = usize::from_str_radix(
                    std::str::from_utf8(&self.buf[..line_end])
                        .expect("UTF-8 chunk size")
                        .trim(),
                    16,
                )
                .expect("hex chunk size");
                self.buf.drain(..line_end + 2);
                self.fill_until(|buf| (buf.len() >= size + 2).then_some(0));
                out.push_str(std::str::from_utf8(&self.buf[..size]).expect("UTF-8 chunk"));
                self.buf.drain(..size + 2);
                if size == 0 {
                    break;
                }
            }
            out
        } else {
            let len: usize = header(&headers, "content-length").parse().expect("length");
            self.fill_until(|buf| (buf.len() >= len).then_some(0));
            let body = String::from_utf8(self.buf[..len].to_vec()).expect("UTF-8 body");
            self.buf.drain(..len);
            body
        };
        (status, headers, body)
    }

    /// One sequential request/response exchange on the persistent
    /// connection.
    pub fn exchange(
        &mut self,
        method: &str,
        path: &str,
        extra: &[(&str, &str)],
        body: &str,
    ) -> (u16, Vec<(String, String)>, String) {
        self.send(method, path, extra, body);
        self.read_response()
    }

    /// Whether the server has closed the connection (EOF with no
    /// buffered bytes left).
    pub fn at_eof(&mut self) -> bool {
        if !self.buf.is_empty() {
            return false;
        }
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => true,
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                false
            }
            Err(_) => true,
        }
    }

    /// Read from the socket until `probe` finds what it needs in the
    /// buffer, returning the probe's answer.
    fn fill_until(&mut self, probe: impl Fn(&[u8]) -> Option<usize>) -> usize {
        loop {
            if let Some(found) = probe(&self.buf) {
                return found;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => panic!("server closed the connection mid-response"),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => panic!("read response: {e}"),
            }
        }
    }
}

/// First index of `needle` in `hay`.
fn find(hay: &[u8], needle: &[u8]) -> Option<usize> {
    hay.windows(needle.len()).position(|w| w == needle)
}
