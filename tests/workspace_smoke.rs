//! Workspace wiring smoke tests: the `wafer_md` facade must re-export
//! every sub-crate, and the re-exported APIs must be callable end to end.

use wafer_md::{baseline, fabric, md, model, scenario, wse, VERSION};

#[test]
fn version_resolves_to_the_workspace_version() {
    assert!(!VERSION.is_empty());
    let mut parts = VERSION.split('.');
    for _ in 0..3 {
        let part = parts.next().expect("semver has three components");
        part.parse::<u64>().expect("numeric version component");
    }
}

#[test]
fn facade_reexports_every_subcrate() {
    // md → md-core: materials and lattices.
    let material = md::materials::Material::new(md::materials::Species::Cu);
    assert_eq!(material.crystal, md::lattice::Crystal::Fcc);

    // fabric → wse-fabric: geometry and the WSE-2 constants.
    let extent = fabric::geometry::Extent::new(4, 3);
    assert_eq!(extent.count(), 12);
    let wse2 = fabric::geometry::WSE2_EXTENT;
    assert!(wse2.count() >= fabric::geometry::WSE2_CORES);

    // model → perf-model: the linear cost model's fit API.
    let samples = vec![
        model::SweepSample {
            n_candidates: 10.0,
            n_interactions: 2.0,
            t_wall_ns: 120.0,
        },
        model::SweepSample {
            n_candidates: 20.0,
            n_interactions: 4.0,
            t_wall_ns: 220.0,
        },
        model::SweepSample {
            n_candidates: 40.0,
            n_interactions: 9.0,
            t_wall_ns: 460.0,
        },
    ];
    let fit = model::fit(&samples);
    assert!(fit.r_squared > 0.9, "r² = {}", fit.r_squared);

    // baseline → md-baseline: the calibrated cluster models.
    let gpu = baseline::ClusterModel::calibrated(
        baseline::Machine::FrontierGpu,
        md::materials::Species::Cu,
    );
    assert!(gpu.rate_at_paper_size(64.0) > 0.0);

    // wse → wse-md: a real (tiny) simulation through the facade.
    let spec = md::lattice::SlabSpec {
        crystal: material.crystal,
        lattice_a: material.lattice_a,
        nx: 3,
        ny: 3,
        nz: 1,
    };
    let positions = spec.generate();
    let velocities = vec![md::vec3::V3d::new(0.0, 0.0, 0.0); positions.len()];
    let config = wse::WseMdConfig::open_for(positions.len(), 0.05, 2e-3);
    let mut sim = wse::WseMdSim::new(md::materials::Species::Cu, &positions, &velocities, config);
    sim.step();
    assert!(sim.last_stats.potential_energy < 0.0, "cohesive slab");
}

#[test]
fn scenario_registry_reaches_both_backends_through_the_facade() {
    // The unified entry point: a declarative scenario builds either
    // backend behind the shared Engine trait.
    assert!(scenario::registry().len() >= 6);
    assert!(scenario::find("quickstart").is_some());
    let sc = scenario::Scenario::slab(md::materials::Species::Ta, 3, 3, 1)
        .temperature(150.0)
        .engine(scenario::EngineKind::Wse);
    let mut engine = sc.build_engine().expect("consistent scenario");
    engine.run(2);
    assert!(engine.observables().modeled_rate.is_some());
}
