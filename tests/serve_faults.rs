//! Fault-injection tests for the serve wire layer: hostile and broken
//! clients — truncated request lines, oversized bodies, partial headers
//! followed by hangup, stalled sockets, mid-response disconnects — must
//! each be answered with a clean 4xx (or a silent drop) while the
//! server keeps answering well-formed requests. No panic, no wedged
//! worker, no lost run.

mod common;

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

use common::{fixture_spec, header, http, scratch};
use wafer_md::serve::{CacheBudget, ResultCache, ServeConfig, Server};

/// Send raw bytes, optionally half-close the write side, and read
/// whatever the server answers (empty if it just drops us). Reads
/// manually rather than `read_to_string`: when the server closes with
/// unread client bytes the connection resets, and the response read
/// before the reset must survive.
fn raw_exchange(addr: SocketAddr, payload: &[u8], hangup: bool) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    // Best-effort: the server may have already answered and reset the
    // connection mid-write (e.g. an over-cap request line).
    let _ = stream.write_all(payload);
    if hangup {
        let _ = stream.shutdown(Shutdown::Write);
    }
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => out.extend_from_slice(&buf[..n]),
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn status_of(response: &str) -> Option<u16> {
    response.split_whitespace().nth(1)?.parse().ok()
}

#[test]
fn broken_clients_get_clean_errors_and_the_server_keeps_serving() {
    let root = scratch("faults");
    let cache = ResultCache::open_bounded(&root, CacheBudget::UNBOUNDED).unwrap();
    let config = ServeConfig {
        threads: 2,
        // Short timeouts so the stalled-client case resolves quickly.
        read_timeout: Duration::from_millis(300),
        write_timeout: Duration::from_millis(300),
        max_body: 4096,
        ..ServeConfig::default()
    };
    let mut server = Server::bind_with("127.0.0.1:0", cache, config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve().unwrap());

    // 1. Truncated request line: bytes then hangup, no newline ever.
    let resp = raw_exchange(addr, b"POST /ru", true);
    assert_eq!(status_of(&resp), Some(400), "{resp}");
    assert!(
        resp.contains("truncated or oversized request line"),
        "{resp}"
    );

    // 2. Garbage request line.
    let resp = raw_exchange(addr, b"garbage\r\n\r\n", true);
    assert_eq!(status_of(&resp), Some(400), "{resp}");
    assert!(resp.contains("malformed request line"), "{resp}");

    // 3. A request line longer than the head cap.
    let mut long = b"GET /".to_vec();
    long.extend(vec![b'x'; 9000]);
    let resp = raw_exchange(addr, &long, true);
    assert_eq!(status_of(&resp), Some(400), "{resp}");

    // 4. Partial headers, then hangup.
    let resp = raw_exchange(addr, b"POST /run HTTP/1.1\r\nContent-Length: 5\r\n", true);
    assert_eq!(status_of(&resp), Some(400), "{resp}");
    assert!(resp.contains("connection closed mid-headers"), "{resp}");

    // 5. Declared body over the cap: rejected before it is read.
    let resp = raw_exchange(
        addr,
        b"POST /run HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n",
        true,
    );
    assert_eq!(status_of(&resp), Some(413), "{resp}");
    assert!(resp.contains("exceeds"), "{resp}");

    // 6. Body shorter than declared, then hangup.
    let resp = raw_exchange(
        addr,
        b"POST /run HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort",
        true,
    );
    assert_eq!(status_of(&resp), Some(400), "{resp}");
    assert!(resp.contains("request body truncated"), "{resp}");

    // 7. Bad Content-Length syntax.
    let resp = raw_exchange(
        addr,
        b"POST /run HTTP/1.1\r\nContent-Length: banana\r\n\r\n",
        true,
    );
    assert_eq!(status_of(&resp), Some(400), "{resp}");
    assert!(resp.contains("invalid Content-Length"), "{resp}");

    // 8. Non-UTF-8 bytes in the head.
    let resp = raw_exchange(addr, &[0xff, 0xfe, 0xfd, b'\r', b'\n'], true);
    assert_eq!(status_of(&resp), Some(400), "{resp}");

    // 9. A stalled client: partial request line, socket held open past
    // the read timeout.
    let resp = raw_exchange(addr, b"POST /run HTT", false);
    assert_eq!(status_of(&resp), Some(408), "{resp}");
    assert!(resp.contains("request timed out"), "{resp}");

    // 10. Duplicate Content-Length headers: under pipelining, ambiguous
    // body framing would desync the request stream, so the request is
    // rejected outright — even when the copies agree.
    let resp = raw_exchange(
        addr,
        b"POST /run HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody",
        true,
    );
    assert_eq!(status_of(&resp), Some(400), "{resp}");
    assert!(resp.contains("duplicate Content-Length"), "{resp}");

    // 11. Conflicting Content-Length headers: same rejection.
    let resp = raw_exchange(
        addr,
        b"POST /run HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 40\r\n\r\nbody",
        true,
    );
    assert_eq!(status_of(&resp), Some(400), "{resp}");
    assert!(resp.contains("duplicate Content-Length"), "{resp}");

    // 12. A POST body with no Content-Length: per HTTP/1.1 the request
    // has no body, so it is served as empty — but the connection is
    // forced closed and whatever trailed the headers is drained, never
    // parsed as a pipelined follow-up request. The smuggled request
    // after the blank line must never be answered — exactly one
    // response (the empty body failing spec parse) comes back, and it
    // announces the close.
    let resp = raw_exchange(
        addr,
        b"POST /run HTTP/1.1\r\n\r\nGET /stats HTTP/1.1\r\n\r\n",
        true,
    );
    assert_eq!(status_of(&resp), Some(400), "{resp}");
    assert!(resp.contains("Connection: close"), "{resp}");
    assert_eq!(
        resp.matches("HTTP/1.1 ").count(),
        1,
        "exactly one response: {resp}"
    );

    // After every fault, the server still answers real work.
    let spec = fixture_spec();
    let (status, headers, body) = http(addr, "POST", "/run", &spec.to_json());
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-wafer-cache"), "miss");
    assert!(body.starts_with("== wafer-md serve:"), "{body}");

    // Faulty requests never reached admission: one valid request, one run.
    let (_, _, stats) = http(addr, "GET", "/stats", "");
    let v = wafer_md::json::Value::parse(stats.trim()).unwrap();
    assert_eq!(
        v.get("requests").and_then(wafer_md::json::Value::as_u64),
        Some(1),
        "{stats}"
    );
    assert_eq!(
        v.get("runs").and_then(wafer_md::json::Value::as_u64),
        Some(1)
    );

    let (status, _, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().expect("acceptor pool drains cleanly");
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn mid_response_disconnect_still_completes_and_caches_the_run() {
    let root = scratch("faults-disconnect");
    let cache = ResultCache::open_bounded(&root, CacheBudget::UNBOUNDED).unwrap();
    let config = ServeConfig {
        threads: 2,
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_millis(500),
        max_body: 1 << 20,
        ..ServeConfig::default()
    };
    let mut server = Server::bind_with("127.0.0.1:0", cache, config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve().unwrap());

    let mut spec = fixture_spec();
    spec.seed = 4242; // a fresh key: this must be a miss
    let body = spec.to_json();

    // Send the run request, read only the status line, then vanish.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "POST /run HTTP/1.1\r\nHost: wafer-md\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut first = [0u8; 16];
        stream.read_exact(&mut first).unwrap();
        assert!(first.starts_with(b"HTTP/1.1 200"));
        // Drop: the connection dies mid-stream.
    }

    // The abandoned connection must not abandon the run: the result
    // appears in the cache shortly, byte-complete.
    let expected = wafer_md::serve::run_spec(&spec).report;
    let path = format!("/result/{}", spec.key());
    let mut cached = None;
    for _ in 0..200 {
        let (status, _, got) = http(addr, "GET", &path, "");
        if status == 200 {
            cached = Some(got);
            break;
        }
        assert_eq!(status, 404, "only not-yet-cached is acceptable");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        cached.as_deref(),
        Some(expected.as_str()),
        "the disconnected client's run still cached byte-identical results"
    );

    let (status, _, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().expect("acceptor pool drains cleanly");
    std::fs::remove_dir_all(&root).unwrap();
}
