//! Cross-engine integration: the wafer engine (f32, one atom per core,
//! candidate exchange) against the LAMMPS-style baseline (f64, cell
//! lists, neighbor reuse) on identical initial conditions. Agreement
//! here exercises every crate in the workspace at once.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wafer_md::baseline::BaselineEngine;
use wafer_md::md::lattice::SlabSpec;
use wafer_md::md::materials::{Material, Species};
use wafer_md::md::system::System;
use wafer_md::md::thermostat;
use wafer_md::wse::{WseMdConfig, WseMdSim};

fn matched_pair(species: Species, nx: usize, t: f64, seed: u64) -> (WseMdSim, BaselineEngine) {
    let material = Material::new(species);
    let spec = SlabSpec {
        crystal: material.crystal,
        lattice_a: material.lattice_a,
        nx,
        ny: nx,
        nz: 2,
    };
    let positions = spec.generate();
    let mut rng = StdRng::seed_from_u64(seed);
    let velocities = thermostat::maxwell_boltzmann(&mut rng, positions.len(), material.mass, t);

    let config = WseMdConfig::open_for(positions.len(), 0.05, 2e-3);
    let wse = WseMdSim::new(species, &positions, &velocities, config);

    let mut system = System::from_slab(species, spec);
    system.set_velocities(&velocities);
    let baseline = BaselineEngine::new(system, 2e-3);
    (wse, baseline)
}

#[test]
fn engines_agree_on_trajectories() {
    for species in [Species::Ta, Species::Cu] {
        let (mut wse, mut baseline) = matched_pair(species, 4, 290.0, 17);
        for _ in 0..50 {
            wse.step();
            baseline.step();
        }
        let wse_pos = wse.positions_by_atom();
        let ref_pos = baseline.system.positions();
        let mut max_dev = 0.0f64;
        for (a, b) in wse_pos.iter().zip(ref_pos.iter()) {
            max_dev = max_dev.max((*a - b).norm());
        }
        assert!(
            max_dev < 5e-3,
            "{species:?}: engines diverged by {max_dev} Å after 50 steps"
        );
    }
}

#[test]
fn engines_agree_on_energy() {
    let (mut wse, baseline) = matched_pair(Species::W, 4, 290.0, 3);
    // The wafer engine reports the potential energy of the configuration
    // *entering* the step; the baseline computes it at construction for
    // the same configuration.
    wse.step();
    let per_atom =
        (wse.last_stats.potential_energy - baseline.potential_energy).abs() / wse.n_atoms() as f64;
    assert!(
        per_atom < 1e-4,
        "potential energy differs by {per_atom} eV/atom"
    );
}

#[test]
fn both_engines_conserve_energy_comparably() {
    let (mut wse, mut baseline) = matched_pair(Species::Ta, 4, 200.0, 5);
    wse.step();
    baseline.step();
    let e0_wse = wse.total_energy();
    let e0_ref = baseline.total_energy();
    for _ in 0..150 {
        wse.step();
        baseline.step();
    }
    let n = wse.n_atoms() as f64;
    let drift_wse = (wse.total_energy() - e0_wse).abs() / n;
    let drift_ref = (baseline.total_energy() - e0_ref).abs() / n;
    assert!(drift_wse < 2e-3, "WSE drift {drift_wse} eV/atom");
    assert!(drift_ref < 2e-3, "baseline drift {drift_ref} eV/atom");
}

#[test]
fn wafer_engine_is_orders_faster_in_model_time() {
    // The whole point: at one atom per core the wafer's modeled rate
    // beats the calibrated cluster models' peaks by large factors.
    let (mut wse, _) = matched_pair(Species::Ta, 5, 290.0, 9);
    wse.run(10);
    let wse_rate = wse.timesteps_per_second(10);
    let gpu_peak = wafer_md::baseline::ClusterModel::calibrated(
        wafer_md::baseline::Machine::FrontierGpu,
        Species::Ta,
    )
    .peak_rate();
    assert!(
        wse_rate > 20.0 * gpu_peak,
        "wse {wse_rate} vs gpu peak {gpu_peak}"
    );
}

#[test]
fn periodic_boundaries_match_the_periodic_reference() {
    // Sec. III-E: periodic x/y fold onto the wafer with interleaved
    // halves. End-to-end check: the folded wafer engine reproduces the
    // periodic reference engine's energies and trajectories.
    use wafer_md::md::lattice::SlabSpec;
    use wafer_md::md::system::Box3;

    let species = Species::Ta;
    let material = Material::new(species);
    let spec = SlabSpec {
        crystal: material.crystal,
        lattice_a: material.lattice_a,
        nx: 4,
        ny: 4,
        nz: 2,
    };
    let positions = spec.generate();
    let dims = spec.dimensions();
    let mut rng = StdRng::seed_from_u64(23);
    let velocities = thermostat::maxwell_boltzmann(&mut rng, positions.len(), material.mass, 290.0);

    let mut config = WseMdConfig::open_for(positions.len(), 0.05, 2e-3);
    config.periodic = [true, true, false];
    config.box_lengths = dims;
    let mut wse = WseMdSim::new(species, &positions, &velocities, config);

    let bbox = Box3::with_periodicity(dims, [true, true, false]);
    let mut system = System::from_slab(species, spec);
    system.bbox = bbox;
    system.set_velocities(&velocities);
    let baseline = BaselineEngine::new(system, 2e-3);

    // Energy of the shared initial configuration.
    wse.step();
    let per_atom =
        (wse.last_stats.potential_energy - baseline.potential_energy).abs() / wse.n_atoms() as f64;
    assert!(per_atom < 1e-4, "PBC energy differs by {per_atom} eV/atom");

    // Short trajectory agreement, positions compared modulo the box.
    let mut baseline = baseline;
    for _ in 0..29 {
        wse.step();
        baseline.step();
    }
    baseline.step(); // baseline stepped once fewer inside the loop pairing
    let wse_pos = wse.positions_by_atom();
    let mut max_dev = 0.0f64;
    for (a, b) in wse_pos.iter().zip(baseline.system.positions().iter()) {
        max_dev = max_dev.max(bbox.displacement(*a, b).norm());
    }
    assert!(max_dev < 5e-3, "PBC trajectories diverged by {max_dev} Å");
}

/// Parallel/sequential equivalence: forces and energies must be
/// **bit-identical** (not merely close) at every thread count, on
/// random lattices. This is the executable form of the vendored rayon
/// executor's determinism contract — chunk layout and combine order are
/// pure functions of the item count, so `WAFER_MD_THREADS` can never
/// change physics.
mod thread_count_equivalence {
    use super::*;
    use proptest::prelude::*;
    use wafer_md::md::engine::Engine;
    use wafer_md::md::vec3::V3d;

    /// Everything a thread count could plausibly perturb, as exact bits.
    #[derive(Debug, PartialEq)]
    struct TrajectoryBits {
        baseline_forces: Vec<[u64; 3]>,
        baseline_energy: u64,
        wse_forces: Vec<[u64; 3]>,
        wse_potential: u64,
        wse_kinetic: u64,
    }

    fn v3_bits(vs: &[V3d]) -> Vec<[u64; 3]> {
        vs.iter()
            .map(|v| [v.x.to_bits(), v.y.to_bits(), v.z.to_bits()])
            .collect()
    }

    /// Run both engines for `steps` on identical initial conditions at
    /// the given worker-pool size and capture the resulting bits.
    fn trajectory_at(
        threads: usize,
        species: Species,
        spec: SlabSpec,
        positions: &[V3d],
        velocities: &[V3d],
        steps: usize,
    ) -> TrajectoryBits {
        rayon::set_num_threads(threads);
        let config = WseMdConfig::open_for(positions.len(), 0.05, 2e-3);
        let mut wse = WseMdSim::new(species, positions, velocities, config);
        let mut system = System::from_slab(species, spec);
        system.set_velocities(velocities);
        let mut baseline = BaselineEngine::new(system, 2e-3);
        for _ in 0..steps {
            wse.step();
            baseline.step();
        }
        rayon::set_num_threads(0);
        TrajectoryBits {
            baseline_forces: v3_bits(&baseline.forces_view().to_vec()),
            baseline_energy: baseline.potential_energy.to_bits(),
            wse_forces: v3_bits(&wse.forces_by_atom()),
            wse_potential: wse.last_stats.potential_energy.to_bits(),
            wse_kinetic: wse.last_stats.kinetic_energy.to_bits(),
        }
    }

    proptest! {
        // Each case runs both engines at three thread counts; a handful
        // of random lattices is plenty to exercise every kernel.
        #![proptest_config(ProptestConfig::with_cases(6))]

        #[test]
        fn forces_and_energies_identical_across_thread_counts(
            species_idx in 0usize..3,
            nx in 3usize..5,
            seed in 0u64..1_000_000,
            temperature in 50.0f64..400.0,
        ) {
            let species = [Species::Ta, Species::Cu, Species::W][species_idx];
            let material = Material::new(species);
            let spec = SlabSpec {
                crystal: material.crystal,
                lattice_a: material.lattice_a,
                nx,
                ny: nx,
                nz: 2,
            };
            let positions = spec.generate();
            let mut rng = StdRng::seed_from_u64(seed);
            let velocities = thermostat::maxwell_boltzmann(
                &mut rng,
                positions.len(),
                material.mass,
                temperature,
            );

            let reference = trajectory_at(1, species, spec, &positions, &velocities, 3);
            for threads in [2usize, 4] {
                let run = trajectory_at(threads, species, spec, &positions, &velocities, 3);
                prop_assert_eq!(
                    &reference,
                    &run,
                    "trajectory bits changed at {} threads (species {:?}, nx {}, seed {})",
                    threads,
                    species,
                    nx,
                    seed
                );
            }
        }
    }
}

#[test]
fn periodic_folding_doubles_the_folded_axis_reach() {
    // Interleaving both halves of the coordinate circle doubles the
    // atom density along the folded axis, so logical neighbors sit two
    // hops apart: the per-axis b roughly doubles relative to open
    // boundaries (Sec. III-E: "communicating workers are two hops away
    // instead of one").
    use wafer_md::md::lattice::SlabSpec;
    let species = Species::Ta;
    let material = Material::new(species);
    let spec = SlabSpec {
        crystal: material.crystal,
        lattice_a: material.lattice_a,
        nx: 8,
        ny: 8,
        nz: 2,
    };
    let positions = spec.generate();
    let velocities = vec![wafer_md::md::vec3::V3d::zero(); positions.len()];

    let open = WseMdSim::new(
        species,
        &positions,
        &velocities,
        WseMdConfig::open_for(positions.len(), 0.05, 2e-3),
    );
    let mut config = WseMdConfig::open_for(positions.len(), 0.05, 2e-3);
    config.periodic = [true, false, false];
    config.box_lengths = spec.dimensions();
    let folded = WseMdSim::new(species, &positions, &velocities, config);

    assert!(
        folded.b.0 as f64 >= 1.5 * open.b.0 as f64,
        "folded bx = {} vs open bx = {}",
        folded.b.0,
        open.b.0
    );
}
