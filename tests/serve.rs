//! End-to-end tests for `wafer-md serve`: the scheduler's
//! run-once/cache-forever contract, the HTTP wire layer, the `--drain`
//! goldens, and the spec round-trip properties the cache's soundness
//! rests on.

mod common;

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use common::{fixture_spec, header, http, scratch};
use proptest::prelude::*;
use wafer_md::json::Value;
use wafer_md::md::materials::Species;
use wafer_md::md::vec3::V3d;
use wafer_md::scenario::{GhostPeriod, ScenarioSpec, Thermostat, Workload};
use wafer_md::serve::{Disposition, Priority, ResultCache, Scheduler, Server};

#[test]
fn same_spec_twice_is_one_run_with_byte_identical_responses() {
    let root = scratch("twice");
    let mut scheduler = Scheduler::new(ResultCache::open(&root).unwrap());
    let spec = fixture_spec();

    let (key, first) = scheduler.submit(spec);
    assert_eq!(first, Disposition::Queued);
    assert_eq!(scheduler.pending(), 1);
    assert_eq!(scheduler.drain().unwrap(), 1, "exactly one physics run");
    let fresh = scheduler.result(&key).expect("drained result is cached");

    let (key_again, second) = scheduler.submit(spec);
    assert_eq!(key_again, key);
    assert_eq!(
        second,
        Disposition::CacheHit,
        "the hit counter proves no rerun"
    );
    let cached = scheduler.result(&key).unwrap();
    assert_eq!(fresh, cached, "cached response is byte-identical to fresh");

    let stats = scheduler.stats();
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.runs, 1);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.coalesced, 0);
    assert_eq!(stats.atoms_steps, 18 * 20, "3x3x1 BCC slab, 20 steps");
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn pre_drain_duplicates_coalesce_onto_one_job() {
    let root = scratch("coalesce");
    let mut scheduler = Scheduler::new(ResultCache::open(&root).unwrap());
    let spec = fixture_spec();
    assert_eq!(scheduler.submit(spec).1, Disposition::Queued);
    assert_eq!(scheduler.submit(spec).1, Disposition::Coalesced);
    assert_eq!(scheduler.pending(), 1, "one job despite two requests");
    assert_eq!(scheduler.drain().unwrap(), 1);
    assert_eq!(scheduler.stats().coalesced, 1);
    fs::remove_dir_all(&root).unwrap();
}

/// The fixture spec with a distinct seed.
fn seeded(seed: u64) -> ScenarioSpec {
    let mut s = fixture_spec();
    s.seed = seed;
    s
}

/// A geometry variant of [`seeded`]: sharded, so its
/// [`ScenarioSpec::batch_class`] differs from the plain fixture's and
/// a fairness stop at the class boundary is observable.
fn seeded_sharded(seed: u64) -> ScenarioSpec {
    let mut s = seeded(seed);
    s.shards = 2;
    s.ghost_period = GhostPeriod::Every(4);
    s
}

#[test]
fn claims_interleave_clients_fairly_and_count_preemptions() {
    let root = scratch("fair-claims");
    let mut scheduler = Scheduler::new(ResultCache::open(&root).unwrap());

    // A greedy client floods four geometry-compatible jobs; a polite
    // client's (geometry-incompatible) job lands mid-flood.
    let g: Vec<ScenarioSpec> = (0..4).map(|i| seeded_sharded(500 + i)).collect();
    let p = seeded(900);
    for s in &g[..2] {
        let (_, d) = scheduler.submit_from(*s, Priority::Normal, "greedy");
        assert_eq!(d, Disposition::Queued);
    }
    let (_, d) = scheduler.submit_from(p, Priority::Normal, "polite");
    assert_eq!(d, Disposition::Queued);
    for s in &g[2..] {
        scheduler.submit_from(*s, Priority::Normal, "greedy");
    }

    let keys = |batch: &[wafer_md::serve::Job]| -> Vec<String> {
        batch.iter().map(|j| j.key.clone()).collect()
    };
    // Claim 1: the greedy front alone. Round-robin puts the polite job
    // next, and its different geometry stops the sweep even though two
    // more greedy-compatible jobs sit behind it — a fairness
    // preemption the old admission-order sweep would not have made.
    let batch = scheduler.claim_batch();
    assert_eq!(keys(&batch), vec![g[0].key()]);
    assert_eq!(scheduler.stats().fairness_preemptions, 1);
    // Claim 2: the polite job dispatches second, not fifth.
    let batch = scheduler.claim_batch();
    assert_eq!(keys(&batch), vec![p.key()]);
    assert_eq!(
        scheduler.stats().fairness_preemptions,
        1,
        "no compatible work was passed over"
    );
    // Claim 3: the greedy backlog batches back together, admission
    // order preserved within the lane.
    let batch = scheduler.claim_batch();
    assert_eq!(keys(&batch), vec![g[1].key(), g[2].key(), g[3].key()]);
    assert!(scheduler.claim_batch().is_empty());
    assert_eq!(scheduler.stats().fairness_preemptions, 1);
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn priority_bands_dispatch_strictly_high_to_low() {
    let root = scratch("priority-claims");

    // Same geometry in every band: one claim sweeps all three jobs,
    // but in band order — not admission order.
    let mut scheduler = Scheduler::new(ResultCache::open(&root).unwrap());
    let (lo, no, hi) = (seeded(1), seeded(2), seeded(3));
    scheduler.submit_from(lo, Priority::Low, "c");
    scheduler.submit_from(no, Priority::Normal, "c");
    scheduler.submit_from(hi, Priority::High, "c");
    let batch = scheduler.claim_batch();
    let got: Vec<String> = batch.iter().map(|j| j.key.clone()).collect();
    assert_eq!(got, vec![hi.key(), no.key(), lo.key()]);
    assert_eq!(scheduler.stats().fairness_preemptions, 0);

    // A geometry-incompatible high-priority job dispatches first, on
    // its own; the compatible normal/low pair batches behind it.
    let mut scheduler = Scheduler::new(ResultCache::open(&root).unwrap());
    let hi = seeded_sharded(4);
    scheduler.submit_from(lo, Priority::Low, "c");
    scheduler.submit_from(no, Priority::Normal, "c");
    scheduler.submit_from(hi, Priority::High, "c");
    let batch = scheduler.claim_batch();
    let got: Vec<String> = batch.iter().map(|j| j.key.clone()).collect();
    assert_eq!(got, vec![hi.key()]);
    let batch = scheduler.claim_batch();
    let got: Vec<String> = batch.iter().map(|j| j.key.clone()).collect();
    assert_eq!(got, vec![no.key(), lo.key()]);
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn distinct_seeds_get_distinct_keys_and_cache_entries() {
    let root = scratch("seeds");
    let mut scheduler = Scheduler::new(ResultCache::open(&root).unwrap());
    let a = fixture_spec();
    let mut b = a;
    b.seed = a.seed + 1;
    assert_ne!(a.key(), b.key());

    let (key_a, _) = scheduler.submit(a);
    let (key_b, _) = scheduler.submit(b);
    assert_eq!(scheduler.drain().unwrap(), 2, "two seeds, two runs");
    let ra = scheduler.result(&key_a).unwrap();
    let rb = scheduler.result(&key_b).unwrap();
    assert_ne!(
        ra.report, rb.report,
        "different seeds draw different velocities"
    );
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn execution_geometry_changes_the_key_but_never_the_report_bytes() {
    // Same physics, different execution geometry: sharded two ways at a
    // longer ghost period on a pinned two-thread pool. Distinct cache
    // keys (the spec hashes whole), byte-identical reports — the
    // determinism guarantee the cache is built on.
    let a = fixture_spec();
    let mut b = a;
    b.shards = 2;
    b.ghost_period = GhostPeriod::Every(4);
    b.threads = 2;
    assert_ne!(a.key(), b.key());

    let ra = wafer_md::serve::run_spec(&a);
    let rb = wafer_md::serve::run_spec(&b);
    assert_eq!(ra.report, rb.report, "report carries no execution geometry");
    assert_eq!(
        ra.run_counters.exchanges, 0,
        "unsharded: nothing to exchange"
    );
    assert!(
        rb.run_counters.exchanges > 0,
        "sharded run exchanged ghosts"
    );
    assert_ne!(ra.counters, rb.counters, "counters.json is per-key");
}

#[test]
fn requesting_a_trajectory_changes_artifacts_but_not_the_report() {
    let plain = fixture_spec();
    let mut with_xyz = plain;
    with_xyz.xyz = true;
    let ra = wafer_md::serve::run_spec(&plain);
    let rb = wafer_md::serve::run_spec(&with_xyz);
    assert_eq!(ra.report, rb.report);
    assert!(ra.trajectory.is_none());
    let traj = rb.trajectory.expect("xyz requested");
    // Frames at steps 0, 10, and 20 of an 18-atom slab.
    assert_eq!(traj.matches("step=").count(), 3);
    assert!(traj.starts_with("18\nstep=0 serve\n"));
}

#[test]
fn http_server_round_trip_hit_miss_stats_and_hints() {
    let root = scratch("http");
    let mut server = Server::bind("127.0.0.1:0", &root).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve().unwrap());

    let spec = fixture_spec();
    let request = spec.to_json();

    let (status, headers, fresh) = http(addr, "POST", "/run", &request);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-wafer-cache"), "miss");
    assert_eq!(header(&headers, "x-wafer-key"), spec.key());
    assert!(
        fresh.starts_with("== wafer-md serve: Tantalum slab, 18 atoms, engine wse =="),
        "{fresh}"
    );

    let (status, headers, cached) = http(addr, "POST", "/run", &request);
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-wafer-cache"), "hit");
    assert_eq!(fresh, cached, "hit body is byte-identical to the fresh run");

    let (status, _, stats) = http(addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    let v = Value::parse(stats.trim()).unwrap();
    assert_eq!(v.get("requests").and_then(Value::as_u64), Some(2));
    assert_eq!(v.get("runs").and_then(Value::as_u64), Some(1));
    assert_eq!(v.get("cache_hits").and_then(Value::as_u64), Some(1));
    assert_eq!(v.get("pending").and_then(Value::as_u64), Some(0));

    let (status, _, replay) = http(addr, "GET", &format!("/result/{}", spec.key()), "");
    assert_eq!(status, 200);
    assert_eq!(replay, fresh);
    let (status, _, _) = http(addr, "GET", "/result/00000000deadbeef", "");
    assert_eq!(status, 404);

    // Key validation: anything but 16 lowercase hex characters is a
    // 400 before it can touch the filesystem.
    for bad in [
        "/result/00000000DEADBEEF",  // uppercase
        "/result/00000000deadbee",   // 15 chars
        "/result/00000000deadbeef0", // 17 chars
        "/result/..%2f..%2fetc%2fpasswd",
        "/result/../../../etc/passwd",
        "/result/........????????",
    ] {
        let (status, _, err) = http(addr, "GET", bad, "");
        assert_eq!(status, 400, "{bad} must be rejected");
        assert!(err.contains("16 lowercase hex"), "{bad}: {err}");
    }
    // A valid key with an unknown artifact name is a 404, not a file read.
    let (status, _, _) = http(
        addr,
        "GET",
        &format!("/result/{}/spec.json", spec.key()),
        "",
    );
    assert_eq!(status, 404);
    // This spec recorded no trajectory.
    let (status, _, _) = http(
        addr,
        "GET",
        &format!("/result/{}/trajectory.xyz", spec.key()),
        "",
    );
    assert_eq!(status, 404);

    // Malformed requests: 400 plus the typed hint, never a crash.
    let (status, _, err) = http(addr, "POST", "/run", "{\"species\":\"Ta\"}");
    assert_eq!(status, 400);
    assert!(err.contains("missing required field 'workload'"), "{err}");
    let (status, _, err) = http(addr, "POST", "/run", "pure garbage");
    assert_eq!(status, 400);
    assert!(err.contains("malformed scenario spec"), "{err}");
    let (status, _, err) = http(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    assert!(err.contains("POST /run"), "{err}");

    // Bad requests don't pollute the counters.
    let (_, _, stats) = http(addr, "GET", "/stats", "");
    let v = Value::parse(stats.trim()).unwrap();
    assert_eq!(v.get("requests").and_then(Value::as_u64), Some(2));

    let (status, _, bye) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    assert_eq!(bye, "shutting down\n");
    handle.join().expect("server thread exits cleanly");
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn trajectory_streams_chunked_from_the_cache() {
    let root = scratch("traj-stream");
    let mut server = Server::bind("127.0.0.1:0", &root).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve().unwrap());

    let mut spec = fixture_spec();
    spec.xyz = true;
    let (status, headers, _) = http(addr, "POST", "/run", &spec.to_json());
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "x-wafer-cache"), "miss");

    let (status, headers, traj) = http(
        addr,
        "GET",
        &format!("/result/{}/trajectory.xyz", spec.key()),
        "",
    );
    assert_eq!(status, 200);
    assert_eq!(header(&headers, "transfer-encoding"), "chunked");
    // The streamed bytes are exactly the cached artifact: frames at
    // steps 0, 10, and 20 of the 18-atom slab.
    let on_disk = fs::read_to_string(root.join(spec.key()).join("trajectory.xyz")).unwrap();
    assert_eq!(traj, on_disk);
    assert!(traj.starts_with("18\nstep=0 serve\n"));
    assert_eq!(traj.matches("step=").count(), 3);

    let (status, _, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().expect("server thread exits cleanly");
    fs::remove_dir_all(&root).unwrap();
}

fn wafer_md_bin() -> &'static str {
    env!("CARGO_BIN_EXE_wafer-md")
}

fn fixture_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/serve-requests.jsonl")
}

#[test]
fn drain_matches_the_committed_goldens_cold_and_warm() {
    let root = scratch("drain");
    let drain = || {
        let out = Command::new(wafer_md_bin())
            .args([
                "serve",
                "--cache",
                root.to_str().unwrap(),
                "--drain",
                fixture_path().to_str().unwrap(),
            ])
            .output()
            .expect("run wafer-md serve --drain");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };

    let cold = drain();
    assert_eq!(cold, include_str!("golden/serve-drain-cold.txt"));
    let warm = drain();
    assert_eq!(warm, include_str!("golden/serve-drain-warm.txt"));

    // The cached report matches the committed golden, and the
    // geometry-variant spec (line 3: 2 shards, ghost period 4,
    // scrambled field order) cached the byte-identical report under its
    // own key.
    let mut lines = cold.lines();
    let key_a = lines.next().unwrap().split(' ').next().unwrap();
    let key_b = cold.lines().nth(2).unwrap().split(' ').next().unwrap();
    assert_ne!(key_a, key_b);
    let report_a = fs::read_to_string(root.join(key_a).join("report.txt")).unwrap();
    let report_b = fs::read_to_string(root.join(key_b).join("report.txt")).unwrap();
    assert_eq!(report_a, include_str!("golden/serve-report.txt"));
    assert_eq!(
        report_a, report_b,
        "geometry variants cache identical bytes"
    );
    // The stored spec is the canonical form — scrambled input
    // normalized on the way in.
    let spec_b = fs::read_to_string(root.join(key_b).join("spec.json")).unwrap();
    let parsed = ScenarioSpec::from_json(&spec_b).unwrap();
    assert_eq!(spec_b, parsed.to_json());
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn malformed_drain_line_exits_2_with_a_hint() {
    let root = scratch("bad-drain");
    let requests = scratch("bad-drain-file").with_extension("jsonl");
    fs::write(&requests, "{\"species\":\"Ta\"}\n").unwrap();
    let out = Command::new(wafer_md_bin())
        .args([
            "serve",
            "--cache",
            root.to_str().unwrap(),
            "--drain",
            requests.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("line 1") && stderr.contains("missing required field 'workload'"),
        "{stderr}"
    );
    fs::write(&requests, "pure garbage\n").unwrap();
    let out = Command::new(wafer_md_bin())
        .args([
            "serve",
            "--cache",
            root.to_str().unwrap(),
            "--drain",
            requests.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("malformed scenario spec"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = fs::remove_file(&requests);
    let _ = fs::remove_dir_all(&root);
}

fn arb_workload() -> impl Strategy<Value = Workload> {
    (0u8..3, 1usize..6, 1usize..6, 1usize..4, 1.0f64..4.0).prop_map(|(kind, a, b, c, x)| match kind
    {
        0 => Workload::Slab {
            nx: a,
            ny: b,
            nz: c,
        },
        1 => Workload::GrainBoundary {
            size: V3d::new(10.0 + x, 9.0 * x, 3.0 + a as f64),
        },
        _ => Workload::ControlledGrid {
            side: 4 + a,
            spacing: x,
            b: b as i32,
        },
    })
}

fn arb_spec() -> impl Strategy<Value = ScenarioSpec> {
    let physics = (
        0u8..3,
        0.0f64..2000.0,
        1e-4f64..1e-2,
        1usize..200,
        0u64..u64::MAX,
    );
    let thermo = (0u8..2, 100.0f64..1000.0, 1usize..20);
    let exec = (0u8..2, 0u8..8, 0.0f64..0.3);
    let layout = (0usize..5, 1usize..5, 0usize..5, 0u8..2);
    (arb_workload(), physics, thermo, exec, layout).prop_map(
        |(
            workload,
            (species, temperature, dt, steps, seed),
            (thermo_kind, target, interval),
            (engine, periodic_bits, spare),
            (gp, shards, threads, xyz),
        )| {
            let species = [Species::Cu, Species::W, Species::Ta][species as usize];
            let mut spec = ScenarioSpec::new(species, workload);
            spec.temperature = temperature;
            spec.dt = dt;
            spec.steps = steps;
            spec.seed = seed;
            spec.engine = if engine == 0 {
                wafer_md::scenario::EngineKind::Baseline
            } else {
                wafer_md::scenario::EngineKind::Wse
            };
            spec.periodic = [
                periodic_bits & 1 != 0,
                periodic_bits & 2 != 0,
                periodic_bits & 4 != 0,
            ];
            spec.spare = spare;
            spec.thermostat = if thermo_kind == 0 {
                Thermostat::None
            } else {
                Thermostat::Rescale { target, interval }
            };
            spec.shards = shards;
            spec.ghost_period = if gp == 0 {
                GhostPeriod::Auto
            } else {
                GhostPeriod::Every(gp)
            };
            spec.threads = threads;
            spec.xyz = xyz != 0;
            spec
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The cache-soundness property: every spec round-trips losslessly
    /// through canonical JSON, the canonical form is a fixed point, and
    /// the hash is independent of the field order of the JSON source.
    #[test]
    fn spec_round_trips_and_hash_ignores_field_order(
        spec in arb_spec(),
        rotation in 0usize..14,
    ) {
        let json = spec.to_json();
        let back = ScenarioSpec::from_json(&json).unwrap();
        prop_assert_eq!(back, spec);
        prop_assert_eq!(back.to_json(), json.clone());
        prop_assert_eq!(back.canonical_hash(), spec.canonical_hash());

        let mut fields = match Value::parse(&json).unwrap() {
            Value::Obj(fields) => fields,
            _ => unreachable!("canonical form is an object"),
        };
        let n = fields.len();
        fields.rotate_left(rotation % n);
        if rotation % 2 == 1 {
            fields.reverse();
        }
        let scrambled = Value::Obj(fields).render();
        let reparsed = ScenarioSpec::from_json(&scrambled).unwrap();
        prop_assert_eq!(reparsed, spec);
        prop_assert_eq!(reparsed.canonical_hash(), spec.canonical_hash());
    }
}
