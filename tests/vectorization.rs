//! Executable vectorization contract: the f64x4-chunked kernels and the
//! engines built on them must be **bit-identical** (`to_bits`, not
//! merely close) to their scalar references — at every lane-tail
//! residue `n % LANES ∈ {0, 1, 2, 3}` and at every worker-pool size.
//! Random inputs keep the lane batching honest where hand-picked
//! lattices would only exercise one rounding pattern.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wafer_md::baseline::BaselineEngine;
use wafer_md::md::engine::{Engine, HaloEngine};
use wafer_md::md::materials::{Material, Species};
use wafer_md::md::spline::LANES;
use wafer_md::md::system::{Box3, System};
use wafer_md::md::vec3::V3d;
use wafer_md::wse::{WseMdConfig, WseMdSim};

const SPECIES: [Species; 3] = [Species::Ta, Species::Cu, Species::W];

/// A jittered cubic cluster of exactly `n` atoms — `n` is free, unlike
/// the crystal generators, so every lane-tail residue is reachable.
fn jittered_cluster(material: &Material, n: usize, seed: u64) -> Vec<V3d> {
    let side = (n as f64).cbrt().ceil() as usize;
    let spacing = 0.72 * material.lattice_a;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let (x, y, z) = (i % side, (i / side) % side, i / (side * side));
            let mut jitter = || rng.gen_range(-0.15..0.15);
            V3d::new(
                x as f64 * spacing + jitter(),
                y as f64 * spacing + jitter(),
                z as f64 * spacing + jitter(),
            )
        })
        .collect()
}

proptest! {
    // Kernel level: one lane batch through the tabulated splines must
    // reproduce four scalar calls exactly. This is the primitive both
    // backends' force loops are built from.
    #[test]
    fn spline_lane_batches_match_scalar_calls_bitwise(
        species_idx in 0usize..3,
        radii in proptest::collection::vec(0.1f64..7.0, LANES..LANES + 1),
        rho_fracs in proptest::collection::vec(0.0f64..2.5, LANES..LANES + 1),
    ) {
        let material = Material::new(SPECIES[species_idx]);
        let potential = material.potential();
        let r4 = [radii[0], radii[1], radii[2], radii[3]];
        let (phi4, dphi4) = potential.pair4(r4);
        let (rho4, drho4) = potential.density4(r4);
        let mut d4 = [0.0; LANES];
        for (l, d) in d4.iter_mut().enumerate() {
            *d = rho_fracs[l] * material.rho_e;
        }
        let (f4, fp4) = potential.embedding4(d4);
        for l in 0..LANES {
            let (phi, dphi) = potential.pair(r4[l]);
            let (rho, drho) = potential.density(r4[l]);
            let (f, fp) = potential.embedding(d4[l]);
            prop_assert_eq!(phi.to_bits(), phi4[l].to_bits(), "phi lane {}", l);
            prop_assert_eq!(dphi.to_bits(), dphi4[l].to_bits(), "dphi lane {}", l);
            prop_assert_eq!(rho.to_bits(), rho4[l].to_bits(), "rho lane {}", l);
            prop_assert_eq!(drho.to_bits(), drho4[l].to_bits(), "drho lane {}", l);
            prop_assert_eq!(f.to_bits(), f4[l].to_bits(), "F lane {}", l);
            prop_assert_eq!(fp.to_bits(), fp4[l].to_bits(), "F' lane {}", l);
        }
    }
}

proptest! {
    // Engine level, reference backend: the chunked force loops against
    // the retained scalar oracle, with the atom count sweeping every
    // lane-tail residue and the worker pool at 1 and 4 threads.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn baseline_vectorized_forces_match_the_scalar_oracle_bitwise(
        species_idx in 0usize..3,
        quads in 5usize..10,
        tail in 0usize..LANES,
        seed in 0u64..1_000_000,
    ) {
        let n = quads * LANES + tail;
        let species = SPECIES[species_idx];
        let material = Material::new(species);
        let positions = jittered_cluster(&material, n, seed);
        for threads in [1usize, 4] {
            rayon::set_num_threads(threads);
            let system = System::from_positions(
                species,
                positions.clone(),
                Box3::open(V3d::splat(1.0e4)),
            );
            let engine = BaselineEngine::new(system, 2e-3);
            let (energy, pot, forces) = engine.compute_forces_scalar();
            prop_assert_eq!(
                engine.potential_energy.to_bits(),
                energy.to_bits(),
                "energy (n={}, {} threads)", n, threads
            );
            let vec_forces = engine.forces_view();
            let vec_pot = engine.per_atom_potential_energies();
            for i in 0..n {
                prop_assert_eq!(
                    vec_pot[i].to_bits(),
                    pot[i].to_bits(),
                    "atom {} pot (n={}, {} threads)", i, n, threads
                );
                let f = vec_forces.get(i);
                prop_assert_eq!(f.x.to_bits(), forces[i].x.to_bits(), "atom {} fx", i);
                prop_assert_eq!(f.y.to_bits(), forces[i].y.to_bits(), "atom {} fy", i);
                prop_assert_eq!(f.z.to_bits(), forces[i].z.to_bits(), "atom {} fz", i);
            }
            rayon::set_num_threads(0);
        }
    }
}

proptest! {
    // Engine level, wafer backend: the chunked Phase-3b embedding fold
    // writes per-core lanes, so its output must be a pure function of
    // the configuration — identical bits at 1 and 4 threads for every
    // lane-tail residue of the core count.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn wse_vectorized_fold_is_bit_stable_across_threads_at_every_tail(
        species_idx in 0usize..3,
        quads in 5usize..9,
        tail in 0usize..LANES,
        seed in 0u64..1_000_000,
    ) {
        let n = quads * LANES + tail;
        let species = SPECIES[species_idx];
        let material = Material::new(species);
        let positions = jittered_cluster(&material, n, seed);
        let velocities = vec![V3d::zero(); n];
        let mut runs = Vec::new();
        for threads in [1usize, 4] {
            rayon::set_num_threads(threads);
            let config = WseMdConfig::open_for(n, 0.05, 2e-3);
            let mut wse = WseMdSim::new(species, &positions, &velocities, config);
            wse.step();
            wse.step();
            let force_bits: Vec<[u64; 3]> = (0..n)
                .map(|i| {
                    let f = wse.forces_view().get(i);
                    [f.x.to_bits(), f.y.to_bits(), f.z.to_bits()]
                })
                .collect();
            let pot_bits: Vec<u64> = wse
                .per_atom_potential_energies()
                .iter()
                .map(|e| e.to_bits())
                .collect();
            let energy_bits = wse.last_stats.potential_energy.to_bits();
            runs.push((force_bits, pot_bits, energy_bits));
            rayon::set_num_threads(0);
        }
        prop_assert_eq!(&runs[0], &runs[1], "n = {} (tail {})", n, tail);
    }
}
