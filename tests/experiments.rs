//! End-to-end smoke tests of every experiment-regeneration path, so the
//! bench binaries can't rot: each paper table/figure's pipeline is
//! exercised with reduced parameters.

use wafer_md::baseline::strongscale::{strong_scaling_data, wse_model_rate};
use wafer_md::md::materials::Species;
use wafer_md::model;

#[test]
fn fig1_timescale_pipeline() {
    let wse = model::timescale::wse_star();
    let gpu = model::timescale::gpu_star();
    assert!(wse.time_s / gpu.time_s > 100.0);
}

#[test]
fn table1_pipeline_reproduces_speedups() {
    let data = strong_scaling_data(Species::Ta, 274_016.0);
    assert!((data.speedup_vs_gpu() - 179.0).abs() < 6.0);
    assert!((data.speedup_vs_cpu() - 55.0).abs() < 3.0);
}

#[test]
fn table2_pipeline_recovers_cost_model() {
    // Controlled-sweep fit over the simulator must recover Table II.
    use wafer_md::fabric::cost::WSE2_CLOCK_GHZ;
    let mut samples = Vec::new();
    for b in [2i32, 4, 6] {
        for spacing_frac in [0.3, 0.6, 0.9] {
            let m = wafer_md::md::materials::Material::new(Species::Ta);
            let mut sim = wafer_md_bench_shim::controlled_grid_sim(
                Species::Ta,
                18,
                m.cutoff * spacing_frac,
                b,
            );
            sim.run(3);
            let s = sim.last_stats;
            samples.push(model::linear::SweepSample {
                n_candidates: s.mean_candidates,
                n_interactions: s.mean_interactions,
                t_wall_ns: s.cycles / WSE2_CLOCK_GHZ,
            });
        }
    }
    let fit = model::linear::fit(&samples);
    assert!((fit.a - 26.6).abs() < 0.5, "A = {}", fit.a);
    assert!((fit.b - 71.4).abs() < 1.5, "B = {}", fit.b);
    assert!((fit.c - 574.0).abs() < 10.0, "C = {}", fit.c);
    assert!(fit.r_squared > 0.999);
}

/// Local copy of the bench crate's controlled-grid builder (the bench
/// crate is not a dependency of the facade).
mod wafer_md_bench_shim {
    use wafer_md::md::materials::Species;
    use wafer_md::md::vec3::V3d;
    use wafer_md::wse::{WseMdConfig, WseMdSim};

    pub fn controlled_grid_sim(species: Species, side: usize, spacing: f64, b: i32) -> WseMdSim {
        let positions: Vec<V3d> = (0..side * side)
            .map(|k| {
                V3d::new(
                    (k % side) as f64 * spacing,
                    (k / side) as f64 * spacing,
                    0.0,
                )
            })
            .collect();
        let velocities = vec![V3d::zero(); positions.len()];
        let config = WseMdConfig {
            extent: wafer_md::fabric::geometry::Extent::new(side, side),
            dt: 0.0,
            cost_model: wafer_md::fabric::cost::CostModel::paper_baseline(),
            periodic: [false; 3],
            box_lengths: V3d::zero(),
            b_override: Some((b, b)),
            symmetric_forces: false,
            neighbor_reuse_interval: 1,
            neighbor_skin: 0.0,
        };
        WseMdSim::new(species, &positions, &velocities, config)
    }
}

#[test]
fn fig8_weak_scaling_is_flat_under_controlled_workload() {
    let rates: Vec<f64> = [24usize, 48, 96]
        .iter()
        .map(|&side| {
            let mut sim = wafer_md_bench_shim::controlled_grid_sim(Species::Ta, side, 1.3, 4);
            sim.run(4);
            sim.timesteps_per_second(4)
        })
        .collect();
    // Same per-core workload except edge tiles, whose share falls with
    // size: the series must converge toward flat (paper: within 1% at
    // 10⁵-10⁶ cores, where the edge share is negligible).
    let spread = (rates[2] - rates[0]).abs() / rates[2];
    assert!(spread < 0.15, "weak scaling spread {spread}: {rates:?}");
    let tail_spread = (rates[2] - rates[1]).abs() / rates[2];
    assert!(tail_spread < 0.07, "tail spread {tail_spread}: {rates:?}");
    // Convergence: successive deviations shrink.
    assert!(tail_spread < spread, "series not converging: {rates:?}");
}

#[test]
fn table34_pipeline_utilizations() {
    use model::flops::{machine_utilization, Platform};
    let wse = machine_utilization(Platform::Cs2, Species::Ta);
    let gpu = machine_utilization(Platform::Frontier32Gcd, Species::Ta);
    assert!(wse > 0.15 && wse < 0.30);
    assert!(gpu < 0.01);
}

#[test]
fn table5_pipeline_projection() {
    let rows = model::projection::projection_table(Species::Ta);
    assert!(rows.last().unwrap().rate > 1e6);
}

#[test]
fn table6_pipeline_multiwafer() {
    for (lo, hi) in model::multiwafer::MultiWaferConfig::paper_rows() {
        assert!(lo.evaluate().performance > 0.95);
        assert!(hi.evaluate().performance > 0.90);
    }
}

#[test]
fn fig10_pipeline_staircase() {
    let steps = wafer_md::fabric::cost::fig10_campaign();
    let target = wse_model_rate(Species::Ta);
    let first = target / steps.first().unwrap().slowdown;
    let last = target / steps.last().unwrap().slowdown;
    assert!(first < 60_000.0);
    assert!(last > 260_000.0);
}

#[test]
fn sec2b_pipeline_lj_rates() {
    use wafer_md::baseline::lj;
    assert!(lj::v100_lj_rate(1000.0) < 10_000.0);
    assert!(lj::skylake36_lj_rate(1000.0) > 20_000.0);
}
