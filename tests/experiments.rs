//! End-to-end smoke tests of every experiment-regeneration path, so the
//! pipelines behind the paper's tables and figures can't rot. All
//! engine construction goes through the declarative scenario subsystem
//! (`wafer_md::scenario`) — no experiment wires a backend by hand.

use wafer_md::baseline::strongscale::{strong_scaling_data, wse_model_rate};
use wafer_md::md::materials::Species;
use wafer_md::model;
use wafer_md::scenario::{registry, run_to_string, EngineKind, RunOptions, Scenario};

#[test]
fn fig1_timescale_pipeline() {
    let wse = model::timescale::wse_star();
    let gpu = model::timescale::gpu_star();
    assert!(wse.time_s / gpu.time_s > 100.0);
}

#[test]
fn table1_pipeline_reproduces_speedups() {
    let data = strong_scaling_data(Species::Ta, 274_016.0);
    assert!((data.speedup_vs_gpu() - 179.0).abs() < 6.0);
    assert!((data.speedup_vs_cpu() - 55.0).abs() < 3.0);
}

#[test]
fn table2_pipeline_recovers_cost_model() {
    // Controlled-sweep fit over the simulator must recover Table II.
    // The controlled grid is the scenario subsystem's Sec. IV-B fixture,
    // driven through the unified Engine trait.
    use wafer_md::fabric::cost::WSE2_CLOCK_GHZ;
    let mut samples = Vec::new();
    for b in [2i32, 4, 6] {
        for spacing_frac in [0.3, 0.6, 0.9] {
            let m = wafer_md::md::materials::Material::new(Species::Ta);
            let mut sim = Scenario::controlled_grid(Species::Ta, 18, m.cutoff * spacing_frac, b)
                .build_engine()
                .expect("consistent scenario");
            sim.run(3);
            let o = sim.observables();
            samples.push(model::linear::SweepSample {
                n_candidates: o.mean_candidates,
                n_interactions: o.mean_interactions,
                t_wall_ns: o.modeled_cycles.expect("wse engine has a cost model") / WSE2_CLOCK_GHZ,
            });
        }
    }
    let fit = model::linear::fit(&samples);
    assert!((fit.a - 26.6).abs() < 0.5, "A = {}", fit.a);
    assert!((fit.b - 71.4).abs() < 1.5, "B = {}", fit.b);
    assert!((fit.c - 574.0).abs() < 10.0, "C = {}", fit.c);
    assert!(fit.r_squared > 0.999);
}

#[test]
fn fig8_weak_scaling_is_flat_under_controlled_workload() {
    let rates: Vec<f64> = [24usize, 48, 96]
        .iter()
        .map(|&side| {
            let mut sim = Scenario::controlled_grid(Species::Ta, side, 1.3, 4)
                .build_engine()
                .expect("consistent scenario");
            sim.run(4);
            sim.observables()
                .modeled_rate
                .expect("wse engine has a cost model")
        })
        .collect();
    // Same per-core workload except edge tiles, whose share falls with
    // size: the series must converge toward flat (paper: within 1% at
    // 10⁵-10⁶ cores, where the edge share is negligible).
    let spread = (rates[2] - rates[0]).abs() / rates[2];
    assert!(spread < 0.15, "weak scaling spread {spread}: {rates:?}");
    let tail_spread = (rates[2] - rates[1]).abs() / rates[2];
    assert!(tail_spread < 0.07, "tail spread {tail_spread}: {rates:?}");
    // Convergence: successive deviations shrink.
    assert!(tail_spread < spread, "series not converging: {rates:?}");
}

#[test]
fn table34_pipeline_utilizations() {
    use model::flops::{machine_utilization, Platform};
    let wse = machine_utilization(Platform::Cs2, Species::Ta);
    let gpu = machine_utilization(Platform::Frontier32Gcd, Species::Ta);
    assert!(wse > 0.15 && wse < 0.30);
    assert!(gpu < 0.01);
}

#[test]
fn table5_pipeline_projection() {
    let rows = model::projection::projection_table(Species::Ta);
    assert!(rows.last().unwrap().rate > 1e6);
}

#[test]
fn table6_pipeline_multiwafer() {
    for (lo, hi) in model::multiwafer::MultiWaferConfig::paper_rows() {
        assert!(lo.evaluate().performance > 0.95);
        assert!(hi.evaluate().performance > 0.90);
    }
}

#[test]
fn fig10_pipeline_staircase() {
    let steps = wafer_md::fabric::cost::fig10_campaign();
    let target = wse_model_rate(Species::Ta);
    let first = target / steps.first().unwrap().slowdown;
    let last = target / steps.last().unwrap().slowdown;
    assert!(first < 60_000.0);
    assert!(last > 260_000.0);
}

#[test]
fn sec2b_pipeline_lj_rates() {
    use wafer_md::baseline::lj;
    assert!(lj::v100_lj_rate(1000.0) < 10_000.0);
    assert!(lj::skylake36_lj_rate(1000.0) > 20_000.0);
}

#[test]
fn every_registered_scenario_reports_through_the_registry() {
    // Reduced budgets: this is a pipeline-rot smoke test, not a physics
    // run. Every scenario must execute and produce a non-empty report.
    let opts = RunOptions::new().atoms(36).steps(30);
    for entry in registry() {
        let text = run_to_string(entry.name, &opts)
            .expect("registered name")
            .expect("scenario runs");
        assert!(
            text.lines().count() >= 3,
            "{} report too short:\n{text}",
            entry.name
        );
    }
}

#[test]
fn quickstart_scenario_agrees_across_backends() {
    // The cross-engine contract at registry level: the same scenario on
    // both backends reports the same physics to f32 accuracy.
    let mut energies = Vec::new();
    for kind in [EngineKind::Baseline, EngineKind::Wse] {
        let sc = Scenario::slab(Species::Ta, 4, 4, 2)
            .temperature(290.0)
            .seed(2024)
            .engine(kind);
        let mut engine = sc.build_engine().expect("consistent scenario");
        engine.run(20);
        let o = engine.observables();
        energies.push(o.total_energy() / engine.n_atoms() as f64);
    }
    let rel = (energies[0] - energies[1]).abs() / energies[0].abs();
    assert!(rel < 1e-3, "per-atom energies diverge: {energies:?}");
}
