//! Property tests for the bounded result cache: under any interleaving
//! of inserts and lookups, the budget holds, the eviction order is a
//! pure function of the access sequence (so it replays identically in a
//! second cache and across reopen), and an evicted key re-inserted with
//! the same payload reads back byte-identical. A CLI-level test pins
//! the same property end to end: `--drain` over a budget-bounded cache
//! is deterministic run to run.

mod common;

use std::fs;
use std::path::PathBuf;
use std::process::Command;

use common::scratch;
use proptest::prelude::*;
use wafer_md::serve::{CacheBudget, CacheUsage, ResultCache};

/// The model's key universe: 8 distinct valid keys.
fn key(i: usize) -> String {
    format!("{:016x}", 0xabc0 + i as u64)
}

/// Deterministic payload for a key: `report.txt` + `counters.json`,
/// sized by the key index so byte budgets bite unevenly.
fn files(i: usize) -> (String, String) {
    let report = format!("report for key {i}\n").repeat(i + 1);
    let counters = format!("{{\"atoms\":{i}}}");
    (report, counters)
}

#[derive(Clone, Copy, Debug)]
enum Op {
    Insert(usize),
    Lookup(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0usize..8, 0u8..2), 1..60).prop_map(|raw| {
        raw.into_iter()
            .map(|(i, insert)| {
                if insert == 1 {
                    Op::Insert(i)
                } else {
                    Op::Lookup(i)
                }
            })
            .collect()
    })
}

fn arb_budget() -> impl Strategy<Value = CacheBudget> {
    (1usize..5, 20u64..400).prop_map(|(max_entries, max_bytes)| CacheBudget {
        max_entries,
        max_bytes,
    })
}

/// Drive one op sequence through a real cache rooted at `root`,
/// asserting the budget invariant after every op. Returns the final
/// recency order and usage.
fn drive(root: &PathBuf, budget: CacheBudget, ops: &[Op]) -> (Vec<String>, CacheUsage) {
    let mut cache = ResultCache::open_bounded(root, budget).unwrap();
    for op in ops {
        match *op {
            Op::Insert(i) => {
                let (report, counters) = files(i);
                cache
                    .insert(
                        &key(i),
                        &[
                            ("report.txt", report.as_str()),
                            ("counters.json", counters.as_str()),
                        ],
                    )
                    .unwrap();
                // The just-inserted key is always readable: the request
                // that caused the run must be answerable.
                let hit = cache
                    .lookup(&key(i))
                    .expect("insert is never self-evicting");
                assert_eq!(
                    hit.report, report,
                    "payload bytes survive eviction pressure"
                );
            }
            Op::Lookup(i) => {
                if let Some(hit) = cache.lookup(&key(i)) {
                    let (report, _) = files(i);
                    assert_eq!(hit.report, report, "a hit is always byte-exact");
                }
            }
        }
        let usage = cache.usage();
        assert!(
            usage.entries <= budget.max_entries as u64,
            "entry budget violated: {usage:?} vs {budget:?}"
        );
        assert!(
            usage.bytes <= budget.max_bytes || usage.entries <= 1,
            "byte budget violated with more than the protected entry: {usage:?} vs {budget:?}"
        );
    }
    (cache.lru_keys(), cache.usage())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Two caches fed the same access sequence agree on every
    /// observable: surviving keys, recency order, usage, evictions.
    #[test]
    fn eviction_is_a_pure_function_of_the_access_sequence(
        ops in arb_ops(),
        budget in arb_budget(),
    ) {
        let root_a = scratch("evict-a");
        let root_b = scratch("evict-b");
        let (order_a, usage_a) = drive(&root_a, budget, &ops);
        let (order_b, usage_b) = drive(&root_b, budget, &ops);
        prop_assert_eq!(&order_a, &order_b, "replay diverged");
        prop_assert_eq!(usage_a, usage_b);

        // Reopening replays the persisted index: same order, same
        // usage, and the surviving entries still read byte-exact. The
        // one carve-out: a lone entry kept past the byte budget by
        // insert-protection is trimmed at reopen, where nothing is
        // protected.
        let trimmed = usage_a.entries == 1 && usage_a.bytes > budget.max_bytes;
        let expected: Vec<String> = if trimmed { Vec::new() } else { order_a.clone() };
        let mut reopened = ResultCache::open_bounded(&root_a, budget).unwrap();
        prop_assert_eq!(reopened.lru_keys(), expected.clone());
        if !trimmed {
            prop_assert_eq!(reopened.usage().bytes, usage_a.bytes);
            prop_assert_eq!(reopened.usage().entries, usage_a.entries);
        }
        for k in &expected {
            let i = usize::from_str_radix(k.trim_start_matches('0'), 16).unwrap() - 0xabc0;
            let hit = reopened.lookup(k).expect("indexed key is present");
            prop_assert_eq!(hit.report, files(i).0);
        }
        fs::remove_dir_all(&root_a).unwrap();
        fs::remove_dir_all(&root_b).unwrap();
    }

    /// An evicted key re-inserted with the same payload reads back
    /// byte-identical — the disk round trip is lossless under churn.
    #[test]
    fn evicted_keys_reinsert_byte_identical(
        ops in arb_ops(),
    ) {
        let root = scratch("evict-reinsert");
        let budget = CacheBudget { max_entries: 2, max_bytes: u64::MAX };
        let (survivors, _) = drive(&root, budget, &ops);
        let mut cache = ResultCache::open_bounded(&root, budget).unwrap();
        for i in 0..8 {
            if survivors.contains(&key(i)) {
                continue;
            }
            let (report, counters) = files(i);
            cache
                .insert(
                    &key(i),
                    &[("report.txt", report.as_str()), ("counters.json", counters.as_str())],
                )
                .unwrap();
            prop_assert_eq!(cache.lookup(&key(i)).unwrap().report, report);
        }
        fs::remove_dir_all(&root).unwrap();
    }
}

/// The deferred-persistence contract of read hits: a hit reorders
/// recency in memory only — the on-disk index is NOT rewritten per hit
/// — yet the order still survives a clean close and drives eviction
/// after reopen.
#[test]
fn recency_from_read_hits_survives_reopen_without_per_hit_rewrites() {
    let root = scratch("evict-reopen-hits");
    let budget = CacheBudget {
        max_entries: 4,
        max_bytes: u64::MAX,
    };
    let insert = |cache: &mut ResultCache, i: usize| {
        let (report, counters) = files(i);
        cache
            .insert(
                &key(i),
                &[
                    ("report.txt", report.as_str()),
                    ("counters.json", counters.as_str()),
                ],
            )
            .unwrap();
    };
    {
        let mut cache = ResultCache::open_bounded(&root, budget).unwrap();
        for i in 0..4 {
            insert(&mut cache, i);
        }
        let after_inserts = fs::read_to_string(root.join("index.txt")).unwrap();
        // Hit the two oldest keys: most-recent in memory now.
        assert!(cache.lookup(&key(0)).is_some());
        assert!(cache.lookup(&key(1)).is_some());
        assert_eq!(
            fs::read_to_string(root.join("index.txt")).unwrap(),
            after_inserts,
            "a read hit must not rewrite the on-disk index"
        );
        assert_eq!(cache.lru_keys(), vec![key(2), key(3), key(0), key(1)]);
    } // clean close: the dirty recency order flushes here

    let mut reopened = ResultCache::open_bounded(&root, budget).unwrap();
    assert_eq!(
        reopened.lru_keys(),
        vec![key(2), key(3), key(0), key(1)],
        "the hit-reordered recency survived the reopen"
    );
    // The flushed order drives eviction: the next insert evicts the
    // true LRU (key 2), not the key the per-insert on-disk order would
    // have fronted (key 0).
    insert(&mut reopened, 4);
    assert!(
        reopened.lookup(&key(2)).is_none(),
        "the true LRU was evicted"
    );
    assert!(
        reopened.lookup(&key(0)).is_some(),
        "the hit key was protected by its recency"
    );
    fs::remove_dir_all(&root).unwrap();
}

fn wafer_md_bin() -> &'static str {
    env!("CARGO_BIN_EXE_wafer-md")
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/serve-requests.jsonl")
}

/// `--drain` over a budget-bounded cache is deterministic end to end:
/// the same starting cache state plus the same request file produces
/// byte-identical output and an identical surviving index — evictions
/// replay from the persisted recency order, never from
/// directory-listing order. (A *tight* warm cache is not idempotent
/// run over run — each drain reshapes which entry survives — which is
/// exactly why determinism is defined over the starting state.)
#[test]
fn bounded_drain_replays_identically() {
    let drain = |root: &PathBuf| {
        let out = Command::new(wafer_md_bin())
            .args([
                "serve",
                "--cache",
                root.to_str().unwrap(),
                "--cache-max-entries",
                "1",
                "--drain",
                fixture_path().to_str().unwrap(),
            ])
            .output()
            .expect("run wafer-md serve --drain");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };
    // Recursively copy a cache dir so two drains can start from the
    // same state.
    fn copy_dir(from: &PathBuf, to: &PathBuf) {
        fs::create_dir_all(to).unwrap();
        for entry in fs::read_dir(from).unwrap().flatten() {
            let dest = to.join(entry.file_name());
            if entry.path().is_dir() {
                copy_dir(&entry.path(), &dest);
            } else {
                fs::copy(entry.path(), dest).unwrap();
            }
        }
    }
    let root_a = scratch("bounded-drain-a");
    let root_b = scratch("bounded-drain-b");
    let cold_a = drain(&root_a);
    let cold_b = drain(&root_b);
    assert_eq!(cold_a, cold_b, "cold bounded drains diverged");

    // Same warm starting state (copied byte for byte) → same output and
    // same surviving index.
    let root_c = scratch("bounded-drain-c");
    copy_dir(&root_a, &root_c);
    let warm_a = drain(&root_a);
    let warm_c = drain(&root_c);
    assert_eq!(warm_a, warm_c, "warm bounded drains diverged");
    assert_eq!(
        fs::read_to_string(root_a.join("index.txt")).unwrap(),
        fs::read_to_string(root_c.join("index.txt")).unwrap(),
        "surviving index diverged"
    );

    // The budget held on disk: exactly one entry directory survives.
    let entries = fs::read_dir(&root_a)
        .unwrap()
        .filter(|e| e.as_ref().unwrap().path().is_dir())
        .count();
    assert_eq!(entries, 1);
    fs::remove_dir_all(&root_a).unwrap();
    fs::remove_dir_all(&root_b).unwrap();
    fs::remove_dir_all(&root_c).unwrap();
}
