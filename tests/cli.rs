//! Invocation tests for the `wafer-md-cli` binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wafer-md-cli"))
}

#[test]
fn help_prints_usage_and_exits_nonzero() {
    let out = cli().arg("--help").output().expect("spawn wafer-md-cli");
    assert_eq!(out.status.code(), Some(2), "--help exits with usage status");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage: wafer-md-cli"), "stderr: {stderr}");
    assert!(stderr.contains("--species"), "stderr: {stderr}");
}

#[test]
fn unknown_flag_is_rejected() {
    let out = cli().arg("--no-such-flag").output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown argument"), "stderr: {stderr}");
}

#[test]
fn tiny_simulation_reports_physics_and_rate() {
    let out = cli()
        .args(["--nx", "4", "--ny", "4", "--nz", "1", "--steps", "5"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "status: {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wafer-md:"), "stdout: {stdout}");
    assert!(stdout.contains("atoms on"), "stdout: {stdout}");
    assert!(stdout.contains("timesteps/s"), "stdout: {stdout}");
    assert!(stdout.contains("RDF main peak"), "stdout: {stdout}");
}
