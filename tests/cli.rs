//! Invocation tests for the `wafer-md` binary: usage handling, the
//! `list`/registry contract, and byte-exact golden output for the
//! `quickstart` scenario on both engines.

use std::process::Command;

use wafer_md::scenario;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_wafer-md"))
}

#[test]
fn help_prints_usage_and_exits_nonzero() {
    let out = cli().arg("--help").output().expect("spawn wafer-md");
    assert_eq!(out.status.code(), Some(2), "--help exits with usage status");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage: wafer-md run"), "stderr: {stderr}");
    assert!(stderr.contains("--engine baseline|wse"), "stderr: {stderr}");
    assert!(stderr.contains("quickstart"), "usage lists scenarios");
}

#[test]
fn unknown_scenario_is_rejected_and_lists_the_registry() {
    let out = cli()
        .args(["run", "no-such-scenario"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2), "unknown scenario exits nonzero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown scenario"), "stderr: {stderr}");
    // The error itself must surface every valid name, not just fail.
    for entry in scenario::registry() {
        assert!(
            stderr.contains(entry.name),
            "error does not list '{}': {stderr}",
            entry.name
        );
    }
}

/// Unknown `--engine` values exit 2 with a hint naming the accepted
/// backends (the rendered [`scenario::ScenarioError::UnknownEngine`]).
#[test]
fn unknown_engine_is_rejected_with_a_hint() {
    let out = cli()
        .args(["run", "quickstart", "--engine", "gpu"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2), "--engine gpu must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown engine 'gpu'"), "stderr: {stderr}");
    assert!(
        stderr.contains("expected baseline|wse"),
        "stderr lacks the accepted backends: {stderr}"
    );
    assert!(stderr.contains("usage: wafer-md run"), "stderr: {stderr}");
}

/// Unknown species on `export-setfl` exit 2 with the rendered
/// [`scenario::ScenarioError::UnknownSpecies`] hint.
#[test]
fn export_setfl_unknown_species_is_rejected() {
    let out = cli()
        .args(["export-setfl", "iron", "/dev/null"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2), "unknown species must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown species 'iron'"),
        "stderr: {stderr}"
    );
    assert!(stderr.contains("usage: wafer-md run"), "stderr: {stderr}");
}

#[test]
fn zero_shards_is_rejected() {
    let out = cli()
        .args(["run", "quickstart", "--shards", "0"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--shards"), "stderr: {stderr}");
}

/// Invalid `--ghost-period` values exit 2 with a usage hint naming the
/// flag and the accepted spellings.
#[test]
fn invalid_ghost_period_is_rejected_with_a_hint() {
    for bad in ["0", "banana", "-3", "1.5"] {
        let out = cli()
            .args(["run", "quickstart", "--ghost-period", bad])
            .output()
            .expect("spawn");
        assert_eq!(
            out.status.code(),
            Some(2),
            "--ghost-period {bad} must exit 2"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("--ghost-period"), "stderr: {stderr}");
        assert!(
            stderr.contains("positive integer or 'auto'"),
            "stderr lacks the accepted spellings: {stderr}"
        );
        assert!(stderr.contains("usage: wafer-md run"), "stderr: {stderr}");
    }
}

/// `--ghost-period` is accepted on the sharded scenarios, and physics
/// is bit-identical at any value: an amortized sharded quickstart must
/// still byte-match the committed (unsharded, every-step) golden.
#[test]
fn ghost_period_is_accepted_and_does_not_change_quickstart_bytes() {
    let out = cli()
        .args([
            "run",
            "quickstart",
            "--engine",
            "wse",
            "--shards",
            "2",
            "--ghost-period",
            "4",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "status: {:?}", out.status);
    let golden_path = format!(
        "{}/tests/golden/quickstart-wse.txt",
        env!("CARGO_MANIFEST_DIR")
    );
    let golden = std::fs::read(&golden_path).expect("read committed golden");
    assert!(
        out.stdout == golden,
        "amortized sharded quickstart diverged from the golden:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

/// `auto` resolves to a concrete period and the multi-wafer report
/// prints the resolution; an explicit period is echoed as given; and
/// the physics lines agree across periods.
#[test]
fn ghost_period_auto_resolves_and_is_printed_in_the_report() {
    let run = |period: &str| {
        let out = cli()
            .args([
                "run",
                "multi-wafer",
                "--steps",
                "20",
                "--ghost-period",
                period,
            ])
            .output()
            .expect("spawn");
        assert!(out.status.success(), "status: {:?}", out.status);
        String::from_utf8(out.stdout).expect("utf-8")
    };
    let auto = run("auto");
    let line = auto
        .lines()
        .find(|l| l.starts_with("ghost period: auto -> "))
        .unwrap_or_else(|| panic!("no resolved auto line in:\n{auto}"));
    let resolved: usize = line["ghost period: auto -> ".len()..]
        .split_whitespace()
        .next()
        .expect("resolved value")
        .parse()
        .expect("auto resolves to an integer period");
    assert!((1..=8).contains(&resolved), "resolved {resolved}");

    let fixed = run("2");
    assert!(fixed.contains("ghost period: 2 "), "report: {fixed}");
    // Physics is schedule-invariant: the observables line matches.
    let physics = |s: &str| {
        s.lines()
            .find(|l| l.starts_with("after "))
            .map(str::to_owned)
            .expect("observables line")
    };
    assert_eq!(physics(&auto), physics(&fixed));
}

#[test]
fn unknown_flag_is_rejected() {
    let out = cli()
        .args(["run", "quickstart", "--no-such-flag"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown argument"), "stderr: {stderr}");
}

#[test]
fn list_matches_the_registry_exactly() {
    let out = cli().arg("list").output().expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert_eq!(
        stdout,
        scenario::list_text(),
        "`wafer-md list` must render the registry verbatim"
    );
    // And the registry itself covers every scenario the paper names.
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), scenario::registry().len());
    for (line, entry) in lines.iter().zip(scenario::registry()) {
        assert!(
            line.starts_with(entry.name),
            "line '{line}' out of registry order"
        );
        assert!(line.contains(entry.summary), "summary missing in '{line}'");
    }
}

#[test]
fn run_accepts_overrides_and_reports_observables() {
    let out = cli()
        .args([
            "run",
            "quickstart",
            "--atoms",
            "64",
            "--steps",
            "5",
            "--engine",
            "wse",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "status: {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("engine wse"), "stdout: {stdout}");
    assert!(stdout.contains("after 5 steps"), "stdout: {stdout}");
    assert!(stdout.contains("RDF main peak"), "stdout: {stdout}");
}

/// The sharded determinism contract, end to end through the CLI: the
/// scenario report and the XYZ trajectory must be byte-identical at any
/// `--shards` value, on both engines.
#[test]
fn sharded_runs_are_byte_identical_through_the_cli() {
    let dir = std::env::temp_dir();
    for engine in ["baseline", "wse"] {
        let mut reference: Option<(Vec<u8>, Vec<u8>)> = None;
        for shards in ["1", "2", "4"] {
            let xyz = dir.join(format!("wafer-md-cli-{engine}-{shards}.xyz"));
            let out = cli()
                .args([
                    "run",
                    "quickstart",
                    "--engine",
                    engine,
                    "--atoms",
                    "100",
                    "--steps",
                    "25",
                    "--shards",
                    shards,
                    "--xyz",
                    xyz.to_str().unwrap(),
                ])
                .output()
                .expect("spawn");
            assert!(out.status.success(), "status: {:?}", out.status);
            let traj = std::fs::read(&xyz).expect("trajectory written");
            let _ = std::fs::remove_file(&xyz);
            match &reference {
                None => reference = Some((out.stdout, traj)),
                Some((ref_stdout, ref_traj)) => {
                    assert!(
                        *ref_stdout == out.stdout,
                        "{engine}: report differs at --shards {shards}"
                    );
                    assert!(
                        *ref_traj == traj,
                        "{engine}: trajectory differs at --shards {shards}"
                    );
                }
            }
        }
    }
}

/// The committed XYZ golden pins the trajectory format and the bits of
/// a short reduced run.
#[test]
fn quickstart_xyz_matches_committed_golden() {
    let dir = std::env::temp_dir();
    let xyz = dir.join("wafer-md-cli-golden.xyz");
    let out = cli()
        .args([
            "run",
            "quickstart",
            "--atoms",
            "36",
            "--steps",
            "30",
            "--xyz",
            xyz.to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "status: {:?}", out.status);
    let traj = std::fs::read(&xyz).expect("trajectory written");
    let _ = std::fs::remove_file(&xyz);
    let golden_path = format!(
        "{}/tests/golden/quickstart-36.xyz",
        env!("CARGO_MANIFEST_DIR")
    );
    let golden = std::fs::read(&golden_path).expect("read committed golden");
    assert!(
        traj == golden,
        "quickstart trajectory diverged from {golden_path}"
    );
}

/// The CI smoke contract: `wafer-md run quickstart` must byte-match the
/// committed golden file for each engine, at any thread count.
#[test]
fn quickstart_matches_committed_golden_output() {
    for engine in ["baseline", "wse"] {
        let out = cli()
            .args(["run", "quickstart", "--engine", engine])
            .output()
            .expect("spawn");
        assert!(out.status.success(), "status: {:?}", out.status);
        let golden_path = format!(
            "{}/tests/golden/quickstart-{engine}.txt",
            env!("CARGO_MANIFEST_DIR")
        );
        let golden = std::fs::read(&golden_path).expect("read committed golden file");
        assert!(
            out.stdout == golden,
            "quickstart --engine {engine} diverged from {golden_path}:\n--- got ---\n{}\n--- want ---\n{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&golden)
        );
    }
}

/// The multi-wafer scenario's report is itself a determinism assertion
/// ("bit-identity across shard counts: confirmed"); pin it byte-exactly.
#[test]
fn multi_wafer_matches_committed_golden_output() {
    let out = cli().args(["run", "multi-wafer"]).output().expect("spawn");
    assert!(out.status.success(), "status: {:?}", out.status);
    let golden_path = format!(
        "{}/tests/golden/multi-wafer.txt",
        env!("CARGO_MANIFEST_DIR")
    );
    let golden = std::fs::read(&golden_path).expect("read committed golden file");
    assert!(
        out.stdout == golden,
        "multi-wafer diverged from {golden_path}:\n--- got ---\n{}\n--- want ---\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&golden)
    );
    assert!(String::from_utf8_lossy(&out.stdout)
        .contains("bit-identity across shard counts and ghost periods: confirmed"));
}
