//! # wafer-md
//!
//! A Rust reproduction of *Breaking the Molecular Dynamics Timescale
//! Barrier Using a Wafer-Scale System* (Santos et al., SC 2024,
//! arXiv:2405.07898): EAM molecular dynamics strong-scaled to one atom
//! per processor core on an architectural simulation of the Cerebras
//! Wafer-Scale Engine, with the paper's complete evaluation — linear
//! performance model, FLOP/utilization accounting, strong/weak scaling,
//! energy efficiency, atom-swap remapping, and multi-wafer projections —
//! regenerable from the `wafer-md-bench` binaries.
//!
//! This crate is a facade re-exporting the workspace's five libraries:
//!
//! | crate | role |
//! |---|---|
//! | [`fabric`] | WSE architectural simulator (tiles, routers, marching multicast, cost model) |
//! | [`md`] | MD substrate (EAM splines, Cu/W/Ta materials, lattices, integrators, neighbor lists) |
//! | [`wse`] | the paper's contribution: one-atom-per-core MD on the fabric |
//! | [`baseline`] | LAMMPS-style reference engine + calibrated GPU/CPU cluster models |
//! | [`model`] | analytic models: Tables II–VI and Fig. 1 |
//!
//! See `examples/quickstart.rs` for a five-line simulation and
//! EXPERIMENTS.md for the paper-vs-measured record of every table and
//! figure.

pub use md_baseline as baseline;
pub use md_core as md;
pub use perf_model as model;
pub use wse_fabric as fabric;
pub use wse_md as wse;

/// The workspace version.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
