//! # wafer-md
//!
//! A Rust reproduction of *Breaking the Molecular Dynamics Timescale
//! Barrier Using a Wafer-Scale System* (Santos et al., SC 2024,
//! arXiv:2405.07898): EAM molecular dynamics strong-scaled to one atom
//! per processor core on an architectural simulation of the Cerebras
//! Wafer-Scale Engine, with the paper's complete evaluation — linear
//! performance model, FLOP/utilization accounting, strong/weak scaling,
//! energy efficiency, atom-swap remapping, and multi-wafer projections —
//! regenerable from the `wafer-md-bench` binaries.
//!
//! This crate is a facade re-exporting the workspace's five libraries:
//!
//! | crate | role |
//! |---|---|
//! | [`fabric`] | WSE architectural simulator (tiles, routers, marching multicast, cost model) |
//! | [`md`] | MD substrate (EAM splines, Cu/W/Ta materials, lattices, integrators, neighbor lists) |
//! | [`wse`] | the paper's contribution: one-atom-per-core MD on the fabric |
//! | [`baseline`] | LAMMPS-style reference engine + calibrated GPU/CPU cluster models |
//! | [`model`] | analytic models: Tables II–VI and Fig. 1 |
//!
//! On top of the re-exports, the [`scenario`] module is the unified
//! entry point: a serializable [`scenario::ScenarioSpec`] (pure data
//! with a canonical JSON form and a stable content hash), the
//! declarative [`scenario::Scenario`] builder that materializes it, the
//! [`scenario::Engine`] trait both backends implement, and a named
//! registry of every workload (`wafer-md run <name>` / `wafer-md list`
//! on the command line; `cargo run --example quickstart` etc. are thin
//! wrappers over the same registry). The [`shard`] module runs any
//! registered MD workload as K spatial shards with ghost-region
//! exchange — bit-identical to the single-engine run — and [`traj`]
//! dumps XYZ trajectories for end-to-end byte comparison.
//!
//! The [`serve`] module turns the byte-determinism guarantee into a
//! service: `wafer-md serve` accepts [`scenario::ScenarioSpec`]
//! requests over HTTP/JSON ([`json`] is the dependency-free JSON
//! layer), runs each distinct spec exactly once, and answers repeats
//! from a content-addressed on-disk result cache keyed by
//! [`scenario::ScenarioSpec::canonical_hash`].
//!
//! See docs/ARCHITECTURE.md for the crate map and how a scenario flows
//! through an engine.

#![warn(missing_docs)]

pub use md_baseline as baseline;
pub use md_core as md;
pub use perf_model as model;
pub use wse_fabric as fabric;
pub use wse_md as wse;

pub mod json;
pub mod scenario;
pub mod serve;
pub mod shard;
pub mod traj;

/// The workspace version.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
