//! `wafer-md` — run the registered scenarios from the command line.
//!
//! ```text
//! wafer-md run <scenario> [--engine baseline|wse] [--atoms N] [--steps N]
//!                         [--shards K] [--ghost-period k|auto] [--xyz PATH]
//! wafer-md list
//! wafer-md export-setfl <cu|w|ta> <path>
//! ```
//!
//! `run` executes a scenario from the declarative registry
//! (`wafer_md::scenario`) and prints its deterministic report; `list`
//! enumerates the registry with the one-line description of each
//! scenario; `export-setfl` writes a calibrated potential as a LAMMPS
//! `eam/alloy` file for interop with the paper's original toolchain.

use wafer_md::md::materials::Material;
use wafer_md::md::setfl;
use wafer_md::scenario::{self, EngineKind, RunOptions, ScenarioError};

/// Surface a typed scenario error with the usage text and exit 2: the
/// error's `Display` *is* the hint line the tests assert on.
fn scenario_error(e: ScenarioError) -> ! {
    eprintln!("{e}");
    usage()
}

fn usage() -> ! {
    eprintln!(
        "usage: wafer-md run <scenario> [--engine baseline|wse] [--atoms N] [--steps N]\n\
         \x20                           [--shards K] [--ghost-period k|auto] [--xyz PATH]\n\
         \x20      wafer-md list\n\
         \x20      wafer-md export-setfl <cu|w|ta> <path>\n\
         \n\
         scenarios:\n{}",
        indent(&scenario::list_text())
    );
    std::process::exit(2);
}

/// Reject an unknown scenario name: the error must surface the valid
/// names directly (not just the generic usage text) and exit nonzero.
fn unknown_scenario(name: &str) -> ! {
    let names: Vec<&str> = scenario::registry().iter().map(|e| e.name).collect();
    eprintln!(
        "unknown scenario '{name}'; available scenarios: {}",
        names.join(", ")
    );
    std::process::exit(2);
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("  {l}\n"))
        .collect::<String>()
        .trim_end_matches('\n')
        .to_string()
}

fn parse_run(args: &[String]) -> (String, RunOptions) {
    let Some(name) = args.first() else { usage() };
    let mut opts = RunOptions::default();
    let mut i = 1;
    let value = |i: &mut usize| -> &String {
        *i += 1;
        args.get(*i).unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--engine" => {
                let v = value(&mut i);
                opts.engine = Some(EngineKind::parse(v).unwrap_or_else(|e| scenario_error(e)));
            }
            "--atoms" => opts.atoms = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--steps" => opts.steps = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--shards" => {
                let k: usize = value(&mut i).parse().unwrap_or_else(|_| usage());
                if k == 0 {
                    scenario_error(ScenarioError::InvalidShards)
                }
                opts.shards = Some(k);
            }
            "--ghost-period" => {
                let v = value(&mut i);
                opts.ghost_period =
                    Some(scenario::parse_ghost_period(v).unwrap_or_else(|e| scenario_error(e)));
            }
            "--xyz" => opts.xyz = Some(value(&mut i).into()),
            other => {
                eprintln!("unknown argument '{other}'");
                usage()
            }
        }
        i += 1;
    }
    (name.clone(), opts)
}

fn export_setfl(args: &[String]) {
    let [species, path] = args else { usage() };
    let species = scenario::parse_species(species).unwrap_or_else(|e| scenario_error(e));
    let material = Material::new(species);
    let text = setfl::export_material(&material, 2000, 2000);
    std::fs::write(path, text).expect("write setfl file");
    println!(
        "wrote LAMMPS eam/alloy potential for {} to {path}",
        species.symbol()
    );
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("run") => {
            let (name, opts) = parse_run(&argv[1..]);
            let Some(entry) = scenario::find(&name) else {
                unknown_scenario(&name)
            };
            let stdout = std::io::stdout();
            if let Err(e) = entry.run(&opts, &mut stdout.lock()) {
                // A closed pipe (`wafer-md run ... | head`) is a normal
                // way to stop reading, not an error.
                if e.kind() != std::io::ErrorKind::BrokenPipe {
                    panic!("write scenario report: {e}");
                }
            }
        }
        Some("list") => print!("{}", scenario::list_text()),
        Some("export-setfl") => export_setfl(&argv[1..]),
        _ => usage(),
    }
}
