//! `wafer-md` — run the registered scenarios from the command line.
//!
//! ```text
//! wafer-md run <scenario> [--engine baseline|wse] [--atoms N] [--steps N]
//!                         [--shards K] [--ghost-period k|auto] [--xyz PATH]
//! wafer-md list
//! wafer-md serve [--addr HOST:PORT] [--cache DIR] [--drain FILE]
//!                [--serve-threads N] [--timeout-ms MS]
//!                [--max-requests-per-conn N]
//!                [--cache-max-bytes B] [--cache-max-entries N]
//!                [--trace FILE]
//! wafer-md export-setfl <cu|w|ta> <path>
//! ```
//!
//! `run` executes a scenario from the declarative registry
//! (`wafer_md::scenario`) and prints its deterministic report; `list`
//! enumerates the registry with the one-line description of each
//! scenario; `serve` answers `ScenarioSpec` requests over HTTP/JSON
//! from a content-addressed result cache (`--drain FILE` runs a
//! request file to completion and exits, for CI); `export-setfl`
//! writes a calibrated potential as a LAMMPS `eam/alloy` file for
//! interop with the paper's original toolchain.

use std::io::Write;
use std::sync::Arc;

use wafer_md::md::materials::Material;
use wafer_md::md::setfl;
use wafer_md::scenario::{self, RunOptions, ScenarioError};
use wafer_md::serve;

/// Surface a typed scenario error with the usage text and exit 2: the
/// error's `Display` *is* the hint line the tests assert on.
fn scenario_error(e: ScenarioError) -> ! {
    eprintln!("{e}");
    usage()
}

fn usage() -> ! {
    eprintln!(
        "usage: wafer-md run <scenario> [--engine baseline|wse] [--atoms N] [--steps N]\n\
         \x20                           [--shards K] [--ghost-period k|auto] [--xyz PATH]\n\
         \x20      wafer-md list\n\
         \x20      wafer-md serve [--addr HOST:PORT] [--cache DIR] [--drain FILE]\n\
         \x20                     [--serve-threads N] [--timeout-ms MS]\n\
         \x20                     [--max-requests-per-conn N]\n\
         \x20                     [--cache-max-bytes B] [--cache-max-entries N]\n\
         \x20                     [--trace FILE]   (wafer-md serve --help for details)\n\
         \x20      wafer-md export-setfl <cu|w|ta> <path>\n\
         \n\
         scenarios:\n{}",
        indent(&scenario::list_text())
    );
    std::process::exit(2);
}

/// Reject an unknown scenario name: the error must surface the valid
/// names directly (not just the generic usage text) and exit nonzero.
fn unknown_scenario(name: &str) -> ! {
    let names: Vec<&str> = scenario::registry().iter().map(|e| e.name).collect();
    eprintln!(
        "unknown scenario '{name}'; available scenarios: {}",
        names.join(", ")
    );
    std::process::exit(2);
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("  {l}\n"))
        .collect::<String>()
        .trim_end_matches('\n')
        .to_string()
}

fn parse_run(args: &[String]) -> (String, RunOptions) {
    let Some(name) = args.first() else { usage() };
    let mut opts = RunOptions::new();
    let mut i = 1;
    let value = |i: &mut usize| -> &String {
        *i += 1;
        args.get(*i).unwrap_or_else(|| usage())
    };
    // Every flag routes through a typed RunOptions parse_* setter: the
    // builder owns validation, and any ScenarioError maps to exit 2
    // with its rendered hint.
    while i < args.len() {
        let fallible = |r: Result<RunOptions, ScenarioError>| -> RunOptions {
            r.unwrap_or_else(|e| scenario_error(e))
        };
        opts = match args[i].as_str() {
            "--engine" => fallible(opts.parse_engine(value(&mut i))),
            "--atoms" => fallible(opts.parse_atoms(value(&mut i))),
            "--steps" => fallible(opts.parse_steps(value(&mut i))),
            "--shards" => fallible(opts.parse_shards(value(&mut i))),
            "--ghost-period" => fallible(opts.parse_ghost_period(value(&mut i))),
            "--xyz" => opts.xyz(value(&mut i).into()),
            other => {
                eprintln!("unknown argument '{other}'");
                usage()
            }
        };
        i += 1;
    }
    (name.clone(), opts)
}

/// Parse a positive integer serve flag, exiting 2 with a hint
/// otherwise.
fn parse_count(flag: &str, v: &str) -> u64 {
    match v.parse::<u64>() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("{flag} must be a positive integer (got '{v}')");
            usage()
        }
    }
}

/// `wafer-md serve --help`: the flag table. Each flag row starts with
/// two spaces and the flag name — CI greps these rows and diffs the
/// flag set against the table in `docs/OPERATIONS.md`, so the two can
/// never drift apart.
fn serve_help() -> ! {
    println!(
        "usage: wafer-md serve [flags]\n\
         \n\
         Serve ScenarioSpec requests over HTTP/JSON from a content-addressed\n\
         result cache, or drain a request file to completion and exit.\n\
         Operator manual: docs/OPERATIONS.md\n\
         \n\
         flags:\n\
         \x20 --addr HOST:PORT       listen address (default 127.0.0.1:7878; port 0 picks a free port)\n\
         \x20 --cache DIR            result cache root (default ./.wafer-cache)\n\
         \x20 --drain FILE           run a request file to completion, print the drain report, exit\n\
         \x20 --once FILE            alias for --drain\n\
         \x20 --serve-threads N      acceptor threads answering connections (default 4)\n\
         \x20 --timeout-ms MS        per-connection read/write + keep-alive idle timeout (default 10000)\n\
         \x20 --max-requests-per-conn N  requests served per connection before it closes (default 100)\n\
         \x20 --cache-max-bytes B    evict LRU entries beyond this payload size (default unbounded)\n\
         \x20 --cache-max-entries N  evict LRU entries beyond this count (default unbounded)\n\
         \x20 --trace FILE           write one compact-JSON line per lifecycle event to FILE"
    );
    std::process::exit(0);
}

fn serve_main(args: &[String]) {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut cache = "./.wafer-cache".to_string();
    let mut drain: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut config = serve::ServeConfig::default();
    let mut budget = serve::CacheBudget::UNBOUNDED;
    let mut i = 0;
    let value = |i: &mut usize| -> &String {
        *i += 1;
        args.get(*i).unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => serve_help(),
            "--addr" => addr = value(&mut i).clone(),
            "--cache" => cache = value(&mut i).clone(),
            // `--once` is an alias for `--drain`: run the request file
            // to completion, then exit.
            "--drain" | "--once" => drain = Some(value(&mut i).clone()),
            "--serve-threads" => {
                config.threads = parse_count("--serve-threads", value(&mut i)) as usize;
            }
            "--timeout-ms" => {
                let ms = parse_count("--timeout-ms", value(&mut i));
                config.read_timeout = std::time::Duration::from_millis(ms);
                config.write_timeout = config.read_timeout;
            }
            "--max-requests-per-conn" => {
                config.max_requests_per_conn =
                    parse_count("--max-requests-per-conn", value(&mut i));
            }
            "--cache-max-bytes" => {
                budget.max_bytes = parse_count("--cache-max-bytes", value(&mut i));
            }
            "--cache-max-entries" => {
                budget.max_entries = parse_count("--cache-max-entries", value(&mut i)) as usize;
            }
            "--trace" => trace = Some(value(&mut i).clone()),
            other => {
                eprintln!("unknown argument '{other}'");
                usage()
            }
        }
        i += 1;
    }
    let store = serve::ResultCache::open_bounded(std::path::Path::new(&cache), budget)
        .unwrap_or_else(|e| panic!("open cache {cache}: {e}"));
    // Drain mode has no acceptor pool; serve sizes one counter per
    // acceptor thread.
    let acceptors = if drain.is_some() {
        0
    } else {
        config.threads.max(1)
    };
    let metrics = match &trace {
        Some(path) => serve::ServeMetrics::with_trace(acceptors, std::path::Path::new(path))
            .unwrap_or_else(|e| panic!("open trace file {path}: {e}")),
        None => serve::ServeMetrics::new(acceptors),
    };
    let metrics = std::sync::Arc::new(metrics);
    if let Some(requests) = drain {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        let drained =
            serve::drain_file_with(store, requests.as_ref(), &mut out, Arc::clone(&metrics));
        // Timing goes to stderr only: stdout is the byte-diffed drain
        // report and must stay a pure function of the request file.
        metrics.flush_trace();
        eprintln!("{}", metrics.drain_summary());
        if let Err(e) = drained {
            if e.kind() == std::io::ErrorKind::InvalidData {
                // A malformed request line is a usage error, not a crash.
                eprintln!("{requests}: {e}");
                std::process::exit(2);
            }
            panic!("drain {requests}: {e}");
        }
        return;
    }
    let mut server = serve::Server::bind_metrics(&addr, store, config, Arc::clone(&metrics))
        .unwrap_or_else(|e| panic!("bind {addr}: {e}"));
    let bound = server.local_addr().expect("bound listener has an address");
    println!(
        "listening on {bound} (cache {cache}, {} serve threads)",
        config.threads
    );
    std::io::stdout().flush().expect("flush stdout");
    let served = server.serve();
    metrics.flush_trace();
    if let Err(e) = served {
        panic!("serve on {bound}: {e}");
    }
}

fn export_setfl(args: &[String]) {
    let [species, path] = args else { usage() };
    let species = scenario::parse_species(species).unwrap_or_else(|e| scenario_error(e));
    let material = Material::new(species);
    let text = setfl::export_material(&material, 2000, 2000);
    std::fs::write(path, text).expect("write setfl file");
    println!(
        "wrote LAMMPS eam/alloy potential for {} to {path}",
        species.symbol()
    );
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("run") => {
            let (name, opts) = parse_run(&argv[1..]);
            let Some(entry) = scenario::find(&name) else {
                unknown_scenario(&name)
            };
            let stdout = std::io::stdout();
            if let Err(e) = entry.run(&opts, &mut stdout.lock()) {
                // A closed pipe (`wafer-md run ... | head`) is a normal
                // way to stop reading, not an error.
                if e.kind() != std::io::ErrorKind::BrokenPipe {
                    panic!("write scenario report: {e}");
                }
            }
        }
        Some("list") => print!("{}", scenario::list_text()),
        Some("serve") => serve_main(&argv[1..]),
        Some("export-setfl") => export_setfl(&argv[1..]),
        _ => usage(),
    }
}
