//! `wafer-md-cli` — run a wafer-scale MD simulation from the command line.
//!
//! ```text
//! wafer-md-cli [--species cu|w|ta] [--nx N] [--ny N] [--nz N]
//!              [--steps N] [--temp K] [--swap-interval N]
//!              [--reuse N] [--symmetric] [--periodic xy|x|y|none]
//!              [--seed N] [--export-setfl PATH]
//! ```
//!
//! Builds a thermalized thin slab, maps it one atom per core onto the
//! simulated fabric, runs the requested trajectory, and reports physics
//! (energy conservation, temperature, RDF peak) and performance
//! (candidates, interactions, modeled timesteps/s) — the observables of
//! the paper's Table I.

use rand::rngs::StdRng;
use rand::SeedableRng;
use wafer_md::md::analysis;
use wafer_md::md::lattice::SlabSpec;
use wafer_md::md::materials::{Material, Species};
use wafer_md::md::setfl;
use wafer_md::md::system::Box3;
use wafer_md::md::thermostat;
use wafer_md::wse::{swap_round, WseMdConfig, WseMdSim};

struct Args {
    species: Species,
    nx: usize,
    ny: usize,
    nz: usize,
    steps: usize,
    temp: f64,
    swap_interval: usize,
    reuse: usize,
    symmetric: bool,
    periodic: [bool; 3],
    seed: u64,
    export_setfl: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: wafer-md-cli [--species cu|w|ta] [--nx N] [--ny N] [--nz N] \
         [--steps N] [--temp K] [--swap-interval N] [--reuse N] [--symmetric] \
         [--periodic xy|x|y|none] [--seed N] [--export-setfl PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        species: Species::Ta,
        nx: 12,
        ny: 12,
        nz: 2,
        steps: 200,
        temp: 290.0,
        swap_interval: 0,
        reuse: 1,
        symmetric: false,
        periodic: [false; 3],
        seed: 2024,
        export_setfl: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--species" => {
                args.species = match value(&mut i).to_lowercase().as_str() {
                    "cu" | "copper" => Species::Cu,
                    "w" | "tungsten" => Species::W,
                    "ta" | "tantalum" => Species::Ta,
                    other => {
                        eprintln!("unknown species '{other}'");
                        usage()
                    }
                }
            }
            "--nx" => args.nx = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--ny" => args.ny = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--nz" => args.nz = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--steps" => args.steps = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--temp" => args.temp = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--swap-interval" => {
                args.swap_interval = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--reuse" => args.reuse = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--symmetric" => args.symmetric = true,
            "--periodic" => {
                args.periodic = match value(&mut i).as_str() {
                    "xy" => [true, true, false],
                    "x" => [true, false, false],
                    "y" => [false, true, false],
                    "none" => [false; 3],
                    other => {
                        eprintln!("unknown periodicity '{other}'");
                        usage()
                    }
                }
            }
            "--seed" => args.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--export-setfl" => args.export_setfl = Some(value(&mut i)),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument '{other}'");
                usage()
            }
        }
        i += 1;
    }
    args
}

fn main() {
    let args = parse_args();
    let material = Material::new(args.species);

    if let Some(path) = &args.export_setfl {
        let text = setfl::export_material(&material, 2000, 2000);
        std::fs::write(path, text).expect("write setfl file");
        println!(
            "wrote LAMMPS eam/alloy potential for {} to {path}",
            args.species.symbol()
        );
        return;
    }

    let spec = SlabSpec {
        crystal: material.crystal,
        lattice_a: material.lattice_a,
        nx: args.nx,
        ny: args.ny,
        nz: args.nz,
    };
    let positions = spec.generate();
    let mut rng = StdRng::seed_from_u64(args.seed);
    let velocities =
        thermostat::maxwell_boltzmann(&mut rng, positions.len(), material.mass, args.temp);

    let mut config = WseMdConfig::open_for(positions.len(), 0.05, 2e-3);
    config.periodic = args.periodic;
    config.box_lengths = spec.dimensions();
    config.symmetric_forces = args.symmetric;
    config.neighbor_reuse_interval = args.reuse;
    config.neighbor_skin = if args.reuse > 1 { 1.0 } else { 0.0 };
    let mut sim = WseMdSim::new(args.species, &positions, &velocities, config);

    println!(
        "wafer-md: {} slab {}x{}x{} cells = {} atoms on {}x{} cores ({:.1}% occupied)",
        args.species.name(),
        args.nx,
        args.ny,
        args.nz,
        sim.n_atoms(),
        sim.extent().width,
        sim.extent().height,
        100.0 * sim.mapping.occupancy()
    );
    println!(
        "neighborhood b = ({}, {}), assignment cost {:.2} Å, symmetric={}, reuse={}",
        sim.b.0, sim.b.1, sim.initial_cost, args.symmetric, args.reuse
    );

    sim.step();
    let e0 = sim.total_energy();
    for k in 1..args.steps {
        sim.step();
        if args.swap_interval > 0 && k % args.swap_interval == 0 {
            swap_round(&mut sim);
        }
    }
    let s = sim.last_stats;
    let n = sim.n_atoms() as f64;

    println!("\nafter {} steps of {} fs:", args.steps, 2.0);
    println!(
        "  workload: {:.1} candidates, {:.1} interactions per atom",
        s.mean_candidates, s.mean_interactions
    );
    println!(
        "  energy: U = {:.3} eV, T = {:.0} K, drift {:.2e} eV/atom",
        s.potential_energy,
        wafer_md::md::units::temperature_from_ke(s.kinetic_energy, sim.n_atoms()),
        (sim.total_energy() - e0).abs() / n
    );
    println!(
        "  modeled rate: {:.0} timesteps/s ({:.0} cycles/step at the WSE-2 clock)",
        sim.timesteps_per_second(args.steps.min(100)),
        s.cycles
    );
    if args.swap_interval > 0 {
        println!("  assignment cost now: {:.2} Å", sim.assignment_cost());
    }

    // Structure fingerprint.
    let final_pos = sim.positions_by_atom();
    let bbox = Box3::with_periodicity(spec.dimensions(), args.periodic);
    let g = analysis::rdf(&final_pos, &bbox, material.cutoff + 1.0, 200);
    let nn = material
        .crystal
        .nearest_neighbor_distance(material.lattice_a);
    println!(
        "  RDF main peak at {:.2} Å (ideal nearest-neighbor distance {:.2} Å)",
        g.main_peak(),
        nn
    );
}
