//! A minimal, serde-free JSON value: the wire format of the scenario
//! server and the canonical form behind `ScenarioSpec::canonical_hash`.
//!
//! The workspace deliberately has no crates.io access, so JSON is
//! hand-rolled in the same spirit as `ci/check_bench.rs` — but the
//! scenario wire format nests (workload and thermostat are objects), so
//! this module is a real recursive parser instead of a flat field
//! scanner. It is small on purpose: exactly the subset the repo's
//! byte-deterministic artifacts need.
//!
//! Two properties matter to callers:
//!
//! 1. **Deterministic rendering.** [`Value::render`] emits no
//!    whitespace, objects preserve their insertion order, non-negative
//!    integers stay integers, and floats go through Rust's shortest
//!    round-trip `Display` — so the same value always renders to the
//!    same bytes, on every platform. Canonicalization (sorted keys) is
//!    the *caller's* job when building an object to be hashed; the
//!    scenario spec emits its fields in a fixed order.
//! 2. **Lossless integers.** Seeds are `u64`; routing them through f64
//!    would corrupt values above 2⁵³. Non-negative integer tokens
//!    parse to [`Value::Uint`] and round-trip exactly.
//!
//! ```
//! use wafer_md::json::Value;
//!
//! let v = Value::parse(r#"{"seed": 18446744073709551615, "dt": 2e-3}"#).unwrap();
//! assert_eq!(v.get("seed").and_then(Value::as_u64), Some(u64::MAX));
//! assert_eq!(v.get("dt").and_then(Value::as_f64), Some(0.002));
//! assert_eq!(v.render(), r#"{"seed":18446744073709551615,"dt":0.002}"#);
//! ```

use std::fmt::Write as _;

/// A parsed JSON value.
///
/// Objects are ordered key/value vectors, not maps: insertion order is
/// preserved through [`Value::render`] so callers control (and can
/// canonicalize) the byte layout.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer token (lossless for the full `u64` range).
    Uint(u64),
    /// Any other number (negative, fractional, or exponent-form).
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parse one JSON document; trailing non-whitespace is an error.
    /// Errors are human-readable hints (byte offset + what was
    /// expected) — the scenario server surfaces them verbatim in its
    /// 400 responses.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, accepting integral floats.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Uint(n) => Some(*n),
            Value::Num(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= 2f64.powi(53) => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Uint(n) => Some(*n as f64),
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object fields, in document order.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// An object with its fields sorted by key — the canonical layout
    /// of every server-rendered document (`GET /stats`, trace events),
    /// where the field set is assembled from multiple sources and the
    /// byte layout must not depend on assembly order. Sorting is
    /// stable, but callers are expected to supply unique keys.
    pub fn sorted_obj(mut fields: Vec<(String, Value)>) -> Value {
        fields.sort_by(|(a, _), (b, _)| a.cmp(b));
        Value::Obj(fields)
    }

    /// Render compactly (no whitespace), preserving object field order.
    /// Floats use Rust's shortest round-trip `Display`; non-finite
    /// floats render as `null` (the spec layer rejects them earlier).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Uint(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Num(x) if x.is_finite() => {
                let _ = write!(out, "{x}");
            }
            Value::Num(_) => out.push_str("null"),
            Value::Str(s) => render_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number token");
        // Non-negative integer tokens stay lossless over the full u64
        // range; everything else goes through f64.
        if !tok.contains(['.', 'e', 'E', '-']) {
            if let Ok(n) = tok.parse::<u64>() {
                return Ok(Value::Uint(n));
            }
        }
        tok.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number '{tok}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape '{hex}'"))?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for this
                            // ASCII-oriented wire format.
                            s.push(
                                char::from_u32(code)
                                    .ok_or(format!("unpaired surrogate \\u{hex}"))?,
                            );
                        }
                        other => return Err(format!("invalid escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key '{key}'"));
            }
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// 64-bit FNV-1a over a byte string: the content-address hash of the
/// result cache. Stable by construction (no per-process seeding), fast,
/// and entirely dependency-free; collisions across the handful of
/// scenario specs a deployment sees are not a realistic concern, and a
/// collision would be caught by the spec file stored next to every
/// cached artifact.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, expect) in [
            ("null", Value::Null),
            ("true", Value::Bool(true)),
            ("false", Value::Bool(false)),
            ("0", Value::Uint(0)),
            ("18446744073709551615", Value::Uint(u64::MAX)),
            ("-3", Value::Num(-3.0)),
            ("2e-3", Value::Num(0.002)),
            ("1.5", Value::Num(1.5)),
            (r#""a\"b\n""#, Value::Str("a\"b\n".into())),
        ] {
            let v = Value::parse(text).unwrap();
            assert_eq!(v, expect, "{text}");
            assert_eq!(Value::parse(&v.render()).unwrap(), expect, "{text}");
        }
    }

    #[test]
    fn nested_structure_preserves_field_order() {
        let text = r#" { "b" : [1, 2.5, "x"] , "a" : { "k" : true } } "#;
        let v = Value::parse(text).unwrap();
        assert_eq!(v.render(), r#"{"b":[1,2.5,"x"],"a":{"k":true}}"#);
        assert_eq!(
            v.get("a").and_then(|a| a.get("k")).and_then(Value::as_bool),
            Some(true)
        );
    }

    #[test]
    fn errors_are_descriptive() {
        for (text, needle) in [
            ("{", "expected '\"'"),
            ("[1,", "unexpected end"),
            ("[1 2]", "expected ','"),
            (r#"{"a":1,"a":2}"#, "duplicate key"),
            ("tru", "invalid literal"),
            ("{}x", "trailing characters"),
        ] {
            let err = Value::parse(text).unwrap_err();
            assert!(err.contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn sorted_obj_canonicalizes_assembly_order() {
        let a = Value::sorted_obj(vec![
            ("b".into(), Value::Uint(2)),
            ("a".into(), Value::Uint(1)),
        ]);
        let b = Value::sorted_obj(vec![
            ("a".into(), Value::Uint(1)),
            ("b".into(), Value::Uint(2)),
        ]);
        assert_eq!(a.render(), r#"{"a":1,"b":2}"#);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn unicode_strings_survive() {
        let v = Value::parse(r#""å → β""#).unwrap();
        assert_eq!(v, Value::Str("å → β".into()));
        assert_eq!(Value::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn fnv_is_stable() {
        // Reference vectors for 64-bit FNV-1a.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_ne!(fnv1a64(b"abc"), fnv1a64(b"acb"));
    }
}
