//! The wire layer: a deliberately minimal HTTP/1.1 server on
//! `std::net::TcpListener`, answered by a fixed-size acceptor pool.
//!
//! `--serve-threads N` acceptor threads block in `accept` on clones of
//! one listener; each connection is **persistent**: the handler loops,
//! serving requests until the client asks to close, the
//! per-connection request cap (`--max-requests-per-conn`) is reached,
//! the idle timeout (`--timeout-ms`) expires between requests, or the
//! server shuts down. `Connection: keep-alive`/`close` is honored with
//! the HTTP/1.1 default (keep-alive); the buffered reader survives
//! across requests, so requests the client pipelined back-to-back are
//! already in the buffer and are served in order. Per-connection
//! read/write timeouts and a request-size cap mean a stalled or
//! hostile client can only ever wedge its own connection. No TLS, no
//! dependencies — exactly enough protocol for a scenario client, in
//! the same no-dependencies spirit as the rest of the workspace. The
//! endpoints:
//!
//! | method + path                     | behavior |
//! |-----------------------------------|----------|
//! | `POST /run`                       | body = spec JSON; answers the run report (cache hit or fresh run) |
//! | `GET /stats`                      | counters, queue depths, cache size, latency/batch histograms, as JSON |
//! | `GET /stats/prom`                 | the same metrics as Prometheus text exposition (version 0.0.4) |
//! | `GET /result/<key>`               | re-read a cached report by its 16-hex key |
//! | `GET /result/<key>/trajectory.xyz`| stream a cached trajectory (chunked, never buffered whole) |
//! | `POST /shutdown`                  | acknowledge, then drain acceptors *and* idle persistent connections, and exit |
//!
//! Two optional request headers steer scheduling (never results):
//! `X-Wafer-Priority: high|normal|low` picks the strict dispatch band
//! (default `normal`), and `X-Wafer-Client` overrides the client
//! identity used for round-robin fairness within a band (default: the
//! peer IP). See [`super::queue::JobQueue`] for the discipline.
//!
//! Every `POST /run` answer carries `X-Wafer-Key` (the spec's canonical
//! cache key) and `X-Wafer-Cache: hit|miss|coalesced`. The *body* is
//! the run's `report.txt` bytes in every case — byte-identical whether
//! the run was fresh, served from disk, or coalesced onto another
//! connection's in-flight run, which `tests/serve_stress.rs` asserts
//! under concurrency. A miss is answered with chunked transfer
//! encoding, each report fragment sent as the physics produces it; the
//! de-chunked body is still byte-identical to a hit.
//!
//! Concurrency discipline: the [`Scheduler`] behind one mutex is the
//! single coordination point. A worker whose request misses claims a
//! batch — whatever *fairness* dispatches next plus its
//! geometry-compatible run, which is not necessarily the worker's own
//! job — runs it *outside* the lock, then completes each job, filling
//! the [`crate::serve::JobCell`]s that coalesced waiters (and workers
//! whose own job landed in someone else's batch) block on. Every
//! queued request claims exactly once, and a claim always takes the
//! queue front when work is pending, so every queued job is claimed by
//! *someone* and no worker can wait on an unclaimed job. One engine
//! run per unique in-flight spec, no exceptions, at any pool width.

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use super::cache::{is_valid_key, ResultCache};
use super::metrics::{ServeMetrics, TraceEvent};
use super::queue::{Job, Priority};
use super::scheduler::{run_batch, Disposition, Scheduler};
use crate::json::Value;
use crate::scenario::ScenarioSpec;

/// Cap on the request line + headers, together.
const MAX_HEAD_BYTES: u64 = 8 * 1024;

/// File-streaming chunk size for `GET /result/<key>/trajectory.xyz`.
const STREAM_CHUNK: usize = 64 * 1024;

/// Tuning knobs of a [`Server`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Acceptor/worker threads (`--serve-threads`). Each handles one
    /// connection at a time; the scheduler coalesces duplicate
    /// in-flight specs, so any width preserves one-run-per-spec.
    pub threads: usize,
    /// Per-connection read timeout (zero = none). A client that stalls
    /// mid-first-request is answered 408 and dropped; an idle
    /// persistent connection that sends nothing for this long between
    /// requests is closed silently.
    pub read_timeout: Duration,
    /// Per-connection write timeout (zero = none): a client that stops
    /// reading its response is dropped without blocking the worker.
    pub write_timeout: Duration,
    /// Largest accepted request body, in bytes; bigger declared bodies
    /// are answered 413 without being read.
    pub max_body: usize,
    /// Requests served per connection before the server closes it
    /// (`--max-requests-per-conn`) — a fairness/leak backstop so one
    /// immortal connection cannot pin a worker forever.
    pub max_requests_per_conn: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_body: 1 << 20,
            max_requests_per_conn: 100,
        }
    }
}

/// One parsed HTTP request.
#[derive(Debug)]
struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
    /// Whether the connection may serve another request after this one:
    /// the `Connection` header if present, else the HTTP-version
    /// default (1.1 → keep-alive, everything else → close). A POST
    /// without `Content-Length` always closes: any unframed body bytes
    /// are drained at close, never parsed as a next request.
    keep_alive: bool,
    /// The dispatch band from `X-Wafer-Priority` (default normal).
    priority: Priority,
    /// The fairness identity from `X-Wafer-Client`, when given.
    client: Option<String>,
}

/// Why a request could not be parsed.
enum RequestError {
    /// Protocol garbage: answer 400 with the hint.
    Malformed(String),
    /// Declared body over the cap: answer 413.
    TooLarge(String),
    /// The peer stalled past the read timeout: answer 408 best-effort
    /// on a first request; close silently on an idle persistent
    /// connection.
    Timeout,
    /// Connection-level I/O failure: drop silently.
    Io,
}

fn classify(e: io::Error) -> RequestError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => RequestError::Timeout,
        io::ErrorKind::InvalidData => RequestError::Malformed("request is not valid UTF-8".into()),
        _ => RequestError::Io,
    }
}

/// Read one request off a connection's persistent buffered reader,
/// under the head/body size caps. `Ok(None)` means the peer closed (or
/// the read half was shut down) cleanly between requests. The reader
/// outlives the call, so bytes the client pipelined behind this
/// request stay buffered for the next call.
fn read_request(
    reader: &mut BufReader<TcpStream>,
    max_body: usize,
) -> Result<Option<Request>, RequestError> {
    let mut reader = reader.by_ref().take(MAX_HEAD_BYTES);
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(classify(e)),
    }
    if !line.ends_with('\n') {
        // The peer hung up mid-line, or the line overran the head cap.
        return Err(RequestError::Malformed(
            "truncated or oversized request line".into(),
        ));
    }
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => return Err(RequestError::Malformed("malformed request line".into())),
    };
    // HTTP/1.1 defaults to keep-alive; 1.0 (or a missing version)
    // defaults to close. The Connection header overrides either way.
    let http11 = parts
        .next()
        .is_some_and(|v| v.eq_ignore_ascii_case("HTTP/1.1"));
    let mut content_length: Option<usize> = None;
    let mut connection: Option<String> = None;
    let mut priority = Priority::Normal;
    let mut client: Option<String> = None;
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => {
                return Err(RequestError::Malformed(
                    "connection closed mid-headers".into(),
                ))
            }
            Ok(_) => {}
            Err(e) => return Err(classify(e)),
        }
        if !header.ends_with('\n') {
            return Err(RequestError::Malformed(
                "headers truncated or over the size cap".into(),
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                // Duplicate (even agreeing) Content-Length headers are
                // rejected outright: under pipelining, body-length
                // ambiguity desyncs the whole request stream.
                if content_length.is_some() {
                    return Err(RequestError::Malformed(
                        "duplicate Content-Length header".into(),
                    ));
                }
                content_length = match value.trim().parse() {
                    Ok(n) => Some(n),
                    Err(_) => return Err(RequestError::Malformed("invalid Content-Length".into())),
                };
            } else if name.eq_ignore_ascii_case("connection") {
                connection = Some(value.trim().to_ascii_lowercase());
            } else if name.eq_ignore_ascii_case("x-wafer-priority") {
                priority = match Priority::parse(value) {
                    Some(p) => p,
                    None => {
                        return Err(RequestError::Malformed(
                            "invalid X-Wafer-Priority (use high, normal, or low)".into(),
                        ))
                    }
                };
            } else if name.eq_ignore_ascii_case("x-wafer-client") {
                let value = value.trim();
                if !value.is_empty() {
                    client = Some(value.to_string());
                }
            }
        }
    }
    // A POST without Content-Length has, per HTTP/1.1, no body — but
    // a sloppy client may have sent one anyway, and those unframed
    // bytes must never be parsed as the next pipelined request. Serve
    // the empty-body request, then force the connection closed (the
    // lingering close drains whatever followed).
    let unframed_post = content_length.is_none() && method == "POST";
    let content_length = content_length.unwrap_or(0);
    if content_length > max_body {
        return Err(RequestError::TooLarge(format!(
            "request body of {content_length} bytes exceeds the {max_body}-byte limit"
        )));
    }
    // The head cap has served its purpose; re-arm the limit for the body.
    reader.set_limit(content_length as u64);
    let mut body = vec![0u8; content_length];
    if let Err(e) = reader.read_exact(&mut body) {
        return Err(match e.kind() {
            io::ErrorKind::UnexpectedEof => {
                RequestError::Malformed("request body truncated".into())
            }
            _ => classify(e),
        });
    }
    let keep_alive = !unframed_post
        && match connection.as_deref() {
            Some("close") => false,
            Some("keep-alive") => true,
            _ => http11,
        };
    Ok(Some(Request {
        method,
        path,
        body,
        keep_alive,
        priority,
        client,
    }))
}

/// Write one fixed-length response and flush. `extra` headers ride
/// along verbatim; `keep` picks the `Connection` header.
fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra: &[(&str, &str)],
    keep: bool,
    body: &[u8],
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        body.len(),
        if keep { "keep-alive" } else { "close" },
    )?;
    for (name, value) in extra {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all(b"\r\n")?;
    stream.write_all(body)?;
    stream.flush()
}

/// Start a 200 chunked-transfer response; the body follows as chunks
/// (self-delimiting, so keep-alive survives streaming).
fn stream_head(stream: &mut TcpStream, extra: &[(&str, &str)], keep: bool) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n",
        if keep { "keep-alive" } else { "close" },
    )?;
    for (name, value) in extra {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all(b"\r\n")
}

/// A chunked-transfer body writer that survives the client vanishing:
/// the first write error marks the writer dead and every later chunk is
/// silently dropped, so a mid-response disconnect never aborts the
/// physics run it is watching.
struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
    alive: bool,
}

impl<'a> ChunkedWriter<'a> {
    fn new(stream: &'a mut TcpStream) -> Self {
        Self {
            stream,
            alive: true,
        }
    }

    fn chunk(&mut self, data: &[u8]) {
        if !self.alive || data.is_empty() {
            return;
        }
        let r = write!(self.stream, "{:x}\r\n", data.len())
            .and_then(|()| self.stream.write_all(data))
            .and_then(|()| self.stream.write_all(b"\r\n"))
            .and_then(|()| self.stream.flush());
        if r.is_err() {
            self.alive = false;
        }
    }

    /// Mark the body unfinishable (e.g. a source read failed): the
    /// terminal chunk is withheld so the client sees the truncation.
    fn die(&mut self) {
        self.alive = false;
    }

    fn finish(&mut self) {
        if self.alive {
            let _ = self
                .stream
                .write_all(b"0\r\n\r\n")
                .and_then(|()| self.stream.flush());
        }
    }
}

fn error_body(hint: &str) -> Vec<u8> {
    let mut body = Value::Obj(vec![("error".into(), Value::Str(hint.into()))])
        .render()
        .into_bytes();
    body.push(b'\n');
    body
}

/// The server state every acceptor thread shares.
struct Shared {
    scheduler: Mutex<Scheduler>,
    /// The scheduler's metrics aggregate, aliased here so acceptor
    /// threads can record connections and service time without taking
    /// the scheduler lock.
    metrics: Arc<ServeMetrics>,
    config: ServeConfig,
    shutdown: AtomicBool,
    addr: SocketAddr,
    /// A read-half handle of every live connection, keyed by a serial
    /// id. `POST /shutdown` shuts down each registered read half, so a
    /// worker parked in a blocking read on an idle persistent
    /// connection wakes with EOF and drains — write halves are left
    /// intact so in-flight responses still finish.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
}

impl Shared {
    /// The scheduler lock, recovered if a panicking thread poisoned it:
    /// the scheduler is never left mid-mutation across a run (runs
    /// happen outside the lock), so the inner state is always usable.
    fn scheduler(&self) -> MutexGuard<'_, Scheduler> {
        self.scheduler
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn conns(&self) -> MutexGuard<'_, HashMap<u64, TcpStream>> {
        self.conns
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// The scenario server: a bound listener, a worker-pool configuration,
/// and the shared [`Scheduler`].
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.shared.addr)
            .field("config", &self.shared.config)
            .finish()
    }
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:7878`; port 0 picks a free port)
    /// over an unbounded result cache rooted at `cache_root`, with the
    /// default [`ServeConfig`].
    pub fn bind(addr: &str, cache_root: &Path) -> io::Result<Self> {
        Self::bind_with(addr, ResultCache::open(cache_root)?, ServeConfig::default())
    }

    /// Bind `addr` over an opened (possibly budget-bounded) cache with
    /// an explicit configuration and fresh (trace-less) metrics sized
    /// to the acceptor pool.
    pub fn bind_with(addr: &str, cache: ResultCache, config: ServeConfig) -> io::Result<Self> {
        let metrics = Arc::new(ServeMetrics::new(config.threads.max(1)));
        Self::bind_metrics(addr, cache, config, metrics)
    }

    /// [`Server::bind_with`] sharing an externally created metrics
    /// aggregate — the CLI passes one carrying the `--trace` writer.
    pub fn bind_metrics(
        addr: &str,
        cache: ResultCache,
        config: ServeConfig,
        metrics: Arc<ServeMetrics>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Self {
            listener,
            shared: Arc::new(Shared {
                scheduler: Mutex::new(Scheduler::with_metrics(cache, Arc::clone(&metrics))),
                metrics,
                config,
                shutdown: AtomicBool::new(false),
                addr,
                conns: Mutex::new(HashMap::new()),
                next_conn: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Run the acceptor pool until a `POST /shutdown` arrives, then
    /// drain: every worker finishes its in-flight connection (idle
    /// persistent connections are woken and closed) before this
    /// returns, and the cache's recency order is persisted.
    /// Connection-level I/O errors drop that connection and the pool
    /// continues.
    pub fn serve(&mut self) -> io::Result<()> {
        let extra = self.shared.config.threads.max(1) - 1;
        let mut clones = Vec::with_capacity(extra);
        for _ in 0..extra {
            clones.push(self.listener.try_clone()?);
        }
        std::thread::scope(|scope| {
            for (i, listener) in clones.iter().enumerate() {
                let shared = &self.shared;
                scope.spawn(move || acceptor_loop(listener, shared, i + 1));
            }
            acceptor_loop(&self.listener, &self.shared, 0);
        });
        // Clean shutdown: persist any recency reordering read hits
        // left pending (the deferred-persistence contract).
        self.shared.scheduler().flush_cache()
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Shared, acceptor: usize) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => continue,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // A shutdown wake pill (or a client racing the shutdown).
            return;
        }
        shared.metrics.connection(acceptor);
        shared
            .metrics
            .trace(TraceEvent::new("accepted").with("acceptor", acceptor as u64));
        handle_connection(stream, shared);
    }
}

/// Register the connection's read half for shutdown wake-up, run the
/// request loop, deregister.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
    if let Ok(read_half) = stream.try_clone() {
        shared.conns().insert(id, read_half);
    }
    serve_connection(stream, shared);
    shared.conns().remove(&id);
}

/// Close a connection politely after the final response: send FIN
/// first, then drain (bounded) whatever the client has already sent.
/// Dropping a socket with unread received bytes — a request body we
/// rejected mid-headers, or a pipelined request behind a close — makes
/// the kernel answer with RST, which can tear down the response still
/// in flight before the client reads it.
fn lingering_close(stream: &TcpStream) {
    let _ = stream.shutdown(Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut sink = [0u8; 4096];
    let mut budget: usize = 64 * 1024;
    while budget > 0 {
        match (&mut &*stream).read(&mut sink) {
            Ok(0) | Err(_) => return,
            Ok(n) => budget = budget.saturating_sub(n),
        }
    }
}

/// The persistent-connection request loop: one buffered reader for the
/// connection's whole life (so pipelined requests stay buffered, in
/// order), one response per request, until close/cap/idle/shutdown.
fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    let config = &shared.config;
    if !config.read_timeout.is_zero() {
        let _ = stream.set_read_timeout(Some(config.read_timeout));
    }
    if !config.write_timeout.is_zero() {
        let _ = stream.set_write_timeout(Some(config.write_timeout));
    }
    let peer = stream
        .peer_addr()
        .map(|a| a.ip().to_string())
        .unwrap_or_else(|_| "unknown".into());
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut served = 0u64;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Bytes already buffered before we even ask = the client
        // pipelined this request behind the previous one.
        let pipelined = !reader.buffer().is_empty();
        match read_request(&mut reader, config.max_body) {
            Ok(None) => return, // clean close between requests
            Ok(Some(request)) => {
                if served == 1 {
                    shared.metrics.reused_connection();
                    shared.metrics.trace(TraceEvent::new("reused"));
                }
                if pipelined {
                    shared.metrics.pipelined_request();
                }
                served += 1;
                let keep = request.keep_alive
                    && served < config.max_requests_per_conn
                    && !shared.shutdown.load(Ordering::SeqCst);
                dispatch(&request, &mut stream, shared, &peer, keep);
                if !keep || shared.shutdown.load(Ordering::SeqCst) {
                    return lingering_close(&stream);
                }
            }
            Err(RequestError::Malformed(hint)) => {
                let _ = respond(
                    &mut stream,
                    400,
                    "Bad Request",
                    "application/json",
                    &[],
                    false,
                    &error_body(&hint),
                );
                return lingering_close(&stream);
            }
            Err(RequestError::TooLarge(hint)) => {
                let _ = respond(
                    &mut stream,
                    413,
                    "Payload Too Large",
                    "application/json",
                    &[],
                    false,
                    &error_body(&hint),
                );
                return lingering_close(&stream);
            }
            Err(RequestError::Timeout) => {
                // A stall mid-first-request earns a 408; an idle
                // persistent connection just closes silently.
                if served == 0 {
                    let _ = respond(
                        &mut stream,
                        408,
                        "Request Timeout",
                        "application/json",
                        &[],
                        false,
                        &error_body("request timed out"),
                    );
                    return lingering_close(&stream);
                }
                return;
            }
            Err(RequestError::Io) => return,
        }
    }
}

fn dispatch(request: &Request, stream: &mut TcpStream, shared: &Shared, peer: &str, keep: bool) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/run") => post_run(request, stream, shared, peer, keep),
        ("GET", "/stats") => {
            let mut body = shared.scheduler().stats_json().into_bytes();
            body.push(b'\n');
            let _ = respond(stream, 200, "OK", "application/json", &[], keep, &body);
        }
        ("GET", "/stats/prom") => {
            let body = shared.scheduler().prometheus_text().into_bytes();
            let _ = respond(
                stream,
                200,
                "OK",
                "text/plain; version=0.0.4",
                &[],
                keep,
                &body,
            );
        }
        ("GET", path) if path.starts_with("/result/") => {
            get_result(&path["/result/".len()..], stream, shared, keep);
        }
        ("POST", "/shutdown") => {
            let _ = respond(
                stream,
                200,
                "OK",
                "text/plain",
                &[],
                false,
                b"shutting down\n",
            );
            shared.shutdown.store(true, Ordering::SeqCst);
            // Wake idle persistent connections: shutting down each
            // registered read half turns a parked blocking read into
            // EOF; the write halves stay intact so in-flight responses
            // finish.
            for conn in shared.conns().values() {
                let _ = conn.shutdown(Shutdown::Read);
            }
            // One wake pill per acceptor: each blocked `accept` returns,
            // re-checks the flag, and exits; surplus pills die with the
            // listener.
            for _ in 0..shared.config.threads.max(1) {
                let _ = TcpStream::connect(shared.addr);
            }
        }
        _ => {
            let _ = respond(
                stream,
                404,
                "Not Found",
                "application/json",
                &[],
                keep,
                &error_body(
                    "no such endpoint (try POST /run, GET /stats, GET /stats/prom, \
                     GET /result/<key>, GET /result/<key>/trajectory.xyz, POST /shutdown)",
                ),
            );
        }
    }
}

/// `POST /run`: admit the spec and answer with the report bytes.
fn post_run(request: &Request, stream: &mut TcpStream, shared: &Shared, peer: &str, keep: bool) {
    let spec = std::str::from_utf8(&request.body)
        .map_err(|_| "request body is not UTF-8".to_string())
        .and_then(|text| ScenarioSpec::from_json(text).map_err(|e| e.to_string()));
    let spec = match spec {
        Ok(spec) => spec,
        Err(hint) => {
            let _ = respond(
                stream,
                400,
                "Bad Request",
                "application/json",
                &[],
                keep,
                &error_body(&hint),
            );
            return;
        }
    };
    // The service clock covers admission through response flush, for
    // every valid request — so at quiescence the service histogram's
    // count equals the `requests` counter.
    let started = Instant::now();
    let client = request.client.as_deref().unwrap_or(peer);

    // One lock acquisition for the admission decision *and* its
    // follow-up handle, so a coalesced request always finds its cell
    // and a hit always finds its entry.
    enum Plan {
        Hit(String, String),
        Wait(String, Arc<super::scheduler::JobCell>, &'static str),
        Run(String),
    }
    let plan = {
        let mut sched = shared.scheduler();
        let (key, disposition) = sched.submit_from(spec, request.priority, client);
        match disposition {
            Disposition::CacheHit => {
                let cached = sched.result(&key).expect("a hit key is cached");
                Plan::Hit(key, cached.report)
            }
            Disposition::Coalesced => {
                let cell = sched.watch(&key).expect("a coalesced key has a cell");
                Plan::Wait(key, cell, "coalesced")
            }
            Disposition::Queued => Plan::Run(key),
        }
    };

    match plan {
        Plan::Hit(key, report) => {
            let _ = respond(
                stream,
                200,
                "OK",
                "text/plain",
                &[("X-Wafer-Cache", "hit"), ("X-Wafer-Key", &key)],
                keep,
                report.as_bytes(),
            );
        }
        Plan::Wait(key, cell, label) => {
            answer_from_cell(&key, &cell, label, stream, keep);
        }
        Plan::Run(key) => {
            // Claim whatever fairness dispatches next — possibly not
            // this worker's own job. Every queued request claims
            // exactly once, so every queued job is claimed by someone.
            let batch = shared.scheduler().claim_batch();
            let own_idx = batch.iter().position(|job| job.key == key);
            let answered = if batch.is_empty() {
                false
            } else {
                run_and_stream(&batch, own_idx, &key, stream, shared, keep)
            };
            if !answered {
                // This worker's own job wasn't in its claim: another
                // worker has (or had) it. Wait on its cell, falling
                // back to the cache if it already completed.
                let cell = shared.scheduler().watch(&key);
                match cell {
                    Some(cell) => answer_from_cell(&key, &cell, "miss", stream, keep),
                    None => match shared.scheduler().result(&key) {
                        Some(cached) => {
                            let _ = respond(
                                stream,
                                200,
                                "OK",
                                "text/plain",
                                &[("X-Wafer-Cache", "miss"), ("X-Wafer-Key", &key)],
                                keep,
                                cached.report.as_bytes(),
                            );
                        }
                        None => {
                            let _ = respond(
                                stream,
                                404,
                                "Not Found",
                                "application/json",
                                &[],
                                keep,
                                &error_body("result evicted before it could be read"),
                            );
                        }
                    },
                }
            }
        }
    }
    shared.metrics.service.record_duration(started.elapsed());
}

/// Answer a waiter once its job's runner publishes the artifacts.
fn answer_from_cell(
    key: &str,
    cell: &super::scheduler::JobCell,
    label: &str,
    stream: &mut TcpStream,
    keep: bool,
) {
    match cell.wait() {
        Some(artifacts) => {
            let _ = respond(
                stream,
                200,
                "OK",
                "text/plain",
                &[("X-Wafer-Cache", label), ("X-Wafer-Key", key)],
                keep,
                artifacts.report.as_bytes(),
            );
        }
        None => {
            let _ = respond(
                stream,
                500,
                "Internal Server Error",
                "application/json",
                &[],
                keep,
                &error_body("scenario run failed; resubmit"),
            );
        }
    }
}

/// Execute a claimed batch. When the runner's own job is in the batch
/// (`own_idx`), its report streams to the client as chunked transfer
/// encoding, fragment by fragment, while the physics is still running,
/// and the call returns `true` (the request was answered). When the
/// claim was entirely other clients' work (`own_idx` is `None`), the
/// batch runs without streaming and the call returns `false` — the
/// caller answers its own request from its job's cell afterwards. A
/// client that disconnects mid-response only silences the stream — the
/// batch still runs to completion and every result is cached and
/// published, because the claimed jobs' waiters depend on it.
fn run_and_stream(
    batch: &[Job],
    own_idx: Option<usize>,
    key: &str,
    stream: &mut TcpStream,
    shared: &Shared,
    keep: bool,
) -> bool {
    let streaming = own_idx.is_some();
    let head_ok = !streaming
        || stream_head(
            stream,
            &[("X-Wafer-Cache", "miss"), ("X-Wafer-Key", key)],
            keep,
        )
        .is_ok();
    let writer = Mutex::new(ChunkedWriter::new(stream));
    if !head_ok {
        writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .die();
    }
    let pass = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        run_batch(batch, own_idx.unwrap_or(batch.len()), &|frag: &str| {
            writer
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .chunk(frag.as_bytes());
        })
    }));
    match outcome {
        Ok(artifacts) => {
            shared.metrics.batch_pass.record_duration(pass.elapsed());
            shared.metrics.batch_occupancy.record(batch.len() as u64);
            let mut sched = shared.scheduler();
            for (job, a) in batch.iter().zip(artifacts) {
                // A cache-insert failure (e.g. disk full) still fills
                // the job's cell, so no waiter is ever stranded.
                let _ = sched.complete(job, a);
            }
            drop(sched);
            if streaming {
                writer
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .finish();
                shared.metrics.trace(TraceEvent::new("streamed").key(key));
            }
            streaming
        }
        Err(_) => {
            // A run panicked (an invariant break, not a client fault):
            // abandon every claimed job so waiters get a 500 instead of
            // blocking forever, and withhold the terminal chunk so this
            // client sees the truncation.
            let mut sched = shared.scheduler();
            for job in batch {
                sched.abandon(&job.key);
            }
            drop(sched);
            writer
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .die();
            // Streaming already sent a (now truncated) head, so the
            // request counts as answered; a non-streaming runner falls
            // back to its own cell, which `abandon` just settled.
            streaming
        }
    }
}

/// `GET /result/<key>` and `GET /result/<key>/trajectory.xyz`.
fn get_result(rest: &str, stream: &mut TcpStream, shared: &Shared, keep: bool) {
    let (key, artifact) = match rest.split_once('/') {
        None => (rest, None),
        Some((key, artifact)) => (key, Some(artifact)),
    };
    // Path-traversal hardening: a key is exactly 16 lowercase hex
    // characters, validated before it can touch the filesystem.
    if !is_valid_key(key) {
        let _ = respond(
            stream,
            400,
            "Bad Request",
            "application/json",
            &[],
            keep,
            &error_body("result keys are exactly 16 lowercase hex characters"),
        );
        return;
    }
    match artifact {
        None => {
            let cached = shared.scheduler().result(key);
            match cached {
                Some(cached) => {
                    let _ = respond(
                        stream,
                        200,
                        "OK",
                        "text/plain",
                        &[("X-Wafer-Key", key)],
                        keep,
                        cached.report.as_bytes(),
                    );
                }
                None => {
                    let _ = respond(
                        stream,
                        404,
                        "Not Found",
                        "application/json",
                        &[],
                        keep,
                        &error_body("unknown result key"),
                    );
                }
            }
        }
        Some("trajectory.xyz") => {
            // Open under the lock, stream outside it: the open handle
            // stays valid even if the entry is evicted mid-stream.
            let file = shared.scheduler().open_trajectory(key);
            match file {
                Some((file, _len)) => {
                    stream_file(file, key, stream, keep);
                    shared.metrics.trace(TraceEvent::new("streamed").key(key));
                }
                None => {
                    let _ = respond(
                        stream,
                        404,
                        "Not Found",
                        "application/json",
                        &[],
                        keep,
                        &error_body("no cached trajectory for this key (did the spec set xyz?)"),
                    );
                }
            }
        }
        Some(_) => {
            let _ = respond(
                stream,
                404,
                "Not Found",
                "application/json",
                &[],
                keep,
                &error_body("unknown artifact (try /result/<key> or /result/<key>/trajectory.xyz)"),
            );
        }
    }
}

/// Stream a cached file as a chunked body without ever holding more
/// than one chunk in memory.
fn stream_file(mut file: File, key: &str, stream: &mut TcpStream, keep: bool) {
    if stream_head(stream, &[("X-Wafer-Key", key)], keep).is_err() {
        return;
    }
    let mut writer = ChunkedWriter::new(stream);
    let mut buf = vec![0u8; STREAM_CHUNK];
    loop {
        match file.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => writer.chunk(&buf[..n]),
            Err(_) => {
                writer.die();
                break;
            }
        }
    }
    writer.finish();
}
