//! The wire layer: a deliberately minimal HTTP/1.1 server on
//! `std::net::TcpListener`.
//!
//! One blocking accept loop, one request per connection
//! (`Connection: close`), no TLS, no chunked encoding — exactly enough
//! protocol for a scenario client, in the same no-dependencies spirit
//! as the rest of the workspace. The endpoints:
//!
//! | method + path       | behavior |
//! |---------------------|----------|
//! | `POST /run`         | body = spec JSON; answers the run report (cache hit or fresh run) |
//! | `GET /stats`        | the per-process counters + queue depth, as JSON |
//! | `GET /result/<key>` | re-read a cached report by its 16-hex key |
//! | `POST /shutdown`    | acknowledge, then exit the accept loop |
//!
//! Every `POST /run` answer carries `X-Wafer-Key` (the spec's canonical
//! cache key) and `X-Wafer-Cache: hit|miss`. The *body* is the cached
//! `report.txt` bytes in both cases — byte-identical whether the run
//! was fresh or served from disk, which `tests/serve.rs` asserts; the
//! hit/miss distinction lives only in the header and the counters.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;

use super::cache::ResultCache;
use super::scheduler::{Disposition, Scheduler};
use crate::json::Value;
use crate::scenario::ScenarioSpec;

/// One parsed HTTP request.
#[derive(Debug)]
struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
}

/// Read one request off a connection. `Ok(None)` means the peer closed
/// without sending anything; `Err(String)` is a malformed request whose
/// hint belongs in a 400 response.
fn read_request(stream: &mut TcpStream) -> io::Result<Result<Option<Request>, String>> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(Ok(None));
    }
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => return Ok(Err("malformed request line".to_string())),
    };
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Ok(Err("connection closed mid-headers".to_string()));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = match value.trim().parse() {
                    Ok(n) => n,
                    Err(_) => return Ok(Err("invalid Content-Length".to_string())),
                };
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Ok(Some(Request { method, path, body })))
}

/// Write one response and flush. `extra` headers ride along verbatim.
fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    )?;
    for (name, value) in extra {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all(b"\r\n")?;
    stream.write_all(body)?;
    stream.flush()
}

fn error_body(hint: &str) -> Vec<u8> {
    let mut body = Value::Obj(vec![("error".into(), Value::Str(hint.into()))])
        .render()
        .into_bytes();
    body.push(b'\n');
    body
}

/// The scenario server: a bound listener plus a [`Scheduler`].
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    scheduler: Scheduler,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:7878`; port 0 picks a free port)
    /// over a result cache rooted at `cache_root`.
    pub fn bind(addr: &str, cache_root: &Path) -> io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            scheduler: Scheduler::new(ResultCache::open(cache_root)?),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Run the accept loop until a `POST /shutdown` arrives. Each
    /// connection carries one request; connection-level I/O errors
    /// drop that connection and the loop continues.
    pub fn serve(&mut self) -> io::Result<()> {
        loop {
            let mut stream = match self.listener.accept() {
                Ok((s, _)) => s,
                Err(_) => continue,
            };
            let request = match read_request(&mut stream) {
                Ok(Ok(Some(r))) => r,
                Ok(Ok(None)) => continue,
                Ok(Err(hint)) => {
                    let _ = respond(
                        &mut stream,
                        400,
                        "Bad Request",
                        "application/json",
                        &[],
                        &error_body(&hint),
                    );
                    continue;
                }
                Err(_) => continue,
            };
            if let Ok(true) = self.handle(&request, &mut stream) {
                return Ok(());
            }
        }
    }

    /// Dispatch one request; `Ok(true)` means shut down.
    fn handle(&mut self, request: &Request, stream: &mut TcpStream) -> io::Result<bool> {
        match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/run") => {
                let spec = std::str::from_utf8(&request.body)
                    .map_err(|_| "request body is not UTF-8".to_string())
                    .and_then(|text| ScenarioSpec::from_json(text).map_err(|e| e.to_string()));
                let spec = match spec {
                    Ok(spec) => spec,
                    Err(hint) => {
                        respond(
                            stream,
                            400,
                            "Bad Request",
                            "application/json",
                            &[],
                            &error_body(&hint),
                        )?;
                        return Ok(false);
                    }
                };
                let (key, disposition) = self.scheduler.submit(spec);
                if disposition != Disposition::CacheHit {
                    // Blocking HTTP/1.1: this request must be answered
                    // before the next is read, so a miss drains now.
                    self.scheduler.drain()?;
                }
                let cached = self
                    .scheduler
                    .result(&key)
                    .expect("a drained or hit key is cached");
                let state = if disposition == Disposition::CacheHit {
                    "hit"
                } else {
                    "miss"
                };
                respond(
                    stream,
                    200,
                    "OK",
                    "text/plain",
                    &[("X-Wafer-Cache", state), ("X-Wafer-Key", &key)],
                    cached.report.as_bytes(),
                )?;
            }
            ("GET", "/stats") => {
                let mut body = self
                    .scheduler
                    .stats()
                    .to_json(self.scheduler.pending())
                    .into_bytes();
                body.push(b'\n');
                respond(stream, 200, "OK", "application/json", &[], &body)?;
            }
            ("GET", path) if path.starts_with("/result/") => {
                let key = &path["/result/".len()..];
                match self.scheduler.result(key) {
                    Some(cached) => respond(
                        stream,
                        200,
                        "OK",
                        "text/plain",
                        &[("X-Wafer-Key", key)],
                        cached.report.as_bytes(),
                    )?,
                    None => respond(
                        stream,
                        404,
                        "Not Found",
                        "application/json",
                        &[],
                        &error_body("unknown result key"),
                    )?,
                }
            }
            ("POST", "/shutdown") => {
                respond(stream, 200, "OK", "text/plain", &[], b"shutting down\n")?;
                return Ok(true);
            }
            _ => {
                respond(
                    stream,
                    404,
                    "Not Found",
                    "application/json",
                    &[],
                    &error_body(
                        "no such endpoint (try POST /run, GET /stats, GET /result/<key>, POST /shutdown)",
                    ),
                )?;
            }
        }
        Ok(false)
    }
}
