//! The wire layer: a deliberately minimal HTTP/1.1 server on
//! `std::net::TcpListener`, answered by a fixed-size acceptor pool.
//!
//! `--serve-threads N` acceptor threads block in `accept` on clones of
//! one listener; each connection carries one request
//! (`Connection: close`), bounded by per-connection read/write
//! timeouts and a request-size cap so a stalled or hostile client can
//! only ever wedge its own connection. No TLS, no dependencies —
//! exactly enough protocol for a scenario client, in the same
//! no-dependencies spirit as the rest of the workspace. The endpoints:
//!
//! | method + path                     | behavior |
//! |-----------------------------------|----------|
//! | `POST /run`                       | body = spec JSON; answers the run report (cache hit or fresh run) |
//! | `GET /stats`                      | counters, queue depth, cache size, latency/batch histograms, as JSON |
//! | `GET /stats/prom`                 | the same metrics as Prometheus text exposition (version 0.0.4) |
//! | `GET /result/<key>`               | re-read a cached report by its 16-hex key |
//! | `GET /result/<key>/trajectory.xyz`| stream a cached trajectory (chunked, never buffered whole) |
//! | `POST /shutdown`                  | acknowledge, then drain the acceptor pool and exit |
//!
//! Every `POST /run` answer carries `X-Wafer-Key` (the spec's canonical
//! cache key) and `X-Wafer-Cache: hit|miss|coalesced`. The *body* is
//! the run's `report.txt` bytes in every case — byte-identical whether
//! the run was fresh, served from disk, or coalesced onto another
//! connection's in-flight run, which `tests/serve_stress.rs` asserts
//! under concurrency. A miss is answered with chunked transfer
//! encoding, each report fragment sent as the physics produces it; the
//! de-chunked body is still byte-identical to a hit.
//!
//! Concurrency discipline: the [`Scheduler`] behind one mutex is the
//! single coordination point. A worker whose request misses claims a
//! batch (its own job plus geometry-compatible queued misses), runs it
//! *outside* the lock, then completes each job — filling the
//! [`crate::serve::JobCell`]s that coalesced waiters (and workers whose
//! queued job got swept into another worker's batch) block on. One
//! engine run per unique in-flight spec, no exceptions, at any pool
//! width.

use std::fs::File;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use super::cache::{is_valid_key, ResultCache};
use super::metrics::{ServeMetrics, TraceEvent};
use super::queue::Job;
use super::scheduler::{run_batch, Disposition, Scheduler};
use crate::json::Value;
use crate::scenario::ScenarioSpec;

/// Cap on the request line + headers, together.
const MAX_HEAD_BYTES: u64 = 8 * 1024;

/// File-streaming chunk size for `GET /result/<key>/trajectory.xyz`.
const STREAM_CHUNK: usize = 64 * 1024;

/// Tuning knobs of a [`Server`].
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Acceptor/worker threads (`--serve-threads`). Each handles one
    /// connection at a time; the scheduler coalesces duplicate
    /// in-flight specs, so any width preserves one-run-per-spec.
    pub threads: usize,
    /// Per-connection read timeout (zero = none): a client that stalls
    /// mid-request is answered 408 and dropped.
    pub read_timeout: Duration,
    /// Per-connection write timeout (zero = none): a client that stops
    /// reading its response is dropped without blocking the worker.
    pub write_timeout: Duration,
    /// Largest accepted request body, in bytes; bigger declared bodies
    /// are answered 413 without being read.
    pub max_body: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_body: 1 << 20,
        }
    }
}

/// One parsed HTTP request.
#[derive(Debug)]
struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
}

/// Why a request could not be parsed.
enum RequestError {
    /// Protocol garbage: answer 400 with the hint.
    Malformed(String),
    /// Declared body over the cap: answer 413.
    TooLarge(String),
    /// The peer stalled past the read timeout: answer 408 best-effort.
    Timeout,
    /// Connection-level I/O failure: drop silently.
    Io,
}

fn classify(e: io::Error) -> RequestError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => RequestError::Timeout,
        io::ErrorKind::InvalidData => RequestError::Malformed("request is not valid UTF-8".into()),
        _ => RequestError::Io,
    }
}

/// Read one request off a connection, under the head/body size caps.
/// `Ok(None)` means the peer closed without sending anything.
fn read_request(stream: &TcpStream, max_body: usize) -> Result<Option<Request>, RequestError> {
    let reader = BufReader::new(stream.try_clone().map_err(|_| RequestError::Io)?);
    let mut reader = reader.take(MAX_HEAD_BYTES);
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(classify(e)),
    }
    if !line.ends_with('\n') {
        // The peer hung up mid-line, or the line overran the head cap.
        return Err(RequestError::Malformed(
            "truncated or oversized request line".into(),
        ));
    }
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_string(), p.to_string()),
        _ => return Err(RequestError::Malformed("malformed request line".into())),
    };
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => {
                return Err(RequestError::Malformed(
                    "connection closed mid-headers".into(),
                ))
            }
            Ok(_) => {}
            Err(e) => return Err(classify(e)),
        }
        if !header.ends_with('\n') {
            return Err(RequestError::Malformed(
                "headers truncated or over the size cap".into(),
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = match value.trim().parse() {
                    Ok(n) => n,
                    Err(_) => return Err(RequestError::Malformed("invalid Content-Length".into())),
                };
            }
        }
    }
    if content_length > max_body {
        return Err(RequestError::TooLarge(format!(
            "request body of {content_length} bytes exceeds the {max_body}-byte limit"
        )));
    }
    // The head cap has served its purpose; re-arm the limit for the body.
    reader.set_limit(content_length as u64);
    let mut body = vec![0u8; content_length];
    if let Err(e) = reader.read_exact(&mut body) {
        return Err(match e.kind() {
            io::ErrorKind::UnexpectedEof => {
                RequestError::Malformed("request body truncated".into())
            }
            _ => classify(e),
        });
    }
    Ok(Some(Request { method, path, body }))
}

/// Write one fixed-length response and flush. `extra` headers ride
/// along verbatim.
fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    )?;
    for (name, value) in extra {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all(b"\r\n")?;
    stream.write_all(body)?;
    stream.flush()
}

/// Start a 200 chunked-transfer response; the body follows as chunks.
fn stream_head(stream: &mut TcpStream, extra: &[(&str, &str)]) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n"
    )?;
    for (name, value) in extra {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all(b"\r\n")
}

/// A chunked-transfer body writer that survives the client vanishing:
/// the first write error marks the writer dead and every later chunk is
/// silently dropped, so a mid-response disconnect never aborts the
/// physics run it is watching.
struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
    alive: bool,
}

impl<'a> ChunkedWriter<'a> {
    fn new(stream: &'a mut TcpStream) -> Self {
        Self {
            stream,
            alive: true,
        }
    }

    fn chunk(&mut self, data: &[u8]) {
        if !self.alive || data.is_empty() {
            return;
        }
        let r = write!(self.stream, "{:x}\r\n", data.len())
            .and_then(|()| self.stream.write_all(data))
            .and_then(|()| self.stream.write_all(b"\r\n"))
            .and_then(|()| self.stream.flush());
        if r.is_err() {
            self.alive = false;
        }
    }

    /// Mark the body unfinishable (e.g. a source read failed): the
    /// terminal chunk is withheld so the client sees the truncation.
    fn die(&mut self) {
        self.alive = false;
    }

    fn finish(&mut self) {
        if self.alive {
            let _ = self
                .stream
                .write_all(b"0\r\n\r\n")
                .and_then(|()| self.stream.flush());
        }
    }
}

fn error_body(hint: &str) -> Vec<u8> {
    let mut body = Value::Obj(vec![("error".into(), Value::Str(hint.into()))])
        .render()
        .into_bytes();
    body.push(b'\n');
    body
}

/// The server state every acceptor thread shares.
struct Shared {
    scheduler: Mutex<Scheduler>,
    /// The scheduler's metrics aggregate, aliased here so acceptor
    /// threads can record connections and service time without taking
    /// the scheduler lock.
    metrics: Arc<ServeMetrics>,
    config: ServeConfig,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

impl Shared {
    /// The scheduler lock, recovered if a panicking thread poisoned it:
    /// the scheduler is never left mid-mutation across a run (runs
    /// happen outside the lock), so the inner state is always usable.
    fn scheduler(&self) -> MutexGuard<'_, Scheduler> {
        self.scheduler
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// The scenario server: a bound listener, a worker-pool configuration,
/// and the shared [`Scheduler`].
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.shared.addr)
            .field("config", &self.shared.config)
            .finish()
    }
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:7878`; port 0 picks a free port)
    /// over an unbounded result cache rooted at `cache_root`, with the
    /// default [`ServeConfig`].
    pub fn bind(addr: &str, cache_root: &Path) -> io::Result<Self> {
        Self::bind_with(addr, ResultCache::open(cache_root)?, ServeConfig::default())
    }

    /// Bind `addr` over an opened (possibly budget-bounded) cache with
    /// an explicit configuration and fresh (trace-less) metrics sized
    /// to the acceptor pool.
    pub fn bind_with(addr: &str, cache: ResultCache, config: ServeConfig) -> io::Result<Self> {
        let metrics = Arc::new(ServeMetrics::new(config.threads.max(1)));
        Self::bind_metrics(addr, cache, config, metrics)
    }

    /// [`Server::bind_with`] sharing an externally created metrics
    /// aggregate — the CLI passes one carrying the `--trace` writer.
    pub fn bind_metrics(
        addr: &str,
        cache: ResultCache,
        config: ServeConfig,
        metrics: Arc<ServeMetrics>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Self {
            listener,
            shared: Arc::new(Shared {
                scheduler: Mutex::new(Scheduler::with_metrics(cache, Arc::clone(&metrics))),
                metrics,
                config,
                shutdown: AtomicBool::new(false),
                addr,
            }),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Run the acceptor pool until a `POST /shutdown` arrives, then
    /// drain: every worker finishes its in-flight connection before
    /// this returns. Connection-level I/O errors drop that connection
    /// and the pool continues.
    pub fn serve(&mut self) -> io::Result<()> {
        let extra = self.shared.config.threads.max(1) - 1;
        let mut clones = Vec::with_capacity(extra);
        for _ in 0..extra {
            clones.push(self.listener.try_clone()?);
        }
        std::thread::scope(|scope| {
            for (i, listener) in clones.iter().enumerate() {
                let shared = &self.shared;
                scope.spawn(move || acceptor_loop(listener, shared, i + 1));
            }
            acceptor_loop(&self.listener, &self.shared, 0);
        });
        Ok(())
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Shared, acceptor: usize) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => continue,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // A shutdown wake pill (or a client racing the shutdown).
            return;
        }
        shared.metrics.connection(acceptor);
        shared
            .metrics
            .trace(TraceEvent::new("accepted").with("acceptor", acceptor as u64));
        handle_connection(stream, shared);
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let config = &shared.config;
    if !config.read_timeout.is_zero() {
        let _ = stream.set_read_timeout(Some(config.read_timeout));
    }
    if !config.write_timeout.is_zero() {
        let _ = stream.set_write_timeout(Some(config.write_timeout));
    }
    match read_request(&stream, config.max_body) {
        Ok(None) => {}
        Ok(Some(request)) => dispatch(&request, &mut stream, shared),
        Err(RequestError::Malformed(hint)) => {
            let _ = respond(
                &mut stream,
                400,
                "Bad Request",
                "application/json",
                &[],
                &error_body(&hint),
            );
        }
        Err(RequestError::TooLarge(hint)) => {
            let _ = respond(
                &mut stream,
                413,
                "Payload Too Large",
                "application/json",
                &[],
                &error_body(&hint),
            );
        }
        Err(RequestError::Timeout) => {
            let _ = respond(
                &mut stream,
                408,
                "Request Timeout",
                "application/json",
                &[],
                &error_body("request timed out"),
            );
        }
        Err(RequestError::Io) => {}
    }
}

fn dispatch(request: &Request, stream: &mut TcpStream, shared: &Shared) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/run") => post_run(&request.body, stream, shared),
        ("GET", "/stats") => {
            let mut body = shared.scheduler().stats_json().into_bytes();
            body.push(b'\n');
            let _ = respond(stream, 200, "OK", "application/json", &[], &body);
        }
        ("GET", "/stats/prom") => {
            let body = shared.scheduler().prometheus_text().into_bytes();
            let _ = respond(stream, 200, "OK", "text/plain; version=0.0.4", &[], &body);
        }
        ("GET", path) if path.strip_prefix("/result/").is_some() => {
            get_result(&path["/result/".len()..], stream, shared);
        }
        ("POST", "/shutdown") => {
            let _ = respond(stream, 200, "OK", "text/plain", &[], b"shutting down\n");
            shared.shutdown.store(true, Ordering::SeqCst);
            // One wake pill per acceptor: each blocked `accept` returns,
            // re-checks the flag, and exits; surplus pills die with the
            // listener.
            for _ in 0..shared.config.threads.max(1) {
                let _ = TcpStream::connect(shared.addr);
            }
        }
        _ => {
            let _ = respond(
                stream,
                404,
                "Not Found",
                "application/json",
                &[],
                &error_body(
                    "no such endpoint (try POST /run, GET /stats, GET /stats/prom, \
                     GET /result/<key>, GET /result/<key>/trajectory.xyz, POST /shutdown)",
                ),
            );
        }
    }
}

/// `POST /run`: admit the spec and answer with the report bytes.
fn post_run(body: &[u8], stream: &mut TcpStream, shared: &Shared) {
    let spec = std::str::from_utf8(body)
        .map_err(|_| "request body is not UTF-8".to_string())
        .and_then(|text| ScenarioSpec::from_json(text).map_err(|e| e.to_string()));
    let spec = match spec {
        Ok(spec) => spec,
        Err(hint) => {
            let _ = respond(
                stream,
                400,
                "Bad Request",
                "application/json",
                &[],
                &error_body(&hint),
            );
            return;
        }
    };
    // The service clock covers admission through response flush, for
    // every valid request — so at quiescence the service histogram's
    // count equals the `requests` counter.
    let started = Instant::now();

    // One lock acquisition for the admission decision *and* its
    // follow-up handle, so a coalesced request always finds its cell
    // and a hit always finds its entry.
    enum Plan {
        Hit(String, String),
        Wait(String, Arc<super::scheduler::JobCell>, &'static str),
        Run(String),
    }
    let plan = {
        let mut sched = shared.scheduler();
        let (key, disposition) = sched.submit(spec);
        match disposition {
            Disposition::CacheHit => {
                let cached = sched.result(&key).expect("a hit key is cached");
                Plan::Hit(key, cached.report)
            }
            Disposition::Coalesced => {
                let cell = sched.watch(&key).expect("a coalesced key has a cell");
                Plan::Wait(key, cell, "coalesced")
            }
            Disposition::Queued => Plan::Run(key),
        }
    };

    match plan {
        Plan::Hit(key, report) => {
            let _ = respond(
                stream,
                200,
                "OK",
                "text/plain",
                &[("X-Wafer-Cache", "hit"), ("X-Wafer-Key", &key)],
                report.as_bytes(),
            );
        }
        Plan::Wait(key, cell, label) => {
            answer_from_cell(&key, &cell, label, stream);
        }
        Plan::Run(key) => {
            let batch = shared.scheduler().claim_batch(Some(&key));
            if batch.is_empty() {
                // Another worker's batch swept this job up; wait on it.
                let cell = shared.scheduler().watch(&key);
                match cell {
                    Some(cell) => answer_from_cell(&key, &cell, "miss", stream),
                    None => {
                        // Completed between the two locks: a cache read.
                        match shared.scheduler().result(&key) {
                            Some(cached) => {
                                let _ = respond(
                                    stream,
                                    200,
                                    "OK",
                                    "text/plain",
                                    &[("X-Wafer-Cache", "miss"), ("X-Wafer-Key", &key)],
                                    cached.report.as_bytes(),
                                );
                            }
                            None => {
                                let _ = respond(
                                    stream,
                                    404,
                                    "Not Found",
                                    "application/json",
                                    &[],
                                    &error_body("result evicted before it could be read"),
                                );
                            }
                        }
                    }
                }
            } else {
                run_and_stream(&batch, &key, stream, shared);
            }
        }
    }
    shared.metrics.service.record_duration(started.elapsed());
}

/// Answer a waiter once its job's runner publishes the artifacts.
fn answer_from_cell(
    key: &str,
    cell: &super::scheduler::JobCell,
    label: &str,
    stream: &mut TcpStream,
) {
    match cell.wait() {
        Some(artifacts) => {
            let _ = respond(
                stream,
                200,
                "OK",
                "text/plain",
                &[("X-Wafer-Cache", label), ("X-Wafer-Key", key)],
                artifacts.report.as_bytes(),
            );
        }
        None => {
            let _ = respond(
                stream,
                500,
                "Internal Server Error",
                "application/json",
                &[],
                &error_body("scenario run failed; resubmit"),
            );
        }
    }
}

/// Execute a claimed batch and stream the runner's own report to its
/// client as chunked transfer encoding, fragment by fragment, while the
/// physics is still running. A client that disconnects mid-response
/// only silences the stream — the batch still runs to completion and
/// every result is cached and published, because the claimed jobs'
/// waiters depend on it.
fn run_and_stream(batch: &[Job], key: &str, stream: &mut TcpStream, shared: &Shared) {
    let head_ok = stream_head(stream, &[("X-Wafer-Cache", "miss"), ("X-Wafer-Key", key)]).is_ok();
    let writer = Mutex::new(ChunkedWriter::new(stream));
    if !head_ok {
        writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .die();
    }
    let pass = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        run_batch(batch, &|frag: &str| {
            writer
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .chunk(frag.as_bytes());
        })
    }));
    match outcome {
        Ok(artifacts) => {
            shared.metrics.batch_pass.record_duration(pass.elapsed());
            shared.metrics.batch_occupancy.record(batch.len() as u64);
            let mut sched = shared.scheduler();
            for (job, a) in batch.iter().zip(artifacts) {
                // A cache-insert failure (e.g. disk full) still fills
                // the job's cell, so no waiter is ever stranded.
                let _ = sched.complete(job, a);
            }
            drop(sched);
            writer
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .finish();
            shared.metrics.trace(TraceEvent::new("streamed").key(key));
        }
        Err(_) => {
            // A run panicked (an invariant break, not a client fault):
            // abandon every claimed job so waiters get a 500 instead of
            // blocking forever, and withhold the terminal chunk so this
            // client sees the truncation.
            let mut sched = shared.scheduler();
            for job in batch {
                sched.abandon(&job.key);
            }
            drop(sched);
            writer
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .die();
        }
    }
}

/// `GET /result/<key>` and `GET /result/<key>/trajectory.xyz`.
fn get_result(rest: &str, stream: &mut TcpStream, shared: &Shared) {
    let (key, artifact) = match rest.split_once('/') {
        None => (rest, None),
        Some((key, artifact)) => (key, Some(artifact)),
    };
    // Path-traversal hardening: a key is exactly 16 lowercase hex
    // characters, validated before it can touch the filesystem.
    if !is_valid_key(key) {
        let _ = respond(
            stream,
            400,
            "Bad Request",
            "application/json",
            &[],
            &error_body("result keys are exactly 16 lowercase hex characters"),
        );
        return;
    }
    match artifact {
        None => {
            let cached = shared.scheduler().result(key);
            match cached {
                Some(cached) => {
                    let _ = respond(
                        stream,
                        200,
                        "OK",
                        "text/plain",
                        &[("X-Wafer-Key", key)],
                        cached.report.as_bytes(),
                    );
                }
                None => {
                    let _ = respond(
                        stream,
                        404,
                        "Not Found",
                        "application/json",
                        &[],
                        &error_body("unknown result key"),
                    );
                }
            }
        }
        Some("trajectory.xyz") => {
            // Open under the lock, stream outside it: the open handle
            // stays valid even if the entry is evicted mid-stream.
            let file = shared.scheduler().open_trajectory(key);
            match file {
                Some((file, _len)) => {
                    stream_file(file, key, stream);
                    shared.metrics.trace(TraceEvent::new("streamed").key(key));
                }
                None => {
                    let _ = respond(
                        stream,
                        404,
                        "Not Found",
                        "application/json",
                        &[],
                        &error_body("no cached trajectory for this key (did the spec set xyz?)"),
                    );
                }
            }
        }
        Some(_) => {
            let _ = respond(
                stream,
                404,
                "Not Found",
                "application/json",
                &[],
                &error_body("unknown artifact (try /result/<key> or /result/<key>/trajectory.xyz)"),
            );
        }
    }
}

/// Stream a cached file as a chunked body without ever holding more
/// than one chunk in memory.
fn stream_file(mut file: File, key: &str, stream: &mut TcpStream) {
    if stream_head(stream, &[("X-Wafer-Key", key)]).is_err() {
        return;
    }
    let mut writer = ChunkedWriter::new(stream);
    let mut buf = vec![0u8; STREAM_CHUNK];
    loop {
        match file.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => writer.chunk(&buf[..n]),
            Err(_) => {
                writer.die();
                break;
            }
        }
    }
    writer.finish();
}
