//! Admission, batching, and execution: the single scheduling loop
//! behind both the HTTP server and `--drain`.
//!
//! The discipline is one loop with three outcomes per request — disk
//! hit, coalesce onto a pending job, or enqueue — followed by a drain
//! that runs each *unique* queued spec exactly once through the
//! [`Scenario`] facade and lands the artifacts in the cache atomically.
//! There is no second coordination layer: the HTTP loop drains after
//! each miss (a blocking HTTP/1.1 exchange must answer before the next
//! request is read), while `--drain` admits a whole request file first
//! so duplicate submissions visibly coalesce into one physics run.

use std::fmt::Write as _;
use std::fs;
use std::io::{self, Write};
use std::path::Path;

use md_core::engine::RunCounters;

use super::cache::{CachedResult, ResultCache};
use super::queue::{JobQueue, ServeStats};
use crate::json::Value;
use crate::scenario::{Engine, Scenario, ScenarioSpec, Workload};
use crate::traj;

/// How a submitted request was disposed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Disposition {
    /// Answered from the on-disk cache; no work queued.
    CacheHit,
    /// Newly queued; the next drain runs it.
    Queued,
    /// A job for the same key was already pending; this request rides
    /// along on its result.
    Coalesced,
}

impl Disposition {
    /// The stable one-word label drain output prints per request.
    /// `Queued` reads as `run` because drain output is written after
    /// the queue has drained — by then the job has executed.
    pub fn label(self) -> &'static str {
        match self {
            Self::CacheHit => "hit",
            Self::Queued => "run",
            Self::Coalesced => "coalesced",
        }
    }
}

/// Everything one executed run produces.
#[derive(Clone, Debug)]
pub struct RunArtifacts {
    /// The deterministic run report (`report.txt`). Contains only
    /// physics and the modeled rate — never execution geometry — so
    /// specs differing only in shards, ghost period, or threads produce
    /// byte-identical reports.
    pub report: String,
    /// The counters document (`counters.json`): atom count, executed
    /// steps, exchange schedule, modeled rate, requested threads.
    pub counters: String,
    /// The XYZ trajectory, when the spec asked for one.
    pub trajectory: Option<String>,
    /// Atoms simulated.
    pub atoms: u64,
    /// The engine's whole-run counters.
    pub run_counters: RunCounters,
}

fn workload_kind(w: Workload) -> &'static str {
    match w {
        Workload::Slab { .. } => "slab",
        Workload::GrainBoundary { .. } => "grain-boundary",
        Workload::ControlledGrid { .. } => "controlled-grid",
    }
}

/// Execute one spec through the [`Scenario`] facade and render its
/// artifacts.
///
/// The spec's `threads` field (when nonzero) overrides the worker-pool
/// width for exactly this run — execution geometry only; the physics
/// and therefore the report bytes are identical at any value. The
/// thermostat (if any) is applied on a fixed 10-step cadence aligned
/// with the trajectory frame schedule, so the flow of physics is a
/// function of the spec alone.
pub fn run_spec(spec: &ScenarioSpec) -> RunArtifacts {
    if spec.threads > 0 {
        rayon::set_num_threads(spec.threads);
    }
    let artifacts = execute(spec);
    if spec.threads > 0 {
        rayon::set_num_threads(0);
    }
    artifacts
}

fn execute(spec: &ScenarioSpec) -> RunArtifacts {
    let sc = Scenario::from_spec(*spec);
    let steps = sc.steps.max(1);
    let mut engine = sc
        .build_engine()
        .expect("specs are validated before they are queued");
    let atoms = engine.n_atoms();
    let symbol = sc.species.symbol();
    let mut xyz: Option<Vec<u8>> = sc.xyz.then(Vec::new);
    let frame = |step: usize, engine: &dyn Engine, xyz: &mut Option<Vec<u8>>| {
        if let Some(buf) = xyz.as_mut() {
            traj::write_xyz_frame(
                buf,
                symbol,
                "serve",
                step,
                &engine.positions_view().to_vec(),
            )
            .expect("write to Vec<u8> cannot fail");
        }
    };

    let mut report = String::new();
    writeln!(
        report,
        "== wafer-md serve: {} {}, {} atoms, engine {} ==",
        sc.species.name(),
        workload_kind(sc.workload),
        atoms,
        engine.backend()
    )
    .expect("write to String cannot fail");

    frame(0, engine.as_ref(), &mut xyz);
    sc.advance(engine.as_mut(), 1);
    let first = engine.observables();
    let e0 = first.total_energy();
    writeln!(
        report,
        "step 1: U = {:.3} eV, T = {:.0} K",
        first.potential_energy, first.temperature
    )
    .expect("write to String cannot fail");

    // Advance to each multiple of 10 (the frame cadence), then the
    // final step. The chunking is fixed by the spec's step budget
    // alone, so thermostatted runs evolve identically whether or not a
    // trajectory is recorded.
    let mut done = 1;
    while done < steps {
        let chunk = (10 - done % 10).min(steps - done);
        sc.advance(engine.as_mut(), chunk);
        done += chunk;
        if done % 10 == 0 || done == steps {
            frame(done, engine.as_ref(), &mut xyz);
        }
    }
    if steps == 1 {
        frame(1, engine.as_ref(), &mut xyz);
    }

    let o = engine.observables();
    writeln!(
        report,
        "after {} steps: U = {:.3} eV, T = {:.0} K, drift {:.2e} eV/atom",
        steps,
        o.potential_energy,
        o.temperature,
        (o.total_energy() - e0).abs() / atoms as f64
    )
    .expect("write to String cannot fail");
    if let Some(rate) = o.modeled_rate {
        writeln!(report, "modeled rate: {rate:.0} timesteps/s")
            .expect("write to String cannot fail");
    }
    let run_counters = engine.run_counters();
    let counters = Value::Obj(vec![
        ("atoms".into(), Value::Uint(atoms as u64)),
        (
            "atoms_steps".into(),
            Value::Uint(atoms as u64 * run_counters.steps),
        ),
        (
            "early_exchanges".into(),
            Value::Uint(run_counters.early_exchanges),
        ),
        ("exchanges".into(), Value::Uint(run_counters.exchanges)),
        (
            "modeled_rate".into(),
            o.modeled_rate.map_or(Value::Null, Value::Num),
        ),
        ("steps".into(), Value::Uint(run_counters.steps)),
        ("threads_requested".into(), Value::Uint(spec.threads as u64)),
    ])
    .render();

    RunArtifacts {
        report,
        counters,
        trajectory: xyz.map(|buf| String::from_utf8(buf).expect("XYZ output is UTF-8")),
        atoms: atoms as u64,
        run_counters,
    }
}

/// The scheduler: one cache, one queue, one set of counters.
#[derive(Debug)]
pub struct Scheduler {
    cache: ResultCache,
    queue: JobQueue,
    stats: ServeStats,
}

impl Scheduler {
    /// A scheduler over an opened cache, with an empty queue.
    pub fn new(cache: ResultCache) -> Self {
        Self {
            cache,
            queue: JobQueue::new(),
            stats: ServeStats::default(),
        }
    }

    /// Admit one spec. Returns its cache key and how the request was
    /// disposed; `Queued` and `Coalesced` requests are answered by the
    /// next [`Scheduler::drain`].
    pub fn submit(&mut self, spec: ScenarioSpec) -> (String, Disposition) {
        self.stats.requests += 1;
        let key = spec.key();
        if self.cache.lookup(&key).is_some() {
            self.stats.cache_hits += 1;
            return (key, Disposition::CacheHit);
        }
        if self.queue.push(key.clone(), spec) {
            (key, Disposition::Queued)
        } else {
            self.stats.coalesced += 1;
            (key, Disposition::Coalesced)
        }
    }

    /// Run the queue to empty: each unique queued spec executes exactly
    /// once, in admission order, and its artifacts land in the cache
    /// atomically. Returns the number of physics runs executed.
    pub fn drain(&mut self) -> io::Result<usize> {
        let mut ran = 0;
        while let Some(job) = self.queue.pop() {
            let artifacts = run_spec(&job.spec);
            let spec_json = job.spec.to_json();
            let mut files = vec![
                ("spec.json", spec_json.as_str()),
                ("report.txt", artifacts.report.as_str()),
                ("counters.json", artifacts.counters.as_str()),
            ];
            if let Some(t) = artifacts.trajectory.as_deref() {
                files.push(("trajectory.xyz", t));
            }
            self.cache.insert(&job.key, &files)?;
            self.stats.runs += 1;
            self.stats.atoms_steps += artifacts.atoms * artifacts.run_counters.steps;
            self.stats.exchanges += artifacts.run_counters.exchanges;
            self.stats.early_exchanges += artifacts.run_counters.early_exchanges;
            ran += 1;
        }
        Ok(ran)
    }

    /// Read a key's cached result.
    pub fn result(&self, key: &str) -> Option<CachedResult> {
        self.cache.lookup(key)
    }

    /// The counters so far.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The momentary queue depth.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The underlying cache.
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }
}

/// `wafer-md serve --drain FILE`: admit every request in `requests`
/// (one spec JSON per line; blank lines and `#` comments skipped), run
/// the queue to empty, and write the deterministic drain report to
/// `out` — one `<key> <hit|run|coalesced>` line per request in file
/// order, then the [`ServeStats::summary_line`]. CI byte-diffs this
/// output (and the cached artifacts it leaves behind) against committed
/// goldens at multiple thread counts.
pub fn drain_file(cache_root: &Path, requests: &Path, out: &mut dyn Write) -> io::Result<()> {
    let text = fs::read_to_string(requests)?;
    let mut scheduler = Scheduler::new(ResultCache::open(cache_root)?);
    let mut admitted = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let spec = ScenarioSpec::from_json(line).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {e}", i + 1))
        })?;
        admitted.push(scheduler.submit(spec));
    }
    scheduler.drain()?;
    for (key, disposition) in &admitted {
        writeln!(out, "{key} {}", disposition.label())?;
    }
    writeln!(out, "{}", scheduler.stats().summary_line())
}
