//! Admission, batching, and execution: the single scheduling loop
//! behind both the HTTP workers and `--drain`.
//!
//! The discipline is one loop with three outcomes per request — disk
//! hit, coalesce onto a pending or in-flight job, or enqueue — followed
//! by batched execution: a runner claims the job fairness dispatches
//! next *plus*, in fairness order, the immediately following queued
//! jobs with the same execution geometry
//! ([`crate::scenario::ScenarioSpec::batch_class`]) and runs the whole
//! batch in one worker-pool pass, landing each job's artifacts in the
//! cache atomically. Dispatch order is the two-level discipline of
//! [`JobQueue`](super::queue::JobQueue): strict [`Priority`] bands,
//! round-robin across client identities within a band — a pure
//! function of the admission sequence, so drain output and traces stay
//! byte-deterministic at any thread count. There is no second
//! coordination layer: the concurrent HTTP workers share one
//! `Mutex<Scheduler>`, and the per-job [`JobCell`]s are how coalesced
//! waiters (and workers whose queued job was swept into another
//! worker's batch) receive the finished artifacts without polling.
//! `--drain` admits a whole request file first, so duplicate
//! submissions visibly coalesce into one physics run and batches form
//! across the file.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;
use std::io::{self, Write};
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use md_core::engine::RunCounters;
use rayon::prelude::*;

use super::cache::{CacheUsage, CachedResult, ResultCache};
use super::metrics::{ServeMetrics, TraceEvent};
use super::queue::{Job, JobQueue, Priority, ServeStats};
use crate::json::Value;
use crate::scenario::{Engine, Scenario, ScenarioSpec, Workload};
use crate::traj;

/// How a submitted request was disposed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Disposition {
    /// Answered from the on-disk cache; no work queued.
    CacheHit,
    /// Newly queued; the next drain (or the submitting worker itself)
    /// runs it.
    Queued,
    /// A job for the same key was already pending or in flight; this
    /// request rides along on its result.
    Coalesced,
}

impl Disposition {
    /// The stable one-word label drain output prints per request.
    /// `Queued` reads as `run` because drain output is written after
    /// the queue has drained — by then the job has executed.
    pub fn label(self) -> &'static str {
        match self {
            Self::CacheHit => "hit",
            Self::Queued => "run",
            Self::Coalesced => "coalesced",
        }
    }
}

/// Everything one executed run produces.
#[derive(Clone, Debug)]
pub struct RunArtifacts {
    /// The deterministic run report (`report.txt`). Contains only
    /// physics and the modeled rate — never execution geometry — so
    /// specs differing only in shards, ghost period, or threads produce
    /// byte-identical reports.
    pub report: String,
    /// The counters document (`counters.json`): atom count, executed
    /// steps, exchange schedule, modeled rate, requested threads.
    pub counters: String,
    /// The XYZ trajectory, when the spec asked for one.
    pub trajectory: Option<String>,
    /// Atoms simulated.
    pub atoms: u64,
    /// The engine's whole-run counters.
    pub run_counters: RunCounters,
    /// Engine wall time of the run, nanoseconds. **Wall clock, not
    /// physics**: observability only, never rendered into any of the
    /// deterministic artifacts above.
    pub engine_nanos: u64,
    /// Per-shard `(integrate, exchange)` wall-clock nanoseconds when
    /// the run was sharded ([`md_core::engine::Engine::shard_phase_nanos`]).
    /// Same rule: observability only.
    pub shard_nanos: Option<Vec<(u64, u64)>>,
}

/// The completion cell of one queued-or-running job: coalesced waiters
/// park here until the runner fills it. One cell per unique in-flight
/// key; the scheduler hands out clones of the `Arc` under its lock, so
/// a waiter can block on the cell without holding the scheduler. The
/// slot's outer `Option` is "settled yet?", the inner one is "did the
/// run produce artifacts?" — `Some(None)` means the job was abandoned
/// (its runner panicked) and waiters should report a failure instead of
/// blocking forever.
#[derive(Debug, Default)]
pub struct JobCell {
    slot: Mutex<Option<Option<Arc<RunArtifacts>>>>,
    ready: Condvar,
}

impl JobCell {
    fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Settle the cell — `Some` with the finished artifacts, `None` for
    /// an abandoned job — and wake every waiter.
    pub fn fill(&self, artifacts: Option<Arc<RunArtifacts>>) {
        let mut slot = self.slot.lock().expect("job cell lock");
        *slot = Some(artifacts);
        self.ready.notify_all();
    }

    /// Block until the cell settles. `None` means the job was abandoned
    /// without a result.
    pub fn wait(&self) -> Option<Arc<RunArtifacts>> {
        let mut slot = self.slot.lock().expect("job cell lock");
        loop {
            if let Some(settled) = slot.as_ref() {
                return settled.clone();
            }
            slot = self.ready.wait(slot).expect("job cell wait");
        }
    }
}

fn workload_kind(w: Workload) -> &'static str {
    match w {
        Workload::Slab { .. } => "slab",
        Workload::GrainBoundary { .. } => "grain-boundary",
        Workload::ControlledGrid { .. } => "controlled-grid",
    }
}

/// Execute one spec through the [`Scenario`] facade and render its
/// artifacts.
///
/// The spec's `threads` field (when nonzero) overrides the worker-pool
/// width for exactly this run — execution geometry only; the physics
/// and therefore the report bytes are identical at any value. The
/// thermostat (if any) is applied on a fixed 10-step cadence aligned
/// with the trajectory frame schedule, so the flow of physics is a
/// function of the spec alone.
pub fn run_spec(spec: &ScenarioSpec) -> RunArtifacts {
    run_spec_streaming(spec, &mut |_| {})
}

/// [`run_spec`], reporting progress: `progress` receives each fragment
/// of the report as soon as it is final — the header immediately, the
/// step-1 observables after the first step, the closing lines when the
/// run completes. The concatenation of the fragments is byte-identical
/// to [`RunArtifacts::report`]; the HTTP layer streams them to a
/// cache-miss client as chunked transfer encoding while the physics is
/// still running.
pub fn run_spec_streaming(spec: &ScenarioSpec, progress: &mut dyn FnMut(&str)) -> RunArtifacts {
    if spec.threads > 0 {
        rayon::set_num_threads(spec.threads);
    }
    let artifacts = execute(spec, progress);
    if spec.threads > 0 {
        rayon::set_num_threads(0);
    }
    artifacts
}

fn execute(spec: &ScenarioSpec, progress: &mut dyn FnMut(&str)) -> RunArtifacts {
    let started = Instant::now();
    let sc = Scenario::from_spec(*spec);
    let steps = sc.steps.max(1);
    let mut engine = sc
        .build_engine()
        .expect("specs are validated before they are queued");
    let atoms = engine.n_atoms();
    let symbol = sc.species.symbol();
    let mut xyz: Option<Vec<u8>> = sc.xyz.then(Vec::new);
    let frame = |step: usize, engine: &dyn Engine, xyz: &mut Option<Vec<u8>>| {
        if let Some(buf) = xyz.as_mut() {
            traj::write_xyz_frame(
                buf,
                symbol,
                "serve",
                step,
                &engine.positions_view().to_vec(),
            )
            .expect("write to Vec<u8> cannot fail");
        }
    };

    let mut report = String::new();
    // Bytes of `report` already handed to `progress`.
    let mut flushed = 0usize;
    let mut flush = |report: &String, flushed: &mut usize| {
        progress(&report[*flushed..]);
        *flushed = report.len();
    };
    writeln!(
        report,
        "== wafer-md serve: {} {}, {} atoms, engine {} ==",
        sc.species.name(),
        workload_kind(sc.workload),
        atoms,
        engine.backend()
    )
    .expect("write to String cannot fail");
    flush(&report, &mut flushed);

    frame(0, engine.as_ref(), &mut xyz);
    sc.advance(engine.as_mut(), 1);
    let first = engine.observables();
    let e0 = first.total_energy();
    writeln!(
        report,
        "step 1: U = {:.3} eV, T = {:.0} K",
        first.potential_energy, first.temperature
    )
    .expect("write to String cannot fail");
    flush(&report, &mut flushed);

    // Advance to each multiple of 10 (the frame cadence), then the
    // final step. The chunking is fixed by the spec's step budget
    // alone, so thermostatted runs evolve identically whether or not a
    // trajectory is recorded.
    let mut done = 1;
    while done < steps {
        let chunk = (10 - done % 10).min(steps - done);
        sc.advance(engine.as_mut(), chunk);
        done += chunk;
        if done % 10 == 0 || done == steps {
            frame(done, engine.as_ref(), &mut xyz);
        }
    }
    if steps == 1 {
        frame(1, engine.as_ref(), &mut xyz);
    }

    let o = engine.observables();
    writeln!(
        report,
        "after {} steps: U = {:.3} eV, T = {:.0} K, drift {:.2e} eV/atom",
        steps,
        o.potential_energy,
        o.temperature,
        (o.total_energy() - e0).abs() / atoms as f64
    )
    .expect("write to String cannot fail");
    if let Some(rate) = o.modeled_rate {
        writeln!(report, "modeled rate: {rate:.0} timesteps/s")
            .expect("write to String cannot fail");
    }
    flush(&report, &mut flushed);
    let run_counters = engine.run_counters();
    let counters = Value::Obj(vec![
        ("atoms".into(), Value::Uint(atoms as u64)),
        (
            "atoms_steps".into(),
            Value::Uint(atoms as u64 * run_counters.steps),
        ),
        (
            "early_exchanges".into(),
            Value::Uint(run_counters.early_exchanges),
        ),
        ("exchanges".into(), Value::Uint(run_counters.exchanges)),
        (
            "modeled_rate".into(),
            o.modeled_rate.map_or(Value::Null, Value::Num),
        ),
        ("steps".into(), Value::Uint(run_counters.steps)),
        ("threads_requested".into(), Value::Uint(spec.threads as u64)),
    ])
    .render();

    RunArtifacts {
        report,
        counters,
        trajectory: xyz.map(|buf| String::from_utf8(buf).expect("XYZ output is UTF-8")),
        atoms: atoms as u64,
        run_counters,
        engine_nanos: u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
        shard_nanos: engine.shard_phase_nanos(),
    }
}

/// Run a claimed batch in one worker-pool pass. `stream` receives the
/// report fragments of the job at `stream_idx` (the runner's own
/// request — no longer necessarily the batch front, since a fair claim
/// can put another client's job first) as they are finalized; the
/// other batch members run without progress reporting. A `stream_idx`
/// out of range streams nothing. The returned artifacts are
/// index-aligned with `batch`. Every run is bit-deterministic in
/// isolation, so neither the pool's chunk assignment nor the pass
/// width can influence a single byte of any result.
pub fn run_batch(
    batch: &[Job],
    stream_idx: usize,
    stream: &(dyn Fn(&str) + Sync),
) -> Vec<RunArtifacts> {
    if batch.len() == 1 {
        return vec![if stream_idx == 0 {
            run_spec_streaming(&batch[0].spec, &mut |frag| stream(frag))
        } else {
            run_spec(&batch[0].spec)
        }];
    }
    (0..batch.len())
        .into_par_iter()
        .map(|i| {
            if i == stream_idx {
                run_spec_streaming(&batch[i].spec, &mut |frag| stream(frag))
            } else {
                run_spec(&batch[i].spec)
            }
        })
        .collect()
}

/// The scheduler: one cache, one queue, one set of counters, and the
/// completion cells of every pending or in-flight job. Concurrent
/// servers share it behind a `Mutex`; all methods are cheap except the
/// run itself, which callers perform *outside* the lock between
/// [`Scheduler::claim_batch`] and [`Scheduler::complete`].
#[derive(Debug)]
pub struct Scheduler {
    cache: ResultCache,
    queue: JobQueue,
    /// One cell per unique key that is queued or running. A key present
    /// here but absent from the queue has been claimed by a runner.
    cells: HashMap<String, Arc<JobCell>>,
    stats: ServeStats,
    /// Shared observability state: histograms, trace, shard timings.
    metrics: Arc<ServeMetrics>,
    /// When each still-queued key was admitted — the queue-wait clock,
    /// drained into [`ServeMetrics::queue_wait`] at batch claim.
    enqueued: HashMap<String, Instant>,
}

impl Scheduler {
    /// A scheduler over an opened cache, with an empty queue and
    /// fresh (trace-less) metrics.
    pub fn new(cache: ResultCache) -> Self {
        Self::with_metrics(cache, Arc::new(ServeMetrics::new(0)))
    }

    /// A scheduler sharing an externally created metrics aggregate
    /// (the HTTP layer also records into it from outside the lock).
    pub fn with_metrics(cache: ResultCache, metrics: Arc<ServeMetrics>) -> Self {
        Self {
            cache,
            queue: JobQueue::new(),
            cells: HashMap::new(),
            stats: ServeStats::default(),
            metrics,
            enqueued: HashMap::new(),
        }
    }

    /// The shared observability state.
    pub fn metrics(&self) -> &Arc<ServeMetrics> {
        &self.metrics
    }

    /// Admit one spec. Returns its cache key and how the request was
    /// disposed; `Queued` and `Coalesced` requests are answered after a
    /// runner executes the job (via [`Scheduler::claim_batch`] /
    /// [`Scheduler::complete`] or a [`Scheduler::drain`]). Emits
    /// exactly one admission-outcome trace event (`hit`, `coalesced`,
    /// or `admitted`) per call.
    pub fn submit(&mut self, spec: ScenarioSpec) -> (String, Disposition) {
        self.submit_from(spec, Priority::Normal, "drain")
    }

    /// [`Scheduler::submit`] with an explicit priority band and client
    /// identity — the HTTP layer's entry point. The band and client
    /// only steer *dispatch order*; the key, the artifacts, and the
    /// disposition logic are identical for every identity.
    pub fn submit_from(
        &mut self,
        spec: ScenarioSpec,
        priority: Priority,
        client: &str,
    ) -> (String, Disposition) {
        self.stats.requests += 1;
        let key = spec.key();
        if self.cache.lookup(&key).is_some() {
            self.stats.cache_hits += 1;
            self.metrics.trace(TraceEvent::new("hit").key(&key));
            return (key, Disposition::CacheHit);
        }
        if self.cells.contains_key(&key) {
            self.stats.coalesced += 1;
            self.metrics.trace(TraceEvent::new("coalesced").key(&key));
            return (key, Disposition::Coalesced);
        }
        self.queue.push(Job {
            key: key.clone(),
            spec,
            priority,
            client: client.to_string(),
        });
        self.cells.insert(key.clone(), JobCell::new());
        self.enqueued.insert(key.clone(), Instant::now());
        self.metrics.trace(
            TraceEvent::new("admitted")
                .key(&key)
                .tag("band", priority.label()),
        );
        (key, Disposition::Queued)
    }

    /// The completion cell of a queued or in-flight key, if any. Cells
    /// are removed by [`Scheduler::complete`], so a caller that checks
    /// under the same lock acquisition as its [`Scheduler::submit`] is
    /// guaranteed a cell for a `Coalesced` disposition.
    pub fn watch(&self, key: &str) -> Option<Arc<JobCell>> {
        self.cells.get(key).cloned()
    }

    /// Claim a batch of queued jobs for execution: the job fairness
    /// dispatches next, plus — still in fairness order — every
    /// immediately following job that shares its execution geometry
    /// ([`crate::scenario::ScenarioSpec::batch_class`]). The sweep
    /// stops at the first job fairness would dispatch with a different
    /// geometry; when geometry-compatible work is still pending behind
    /// that point (work the old FIFO sweep would have grabbed), the
    /// stop is counted as a fairness preemption. The claimed jobs
    /// leave the queue but keep their cells — they are in flight until
    /// [`Scheduler::complete`]. Returns an empty batch when the queue
    /// is empty (a worker whose own job was swept into another
    /// worker's batch waits on its cell instead).
    pub fn claim_batch(&mut self) -> Vec<Job> {
        let Some(first) = self.queue.pop() else {
            return Vec::new();
        };
        let class = first.spec.batch_class();
        let mut batch = vec![first];
        while self
            .queue
            .peek()
            .is_some_and(|job| job.spec.batch_class() == class)
        {
            batch.push(self.queue.pop().expect("peeked job is present"));
        }
        if self.queue.has_compatible(&batch[0].spec) {
            self.stats.fairness_preemptions += 1;
            self.metrics.trace(
                TraceEvent::new("preempted")
                    .key(&batch[0].key)
                    .with("batch", batch.len() as u64),
            );
        }
        self.stats.batches += 1;
        for job in &batch {
            let mut event = TraceEvent::new("batched")
                .key(&job.key)
                .with("batch", batch.len() as u64);
            if let Some(admitted) = self.enqueued.remove(&job.key) {
                let wait = admitted.elapsed();
                self.metrics.queue_wait.record_duration(wait);
                event = event.with(
                    "wait_us",
                    u64::try_from(wait.as_micros()).unwrap_or(u64::MAX),
                );
            }
            self.metrics.trace(event);
        }
        batch
    }

    /// Land one claimed job's artifacts: insert into the cache, fold
    /// the run into the counters, and fill the job's cell so every
    /// waiter wakes with the finished artifacts.
    pub fn complete(
        &mut self,
        job: &Job,
        artifacts: RunArtifacts,
    ) -> io::Result<Arc<RunArtifacts>> {
        let spec_json = job.spec.to_json();
        let mut files = vec![
            ("spec.json", spec_json.as_str()),
            ("report.txt", artifacts.report.as_str()),
            ("counters.json", artifacts.counters.as_str()),
        ];
        if let Some(t) = artifacts.trajectory.as_deref() {
            files.push(("trajectory.xyz", t));
        }
        // Even if the insert fails (e.g. disk full), the run *happened*:
        // fold it into the counters and settle the cell first, so no
        // waiter is ever stranded on an I/O error.
        let inserted = self.cache.insert(&job.key, &files);
        self.stats.runs += 1;
        self.stats.atoms_steps += artifacts.atoms * artifacts.run_counters.steps;
        self.stats.exchanges += artifacts.run_counters.exchanges;
        self.stats.early_exchanges += artifacts.run_counters.early_exchanges;
        self.metrics
            .engine_run
            .record(artifacts.engine_nanos / 1_000);
        if let Some(phases) = &artifacts.shard_nanos {
            self.metrics.record_shard_phases(phases);
        }
        self.metrics.trace(
            TraceEvent::new("run")
                .key(&job.key)
                .with("engine_us", artifacts.engine_nanos / 1_000),
        );
        for evicted in self.cache.take_evicted() {
            self.metrics.trace(TraceEvent::new("evicted").key(&evicted));
        }
        let artifacts = Arc::new(artifacts);
        if let Some(cell) = self.cells.remove(&job.key) {
            cell.fill(Some(Arc::clone(&artifacts)));
        }
        inserted.map(|()| artifacts)
    }

    /// Abandon a claimed job whose run did not produce artifacts (its
    /// runner panicked): remove the cell and settle it empty, so every
    /// waiter wakes with a failure instead of blocking forever. The key
    /// becomes submittable again.
    pub fn abandon(&mut self, key: &str) {
        if let Some(cell) = self.cells.remove(key) {
            cell.fill(None);
        }
    }

    /// Run the queue to empty, batch by batch: each unique queued spec
    /// executes exactly once, geometry-compatible specs share a pool
    /// pass, and every job's artifacts land in the cache atomically.
    /// Returns the number of physics runs executed.
    pub fn drain(&mut self) -> io::Result<usize> {
        let mut ran = 0;
        loop {
            let batch = self.claim_batch();
            if batch.is_empty() {
                return Ok(ran);
            }
            let pass = Instant::now();
            let artifacts = run_batch(&batch, batch.len(), &|_| {});
            self.metrics.batch_pass.record_duration(pass.elapsed());
            self.metrics.batch_occupancy.record(batch.len() as u64);
            for (job, a) in batch.iter().zip(artifacts) {
                self.complete(job, a)?;
            }
            ran += batch.len();
        }
    }

    /// Read a key's cached result (report + counters). Counts as an
    /// access for cache eviction.
    pub fn result(&mut self, key: &str) -> Option<CachedResult> {
        self.cache.lookup(key)
    }

    /// Open a key's cached trajectory for streaming, with its length.
    pub fn open_trajectory(&mut self, key: &str) -> Option<(fs::File, u64)> {
        self.cache.open_artifact(key, "trajectory.xyz")
    }

    /// The counters so far.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// The `GET /stats` document: the [`ServeStats`] counters merged
    /// with the observability fields (latency/batch histograms,
    /// per-acceptor counters, shard timings, trace counters), keys in
    /// one fixed alphabetical order.
    pub fn stats_json(&self) -> String {
        let mut fields =
            self.stats
                .fields(self.queue.len(), self.queue.depths(), self.cache.usage());
        fields.extend(self.metrics.observability_fields());
        Value::sorted_obj(fields).render()
    }

    /// The `GET /stats/prom` document: Prometheus text exposition over
    /// the same counters and histograms.
    pub fn prometheus_text(&self) -> String {
        self.metrics.prometheus(
            &self.stats,
            self.queue.len(),
            self.queue.depths(),
            self.cache.usage(),
        )
    }

    /// The momentary queue depth (claimed-but-running jobs excluded).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The momentary per-band queue depths (high, normal, low).
    pub fn band_depths(&self) -> [usize; 3] {
        self.queue.depths()
    }

    /// Persist the cache's recency order if read hits have reordered
    /// it since the last index write — the clean-shutdown half of the
    /// deferred-persistence contract (see [`ResultCache::flush`]).
    pub fn flush_cache(&mut self) -> io::Result<()> {
        self.cache.flush()
    }

    /// The cache's momentary size and eviction counters.
    pub fn cache_usage(&self) -> CacheUsage {
        self.cache.usage()
    }

    /// The underlying cache.
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }
}

/// `wafer-md serve --drain FILE`: admit every request in `requests`
/// (one spec JSON per line; blank lines and `#` comments skipped), run
/// the queue to empty, and write the deterministic drain report to
/// `out` — one `<key> <hit|run|coalesced>` line per request in file
/// order, then the [`ServeStats::summary_line`]. The caller supplies
/// the opened (and possibly budget-bounded) cache; because the
/// eviction order is a pure function of the access sequence and is
/// persisted in the cache's index file, a re-drain over a warm cache
/// replays identically. CI byte-diffs this output (and the cached
/// artifacts it leaves behind) against committed goldens at multiple
/// thread counts.
pub fn drain_file(cache: ResultCache, requests: &Path, out: &mut dyn Write) -> io::Result<()> {
    drain_file_with(cache, requests, out, Arc::new(ServeMetrics::new(0)))
}

/// [`drain_file`] recording into an externally created metrics
/// aggregate — the CLI passes one carrying the `--trace` writer, and
/// prints its [`ServeMetrics::drain_summary`] to stderr afterwards.
/// The report written to `out` is byte-identical with or without
/// metrics attached: every timing measurement stays on the
/// observability side of the wall-clock/determinism split.
pub fn drain_file_with(
    cache: ResultCache,
    requests: &Path,
    out: &mut dyn Write,
    metrics: Arc<ServeMetrics>,
) -> io::Result<()> {
    let text = fs::read_to_string(requests)?;
    let mut scheduler = Scheduler::with_metrics(cache, metrics);
    let mut admitted = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let spec = ScenarioSpec::from_json(line).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {e}", i + 1))
        })?;
        admitted.push(scheduler.submit(spec));
    }
    scheduler.drain()?;
    // Drain end is a clean shutdown: persist any recency reordering
    // from warm-cache hits so a re-drain replays the same order.
    scheduler.flush_cache()?;
    for (key, disposition) in &admitted {
        writeln!(out, "{key} {}", disposition.label())?;
    }
    writeln!(out, "{}", scheduler.stats().summary_line())
}
