//! The job queue and the per-process serve counters.
//!
//! One admission discipline, used by both the HTTP workers and
//! `--drain`: a request either hits the disk cache, coalesces onto an
//! already-queued (or already-running) job for the same key, or
//! enqueues a new job. The queue is keyed FIFO — within a batch, jobs
//! run in admission order, so drain output is deterministic — and never
//! holds two jobs for one key. A drain claims *batches* rather than
//! single jobs: the front job plus every queued job with the same
//! execution geometry ([`crate::scenario::ScenarioSpec::batch_class`])
//! comes off the queue together and runs in one worker-pool pass.

use crate::json::Value;
use crate::scenario::ScenarioSpec;

use super::cache::CacheUsage;

/// A queued unit of work: one spec to run, addressed by its canonical
/// key.
#[derive(Clone, Debug)]
pub struct Job {
    /// The spec's canonical cache key ([`ScenarioSpec::key`]).
    pub key: String,
    /// The spec to run.
    pub spec: ScenarioSpec,
}

/// A FIFO queue of pending runs, deduplicated by cache key.
#[derive(Debug, Default)]
pub struct JobQueue {
    jobs: Vec<Job>,
}

impl JobQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue a job unless one with the same key is already pending.
    /// Returns `true` if the job was newly queued, `false` if it
    /// coalesced onto the pending one.
    pub fn push(&mut self, key: String, spec: ScenarioSpec) -> bool {
        if self.contains(&key) {
            return false;
        }
        self.jobs.push(Job { key, spec });
        true
    }

    /// Dequeue the oldest pending job.
    pub fn pop(&mut self) -> Option<Job> {
        if self.jobs.is_empty() {
            None
        } else {
            Some(self.jobs.remove(0))
        }
    }

    /// Remove and return the pending job with this key, wherever it sits
    /// in the queue.
    pub fn take(&mut self, key: &str) -> Option<Job> {
        let pos = self.jobs.iter().position(|j| j.key == key)?;
        Some(self.jobs.remove(pos))
    }

    /// Remove and return, in queue order, every pending job whose spec
    /// shares `spec`'s batch class (same engine, shard count, and ghost
    /// period) — the jobs that can ride one engine-pool pass together.
    pub fn take_compatible(&mut self, spec: &ScenarioSpec) -> Vec<Job> {
        let class = spec.batch_class();
        let mut taken = Vec::new();
        let mut kept = Vec::new();
        for job in self.jobs.drain(..) {
            if job.spec.batch_class() == class {
                taken.push(job);
            } else {
                kept.push(job);
            }
        }
        self.jobs = kept;
        taken
    }

    /// Whether a job with this key is pending.
    pub fn contains(&self, key: &str) -> bool {
        self.jobs.iter().any(|j| j.key == key)
    }

    /// The queue depth.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

/// Monotonic per-process serve counters.
///
/// `requests = runs + cache_hits + coalesced + still-pending`: every
/// admitted request is classified exactly once. The physics totals
/// (`atoms_steps`, `exchanges`, `early_exchanges`) accumulate over the
/// runs *this process* executed — cache hits add nothing, which is the
/// point of the cache. `batches` counts engine-pool passes: with
/// geometry-compatible misses batched, `batches ≤ runs`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Specs submitted (valid requests admitted, however disposed).
    pub requests: u64,
    /// Physics runs actually executed.
    pub runs: u64,
    /// Engine-pool passes (batches of compatible runs).
    pub batches: u64,
    /// Requests answered from the on-disk cache.
    pub cache_hits: u64,
    /// Requests that coalesced onto an already-queued or in-flight job.
    pub coalesced: u64,
    /// Σ atoms × steps over executed runs.
    pub atoms_steps: u64,
    /// Ghost exchanges performed by executed sharded runs.
    pub exchanges: u64,
    /// The subset of `exchanges` forced early by the skin-validity
    /// check.
    pub early_exchanges: u64,
}

impl ServeStats {
    /// The counter fields of the `GET /stats` document, plus the
    /// momentary queue depth and the cache's size and eviction
    /// counters. The HTTP layer merges these with the observability
    /// fields ([`super::ServeMetrics::observability_fields`]) and
    /// renders the union through [`Value::sorted_obj`].
    pub fn fields(&self, pending: usize, cache: CacheUsage) -> Vec<(String, Value)> {
        vec![
            ("atoms_steps".into(), Value::Uint(self.atoms_steps)),
            ("batches".into(), Value::Uint(self.batches)),
            ("cache_bytes".into(), Value::Uint(cache.bytes)),
            ("cache_entries".into(), Value::Uint(cache.entries)),
            ("cache_hits".into(), Value::Uint(self.cache_hits)),
            ("coalesced".into(), Value::Uint(self.coalesced)),
            ("early_exchanges".into(), Value::Uint(self.early_exchanges)),
            ("evictions".into(), Value::Uint(cache.evictions)),
            ("exchanges".into(), Value::Uint(self.exchanges)),
            ("pending".into(), Value::Uint(pending as u64)),
            ("requests".into(), Value::Uint(self.requests)),
            ("runs".into(), Value::Uint(self.runs)),
        ]
    }

    /// Render the counter fields alone as the legacy `GET /stats`
    /// document: compact JSON, keys in a fixed alphabetical order.
    pub fn to_json(&self, pending: usize, cache: CacheUsage) -> String {
        Value::sorted_obj(self.fields(pending, cache)).render()
    }

    /// The one-line drain summary (the last line of `--drain` output,
    /// golden-tested in CI).
    pub fn summary_line(&self) -> String {
        format!(
            "requests {}, runs {}, cache hits {}, coalesced {}, atoms-steps {}, exchanges {} ({} early)",
            self.requests,
            self.runs,
            self.cache_hits,
            self.coalesced,
            self.atoms_steps,
            self.exchanges,
            self.early_exchanges,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{GhostPeriod, Scenario};
    use md_core::materials::Species;

    #[test]
    fn queue_coalesces_by_key_and_pops_fifo() {
        let a = Scenario::slab(Species::Ta, 3, 3, 1).to_spec();
        let mut b = a;
        b.seed += 1;
        let mut q = JobQueue::new();
        assert!(q.push(a.key(), a));
        assert!(!q.push(a.key(), a), "same key coalesces");
        assert!(q.push(b.key(), b));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().key, a.key());
        assert_eq!(q.pop().unwrap().key, b.key());
        assert!(q.is_empty());
        // Once popped, the key can queue again.
        assert!(q.push(a.key(), a));
    }

    #[test]
    fn take_compatible_splits_the_queue_by_geometry() {
        let a = Scenario::slab(Species::Ta, 3, 3, 1).to_spec();
        let mut b = a;
        b.seed += 1;
        let mut sharded = a;
        sharded.seed += 2;
        sharded.shards = 2;
        sharded.ghost_period = GhostPeriod::Every(4);
        let mut q = JobQueue::new();
        q.push(a.key(), a);
        q.push(sharded.key(), sharded);
        q.push(b.key(), b);
        let front = q.pop().unwrap();
        let batch = q.take_compatible(&front.spec);
        // b shares a's unsharded geometry; the sharded spec stays queued.
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].key, b.key());
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().key, sharded.key());
        // take() pulls by key from anywhere in the queue.
        q.push(a.key(), a);
        q.push(b.key(), b);
        assert_eq!(q.take(&b.key()).unwrap().key, b.key());
        assert!(q.take(&b.key()).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn stats_render_stable_json_and_summary() {
        let stats = ServeStats {
            requests: 3,
            runs: 2,
            batches: 1,
            cache_hits: 0,
            coalesced: 1,
            atoms_steps: 14400,
            exchanges: 5,
            early_exchanges: 1,
        };
        let cache = CacheUsage {
            bytes: 512,
            entries: 2,
            evictions: 4,
        };
        assert_eq!(
            stats.to_json(1, cache),
            "{\"atoms_steps\":14400,\"batches\":1,\"cache_bytes\":512,\
             \"cache_entries\":2,\"cache_hits\":0,\"coalesced\":1,\
             \"early_exchanges\":1,\"evictions\":4,\"exchanges\":5,\
             \"pending\":1,\"requests\":3,\"runs\":2}"
        );
        assert_eq!(
            stats.summary_line(),
            "requests 3, runs 2, cache hits 0, coalesced 1, atoms-steps 14400, exchanges 5 (1 early)"
        );
    }
}
