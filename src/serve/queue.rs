//! The two-level fair job queue and the per-process serve counters.
//!
//! One admission discipline, used by both the HTTP workers and
//! `--drain`: a request either hits the disk cache, coalesces onto an
//! already-queued (or already-running) job for the same key, or
//! enqueues a new job. Dispatch is two-level. The first level is three
//! strict [`Priority`] bands (the `X-Wafer-Priority: high|normal|low`
//! request header; headerless requests and `--drain` are `normal`): a
//! band dispatches only when every band above it is empty. The second
//! level is round-robin across client identities *within* a band (the
//! peer IP, overridable via `X-Wafer-Client`), so no single client can
//! monopolize the engine pool; within one client's lane, jobs stay
//! FIFO. The whole order is a pure function of the admission sequence —
//! no wall clocks participate in any decision — so `--drain` output and
//! trace byte-determinism survive at any thread count. The queue never
//! holds two jobs for one key.
//!
//! A drain claims *batches* rather than single jobs: the fairness-front
//! job plus the jobs fairness would dispatch immediately after it, for
//! as long as they share its execution geometry
//! ([`crate::scenario::ScenarioSpec::batch_class`]). Unlike the old
//! FIFO sweep, a batch never reaches past the first job fairness would
//! dispatch to a different client or band — compatible work left behind
//! for fairness's sake is counted as a preemption.

use crate::json::Value;
use crate::scenario::ScenarioSpec;

use super::cache::CacheUsage;

/// The strict dispatch band a request is admitted into, from the
/// `X-Wafer-Priority` header (absent → [`Priority::Normal`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Dispatched before everything else.
    High,
    /// The default band: headerless requests and `--drain` admissions.
    #[default]
    Normal,
    /// Dispatched only when the other two bands are empty.
    Low,
}

impl Priority {
    /// All bands, in dispatch order.
    pub const ALL: [Self; 3] = [Self::High, Self::Normal, Self::Low];

    /// Parse an `X-Wafer-Priority` header value. Case-insensitive;
    /// anything but `high`/`normal`/`low` is `None` (the HTTP layer
    /// turns that into a 400, never a silent default).
    pub fn parse(value: &str) -> Option<Self> {
        match value.trim().to_ascii_lowercase().as_str() {
            "high" => Some(Self::High),
            "normal" => Some(Self::Normal),
            "low" => Some(Self::Low),
            _ => None,
        }
    }

    /// The band's stable lowercase label (trace events, stats keys).
    pub fn label(self) -> &'static str {
        match self {
            Self::High => "high",
            Self::Normal => "normal",
            Self::Low => "low",
        }
    }

    /// The band's index in dispatch order (0 = high).
    fn band(self) -> usize {
        match self {
            Self::High => 0,
            Self::Normal => 1,
            Self::Low => 2,
        }
    }
}

/// A queued unit of work: one spec to run, addressed by its canonical
/// key, tagged with the band and client identity fairness dispatches
/// by.
#[derive(Clone, Debug)]
pub struct Job {
    /// The spec's canonical cache key ([`ScenarioSpec::key`]).
    pub key: String,
    /// The spec to run.
    pub spec: ScenarioSpec,
    /// The strict band the job dispatches in.
    pub priority: Priority,
    /// The client identity the job's lane is keyed by.
    pub client: String,
}

/// One priority band: a FIFO lane per client identity, in first-enqueue
/// order, with a round-robin cursor over the lanes. A lane is removed
/// the moment it empties (re-enqueueing appends a fresh lane at the
/// end), so the cursor only ever points at dispatchable work.
#[derive(Debug, Default)]
struct Band {
    lanes: Vec<(String, Vec<Job>)>,
    cursor: usize,
}

impl Band {
    fn push(&mut self, job: Job) {
        if let Some((_, lane)) = self.lanes.iter_mut().find(|(c, _)| *c == job.client) {
            lane.push(job);
        } else {
            self.lanes.push((job.client.clone(), vec![job]));
        }
    }

    /// The job the next [`Band::pop`] dispatches.
    fn peek(&self) -> Option<&Job> {
        self.lanes.get(self.cursor).map(|(_, lane)| &lane[0])
    }

    fn pop(&mut self) -> Option<Job> {
        if self.lanes.is_empty() {
            return None;
        }
        let job = self.lanes[self.cursor].1.remove(0);
        if self.lanes[self.cursor].1.is_empty() {
            // The next lane slides into the cursor slot, which is
            // exactly the round-robin successor.
            self.lanes.remove(self.cursor);
            if self.cursor >= self.lanes.len() {
                self.cursor = 0;
            }
        } else {
            self.cursor = (self.cursor + 1) % self.lanes.len();
        }
        Some(job)
    }

    fn len(&self) -> usize {
        self.lanes.iter().map(|(_, lane)| lane.len()).sum()
    }

    fn iter(&self) -> impl Iterator<Item = &Job> {
        self.lanes.iter().flat_map(|(_, lane)| lane.iter())
    }
}

/// The two-level fair queue of pending runs, deduplicated by cache key:
/// strict priority bands over per-client round-robin lanes. Dispatch
/// order is a pure function of the admission sequence.
#[derive(Debug, Default)]
pub struct JobQueue {
    bands: [Band; 3],
}

impl JobQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue a job unless one with the same key is already pending
    /// (in any band). Returns `true` if the job was newly queued,
    /// `false` if it coalesced onto the pending one.
    pub fn push(&mut self, job: Job) -> bool {
        if self.contains(&job.key) {
            return false;
        }
        self.bands[job.priority.band()].push(job);
        true
    }

    /// The job fairness dispatches next: the round-robin cursor lane of
    /// the highest non-empty band.
    pub fn peek(&self) -> Option<&Job> {
        self.bands.iter().find_map(Band::peek)
    }

    /// Dequeue the job fairness dispatches next.
    pub fn pop(&mut self) -> Option<Job> {
        self.bands.iter_mut().find_map(Band::pop)
    }

    /// Whether a job with this key is pending in any band.
    pub fn contains(&self, key: &str) -> bool {
        self.bands
            .iter()
            .any(|b| b.iter().any(|job| job.key == key))
    }

    /// Whether any pending job, anywhere, shares `spec`'s execution
    /// geometry ([`ScenarioSpec::batch_class`]). Used to detect that a
    /// batch sweep stopped for fairness rather than for lack of
    /// compatible work.
    pub fn has_compatible(&self, spec: &ScenarioSpec) -> bool {
        let class = spec.batch_class();
        self.bands
            .iter()
            .any(|b| b.iter().any(|job| job.spec.batch_class() == class))
    }

    /// The momentary depth of each band, dispatch order (high, normal,
    /// low).
    pub fn depths(&self) -> [usize; 3] {
        [
            self.bands[0].len(),
            self.bands[1].len(),
            self.bands[2].len(),
        ]
    }

    /// The total queue depth.
    pub fn len(&self) -> usize {
        self.bands.iter().map(Band::len).sum()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.bands.iter().all(|b| b.lanes.is_empty())
    }
}

/// Monotonic per-process serve counters.
///
/// `requests = runs + cache_hits + coalesced + still-pending`: every
/// admitted request is classified exactly once. The physics totals
/// (`atoms_steps`, `exchanges`, `early_exchanges`) accumulate over the
/// runs *this process* executed — cache hits add nothing, which is the
/// point of the cache. `batches` counts engine-pool passes: with
/// geometry-compatible misses batched, `batches ≤ runs`.
/// `fairness_preemptions` counts batch sweeps cut short by fairness:
/// compatible work was pending but the next fair dispatch belonged to
/// a different client or band.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Specs submitted (valid requests admitted, however disposed).
    pub requests: u64,
    /// Physics runs actually executed.
    pub runs: u64,
    /// Engine-pool passes (batches of compatible runs).
    pub batches: u64,
    /// Requests answered from the on-disk cache.
    pub cache_hits: u64,
    /// Requests that coalesced onto an already-queued or in-flight job.
    pub coalesced: u64,
    /// Batch sweeps stopped by fairness while compatible work was still
    /// pending.
    pub fairness_preemptions: u64,
    /// Σ atoms × steps over executed runs.
    pub atoms_steps: u64,
    /// Ghost exchanges performed by executed sharded runs.
    pub exchanges: u64,
    /// The subset of `exchanges` forced early by the skin-validity
    /// check.
    pub early_exchanges: u64,
}

impl ServeStats {
    /// The counter fields of the `GET /stats` document, plus the
    /// momentary queue depths (total and per band) and the cache's size
    /// and eviction counters. The HTTP layer merges these with the
    /// observability fields
    /// ([`super::ServeMetrics::observability_fields`]) and renders the
    /// union through [`Value::sorted_obj`].
    pub fn fields(
        &self,
        pending: usize,
        depths: [usize; 3],
        cache: CacheUsage,
    ) -> Vec<(String, Value)> {
        vec![
            ("atoms_steps".into(), Value::Uint(self.atoms_steps)),
            ("batches".into(), Value::Uint(self.batches)),
            ("cache_bytes".into(), Value::Uint(cache.bytes)),
            ("cache_entries".into(), Value::Uint(cache.entries)),
            ("cache_hits".into(), Value::Uint(self.cache_hits)),
            ("coalesced".into(), Value::Uint(self.coalesced)),
            ("early_exchanges".into(), Value::Uint(self.early_exchanges)),
            ("evictions".into(), Value::Uint(cache.evictions)),
            ("exchanges".into(), Value::Uint(self.exchanges)),
            (
                "fairness_preemptions".into(),
                Value::Uint(self.fairness_preemptions),
            ),
            ("pending".into(), Value::Uint(pending as u64)),
            ("pending_high".into(), Value::Uint(depths[0] as u64)),
            ("pending_low".into(), Value::Uint(depths[2] as u64)),
            ("pending_normal".into(), Value::Uint(depths[1] as u64)),
            ("requests".into(), Value::Uint(self.requests)),
            ("runs".into(), Value::Uint(self.runs)),
        ]
    }

    /// Render the counter fields alone as the legacy `GET /stats`
    /// document: compact JSON, keys in a fixed alphabetical order.
    pub fn to_json(&self, pending: usize, depths: [usize; 3], cache: CacheUsage) -> String {
        Value::sorted_obj(self.fields(pending, depths, cache)).render()
    }

    /// The one-line drain summary (the last line of `--drain` output,
    /// golden-tested in CI).
    pub fn summary_line(&self) -> String {
        format!(
            "requests {}, runs {}, cache hits {}, coalesced {}, atoms-steps {}, exchanges {} ({} early)",
            self.requests,
            self.runs,
            self.cache_hits,
            self.coalesced,
            self.atoms_steps,
            self.exchanges,
            self.early_exchanges,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{GhostPeriod, Scenario};
    use md_core::materials::Species;

    fn job(spec: ScenarioSpec, priority: Priority, client: &str) -> Job {
        Job {
            key: spec.key(),
            spec,
            priority,
            client: client.to_string(),
        }
    }

    fn specs(n: u64) -> Vec<ScenarioSpec> {
        let base = Scenario::slab(Species::Ta, 3, 3, 1).to_spec();
        (0..n)
            .map(|i| {
                let mut s = base;
                s.seed = base.seed + i;
                s
            })
            .collect()
    }

    #[test]
    fn queue_coalesces_by_key_and_one_client_stays_fifo() {
        let s = specs(2);
        let mut q = JobQueue::new();
        assert!(q.push(job(s[0], Priority::Normal, "a")));
        assert!(
            !q.push(job(s[0], Priority::High, "b")),
            "same key coalesces even across bands and clients"
        );
        assert!(q.push(job(s[1], Priority::Normal, "a")));
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek().unwrap().key, s[0].key());
        assert_eq!(q.pop().unwrap().key, s[0].key());
        assert_eq!(q.pop().unwrap().key, s[1].key());
        assert!(q.is_empty());
        // Once popped, the key can queue again.
        assert!(q.push(job(s[0], Priority::Normal, "a")));
    }

    #[test]
    fn within_a_band_clients_round_robin() {
        // Greedy client g enqueues 3 jobs before polite client p's one
        // job arrives; fairness interleaves p after g's first dispatch.
        let s = specs(4);
        let mut q = JobQueue::new();
        q.push(job(s[0], Priority::Normal, "g"));
        q.push(job(s[1], Priority::Normal, "g"));
        q.push(job(s[2], Priority::Normal, "g"));
        q.push(job(s[3], Priority::Normal, "p"));
        let order: Vec<String> = std::iter::from_fn(|| q.pop().map(|j| j.client)).collect();
        assert_eq!(order, ["g", "p", "g", "g"]);
    }

    #[test]
    fn bands_are_strict_priority() {
        let s = specs(3);
        let mut q = JobQueue::new();
        q.push(job(s[0], Priority::Low, "a"));
        q.push(job(s[1], Priority::High, "a"));
        q.push(job(s[2], Priority::Normal, "b"));
        assert_eq!(q.depths(), [1, 1, 1]);
        assert_eq!(q.pop().unwrap().key, s[1].key(), "high first");
        assert_eq!(q.pop().unwrap().key, s[2].key(), "then normal");
        assert_eq!(q.pop().unwrap().key, s[0].key(), "low last");
        assert!(q.pop().is_none());
    }

    #[test]
    fn has_compatible_sees_every_band_and_lane() {
        let base = Scenario::slab(Species::Ta, 3, 3, 1).to_spec();
        let mut sharded = base;
        sharded.seed += 1;
        sharded.shards = 2;
        sharded.ghost_period = GhostPeriod::Every(4);
        let mut q = JobQueue::new();
        q.push(job(sharded, Priority::Low, "a"));
        assert!(q.has_compatible(&sharded));
        assert!(!q.has_compatible(&base), "different execution geometry");
    }

    #[test]
    fn priority_parses_case_insensitively_and_rejects_junk() {
        assert_eq!(Priority::parse("high"), Some(Priority::High));
        assert_eq!(Priority::parse(" Normal "), Some(Priority::Normal));
        assert_eq!(Priority::parse("LOW"), Some(Priority::Low));
        assert_eq!(Priority::parse("urgent"), None);
        assert_eq!(Priority::parse(""), None);
        assert_eq!(Priority::default(), Priority::Normal);
        assert_eq!(
            Priority::ALL.map(Priority::label),
            ["high", "normal", "low"]
        );
    }

    #[test]
    fn stats_render_stable_json_and_summary() {
        let stats = ServeStats {
            requests: 3,
            runs: 2,
            batches: 1,
            cache_hits: 0,
            coalesced: 1,
            fairness_preemptions: 2,
            atoms_steps: 14400,
            exchanges: 5,
            early_exchanges: 1,
        };
        let cache = CacheUsage {
            bytes: 512,
            entries: 2,
            evictions: 4,
        };
        assert_eq!(
            stats.to_json(1, [0, 1, 0], cache),
            "{\"atoms_steps\":14400,\"batches\":1,\"cache_bytes\":512,\
             \"cache_entries\":2,\"cache_hits\":0,\"coalesced\":1,\
             \"early_exchanges\":1,\"evictions\":4,\"exchanges\":5,\
             \"fairness_preemptions\":2,\"pending\":1,\"pending_high\":0,\
             \"pending_low\":0,\"pending_normal\":1,\"requests\":3,\"runs\":2}"
        );
        assert_eq!(
            stats.summary_line(),
            "requests 3, runs 2, cache hits 0, coalesced 1, atoms-steps 14400, exchanges 5 (1 early)"
        );
    }
}
