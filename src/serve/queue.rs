//! The job queue and the per-process serve counters.
//!
//! One admission discipline, used by both the HTTP loop and `--drain`:
//! a request either hits the disk cache, coalesces onto an
//! already-queued job for the same key, or enqueues a new job. The
//! queue is keyed FIFO — jobs run in admission order, so drain output
//! is deterministic — and never holds two jobs for one key.

use std::collections::VecDeque;

use crate::json::Value;
use crate::scenario::ScenarioSpec;

/// A queued unit of work: one spec to run, addressed by its canonical
/// key.
#[derive(Clone, Debug)]
pub struct Job {
    /// The spec's canonical cache key ([`ScenarioSpec::key`]).
    pub key: String,
    /// The spec to run.
    pub spec: ScenarioSpec,
}

/// A FIFO queue of pending runs, deduplicated by cache key.
#[derive(Debug, Default)]
pub struct JobQueue {
    jobs: VecDeque<Job>,
}

impl JobQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue a job unless one with the same key is already pending.
    /// Returns `true` if the job was newly queued, `false` if it
    /// coalesced onto the pending one.
    pub fn push(&mut self, key: String, spec: ScenarioSpec) -> bool {
        if self.contains(&key) {
            return false;
        }
        self.jobs.push_back(Job { key, spec });
        true
    }

    /// Dequeue the oldest pending job.
    pub fn pop(&mut self) -> Option<Job> {
        self.jobs.pop_front()
    }

    /// Whether a job with this key is pending.
    pub fn contains(&self, key: &str) -> bool {
        self.jobs.iter().any(|j| j.key == key)
    }

    /// The queue depth.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

/// Monotonic per-process serve counters.
///
/// `requests = runs + cache_hits + coalesced + still-pending`: every
/// admitted request is classified exactly once. The physics totals
/// (`atoms_steps`, `exchanges`, `early_exchanges`) accumulate over the
/// runs *this process* executed — cache hits add nothing, which is the
/// point of the cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Specs submitted (valid requests admitted, however disposed).
    pub requests: u64,
    /// Physics runs actually executed.
    pub runs: u64,
    /// Requests answered from the on-disk cache.
    pub cache_hits: u64,
    /// Requests that coalesced onto an already-queued job.
    pub coalesced: u64,
    /// Σ atoms × steps over executed runs.
    pub atoms_steps: u64,
    /// Ghost exchanges performed by executed sharded runs.
    pub exchanges: u64,
    /// The subset of `exchanges` forced early by the skin-validity
    /// check.
    pub early_exchanges: u64,
}

impl ServeStats {
    /// Render the `GET /stats` document: compact JSON, keys in a fixed
    /// alphabetical order, plus the momentary queue depth.
    pub fn to_json(&self, pending: usize) -> String {
        Value::Obj(vec![
            ("atoms_steps".into(), Value::Uint(self.atoms_steps)),
            ("cache_hits".into(), Value::Uint(self.cache_hits)),
            ("coalesced".into(), Value::Uint(self.coalesced)),
            ("early_exchanges".into(), Value::Uint(self.early_exchanges)),
            ("exchanges".into(), Value::Uint(self.exchanges)),
            ("pending".into(), Value::Uint(pending as u64)),
            ("requests".into(), Value::Uint(self.requests)),
            ("runs".into(), Value::Uint(self.runs)),
        ])
        .render()
    }

    /// The one-line drain summary (the last line of `--drain` output,
    /// golden-tested in CI).
    pub fn summary_line(&self) -> String {
        format!(
            "requests {}, runs {}, cache hits {}, coalesced {}, atoms-steps {}, exchanges {} ({} early)",
            self.requests,
            self.runs,
            self.cache_hits,
            self.coalesced,
            self.atoms_steps,
            self.exchanges,
            self.early_exchanges,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use md_core::materials::Species;

    #[test]
    fn queue_coalesces_by_key_and_pops_fifo() {
        let a = Scenario::slab(Species::Ta, 3, 3, 1).to_spec();
        let mut b = a;
        b.seed += 1;
        let mut q = JobQueue::new();
        assert!(q.push(a.key(), a));
        assert!(!q.push(a.key(), a), "same key coalesces");
        assert!(q.push(b.key(), b));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().key, a.key());
        assert_eq!(q.pop().unwrap().key, b.key());
        assert!(q.is_empty());
        // Once popped, the key can queue again.
        assert!(q.push(a.key(), a));
    }

    #[test]
    fn stats_render_stable_json_and_summary() {
        let stats = ServeStats {
            requests: 3,
            runs: 2,
            cache_hits: 0,
            coalesced: 1,
            atoms_steps: 14400,
            exchanges: 5,
            early_exchanges: 1,
        };
        assert_eq!(
            stats.to_json(1),
            "{\"atoms_steps\":14400,\"cache_hits\":0,\"coalesced\":1,\
             \"early_exchanges\":1,\"exchanges\":5,\"pending\":1,\
             \"requests\":3,\"runs\":2}"
        );
        assert_eq!(
            stats.summary_line(),
            "requests 3, runs 2, cache hits 0, coalesced 1, atoms-steps 14400, exchanges 5 (1 early)"
        );
    }
}
